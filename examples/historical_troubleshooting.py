#!/usr/bin/env python
"""Historical queries with epoch-based persistence (paper section 5.2.1).

Line-rate DRAM ingestion cannot hold history, so DART proposes rotating
the live region into slower persistent storage per epoch.  This script
plays out the scenario the paper motivates -- "troubleshoot a previous
outage":

1. three epochs of INT traffic flow through a deployment, with the region
   archived (gzip to disk) and cleared at each boundary;
2. during epoch 1, flows through one aggregation switch took a detour --
   the incident we later investigate;
3. the operator replays the *historical* epoch with the standard query
   path to confirm which flows were affected, while live data stays
   untouched.

Run:  python examples/historical_troubleshooting.py
"""

import tempfile
from pathlib import Path

from repro.core.config import DartConfig
from repro.core.reporter import DartReporter
from repro.collector.collector import CollectorCluster
from repro.collector.epochs import EpochArchive, EpochManager
from repro.network.flows import FlowGenerator
from repro.network.simulation import decode_path, encode_path
from repro.network.topology import FatTreeTopology


def main() -> None:
    tree = FatTreeTopology(k=4)
    config = DartConfig(slots_per_collector=1 << 14, num_collectors=1)
    cluster = CollectorCluster(config)
    reporter = DartReporter(config)

    archive_dir = Path(tempfile.mkdtemp(prefix="dart-epochs-"))
    archive = EpochArchive(config, directory=archive_dir)
    manager = EpochManager(list(cluster), archive, reports_per_epoch=10_000)
    print(f"archiving epochs to {archive_dir}\n")

    generator = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=3)
    epochs = 3
    affected_by_epoch = {}

    for epoch in range(epochs):
        flows = generator.uniform(800)
        affected = []
        for flow in flows:
            path = tree.path(flow.src_host, flow.dst_host, flow.five_tuple)
            if epoch == 1 and len(path) == 5:
                # The incident: core detours during epoch 1 added a hop
                # marker (simulated here by rewriting the recorded path).
                path = path[:2] + [999] + path[2:4]
                affected.append(flow.five_tuple)
            for write in reporter.writes_for(flow.five_tuple, encode_path(path)):
                cluster[write.collector_id].write_slot(
                    write.slot_index, write.payload
                )
        affected_by_epoch[epoch] = affected
        manager.rotate()
        print(
            f"epoch {epoch}: {len(flows)} flows ingested, "
            f"{len(affected)} affected by the incident, region archived"
        )

    print(f"\narchived epochs on disk: {archive.epochs()}")

    # --- Investigation: why did epoch-1 latencies spike? ----------------
    print("\nreplaying epoch 1 against the archive:")
    suspects = affected_by_epoch[1][:5]
    for key in suspects:
        result = archive.query(1, key)
        path = decode_path(result.value) if result.answered else None
        detoured = path is not None and 999 in path
        print(f"  {key}: path={path} detoured={detoured}")
        assert detoured

    # The same flows in epoch 2 (after the fix) show normal paths.
    print("\nthe same flows in epoch 2's archive (different flows live then):")
    clean = archive.query(2, suspects[0])
    print(
        f"  {suspects[0]}: "
        f"{'aged out of epoch 2 (expected -- different flows)' if not clean.answered else decode_path(clean.value)}"
    )

    # Live region is empty after the final rotation: history is history.
    from repro.core.client import DartQueryClient

    live = DartQueryClient(config, reader=cluster.read_slot)
    assert not live.query(suspects[0]).answered
    print("\nlive region clean; incident fully reconstructible from archives")


if __name__ == "__main__":
    main()
