#!/usr/bin/env python
"""Anatomy of one DART report: from telemetry event to collector memory.

A didactic walk through the paper's section-6 prototype, one layer at a
time, printing what each stage produces:

  telemetry event -> I2E mirror -> hash to (collector, address) ->
  collector lookup table -> PSN register -> RoCEv2 frame (hex) ->
  NIC validation -> DMA -> operator query.

Run:  python examples/switch_to_wire_walkthrough.py
"""

from repro.core.client import DartQueryClient
from repro.core.config import DartConfig
from repro.collector.collector import CollectorCluster
from repro.rdma.packets import RoceV2Packet
from repro.switch.control_plane import SwitchControlPlane
from repro.switch.dart_switch import DartSwitch


def hexdump(data: bytes, width: int = 16) -> str:
    lines = []
    for offset in range(0, len(data), width):
        chunk = data[offset : offset + width]
        hexes = " ".join(f"{b:02x}" for b in chunk)
        lines.append(f"    {offset:04x}  {hexes}")
    return "\n".join(lines)


def main() -> None:
    config = DartConfig(slots_per_collector=1 << 12, num_collectors=4, seed=42)
    cluster = CollectorCluster(config)
    switch = DartSwitch(config, switch_id=3)
    SwitchControlPlane(config).connect_switch(switch, cluster)

    key = ("10.1.0.2", "10.3.1.3", 48000, 443, 6)  # flow 5-tuple
    value = b"\x00\x00\x00\x07" * 5  # 5 hops through switch 7 (toy)

    print("1. telemetry event at the switch")
    print(f"   key   = {key}")
    print(f"   value = {value.hex()} ({len(value)} bytes = 160 bits)\n")

    print("2. stateless addressing (global hash functions)")
    collector_id = switch.addressing.collector_of(key)
    checksum = switch.addressing.checksum_of(key)
    print(f"   collector  = hash_c(key) mod {config.num_collectors} -> {collector_id}")
    for n in range(config.redundancy):
        print(
            f"   copy {n}: slot = hash_{n}(key) mod "
            f"{config.slots_per_collector} -> {switch.addressing.slot_index(key, n)}"
        )
    print(f"   checksum   = {checksum:#010x} (32-bit, stored in the slot)\n")

    print("3. collector lookup table (match-action, ~20B SRAM/collector)")
    action, params = switch.collector_table.lookup(collector_id)
    print(f"   action = {action}")
    for field, value_ in params.items():
        shown = hex(value_) if isinstance(value_, int) else value_
        print(f"     {field} = {shown}")
    print(f"   PSN register[{collector_id}] = "
          f"{switch.psn_registers.read(collector_id)}\n")

    print("4. crafted RoCEv2 frames (one RDMA WRITE per copy)")
    frames = switch.report(key, value)
    for index, (cid, frame) in enumerate(frames):
        packet = RoceV2Packet.unpack(frame)  # validates iCRC
        print(
            f"   frame {index}: {len(frame)} B to collector {cid}, "
            f"PSN={packet.bth.psn}, VA={packet.reth.virtual_address:#x}"
        )
    print("   frame 0 hex dump:")
    print(hexdump(frames[0][1]))
    print()

    print("5. NIC ingestion (zero collector CPU)")
    for cid, frame in frames:
        accepted = cluster[cid].receive_frame(frame)
        print(f"   collector {cid}: frame accepted={accepted}")
    nic = cluster[collector_id].nic
    print(f"   NIC counters: {nic.counters.writes_executed} WRITEs executed, "
          f"{nic.counters.frames_dropped} dropped\n")

    print("6. operator query (the only CPU involvement)")
    client = DartQueryClient(config, reader=cluster.read_slot)
    result = client.query(key)
    print(f"   outcome = {result.outcome.value}")
    print(f"   value   = {result.value.hex()}")
    print(f"   matched {result.matches}/{result.slots_read} slots")
    assert result.value == value

    print("\n7. tampering check: flip one wire bit and the NIC drops it")
    tampered = bytearray(frames[0][1])
    tampered[-10] ^= 0x01
    accepted = cluster[frames[0][0]].receive_frame(bytes(tampered))
    print(f"   tampered frame accepted={accepted} "
          f"(dropped by iCRC, CPU never woken)")


if __name__ == "__main__":
    main()
