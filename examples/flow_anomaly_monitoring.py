#!/usr/bin/env python
"""Flow-anomaly monitoring and per-hop troubleshooting.

A datacenter operator's workflow on top of DART, combining two Table-1
backends sharing one deployment:

1. switches detect per-flow events (latency spikes, drops, path changes)
   and report them under (flow 5-tuple, anomaly ID) -- flow-event
   telemetry in the style the paper cites for report rates;
2. when a flow looks sick, the operator drills down with postcard-mode
   INT: every switch on the path reported its local view under
   (switchID, 5-tuple), so per-hop queue depths and latencies localise
   the problem;
3. Fetch&Add counters in collector memory (paper section 7) rank flows by
   event volume without any per-flow state at switches.

Run:  python examples/flow_anomaly_monitoring.py
"""

import random

from repro.core.config import DartConfig
from repro.collector.counters import CounterStore
from repro.collector.store import DartStore
from repro.network.flows import FlowGenerator
from repro.network.topology import FatTreeTopology
from repro.telemetry.anomalies import AnomalyEvent, AnomalyKind, FlowAnomalyBackend
from repro.telemetry.postcards import PostcardBackend, PostcardMeasurement


def main() -> None:
    rng = random.Random(7)
    tree = FatTreeTopology(k=4)
    store = DartStore(DartConfig(slots_per_collector=1 << 15, num_collectors=2))
    anomalies = FlowAnomalyBackend(store)
    postcards = PostcardBackend(store)
    counters = CounterStore(cells_per_row=1 << 12, rows=2)

    flows = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=7).uniform(300)
    paths = {
        f.five_tuple: tree.path(f.src_host, f.dst_host, f.five_tuple) for f in flows
    }

    # --- Switches at work: postcards on every hop, anomalies on a few ---
    sick_flows = rng.sample(flows, 5)
    # Each sick flow hits congestion at the penultimate hop of its path.
    congested_at = {
        f.five_tuple: paths[f.five_tuple][max(len(paths[f.five_tuple]) - 2, 0)]
        for f in sick_flows
    }
    for flow in flows:
        path = paths[flow.five_tuple]
        sick_here = flow in sick_flows
        for hop_index, switch_id in enumerate(path):
            congested = sick_here and switch_id == congested_at[flow.five_tuple]
            postcards.switch_report(
                switch_id,
                flow,
                PostcardMeasurement(
                    timestamp_ns=1_000_000 + hop_index,
                    queue_depth=900 if congested else rng.randrange(5, 40),
                    egress_port=rng.randrange(32),
                    hop_latency_ns=250_000 if congested else rng.randrange(500, 3000),
                    congestion_flag=congested,
                ),
            )
        if sick_here:
            events = rng.randrange(2, 9)
            for _ in range(events):
                counters.add(flow.five_tuple)
            anomalies.report_event(
                flow.five_tuple,
                AnomalyEvent(
                    timestamp_ns=2_000_000,
                    switch_id=congested_at[flow.five_tuple],
                    kind=AnomalyKind.LATENCY_SPIKE,
                    detail=250_000,
                ),
            )

    # --- Operator at work ---------------------------------------------
    print("scanning flows for recorded anomalies...")
    flagged = [
        flow
        for flow in flows
        if anomalies.last_event(flow.five_tuple, AnomalyKind.LATENCY_SPIKE)
    ]
    print(f"  {len(flagged)} of {len(flows)} flows have latency-spike events\n")

    victim = flagged[0]
    event = anomalies.last_event(victim.five_tuple, AnomalyKind.LATENCY_SPIKE)
    print(f"drilling into {victim.five_tuple}:")
    print(
        f"  event: {event.kind.name} at switch {event.switch_id}, "
        f"detail={event.detail} ns"
    )
    print(f"  event count (Fetch&Add): {counters.estimate(victim.five_tuple)}")

    print("  per-hop postcards:")
    for switch_id, m in postcards.path_measurements(
        victim, paths[victim.five_tuple]
    ).items():
        if m is None:
            print(f"    switch {switch_id:3d}: (aged out)")
            continue
        marker = "  <-- congested" if m.congestion_flag else ""
        print(
            f"    switch {switch_id:3d}: queue={m.queue_depth:4d} "
            f"latency={m.hop_latency_ns:7d} ns{marker}"
        )

    culprits = [
        switch_id
        for switch_id, m in postcards.path_measurements(
            victim, paths[victim.five_tuple]
        ).items()
        if m is not None and m.congestion_flag
    ]
    print(f"\n  diagnosis: congestion at switch {culprits[0]} "
          f"({tree.switches[culprits[0]].role.value} layer)")
    assert culprits == [congested_at[victim.five_tuple]]


if __name__ == "__main__":
    main()
