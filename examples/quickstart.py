#!/usr/bin/env python
"""Quickstart: store and query telemetry through DART in a few lines.

DART is a key-value telemetry store whose *writers are switches*: keys hash
to N redundant slots in collector memory, slots carry key checksums, and
queries tolerate overwrites probabilistically.  This script walks the
public API: configure, put, get, inspect outcomes, and see what happens
under memory pressure.

Run:  python examples/quickstart.py
"""

from repro import DartConfig, DartStore, QueryOutcome, ReturnPolicy


def main() -> None:
    # A deployment is defined by a shared config: redundancy N, checksum
    # width b, value size, and collector memory.  These defaults follow
    # the paper's suggestions (N=2, b=32, 160-bit values).
    config = DartConfig(slots_per_collector=1 << 16, num_collectors=2)
    store = DartStore(config)
    print(f"deployment: {config}")
    print(f"collector memory: {store.memory_bytes / 1024:.0f} KiB total\n")

    # Telemetry keys are whatever the measurement framework produces --
    # here a flow 5-tuple, as in-band INT would use (paper Table 1).
    flow = ("10.0.1.5", "10.3.0.9", 43210, 443, 6)
    store.put(flow, b"edge3-agg1-core0-agg7-edge9"[:20])

    result = store.get(flow)
    print(f"query outcome:   {result.outcome.value}")
    print(f"returned value:  {result.value!r}")
    print(f"checksum matches across the N slots: {result.matches}\n")

    # Unknown keys come back EMPTY, never a fabricated answer.
    missing = store.get(("10.0.0.1", "10.0.0.2", 1, 2, 6))
    assert missing.outcome is QueryOutcome.EMPTY
    print(f"unknown key -> {missing.outcome.value} (value={missing.value})\n")

    # Overwrites are silent and last-writer-wins, like the real memory.
    store.put(flow, b"rerouted-path".ljust(20, b"\x00"))
    print(f"after update:    {store.get(flow).value!r}\n")

    # Return policies can vary per query (paper section 4): consensus-2
    # demands the value appear in >= 2 slots -- fewer wrong answers, more
    # empty returns.
    cautious = store.get(flow, policy=ReturnPolicy.CONSENSUS_2)
    print(f"consensus-2 outcome: {cautious.outcome.value} (both copies agree)\n")

    # Fill the store far beyond its slot count and watch queryability
    # degrade gracefully -- the probabilistic trade at DART's heart.
    keys = [("flow", i) for i in range(200_000)]
    for key in keys:
        store.put(key, b"x" * 20)
    alive = sum(store.get(key).answered for key in keys[:2000])
    print(
        f"after loading {len(keys)} keys into {config.total_slots} slots "
        f"(load {store.load_factor(len(keys)):.2f}):"
    )
    print(f"  oldest keys still queryable: {alive / 2000:.1%}")
    alive_fresh = sum(store.get(key).answered for key in keys[-2000:])
    print(f"  freshest keys still queryable: {alive_fresh / 2000:.1%}")


if __name__ == "__main__":
    main()
