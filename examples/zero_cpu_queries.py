#!/usr/bin/env python
"""Zero-CPU queries: reading DART slots over one-sided RDMA READ.

The paper removes the collector CPU from the *collection* path and runs
queries locally on the collector (section 3.2).  Because slot addresses
are a pure function of the key, queries need nothing the NIC can't
provide: this script runs the whole telemetry loop -- reporting AND
querying -- without the collector host executing a single instruction,
then compares the two query paths.

Run:  python examples/zero_cpu_queries.py
"""

from repro.core.client import DartQueryClient
from repro.core.config import DartConfig
from repro.core.reporter import DartReporter
from repro.collector.collector import CollectorCluster
from repro.collector.remote_query import RemoteQueryClient


def main() -> None:
    config = DartConfig(slots_per_collector=1 << 14, num_collectors=2, value_bytes=8)
    cluster = CollectorCluster(config)
    reporter = DartReporter(config)

    # --- Reporting (switch-side; zero collector CPU) --------------------
    print("ingesting 5000 telemetry reports (direct slot writes)...")
    for i in range(5000):
        for write in reporter.writes_for(("flow", i), i.to_bytes(8, "big")):
            cluster[write.collector_id].write_slot(write.slot_index, write.payload)

    # --- Query path 1: the paper's design (collector CPU reads locally) -
    local = DartQueryClient(config, reader=cluster.read_slot)
    result = local.query(("flow", 42))
    print(f"\nlocal query:  value={int.from_bytes(result.value, 'big')} "
          f"(collector CPU read {result.slots_read} slots)")

    # --- Query path 2: one-sided RDMA READs (no collector CPU at all) ---
    remote = RemoteQueryClient(config, cluster, operator_id=7)
    result = remote.query(("flow", 42))
    print(f"remote query: value={int.from_bytes(result.value, 'big')} "
          f"({remote.read_requests_sent} RDMA READs, zero collector CPU)")

    # --- Agreement check over a larger sample ---------------------------
    agreements = 0
    for i in range(0, 5000, 50):
        key = ("flow", i)
        if local.query(key).value == remote.query(key).value:
            agreements += 1
    print(f"\nlocal and remote paths agree on {agreements}/100 sampled keys")

    # --- The accounting that proves 'zero CPU' --------------------------
    for collector in cluster:
        counters = collector.nic.counters
        print(
            f"collector {collector.collector_id}: "
            f"{counters.reads_executed} READs served by the NIC, "
            f"{counters.responses_emitted} responses emitted, "
            f"0 host instructions"
        )

    # --- The trade: remote queries cost wire round-trips ----------------
    print(
        f"\ntrade-off: each remote query issues N={config.redundancy} READ "
        "round trips;\nthe paper's local design reads the same slots from "
        "DRAM in nanoseconds --\nwhich is why DART runs queries on the "
        "collector and keeps all N copies there."
    )


if __name__ == "__main__":
    main()
