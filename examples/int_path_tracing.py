#!/usr/bin/env python
"""INT path tracing on a fat tree -- the paper's running example.

Flows cross a k-ary fat tree accumulating one 32-bit switch ID per hop
(in-band INT).  The last-hop switch pushes <flow 5-tuple> -> <160-bit
path> into DART over RDMA; the operator later asks "which path did this
flow take?" without any collector CPU having touched the reports.

The script runs the full loop -- topology, ECMP routing, INT accumulation,
DART reporting with report loss, ground-truth evaluation -- and finishes
with a packet-level pass where real RoCEv2 frames (iCRC and all) carry the
reports into the collector NIC.

Run:  python examples/int_path_tracing.py
"""

from repro.core.config import DartConfig
from repro.network.flows import FlowGenerator
from repro.network.simulation import IntSimulation, LossModel, decode_path
from repro.network.topology import FatTreeTopology


def main() -> None:
    tree = FatTreeTopology(k=8)
    print(
        f"fat tree k=8: {tree.num_hosts} hosts, {tree.num_switches} switches"
    )

    # Budget: the paper's 300 bytes of collector memory per flow.
    num_flows = 20_000
    config = DartConfig.for_memory_budget(
        300 * num_flows, redundancy=2, value_bytes=20
    )
    print(
        f"DART config: N={config.redundancy}, "
        f"{config.slots_per_collector} slots of {config.slot_bytes} B\n"
    )

    # 2% of telemetry report packets are lost in the network: DART keeps
    # no retransmit state at switches; redundancy absorbs the loss.
    sim = IntSimulation(tree, config, loss=LossModel(0.02, seed=1))
    generator = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=1)
    flows = generator.uniform(num_flows)
    sim.trace_flows(flows)

    # Operator view: pick a flow and ask for its path.
    flow = flows[123]
    result = sim.query_path(flow)
    print(f"flow {flow.five_tuple}")
    print(f"  actual path:   {sim.records[123].path}")
    print(f"  queried path:  {decode_path(result.value)}")
    hops = [tree.switches[s].role.value for s in decode_path(result.value)]
    print(f"  hop roles:     {' -> '.join(hops)}\n")

    # Network-wide ground truth evaluation.
    evaluation = sim.evaluate()
    print(
        f"evaluated {evaluation.total} flows at load "
        f"{config.load_factor(evaluation.total):.3f} with 2% report loss:"
    )
    print(f"  correct paths returned: {evaluation.success_rate:.2%}")
    print(f"  empty returns:          {evaluation.empty / evaluation.total:.2%}")
    print(f"  wrong paths:            {evaluation.error_rate:.2%}\n")

    # Packet-level pass: every report is a real RoCEv2 frame through a
    # real (modelled) RNIC -- byte-identical storage, zero collector CPU.
    small_tree = FatTreeTopology(k=4)
    packet_sim = IntSimulation(
        small_tree,
        DartConfig(slots_per_collector=1 << 14),
        packet_level=True,
    )
    packet_flows = FlowGenerator(
        small_tree.num_hosts, host_ip=small_tree.host_ip, seed=2
    ).uniform(500)
    packet_sim.trace_flows(packet_flows)
    nic_writes = sum(
        c.nic.counters.writes_executed for c in packet_sim.cluster
    )
    print(
        f"packet-level pass: {nic_writes} RoCEv2 WRITEs executed by NICs, "
        f"success {packet_sim.evaluate().success_rate:.2%}"
    )


if __name__ == "__main__":
    main()
