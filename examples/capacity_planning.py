#!/usr/bin/env python
"""Capacity planning with the DART theory (paper section 4).

Before deploying, an operator wants to answer: how much collector memory
buys how much queryability, which redundancy N should we run, and what
happens when load spikes?  The closed forms make all three questions
arithmetic -- no simulation required -- and this script cross-checks the
answers against the vectorised simulator.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.core import theory
from repro.core.config import DartConfig
from repro.core.dynamic_n import DynamicRedundancyController
from repro.core.simulator import SimulationSpec, simulate
from repro.experiments.headline import memory_for_target_success


def main() -> None:
    flows = 50_000_000  # expected live telemetry keys
    print(f"planning for {flows/1e6:.0f}M live flows, 24-byte slots\n")

    # Question 1: memory for a target queryability.
    print("memory needed per target success rate:")
    for target in (0.95, 0.99, 0.999):
        for n in (2, 4):
            sizing = memory_for_target_success(target, redundancy=n)
            total_gb = sizing["bytes_per_flow_needed"] * flows / 1e9
            print(
                f"  {target:.1%} with N={n}: "
                f"{sizing['bytes_per_flow_needed']:7.1f} B/flow "
                f"= {total_gb:6.1f} GB total"
            )
    print()

    # Question 2: what does a fixed budget buy?
    print("queryability from a fixed 10 GB budget:")
    config = DartConfig.for_memory_budget(10 * 10**9, redundancy=2)
    alpha = config.load_factor(flows)
    for n in (1, 2, 3, 4):
        predicted = theory.average_queryability(alpha, n)
        print(f"  N={n}: predicted average queryability {predicted:.2%}")
    best = theory.optimal_redundancy(alpha, (1, 2, 3, 4))
    print(f"  -> run N={best} at this load (alpha={alpha:.2f})\n")

    # Cross-check the prediction with a scaled simulation (same alpha).
    sim_slots = 1 << 19
    spec = SimulationSpec(
        num_keys=int(alpha * sim_slots), num_slots=sim_slots, redundancy=best
    )
    measured = simulate(spec).success_rate
    predicted = float(theory.average_queryability(alpha, best))
    print(
        f"simulation cross-check: predicted {predicted:.4f}, "
        f"measured {measured:.4f} (diff {abs(predicted-measured):.4f})\n"
    )

    # Question 3: load spikes.  The dynamic-N controller (section 5.1
    # future work) rides a diurnal load pattern.
    print("dynamic N across a diurnal load swing:")
    controller = DynamicRedundancyController(
        DartConfig(redundancy=4, slots_per_collector=1 << 20),
        candidates=(1, 2, 4),
    )
    hours = np.linspace(0, 24, 9)
    for hour in hours:
        # Load swings 0.1 .. 2.1 over the day.
        load = 1.1 + np.sin(hour / 24 * 2 * np.pi)
        keys = int(load * (1 << 20))
        n = controller.observe_interval(keys)
        print(
            f"  t={hour:4.1f}h load={load:4.2f} -> N={n} "
            f"(predicted queryability {controller.predicted_queryability():.2%})"
        )


if __name__ == "__main__":
    main()
