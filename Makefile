# Convenience targets for the DART reproduction.

PYTHON ?= python

.PHONY: install test bench bench-obs bench-obs-timeseries bench-obs-fleet bench-obs-trace bench-control bench-fabric-columnar bench-primitives bench-query experiments experiments-full examples lint ci all

install:
	pip install -e . --no-build-isolation || \
	  echo "$(CURDIR)/src" > "$$($(PYTHON) -c 'import site; print(site.getsitepackages()[0])')/repro-editable.pth"
	$(PYTHON) -c "import repro; print('repro', repro.__version__, 'importable')"

test:
	$(PYTHON) -m pytest tests/ -q

lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
	  $(PYTHON) -m ruff check src/ tests/ benchmarks/ examples/; \
	else \
	  echo "ruff not installed; skipping lint (pip install -e '.[dev]')"; \
	fi

ci: lint bench-obs bench-obs-timeseries bench-obs-fleet bench-obs-trace bench-control bench-fabric-columnar bench-primitives bench-query
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Observability overhead gate: fails if enabled-mode metrics cost more
# than 15% on the report_batch hot path (writes benchmarks/BENCH_obs.json).
bench-obs:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_obs_overhead.py -q

# Time-series scraper gate: fails if scraping at realistic cadence costs
# more than 10% on the batched report path (writes
# benchmarks/BENCH_obs_timeseries.json).
bench-obs-timeseries:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_obs_timeseries.py -q

# Self-telemetry gate: exporting our own counter deltas and journal
# events over the DTA datapath must cost at most 10% on the columnar
# report path (writes benchmarks/BENCH_obs_fleet.json).
bench-obs-fleet:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_obs_fleet.py -q

# Causal-tracing gate: 1% head-sampled batch-granularity tracing must
# cost at most 10% on the columnar packet datapath (writes
# benchmarks/BENCH_obs_trace.json).
bench-obs-trace:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_obs_trace.py -q

# Fleet-controller gate: a collector crashed under an impaired fabric
# must fail over within bounded ticks and bounded reports lost (writes
# benchmarks/BENCH_control.json).
bench-control:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_control_failover.py -q

# Columnar datapath gate: whole-batch frames through switch, fabric, NIC
# and region must hold >= 10x over the per-frame packet path, and the
# in-process slot-batch row must stay within 5% of its recorded speedup
# (writes benchmarks/BENCH_fabric.json).
bench-fabric-columnar:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_fabric_columnar.py -q

# DTA primitive gate: the batched Append / Key-Increment / Sketch-Merge
# lowerings must each hold >= 5x over their scalar per-op baselines
# (writes benchmarks/BENCH_primitives.json).
bench-primitives:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_primitives.py -q

# Query front-end gate: >= 10k concurrent closed-loop users sustained on
# the packet clock, the TTL result cache >= 5x faster than the uncached
# shard fan-out at p99, and over-quota tenants rejected without touching
# in-quota latency (writes benchmarks/BENCH_query.json).
bench-query:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_query.py -q

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

experiments:
	$(PYTHON) -m repro.experiments

experiments-full:
	$(PYTHON) -m repro.experiments --full

examples:
	@for script in examples/*.py; do \
	  echo "=== $$script ==="; \
	  $(PYTHON) $$script || exit 1; \
	done

all: test bench examples
