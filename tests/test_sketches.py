"""Tests for count-min sketch semantics of the CounterStore (section 7)."""

import math

import numpy as np
import pytest

from repro.collector.counters import CounterStore


class TestTotals:
    def test_total_count(self):
        counters = CounterStore(cells_per_row=1 << 10, rows=2)
        counters.add(b"a", 5)
        counters.add(b"b", 7)
        assert counters.total_count() == 12

    def test_error_bound_shape(self):
        counters = CounterStore(cells_per_row=1024, rows=3)
        epsilon, delta = counters.error_bound()
        assert epsilon == pytest.approx(math.e / 1024)
        assert delta == pytest.approx(math.exp(-3))


class TestCountMinGuarantee:
    def test_empirical_guarantee(self):
        """Estimates exceed truth by > epsilon*total with prob <= delta."""
        counters = CounterStore(cells_per_row=512, rows=3)
        rng = np.random.default_rng(0)
        truth = {}
        for _ in range(3000):
            key = ("flow", int(rng.zipf(1.3)) % 500)
            amount = int(rng.integers(1, 5))
            counters.add(key, amount)
            truth[key] = truth.get(key, 0) + amount
        total = counters.total_count()
        epsilon, delta = counters.error_bound()
        violations = sum(
            1
            for key, count in truth.items()
            if counters.estimate(key) - count > epsilon * total
        )
        # Allow generous slack over delta for finite-sample noise.
        assert violations <= max(5, 3 * delta * len(truth))

    def test_never_undercounts(self):
        counters = CounterStore(cells_per_row=64, rows=2)
        truth = {}
        for i in range(500):
            key = ("k", i % 40)
            counters.add(key)
            truth[key] = truth.get(key, 0) + 1
        assert all(
            counters.estimate(key) >= count for key, count in truth.items()
        )


class TestHeavyHitters:
    def test_finds_all_true_heavy_hitters(self):
        counters = CounterStore(cells_per_row=1 << 12, rows=2)
        for _ in range(100):
            counters.add(b"elephant-1")
        for _ in range(80):
            counters.add(b"elephant-2")
        for i in range(50):
            counters.add(("mouse", i))
        candidates = [b"elephant-1", b"elephant-2"] + [("mouse", i) for i in range(50)]
        hits = counters.heavy_hitters(candidates, threshold=50)
        keys = [key for key, _ in hits]
        assert keys[:2] == [b"elephant-1", b"elephant-2"]  # sorted desc
        assert all(estimate >= 50 for _, estimate in hits)

    def test_upper_bound_never_misses(self):
        """Count-min overestimates, so a true heavy hitter always appears."""
        counters = CounterStore(cells_per_row=16, rows=2)  # force collisions
        for _ in range(60):
            counters.add(b"hh")
        for i in range(200):
            counters.add(("noise", i))
        hits = counters.heavy_hitters([b"hh"], threshold=60)
        assert hits and hits[0][0] == b"hh"

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CounterStore(cells_per_row=8).heavy_hitters([], threshold=-1)


class TestMerge:
    def test_merge_equals_union(self):
        """Merging per-collector sketches equals one global sketch --
        the 'network-wide aggregation' of section 7."""
        site_a = CounterStore(cells_per_row=256, rows=2)
        site_b = CounterStore(cells_per_row=256, rows=2)
        combined = CounterStore(cells_per_row=256, rows=2)
        for i in range(100):
            key = ("flow", i % 30)
            site_a.add(key)
            combined.add(key)
        for i in range(80):
            key = ("flow", (i * 7) % 30)
            site_b.add(key, 2)
            combined.add(key, 2)
        site_a.merge_from(site_b)
        for i in range(30):
            key = ("flow", i)
            assert site_a.estimate(key) == combined.estimate(key)
        assert site_a.total_count() == combined.total_count()

    def test_merge_shape_mismatch_rejected(self):
        a = CounterStore(cells_per_row=64, rows=2)
        with pytest.raises(ValueError):
            a.merge_from(CounterStore(cells_per_row=128, rows=2))
        with pytest.raises(ValueError):
            a.merge_from(CounterStore(cells_per_row=64, rows=3))

    def test_merge_uses_atomics(self):
        a = CounterStore(cells_per_row=32, rows=1)
        b = CounterStore(cells_per_row=32, rows=1)
        b.add(b"x", 3)
        before = a.region.atomic_count
        a.merge_from(b)
        assert a.region.atomic_count > before
        assert a.estimate(b"x") == 3
