"""Fleet observability: node scoping, aggregation, self-telemetry, bundles."""

import json
import pathlib

import pytest

from repro import obs
from repro.core.config import DartConfig
from repro.fabric.fabric import InlineFabric
from repro.fabric.impaired import ImpairedFabric
from repro.network.flows import FlowGenerator
from repro.network.packet_sim import PacketLevelIntNetwork
from repro.network.topology import FatTreeTopology


def _registry():
    return obs.MetricsRegistry(enabled=True)


class TestNodeScope:
    def test_instance_labels_carry_node_inside_scope(self):
        registry = _registry()
        with registry.node_scope("collector-3"):
            labels = registry.instance_labels("RdmaNic")
        # The tuple stays sorted by key: instance < kind < node.
        assert [key for key, _value in labels] == ["instance", "kind", "node"]
        assert dict(labels)["node"] == "collector-3"

    def test_scope_restores_and_nests(self):
        registry = _registry()
        assert "node" not in dict(registry.instance_labels("Fabric"))
        with registry.node_scope("outer"):
            assert dict(registry.instance_labels("A"))["node"] == "outer"
            with registry.node_scope("inner"):
                assert dict(registry.instance_labels("B"))["node"] == "inner"
            assert dict(registry.instance_labels("C"))["node"] == "outer"
        assert "node" not in dict(registry.instance_labels("D"))

    def test_scope_restores_on_exception(self):
        registry = _registry()
        with pytest.raises(RuntimeError):
            with registry.node_scope("doomed"):
                raise RuntimeError("construction failed")
        assert registry.node is None

    def test_filter_labels_and_label_values(self):
        registry = _registry()
        registry.counter(
            "nic_frames_received", labels=(("node", "collector-0"),),
            help="frames",
        ).inc(5)
        registry.counter(
            "nic_frames_received", labels=(("node", "collector-1"),)
        ).inc(7)
        registry.counter("fabric_frames_offered").inc(3)
        snapshot = registry.snapshot()
        assert snapshot.label_values("node") == ["collector-0", "collector-1"]
        sub = snapshot.filter_labels(node="collector-0")
        assert len(sub) == 1
        assert sub.total("nic_frames_received") == 5
        # Help text survives the filter for the surviving family.
        assert sub.help_texts.get("nic_frames_received") == "frames"


class TestMergeSnapshots:
    def test_counters_add_on_collision(self):
        a, b = _registry(), _registry()
        a.counter("hits", labels=(("node", "n0"),)).inc(3)
        b.counter("hits", labels=(("node", "n0"),)).inc(4)
        merged = obs.merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged.total("hits") == 7

    def test_gauges_keep_the_later_reading(self):
        a, b = _registry(), _registry()
        a.gauge("depth").set(10)
        b.gauge("depth").set(2)
        merged = obs.merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged.total("depth") == 2

    def test_histograms_add_buckets_when_bounds_match(self):
        a, b = _registry(), _registry()
        a.histogram("lat", buckets=(1.0, 5.0)).observe(0.5)
        b.histogram("lat", buckets=(1.0, 5.0)).observe(3.0)
        merged = obs.merge_snapshots([a.snapshot(), b.snapshot()])
        ((_key, (kind, value)),) = [
            item for item in merged.samples.items() if item[0][0] == "lat"
        ]
        counts, total, bounds = value
        assert kind == "histogram"
        assert bounds == (1.0, 5.0)
        assert sum(counts) == 2
        assert total == 3.5

    def test_help_texts_first_wins(self):
        a, b = _registry(), _registry()
        a.counter("hits", help="first").inc()
        b.counter("hits", help="second").inc()
        merged = obs.merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged.help_texts["hits"] == "first"


class TestFleetRegistry:
    def _fleet_fixture(self):
        registry = _registry()
        registry.counter(
            "nic_frames_received", labels=(("node", "collector-0"),)
        ).inc(100)
        registry.counter(
            "nic_frames_received", labels=(("node", "collector-1"),)
        ).inc(40)
        registry.counter(
            "mem_writes", labels=(("node", "collector-0"),)
        ).inc(90)
        registry.counter("fabric_frames_offered").inc(140)
        return registry

    def test_nodes_and_node_views(self):
        fleet = obs.FleetRegistry(self._fleet_fixture())
        assert fleet.nodes() == ["collector-0", "collector-1"]
        assert fleet.node_total("nic_frames_received", "collector-0") == 100
        assert len(fleet.node_snapshot("collector-1")) == 1
        health = fleet.node_health("collector-0")
        assert health.nic_frames_received == 100
        assert health.mem_writes == 90

    def test_unattributed_series_separated(self):
        fleet = obs.FleetRegistry(self._fleet_fixture())
        unattributed = fleet.unattributed_snapshot()
        assert {name for name, _labels in unattributed.samples} == {
            "fabric_frames_offered"
        }

    def test_add_registry_folds_another_registry_in(self):
        fleet = obs.FleetRegistry(self._fleet_fixture())
        meta = _registry()
        meta.counter(
            "nic_frames_received", labels=(("node", "collector-0"),)
        ).inc(1)
        fleet.add_registry(meta)
        assert fleet.node_total("nic_frames_received", "collector-0") == 101

    def test_add_snapshot_folds_a_static_capture_in(self):
        fleet = obs.FleetRegistry(self._fleet_fixture())
        remote = _registry()
        remote.counter(
            "nic_frames_received", labels=(("node", "collector-9"),)
        ).inc(8)
        fleet.add_snapshot(remote.snapshot())
        assert "collector-9" in fleet.nodes()
        assert fleet.node_total("nic_frames_received", "collector-9") == 8

    def test_defaults_to_the_process_registry(self):
        registry = self._fleet_fixture()
        previous = obs.set_registry(registry)
        try:
            assert obs.FleetRegistry().nodes() == [
                "collector-0",
                "collector-1",
            ]
        finally:
            obs.set_registry(previous)

    def test_render_fleet_shape(self):
        snapshot = self._fleet_fixture().snapshot()
        text = obs.render_fleet(snapshot)
        lines = text.splitlines()
        assert lines[0].startswith("== fleet (2 nodes")
        assert any(line.startswith("collector-0") for line in lines)
        assert any(line.startswith("collector-1") for line in lines)
        assert any(line.startswith("(unattributed)") for line in lines)
        assert lines[-1].startswith("(fleet total)")
        # collector-0's row carries its own nic count, not the fleet's.
        row = next(line for line in lines if line.startswith("collector-0"))
        assert " 100 " in f"{row} "

    def test_fleet_rows_are_json_friendly(self):
        rows = obs.fleet_rows(self._fleet_fixture().snapshot())
        assert [row["node"] for row in rows] == ["collector-0", "collector-1"]
        assert rows[0]["nic_frames_received"] == 100
        json.dumps(rows)


class TestSelfTelemetryExporter:
    def test_export_every_must_be_positive(self):
        with pytest.raises(ValueError):
            obs.SelfTelemetryExporter(
                _registry(), obs.EventJournal(), export_every=0
            )

    def test_cadence_merges_skipped_windows(self):
        registry = _registry()
        counter = registry.counter("demo_total")
        exporter = obs.SelfTelemetryExporter(
            registry, obs.EventJournal(), export_every=2
        )
        scraper = obs.MetricsScraper(registry, interval=1)
        exporter.attach(scraper)
        for tick in range(1, 5):
            counter.inc(5)
            scraper.scrape(tick)
        # Scrapes 2 and 4 export; the skipped scrapes' deltas merge in.
        assert exporter.c_exports.value == 2
        assert exporter.local_total("demo_total") == 20
        assert exporter.read_counter("demo_total") == 20

    def test_flush_exports_the_current_window(self):
        registry = _registry()
        registry.counter("demo_total").inc(7)
        exporter = obs.SelfTelemetryExporter(registry, obs.EventJournal())
        assert exporter.read_counter("demo_total") == 0
        exporter.flush(tick=1)
        assert exporter.read_counter("demo_total") == 7

    def test_deltas_group_by_node(self):
        registry = _registry()
        registry.counter("hits", labels=(("node", "collector-0"),)).inc(3)
        registry.counter("hits", labels=(("node", "collector-1"),)).inc(9)
        exporter = obs.SelfTelemetryExporter(registry, obs.EventJournal())
        exporter.flush(tick=1)
        assert exporter.read_counter("hits", node="collector-0") == 3
        assert exporter.read_counter("hits", node="collector-1") == 9
        assert exporter.local_total("hits") == 12

    def test_export_plane_metrics_stay_in_the_meta_registry(self):
        registry = _registry()
        registry.counter("demo_total").inc(3)
        exporter = obs.SelfTelemetryExporter(registry, obs.EventJournal())
        exporter.flush(tick=1)
        exported_names = {name for name, _l in registry.snapshot().samples}
        assert not any(n.startswith("selftel_") for n in exported_names)
        meta_names = {
            name for name, _l in exporter.meta_registry.snapshot().samples
        }
        assert "selftel_exports" in meta_names
        # The telemetry stores' own datapath series landed there too, so
        # the export stream never observes itself ...
        assert any(n.startswith(("nic_", "mem_", "fabric_")) for n in meta_names)
        # ... and a FleetRegistry folds the export plane back into view.
        fleet = obs.FleetRegistry(registry)
        fleet.add_registry(exporter.meta_registry)
        assert fleet.snapshot().total("selftel_exports") == 1

    def test_follow_events_is_incremental(self):
        journal = obs.EventJournal()
        exporter = obs.SelfTelemetryExporter(_registry(), journal)
        journal.record("failover", "one")
        exporter.flush(tick=1)
        assert [e.message for e in exporter.follow_events()] == ["one"]
        journal.record("epoch_bump", "two")
        exporter.flush(tick=2)
        assert [e.message for e in exporter.follow_events()] == ["two"]
        assert exporter.follow_events() == []

    def test_reconcile_exact_over_a_lossless_fabric(self):
        registry = _registry()
        registry.counter("hits", labels=(("node", "n0"),)).inc(42)
        exporter = obs.SelfTelemetryExporter(registry, obs.EventJournal())
        exporter.flush(tick=1)
        report = exporter.reconcile(["hits", "never_exported"])
        assert report["hits"] == {"local": 42, "remote": 42}
        assert report["never_exported"] == {"local": 0, "remote": 0}

    def test_reconcile_bounded_under_impairment(self):
        registry = _registry()
        counter = registry.counter("demo_total")
        exporter = obs.SelfTelemetryExporter(
            registry,
            obs.EventJournal(),
            fabric=ImpairedFabric(InlineFabric(), loss=0.2, seed=11),
        )
        for tick in range(1, 21):
            counter.inc(50)
            exporter.flush(tick=tick)
        report = exporter.reconcile(["demo_total"])["demo_total"]
        assert report["local"] == 1000
        # Loss only ever loses increments: the remote keyspace reads back
        # a lower bound, never an overcount.
        assert report["remote"] is not None
        assert 0 < report["remote"] <= report["local"]


class TestBundles:
    def _engine_fixture(self, registry, journal):
        scraper = obs.MetricsScraper(registry, interval=1)
        engine = obs.SloEngine(scraper, registry)
        engine.add_rule(
            obs.SloRule(
                name="demo-high",
                expr="demo_total",
                comparator=">",
                threshold=5,
                for_ticks=1,
            )
        )
        return scraper, engine

    def test_build_bundle_contents(self):
        registry = _registry()
        journal = obs.EventJournal()
        registry.counter(
            "nic_frames_received", labels=(("node", "collector-0"),)
        ).inc(4)
        journal.advance(17)
        journal.record("failover", "role 0 moved")
        scraper, engine = self._engine_fixture(registry, journal)
        bundle = obs.build_bundle(
            reason="unit", registry=registry, journal=journal, engine=engine
        )
        json.dumps(bundle)  # must be JSON-serialisable as-is
        assert bundle["reason"] == "unit"
        assert bundle["tick"] == 17
        assert bundle["nodes"] == ["collector-0"]
        assert bundle["fleet"][0]["node"] == "collector-0"
        assert bundle["journal"]["events"][0]["kind"] == "failover"
        assert [row["rule"] for row in bundle["alerts"]] == ["demo-high"]
        assert "membership" not in bundle  # no controller wired in

    def test_dump_writes_a_file_and_journals_it(self, tmp_path):
        registry = _registry()
        journal = obs.EventJournal()
        bundler = obs.AutoBundler(tmp_path, registry=registry, journal=journal)
        path = bundler.dump(reason="on-demand", tick=3)
        assert pathlib.Path(path).name == "bundle-0000-on-demand.json"
        bundle = json.loads(pathlib.Path(path).read_text())
        assert bundle["reason"] == "on-demand"
        events = journal.events(kind="bundle")
        assert len(events) == 1 and events[0].attr("path") == path

    def test_firing_alert_auto_dumps_once(self, tmp_path):
        registry = _registry()
        journal = obs.EventJournal()
        counter = registry.counter("demo_total")
        scraper, engine = self._engine_fixture(registry, journal)
        bundler = obs.AutoBundler(
            tmp_path, registry=registry, journal=journal
        ).install(engine)
        engine.evaluate(1)  # ok
        counter.inc(10)
        engine.evaluate(2)  # pending
        engine.evaluate(3)  # firing -> hook -> dump
        engine.evaluate(4)  # still firing: no second dump
        assert len(bundler.paths) == 1
        bundle = json.loads(pathlib.Path(bundler.paths[0]).read_text())
        assert bundle["reason"] == "alert:demo-high"
        alert = next(
            row for row in bundle["alerts"] if row["rule"] == "demo-high"
        )
        assert alert["state"] == "firing"
        assert alert["transitions"][-1]["state"] == "firing"

    def test_max_bundles_caps_automatic_dumps_only(self, tmp_path):
        registry = _registry()
        journal = obs.EventJournal()
        scraper, engine = self._engine_fixture(registry, journal)
        bundler = obs.AutoBundler(
            tmp_path, registry=registry, journal=journal, max_bundles=1
        ).install(engine)
        bundler._on_fire(engine.alert("demo-high"), 1)
        bundler._on_fire(engine.alert("demo-high"), 2)
        assert len(bundler.paths) == 1  # the cap held
        bundler.dump(reason="manual", tick=3)  # manual dumps always write
        assert len(bundler.paths) == 2


class TestFleetE2E:
    def test_failover_under_impairment_produces_a_postmortem(self, tmp_path):
        """The PR's acceptance scenario, end to end.

        A collector dies under an impaired fabric; the controller fails
        over; an SLO rule watching the failover counter fires; the firing
        alert auto-dumps a bundle whose journal tail tells the story
        (probe failure, then plan apply, with an epoch bump); and the
        exported counter deltas read back one-sided from the telemetry
        keyspace reconcile with the local registry within the loss bound.
        """
        registry = obs.MetricsRegistry(enabled=True)
        journal = obs.EventJournal()
        previous_registry = obs.set_registry(registry)
        previous_journal = obs.set_journal(journal)
        try:
            tree = FatTreeTopology(k=4)
            config = DartConfig(num_collectors=2, slots_per_collector=1 << 10)
            net = PacketLevelIntNetwork(
                tree,
                config,
                fabric=ImpairedFabric(InlineFabric(), loss=0.05, seed=7),
                num_standbys=2,
            )
            # Probes ride the impaired fabric too: fail_after=3 keeps a
            # lost-probe streak on a healthy node from reading as death.
            controller = net.enable_control(fail_after=3, tick_interval=25)
            scraper = obs.MetricsScraper(registry, interval=50)
            net.scraper = scraper
            engine = obs.SloEngine(scraper, registry)
            engine.add_rule(
                obs.SloRule(
                    name="failover-detected",
                    expr="controller_failovers_total",
                    comparator=">",
                    threshold=0,
                    for_ticks=1,
                    description="a collector role moved hosts",
                )
            )
            bundler = obs.AutoBundler(
                tmp_path,
                registry=registry,
                journal=journal,
                engine=engine,
                controller=controller,
            ).install(engine)
            # The telemetry plane rides the same loss regime as the data
            # plane: its fabric is impaired too.
            exporter = obs.SelfTelemetryExporter(
                registry,
                journal,
                fabric=ImpairedFabric(InlineFabric(), loss=0.05, seed=13),
                export_every=1,
            ).attach(scraper)
            scraper.add_observer(lambda tick, _snapshot: engine.evaluate(tick))

            flows = FlowGenerator(
                tree.num_hosts, host_ip=tree.host_ip, seed=3
            ).uniform(600)
            victim = 0
            for index, flow in enumerate(flows):
                if index == 200:
                    net.kill_collector(victim)
                net.send(flow)

            # The failover happened and the SLO saw it.
            assert controller.events, "expected at least one failover"
            alert = engine.alert("failover-detected")
            assert alert.state.value == "firing"

            # The firing alert auto-dumped a postmortem bundle.
            assert bundler.paths, "firing alert must dump a bundle"
            bundle = json.loads(pathlib.Path(bundler.paths[0]).read_text())
            assert bundle["reason"] == "alert:failover-detected"
            fired = next(
                row
                for row in bundle["alerts"]
                if row["rule"] == "failover-detected"
            )
            assert fired["state"] == "firing"

            # The journal tail in the bundle tells the failover story,
            # in causal order: symptom before remedy.
            first_seq = {}
            for event in bundle["journal"]["events"]:
                first_seq.setdefault(event["kind"], event["seq"])
            assert {"probe_failure", "plan_apply", "epoch_bump"} <= set(
                first_seq
            )
            assert first_seq["probe_failure"] < first_seq["plan_apply"]

            # Membership history made it in: the epoch advanced and the
            # victim's failover is on record.
            assert bundle["membership"]["epoch"] >= 1
            assert any(
                row["failed_node"] == victim
                for row in bundle["membership"]["failovers"]
            )
            assert any(
                node.startswith("collector-") for node in bundle["nodes"]
            )

            # Counter deltas are readable both locally and one-sided from
            # the telemetry keyspace, reconciling within the loss bound.
            exporter.flush(tick=net.packets_sent)
            report = exporter.reconcile(
                ["nic_frames_received", "controller_failovers_total"]
            )
            nic = report["nic_frames_received"]
            assert nic["local"] > 0
            assert nic["remote"] is not None
            assert nic["remote"] <= nic["local"]
            assert nic["remote"] >= int(nic["local"] * 0.7)
            failovers = report["controller_failovers_total"]
            assert failovers["local"] == len(controller.events)

            # And the flight recorder itself is tailable over the wire.
            remote_events = exporter.follow_events()
            assert remote_events
            from repro.obs.journal import KNOWN_KINDS

            assert {e.kind for e in remote_events} <= set(KNOWN_KINDS)
        finally:
            obs.set_registry(previous_registry)
            obs.set_journal(previous_journal)


class TestBundleTraces:
    def test_bundle_embeds_kept_traces_and_critical_paths(self):
        registry = _registry()
        tracer = obs.Tracer()
        previous = obs.set_tracer(tracer)
        try:
            trace_id = tracer.begin("append", key="doomed")
            tracer.span(trace_id, "append.reserve")
            tracer.span(trace_id, "append.reserve.retry", status="retry")
            tracer.end(trace_id)
            bundle = obs.build_bundle(
                reason="unit", registry=registry, journal=obs.EventJournal()
            )
            json.dumps(bundle)  # must stay JSON-serialisable
            traces = bundle["traces"]
            assert traces["kept"] == 1
            assert traces["sealed"] == 1
            rows = traces["records"]
            assert rows[0]["trace_id"] == trace_id
            assert "status:retry" in rows[0]["keep_reasons"]
            summary = traces["critical_paths"][0]
            assert summary["trace_id"] == trace_id
            assert summary["complete"] is True
        finally:
            obs.set_tracer(previous)

    def test_bundle_omits_traces_section_when_nothing_kept(self):
        registry = _registry()
        tracer = obs.Tracer()
        previous = obs.set_tracer(tracer)
        try:
            clean = tracer.begin("report")
            tracer.end(clean)
            bundle = obs.build_bundle(
                reason="unit", registry=registry, journal=obs.EventJournal()
            )
            assert "traces" not in bundle
        finally:
            obs.set_tracer(previous)
