"""Tests for the coding-theory slot variants (repro.core.coding)."""

import numpy as np
import pytest

from repro.core.coding import CodedSpec, coding_comparison_rows, simulate_coded
from repro.core.policies import ReturnPolicy
from repro.core.simulator import SimulationSpec, simulate


def spec(**kwargs):
    defaults = dict(num_keys=1 << 14, num_slots=1 << 13, checksum_bits=8)
    defaults.update(kwargs)
    return SimulationSpec(**defaults)


class TestBaselineConsistency:
    def test_baseline_matches_plain_simulator(self):
        """With both options off, coded simulation == plain simulation."""
        base = spec(seed=3)
        plain = simulate(base)
        coded = simulate_coded(CodedSpec(base=base))
        assert np.array_equal(plain.correct, coded.correct)
        assert np.array_equal(plain.answered, coded.answered)

    def test_label(self):
        base = spec()
        assert CodedSpec(base).label == "baseline"
        assert CodedSpec(base, per_location_checksums=True).label == (
            "per-location checksums"
        )
        assert (
            CodedSpec(base, per_location_checksums=True, xor_masking=True).label
            == "per-location checksums + XOR masking"
        )


class TestMechanisms:
    """At tiny table sizes, the same wrong key routinely occupies several
    of a query key's slots, so the correlated-error modes the section-4
    tricks target become measurable."""

    TINY = dict(num_keys=4096, num_slots=8, checksum_bits=2, redundancy=2)

    def test_xor_masking_kills_duplicated_wrong_answers(self):
        """Masking turns agreeing wrong values into disagreeing garbage, so
        plurality errors drop (converted to empty returns)."""
        base = SimulationSpec(policy=ReturnPolicy.PLURALITY, **self.TINY)
        baseline = simulate_coded(CodedSpec(base))
        masked = simulate_coded(CodedSpec(base, xor_masking=True))
        assert baseline.error_rate > 0  # the mode exists at this scale
        assert masked.error_rate < baseline.error_rate
        assert masked.empty_rate >= baseline.empty_rate

    def test_masking_helps_consensus_most(self):
        """Consensus-2 errors *require* duplicated wrong values; masking
        eliminates them entirely."""
        base = SimulationSpec(policy=ReturnPolicy.CONSENSUS_2, **self.TINY)
        baseline = simulate_coded(CodedSpec(base))
        masked = simulate_coded(CodedSpec(base, xor_masking=True))
        assert baseline.error_rate > 0
        assert masked.error_rate == 0.0

    def test_per_location_checksums_decorrelate(self):
        """A wrong key occupying two slots must now win two independent
        checksum draws (2^-2b not 2^-b) to agree twice."""
        base = SimulationSpec(policy=ReturnPolicy.CONSENSUS_2, **self.TINY)
        shared = simulate_coded(CodedSpec(base))
        independent = simulate_coded(
            CodedSpec(base, per_location_checksums=True)
        )
        assert shared.error_rate > 0
        assert independent.error_rate < shared.error_rate

    def test_correctness_not_harmed(self):
        """The tricks change error/empty trade only; correct answers for
        surviving keys are preserved at normal scales."""
        base = spec(num_keys=1 << 12, num_slots=1 << 13, seed=1)
        plain = simulate_coded(CodedSpec(base)).success_rate
        for per_location in (False, True):
            for masking in (False, True):
                coded = simulate_coded(
                    CodedSpec(
                        base,
                        per_location_checksums=per_location,
                        xor_masking=masking,
                    )
                )
                assert coded.success_rate == pytest.approx(plain, abs=0.01)


class TestRealisticScales:
    def test_n2_errors_dominated_by_single_fake_matches(self):
        """The honest finding reported in EXPERIMENTS.md: at N=2 and
        realistic table sizes the dominant error is a single fake match,
        which neither trick addresses -- rates stay within noise."""
        rows = coding_comparison_rows(
            load=2.0, checksum_bits=8, num_slots=1 << 15
        )
        baseline = next(r for r in rows if r["variant"] == "baseline")
        for row in rows:
            assert row["error_rate"] == pytest.approx(
                baseline["error_rate"], abs=baseline["error_rate"] * 0.5 + 1e-4
            )

    def test_comparison_rows_structure(self):
        rows = coding_comparison_rows(num_slots=1 << 12, load=1.0)
        assert len(rows) == 4
        assert {r["variant"] for r in rows} == {
            "baseline",
            "XOR masking",
            "per-location checksums",
            "per-location checksums + XOR masking",
        }
        for row in rows:
            total = row["success_rate"] + row["empty_rate"] + row["error_rate"]
            assert total == pytest.approx(1.0)
