"""Atomic ACKs and the vectorised FETCH_ADD batch path in the RNIC."""

import numpy as np
import pytest

from repro.mem.region import MemoryRegion, RegionAccessError
from repro.rdma.frames import FrameBatch
from repro.rdma.nic import RdmaNic
from repro.rdma.packets import AtomicEth, Bth, Opcode, RoceV2Packet
from repro.rdma.qp import PsnPolicy, QueuePair


def _nic(qp_number=0x11, respond_atomics=False, policy=PsnPolicy.RESYNC_ON_GAP):
    region = MemoryRegion(size=256, base_address=0x10000, rkey=0x42)
    nic = RdmaNic(region)
    nic.create_queue_pair(
        QueuePair(
            qp_number=qp_number, policy=policy, respond_atomics=respond_atomics
        )
    )
    return nic, region


def _fetch_add(va, amount, psn, dest_qp=0x11, rkey=0x42):
    return RoceV2Packet(
        bth=Bth(opcode=int(Opcode.RC_FETCH_ADD), dest_qp=dest_qp, psn=psn),
        atomic_eth=AtomicEth(virtual_address=va, rkey=rkey, swap_add=amount),
    ).pack()


class TestAtomicAcknowledge:
    def test_ack_carries_original_value(self):
        nic, region = _nic(respond_atomics=True)
        region.dma_write(0x10000, (7).to_bytes(8, "big"))
        assert nic.receive_frame(_fetch_add(0x10000, 5, psn=0))
        responses = nic.transmit()
        assert len(responses) == 1
        ack = RoceV2Packet.unpack(responses[0])
        assert ack.bth.opcode == int(Opcode.RC_ATOMIC_ACKNOWLEDGE)
        assert ack.bth.psn == 0  # echoes the request PSN
        assert ack.bth.dest_qp == 0x11  # back to the requester QP
        assert int.from_bytes(ack.payload[:8], "big") == 7  # pre-add value
        assert int.from_bytes(region.dma_read(0x10000, 8), "big") == 12

    def test_acks_are_opt_in(self):
        """Legacy QPs (respond_atomics=False) stay silent."""
        nic, _ = _nic(respond_atomics=False)
        assert nic.receive_frame(_fetch_add(0x10000, 5, psn=0))
        assert nic.transmit() == []

    def test_duplicate_fetch_add_not_reexecuted_or_reacked(self):
        """RESYNC_ON_GAP dedup: a duplicated reservation cannot double-add."""
        nic, region = _nic(respond_atomics=True)
        frame = _fetch_add(0x10000, 5, psn=0)
        assert nic.receive_frame(frame)
        assert not nic.receive_frame(frame)  # exact duplicate PSN dropped
        assert int.from_bytes(region.dma_read(0x10000, 8), "big") == 5
        assert len(nic.transmit()) == 1


class TestVectorisedFetchAdds:
    def _batch(self, operations, dest_qp=0x11):
        frames = np.stack(
            [
                np.frombuffer(
                    _fetch_add(va, amount, psn, dest_qp=dest_qp), dtype=np.uint8
                )
                for psn, (va, amount) in enumerate(operations)
            ]
        )
        return FrameBatch(frames, np.zeros(len(operations), dtype=np.int64))

    def test_batch_matches_scalar_ingest(self):
        operations = [(0x10000 + 8 * (i % 4), 1 + i) for i in range(12)]
        batch_nic, batch_region = _nic()
        scalar_nic, scalar_region = _nic()
        assert batch_nic.ingest_batch(self._batch(operations)) == 12
        for psn, (va, amount) in enumerate(operations):
            scalar_nic.receive_frame(_fetch_add(va, amount, psn))
        assert batch_region.read_offset(0, 64) == scalar_region.read_offset(0, 64)
        assert batch_nic.counters.atomics_executed == 12
        assert batch_region.atomic_count == scalar_region.atomic_count

    def test_batch_falls_back_to_scalar_for_acking_qps(self):
        """Responding QPs still get their ACKs when frames arrive batched."""
        nic, region = _nic(respond_atomics=True)
        operations = [(0x10000, 3), (0x10008, 4)]
        assert nic.ingest_batch(self._batch(operations)) == 2
        acks = [RoceV2Packet.unpack(f) for f in nic.transmit()]
        assert [a.bth.psn for a in acks] == [0, 1]
        assert int.from_bytes(region.dma_read(0x10000, 8), "big") == 3


class TestDmaFetchAddMany:
    def test_duplicates_accumulate_in_order(self):
        region = MemoryRegion(size=64, base_address=0, rkey=0x1)
        addresses = np.array([0, 8, 0, 0], dtype=np.uint64)
        addends = np.array([7, 2, 1, 3], dtype=np.uint64)
        region.dma_fetch_add_many(addresses, addends, rkey=0x1)
        cells = np.frombuffer(region.read_offset(0, 16), dtype=">u8")
        assert cells.tolist() == [11, 2]
        assert region.atomic_count == 4

    def test_wraps_modulo_2_64(self):
        region = MemoryRegion(size=8, base_address=0, rkey=0x1)
        region.dma_write(0, (2**64 - 1).to_bytes(8, "big"))
        region.dma_fetch_add_many(
            np.array([0], dtype=np.uint64), np.array([2], dtype=np.uint64)
        )
        assert int.from_bytes(region.dma_read(0, 8), "big") == 1

    def test_whole_batch_validated_before_any_write(self):
        region = MemoryRegion(size=16, base_address=0, rkey=0x1)
        with pytest.raises(RegionAccessError):
            region.dma_fetch_add_many(
                np.array([0, 999], dtype=np.uint64),  # second is out of bounds
                np.array([1, 1], dtype=np.uint64),
            )
        assert region.dma_read(0, 8) == b"\x00" * 8  # nothing landed
        with pytest.raises(RegionAccessError):
            region.dma_fetch_add_many(
                np.array([4], dtype=np.uint64),  # misaligned
                np.array([1], dtype=np.uint64),
            )
        with pytest.raises(RegionAccessError):
            region.dma_fetch_add_many(
                np.array([0], dtype=np.uint64),
                np.array([1], dtype=np.uint64),
                rkey=0xBAD,
            )
