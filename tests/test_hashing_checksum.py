"""Tests for b-bit key checksums (repro.hashing.checksum)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.checksum import KeyChecksum
from repro.hashing.hash_family import HashFamily


class TestKeyChecksum:
    @pytest.mark.parametrize("bits", [1, 8, 16, 32, 64])
    def test_fits_width(self, bits):
        checksum = KeyChecksum(bits=bits)
        for key in (b"a", b"b", 12345, ("flow", 80)):
            assert 0 <= checksum.compute(key) < (1 << bits)

    @pytest.mark.parametrize("bits", [0, 65, -3])
    def test_invalid_width_rejected(self, bits):
        with pytest.raises(ValueError):
            KeyChecksum(bits=bits)

    def test_nbytes(self):
        assert KeyChecksum(bits=32).nbytes == 4
        assert KeyChecksum(bits=16).nbytes == 2
        assert KeyChecksum(bits=12).nbytes == 2
        assert KeyChecksum(bits=8).nbytes == 1

    def test_global_agreement(self):
        """Switches and queriers with the same config agree on checksums."""
        a = KeyChecksum(bits=32, family=HashFamily(seed=9))
        b = KeyChecksum(bits=32, family=HashFamily(seed=9))
        assert a.compute(b"flow-5-tuple") == b.compute(b"flow-5-tuple")
        assert a == b

    def test_different_family_seeds_differ(self):
        a = KeyChecksum(bits=32, family=HashFamily(seed=1))
        b = KeyChecksum(bits=32, family=HashFamily(seed=2))
        assert a.compute(b"key") != b.compute(b"key")
        assert a != b

    def test_matches(self):
        checksum = KeyChecksum(bits=16)
        stored = checksum.compute(b"key")
        assert checksum.matches(b"key", stored)
        assert not checksum.matches(b"other", stored)

    def test_collision_probability(self):
        assert KeyChecksum(bits=32).collision_probability() == 2.0**-32
        assert KeyChecksum(bits=1).collision_probability() == 0.5

    @given(bits=st.integers(min_value=1, max_value=64), key=st.binary(max_size=16))
    def test_deterministic(self, bits, key):
        checksum = KeyChecksum(bits=bits)
        assert checksum.compute(key) == checksum.compute(key)

    def test_uniformity_8bit(self):
        """Paper section 4 assumes uniform checksums; verify empirically."""
        checksum = KeyChecksum(bits=8)
        counts = np.bincount(
            [checksum.compute(i) for i in range(51200)], minlength=256
        )
        expected = 51200 / 256
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # 99.9th percentile of chi2(255) is ~330.
        assert chi2 < 360

    def test_vectorised_matches_distributional_width(self):
        checksum = KeyChecksum(bits=16)
        keys = np.arange(4096, dtype=np.uint64)
        values = checksum.compute_array(keys)
        assert values.dtype == np.uint64
        assert int(values.max()) < (1 << 16)

    def test_independent_of_slot_addressing(self):
        """Checksum must not correlate with slot index hashes (index 0..N)."""
        family = HashFamily(seed=4)
        checksum = KeyChecksum(bits=32, family=family)
        collisions = 0
        for i in range(2000):
            key = ("flow", i)
            if checksum.compute(key) == family.hash_key(key, 0) & 0xFFFFFFFF:
                collisions += 1
        assert collisions <= 2  # would be ~2000 if they were the same function
