"""Tests for the CRC substrate (repro.hashing.crc)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.crc import (
    CRC8,
    CRC16_CCITT,
    CRC32,
    CRC32C,
    CrcAlgorithm,
    crc8,
    crc16,
    crc32,
    crc32c,
)

ALGORITHMS = [CRC8, CRC16_CCITT, CRC32, CRC32C]


@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
def test_catalogue_check_values(algorithm):
    """Every algorithm reproduces its published '123456789' check value."""
    assert algorithm.verify()


def test_crc32_known_vectors():
    # Classic zlib-compatible vectors.
    assert crc32(b"") == 0x00000000
    assert crc32(b"a") == 0xE8B7BE43
    assert crc32(b"abc") == 0x352441C2
    assert crc32(b"hello world") == 0x0D4A1185


def test_crc32c_known_vectors():
    assert crc32c(b"") == 0x00000000
    assert crc32c(b"a") == 0xC1D04330
    # RFC 3720 iSCSI test vector: 32 bytes of zeros.
    assert crc32c(b"\x00" * 32) == 0x8A9136AA


def test_crc16_and_crc8_empty():
    assert crc16(b"") == 0xFFFF  # CCITT-FALSE init value, no data
    assert crc8(b"") == 0x00


@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
@given(prefix=st.binary(max_size=64), suffix=st.binary(max_size=64))
def test_incremental_computation_matches_one_shot(algorithm, prefix, suffix):
    """compute(a + b) == compute(b, initial=compute(a))."""
    one_shot = algorithm.compute(prefix + suffix)
    incremental = algorithm.compute(suffix, initial=algorithm.compute(prefix))
    assert one_shot == incremental


@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
@given(data=st.binary(min_size=1, max_size=128))
def test_result_fits_width(algorithm, data):
    assert 0 <= algorithm.compute(data) < (1 << algorithm.width)


@given(data=st.binary(min_size=1, max_size=64), flip=st.integers(min_value=0))
def test_crc32_detects_single_bit_flips(data, flip):
    """Any single-bit corruption changes the CRC (guaranteed for CRC-32)."""
    bit = flip % (len(data) * 8)
    corrupted = bytearray(data)
    corrupted[bit // 8] ^= 1 << (bit % 8)
    assert crc32(bytes(corrupted)) != crc32(data)


def test_invalid_width_rejected():
    with pytest.raises(ValueError):
        CrcAlgorithm(
            name="bad",
            width=4,
            poly=0x3,
            init=0,
            reflect_in=False,
            reflect_out=False,
            xor_out=0,
            check=0,
        )
