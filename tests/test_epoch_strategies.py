"""Tests for the section-5.2.1 epoch-strategy experiment."""

import math

import pytest

from repro.experiments.epoch_strategies import (
    continuous_age_curve,
    rotated_age_curve,
    strategy_rows,
)


class TestCurves:
    def test_continuous_decays_with_age(self):
        curve = continuous_age_curve(100_000, 1 << 15, buckets=5)
        assert curve[0] < curve[-1]

    def test_rotated_is_age_uniform_with_archive(self):
        """Archived epochs freeze survival: old keys are as retrievable as
        the epoch they lived in allowed, forever."""
        curve = rotated_age_curve(
            200_000, 1 << 16, epoch_keys=25_000, buckets=8, with_archive=True
        )
        spread = max(curve) - min(curve)
        assert spread < 0.05

    def test_no_archive_loses_old_epochs(self):
        curve = rotated_age_curve(
            200_000, 1 << 16, epoch_keys=25_000, buckets=8, with_archive=False
        )
        assert curve[0] == 0.0  # oldest epochs cleared from DRAM
        assert curve[-1] > 0.5  # recent epochs still live

    def test_partial_current_epoch_handled(self):
        curve = rotated_age_curve(
            110_000, 1 << 16, epoch_keys=25_000, buckets=11
        )
        assert not any(math.isnan(v) for v in curve)
        assert curve[-1] > 0.9  # freshest keys barely aged

    def test_epoch_keys_validated(self):
        with pytest.raises(ValueError):
            rotated_age_curve(100, 64, epoch_keys=0, buckets=2)


class TestStrategyRows:
    def test_the_section_521_trade(self):
        rows = strategy_rows(
            num_keys=200_000, num_slots=1 << 16, epoch_keys=25_000, buckets=8
        )
        mean = rows[-1]
        assert mean["age_bucket"] == "MEAN"
        # Rotation + archive dominates on average at this history depth...
        assert mean["rotate_archive"] > mean["continuous"]
        assert mean["rotate_archive"] > mean["rotate_no_archive"]
        # ...but continuous wins for the very freshest keys (it has twice
        # the live slots).
        freshest = rows[-2]
        assert freshest["continuous"] > freshest["rotate_archive"]
        # And continuous loses old data almost entirely.
        oldest = rows[0]
        assert oldest["continuous"] < 0.1
        assert oldest["rotate_archive"] > 0.5
