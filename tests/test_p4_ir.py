"""Tests for the P4 IR: types, expressions, parser, controls, deparser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.switch.externs import RegisterArray
from repro.switch.p4.actions import (
    Action,
    BuildPayload,
    Drop,
    RegisterReadIncrement,
    SetField,
    SetMeta,
    SetValid,
)
from repro.switch.p4.control import Apply, Control, ControlError, IfValid, Run
from repro.switch.p4.deparser import Deparser
from repro.switch.p4.expr import (
    BinOp,
    ChecksumOf,
    Const,
    ExternBindings,
    Field,
    HashOf,
    Meta,
    Param,
    as_expr,
)
from repro.switch.p4.parser import (
    ExtractFixed,
    ExtractRest,
    ExtractVar,
    P4Parser,
    ParserError,
    ParserState,
)
from repro.switch.p4.types import Header, HeaderType, Phv
from repro.switch.pipeline import MatchActionTable, MatchKind, TableEntry
from repro.hashing.checksum import KeyChecksum
from repro.hashing.hash_family import HashFamily

SIMPLE = HeaderType("simple", (("a", 8), ("b", 16), ("c", 8)))
ODD = HeaderType("odd", (("x", 4), ("y", 12)))


def make_externs(registers=None):
    return ExternBindings(
        hash_family=HashFamily(seed=1),
        key_checksum=KeyChecksum(bits=16, family=HashFamily(seed=1)),
        registers=registers or {},
    )


class TestHeaderTypes:
    def test_sizes(self):
        assert SIMPLE.total_bits == 32
        assert SIMPLE.total_bytes == 4
        assert ODD.total_bytes == 2

    def test_non_byte_aligned_rejected(self):
        with pytest.raises(ValueError, match="byte-aligned"):
            HeaderType("bad", (("x", 7),))

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            HeaderType("bad", (("x", 8), ("x", 8)))

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            HeaderType("bad", (("x", 0), ("y", 8)))

    def test_field_bits_lookup(self):
        assert SIMPLE.field_bits("b") == 16
        with pytest.raises(KeyError):
            SIMPLE.field_bits("zz")


class TestHeaderInstances:
    def test_pack_unpack_roundtrip(self):
        header = Header(SIMPLE)
        header.set("a", 0x12)
        header.set("b", 0x3456)
        header.set("c", 0x78)
        assert header.pack() == b"\x12\x34\x56\x78"
        other = Header(SIMPLE)
        other.unpack(b"\x12\x34\x56\x78")
        assert other.get("b") == 0x3456
        assert other.valid

    def test_sub_byte_fields(self):
        header = Header(ODD)
        header.set("x", 0xA)
        header.set("y", 0xBCD)
        assert header.pack() == b"\xab\xcd"

    def test_set_masks_to_width(self):
        header = Header(SIMPLE)
        header.set("a", 0x1FF)
        assert header.get("a") == 0xFF

    def test_unpack_truncated(self):
        with pytest.raises(ValueError):
            Header(SIMPLE).unpack(b"\x00")

    def test_unknown_field(self):
        with pytest.raises(KeyError):
            Header(SIMPLE).get("zz")

    @given(a=st.integers(0, 255), b=st.integers(0, 65535), c=st.integers(0, 255))
    def test_roundtrip_property(self, a, b, c):
        header = Header(SIMPLE)
        header.set("a", a)
        header.set("b", b)
        header.set("c", c)
        decoded = Header(SIMPLE)
        decoded.unpack(header.pack())
        assert (decoded.get("a"), decoded.get("b"), decoded.get("c")) == (a, b, c)


class TestExpressions:
    def phv(self):
        phv = Phv([SIMPLE])
        phv.header("simple").set("b", 40)
        phv.set_meta("m", 7)
        phv.blobs["key"] = b"the-key"
        return phv

    def test_const_meta_field(self):
        phv = self.phv()
        externs = make_externs()
        assert Const(5).evaluate(phv, externs, {}) == 5
        assert Meta("m").evaluate(phv, externs, {}) == 7
        assert Field("simple", "b").evaluate(phv, externs, {}) == 40

    def test_param(self):
        phv = self.phv()
        assert Param("p").evaluate(phv, make_externs(), {"p": 9}) == 9
        with pytest.raises(KeyError):
            Param("q").evaluate(phv, make_externs(), {})

    @pytest.mark.parametrize(
        "op,expected",
        [("+", 47), ("-", 33), ("*", 280), ("%", 5), ("&", 0), ("|", 47),
         ("^", 47), ("<<", 5120), (">>", 0)],
    )
    def test_binop(self, op, expected):
        phv = self.phv()
        expr = BinOp(op, Meta("m") if op == ">>" else Field("simple", "b"),
                     Meta("m"))
        if op == ">>":
            expr = BinOp(op, Meta("m"), Const(7))
            expected = 0
        assert expr.evaluate(phv, make_externs(), {}) == expected

    def test_binop_unknown_op(self):
        with pytest.raises(ValueError):
            BinOp("//", Const(1), Const(2))

    def test_hash_matches_family(self):
        phv = self.phv()
        externs = make_externs()
        value = HashOf("key", Const(3), Const(97)).evaluate(phv, externs, {})
        assert value == HashFamily(seed=1).hash_key_mod(b"the-key", 3, 97)

    def test_checksum_matches(self):
        phv = self.phv()
        externs = make_externs()
        value = ChecksumOf("key").evaluate(phv, externs, {})
        assert value == KeyChecksum(16, HashFamily(seed=1)).compute(b"the-key")

    def test_missing_blob(self):
        phv = Phv([SIMPLE])
        with pytest.raises(KeyError):
            HashOf("key", Const(0), Const(10)).evaluate(phv, make_externs(), {})

    def test_as_expr(self):
        assert as_expr(5) == Const(5)
        assert as_expr(Const(5)) == Const(5)
        with pytest.raises(TypeError):
            as_expr("x")


class TestParser:
    def make_parser(self):
        ethertype = HeaderType("outer", (("kind", 8), ("key_length", 8)))
        return P4Parser(
            header_types=[ethertype, SIMPLE],
            states=[
                ParserState(
                    name="start",
                    extractions=(ExtractFixed("outer"),),
                    select=("outer", "kind"),
                    transitions=((1, "parse_simple"), (2, "parse_blob")),
                    default="reject",
                ),
                ParserState(
                    name="parse_simple",
                    extractions=(ExtractFixed("simple"), ExtractRest("")),
                ),
                ParserState(
                    name="parse_blob",
                    extractions=(
                        ExtractVar("key", length_from=("outer", "key_length")),
                        ExtractRest("value"),
                    ),
                ),
            ],
            start="start",
        )

    def test_fixed_path(self):
        phv = self.make_parser().parse(b"\x01\x00" + b"\xaa\xbb\xcc\xdd" + b"rest")
        assert phv.header("simple").valid
        assert phv.header("simple").get("b") == 0xBBCC
        assert phv.payload == b"rest"

    def test_varbit_path(self):
        phv = self.make_parser().parse(b"\x02\x03" + b"KEY" + b"VALUE")
        assert phv.blobs["key"] == b"KEY"
        assert phv.blobs["value"] == b"VALUE"
        assert not phv.header("simple").valid

    def test_reject_path(self):
        with pytest.raises(ParserError, match="rejected"):
            self.make_parser().parse(b"\x09\x00")

    def test_truncated_fixed(self):
        with pytest.raises(ParserError, match="truncated"):
            self.make_parser().parse(b"\x01\x00\xaa")

    def test_truncated_varbit(self):
        with pytest.raises(ParserError, match="truncated"):
            self.make_parser().parse(b"\x02\x09" + b"abc")

    def test_duplicate_states_rejected(self):
        state = ParserState(name="s")
        with pytest.raises(ValueError):
            P4Parser([SIMPLE], [state, state], start="s")

    def test_unknown_start_rejected(self):
        with pytest.raises(ValueError):
            P4Parser([SIMPLE], [ParserState(name="s")], start="t")

    def test_unknown_transition_target(self):
        parser = P4Parser(
            [SIMPLE],
            [ParserState(name="s", default="nowhere")],
            start="s",
        )
        with pytest.raises(ParserError, match="unknown state"):
            parser.parse(b"")


class TestActionsAndControl:
    def test_set_field_and_meta(self):
        phv = Phv([SIMPLE])
        action = Action(
            "a",
            primitives=(
                SetField("simple", "b", Const(0x1234)),
                SetMeta("out", BinOp("+", Field("simple", "b"), Const(1))),
            ),
        )
        action.execute(phv, make_externs(), {})
        assert phv.header("simple").get("b") == 0x1234
        assert phv.get_meta("out") == 0x1235

    def test_set_valid(self):
        phv = Phv([SIMPLE])
        Action("a", primitives=(SetValid("simple"),)).execute(
            phv, make_externs(), {}
        )
        assert phv.header("simple").valid

    def test_missing_param_rejected(self):
        action = Action("a", parameters=("x",), primitives=())
        with pytest.raises(ValueError, match="missing arguments"):
            action.execute(Phv([SIMPLE]), make_externs(), {})

    def test_register_read_increment(self):
        regs = RegisterArray(size=4, width_bits=32, name="ctr")
        externs = make_externs({"ctr": regs})
        phv = Phv([SIMPLE])
        phv.set_meta("idx", 2)
        primitive = RegisterReadIncrement("ctr", Meta("idx"), "psn")
        primitive.execute(phv, externs, {})
        primitive.execute(phv, externs, {})
        assert phv.get_meta("psn") == 1
        assert regs.read(2) == 2

    def test_build_payload(self):
        phv = Phv([SIMPLE])
        phv.set_meta("ck", 0xABCD)
        phv.blobs["value"] = b"xyz"
        BuildPayload(
            parts=((Meta("ck"), 2),), blob="value", pad_to=8
        ).execute(phv, make_externs(), {})
        assert phv.payload == b"\xab\xcdxyz\x00\x00\x00"

    def test_build_payload_overflow(self):
        phv = Phv([SIMPLE])
        phv.blobs["value"] = b"0123456789"
        with pytest.raises(ValueError, match="exceeds"):
            BuildPayload(parts=(), blob="value", pad_to=4).execute(
                phv, make_externs(), {}
            )

    def test_drop_stops_control(self):
        phv = Phv([SIMPLE])
        control = Control(
            "c",
            statements=(
                Run(Action("d", primitives=(Drop(),))),
                Run(Action("late", primitives=(SetMeta("x", Const(1)),))),
            ),
        )
        control.execute(phv, make_externs())
        assert phv.dropped
        assert "x" not in phv.metadata

    def test_table_apply_hit_and_miss(self):
        table = MatchActionTable("t", [MatchKind.EXACT], max_entries=4)
        table.add_entry(
            TableEntry(match=(5,), action="set_b", params={"v": 77})
        )
        apply = Apply(
            table=table,
            keys=(Meta("k"),),
            actions={
                "set_b": Action(
                    "set_b",
                    parameters=("v",),
                    primitives=(SetField("simple", "b", Param("v")),),
                )
            },
        )
        phv = Phv([SIMPLE])
        phv.set_meta("k", 5)
        apply.execute(phv, make_externs())
        assert phv.header("simple").get("b") == 77
        # Miss: no default -> no-op.
        phv.set_meta("k", 6)
        phv.header("simple").set("b", 1)
        apply.execute(phv, make_externs())
        assert phv.header("simple").get("b") == 1

    def test_table_unknown_action_rejected(self):
        table = MatchActionTable("t", [MatchKind.EXACT], max_entries=4)
        table.add_entry(TableEntry(match=(1,), action="ghost"))
        apply = Apply(table=table, keys=(Meta("k"),), actions={})
        phv = Phv([SIMPLE])
        phv.set_meta("k", 1)
        with pytest.raises(ControlError, match="unknown action"):
            apply.execute(phv, make_externs())

    def test_if_valid_branches(self):
        phv = Phv([SIMPLE])
        statement = IfValid(
            "simple",
            then=(Run(Action("t", primitives=(SetMeta("hit", Const(1)),))),),
            otherwise=(Run(Action("e", primitives=(SetMeta("hit", Const(0)),))),),
        )
        statement.execute(phv, make_externs())
        assert phv.get_meta("hit") == 0
        phv.header("simple").valid = True
        statement.execute(phv, make_externs())
        assert phv.get_meta("hit") == 1


class TestDeparser:
    def test_emits_valid_headers_in_order(self):
        other = HeaderType("other", (("z", 8),))
        phv = Phv([SIMPLE, other])
        phv.header("simple").valid = True
        phv.header("simple").set("b", 0x0102)
        phv.header("other").valid = False
        phv.payload = b"PP"
        frame = Deparser(header_order=("other", "simple")).deparse(phv)
        assert frame == b"\x00\x01\x02\x00PP"

    def test_fixups_run_in_order(self):
        phv = Phv([SIMPLE])
        phv.payload = b"x"
        deparser = Deparser(
            header_order=(),
            fixups=(lambda f, p: f + b"1", lambda f, p: f + b"2"),
        )
        assert deparser.deparse(phv) == b"x12"

    def test_dropped_packet_emits_nothing(self):
        phv = Phv([SIMPLE])
        phv.dropped = True
        assert Deparser(header_order=("simple",)).deparse(phv) == b""
