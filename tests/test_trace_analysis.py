"""TraceAnalyzer: gap attribution, critical paths, completeness, rendering.

The analyzer's core promise is conservation: per-span self times (the
gap to the next event in logical order) sum exactly to the trace's
end-to-end duration, so critical-path percentages are honest shares of
wall-clock, not of some unrelated total.
"""

import math

import pytest

from repro.obs.trace_analysis import TraceAnalyzer
from repro.obs.tracing import Span, TraceRecord


def _span(seq, stage, span_id, parent_id=0, t=0.0, node="", status="ok"):
    return Span(
        seq=seq,
        stage=stage,
        span_id=span_id,
        parent_id=parent_id,
        node=node,
        status=status,
        t=t,
    )


def _record(spans, trace_id=7, kind="append", **kwargs):
    record = TraceRecord(trace_id=trace_id, kind=kind, **kwargs)
    record.spans = list(spans)
    if spans:
        record.root_span_id = spans[0].span_id
        record.last_span_id = spans[-1].span_id
    return record


@pytest.fixture
def tree_record():
    """A two-branch tree with known timings (times in milliseconds).

    root(1)@0ms -> reserve(2)@1ms -> retry(3)@2ms
                -> write(4)@5ms -> deliver(5)@9ms
    Self times (gap to next event): root=1ms, reserve=1ms, retry=3ms,
    write=4ms, deliver=0.
    """
    return _record(
        [
            _span(1, "primitive.append", 1, 0, t=0.000),
            _span(2, "append.reserve", 2, 1, t=0.001, node="sw0"),
            _span(3, "append.reserve.retry", 3, 2, t=0.002, status="retry"),
            _span(4, "rdma.write", 4, 1, t=0.005, node="nic0"),
            _span(5, "fabric.deliver", 5, 4, t=0.009, node="nic0"),
        ]
    )


def test_self_times_sum_to_duration(tree_record):
    analysis = TraceAnalyzer().analyze(tree_record)
    total_self = sum(t.self_time for t in analysis.timings)
    assert math.isclose(total_self, analysis.duration)
    assert math.isclose(analysis.duration, 0.009)


def test_gap_attribution_per_span(tree_record):
    analysis = TraceAnalyzer().analyze(tree_record)
    by_id = {t.span.span_id: t for t in analysis.timings}
    assert math.isclose(by_id[1].self_time, 0.001)
    assert math.isclose(by_id[2].self_time, 0.001)
    assert math.isclose(by_id[3].self_time, 0.003)
    assert math.isclose(by_id[4].self_time, 0.004)
    assert by_id[5].self_time == 0.0
    # Offsets are relative to the first event.
    assert by_id[1].offset == 0.0
    assert math.isclose(by_id[4].offset, 0.005)


def test_inclusive_time_and_depth(tree_record):
    analysis = TraceAnalyzer().analyze(tree_record)
    by_id = {t.span.span_id: t for t in analysis.timings}
    # Root includes everything.
    assert math.isclose(by_id[1].inclusive_time, analysis.duration)
    # reserve subtree = reserve + retry self times.
    assert math.isclose(by_id[2].inclusive_time, 0.004)
    # write subtree = write + deliver.
    assert math.isclose(by_id[4].inclusive_time, 0.004)
    assert by_id[1].depth == 0
    assert by_id[2].depth == 1
    assert by_id[3].depth == 2


def test_critical_path_descends_heaviest_child():
    # Make the write branch strictly heavier than the reserve branch.
    record = _record(
        [
            _span(1, "primitive.append", 1, 0, t=0.000),
            _span(2, "append.reserve", 2, 1, t=0.001),
            _span(3, "rdma.write", 3, 1, t=0.002),
            _span(4, "fabric.deliver", 4, 3, t=0.010),
        ]
    )
    analysis = TraceAnalyzer().analyze(record)
    stages = [t.span.stage for t in analysis.critical_path]
    assert stages == ["primitive.append", "rdma.write", "fabric.deliver"]
    # rdma.write owns the 8ms gap: it is the dominant contributor.
    assert analysis.dominant_stage == "rdma.write"


def test_dominant_node_and_aggregates(tree_record):
    analysis = TraceAnalyzer().analyze(tree_record)
    assert math.isclose(analysis.by_stage["append.reserve.retry"], 0.003)
    assert math.isclose(analysis.by_node["nic0"], 0.004)
    assert math.isclose(analysis.by_node["sw0"], 0.001)
    # Aggregates conserve wall-clock too.
    assert math.isclose(sum(analysis.by_stage.values()), analysis.duration)
    assert math.isclose(sum(analysis.by_node.values()), analysis.duration)


def test_complete_tree_validates(tree_record):
    analysis = TraceAnalyzer().analyze(tree_record)
    assert analysis.complete
    assert analysis.problems == []


def test_unresolved_parent_is_a_problem():
    record = _record(
        [
            _span(1, "root", 1, 0),
            _span(2, "orphan", 2, 99),
        ]
    )
    analysis = TraceAnalyzer().analyze(record)
    assert not analysis.complete
    assert any("unresolved parent 99" in p for p in analysis.problems)
    assert any("unreachable" in p for p in analysis.problems)


def test_duplicate_span_ids_are_a_problem():
    record = _record(
        [
            _span(1, "root", 1, 0),
            _span(2, "twin", 1, 0),
        ]
    )
    analysis = TraceAnalyzer().analyze(record)
    assert "duplicate span ids" in analysis.problems


def test_empty_record_reports_no_spans():
    analysis = TraceAnalyzer().analyze(_record([]))
    assert not analysis.complete
    assert analysis.problems == ["no spans recorded"]
    assert analysis.dominant is None
    assert analysis.dominant_stage == ""


def test_waterfall_renders_rows_and_filters_by_node(tree_record):
    analyzer = TraceAnalyzer()
    text = analyzer.render_waterfall(tree_record)
    assert text.splitlines()[0].startswith("trace 7 kind=append")
    assert "append.reserve.retry" in text
    assert "!retry" in text
    assert "@nic0" in text
    assert "#" in text
    filtered = analyzer.render_waterfall(tree_record, node="nic0")
    assert "rdma.write" in filtered
    assert "append.reserve.retry" not in filtered


def test_waterfall_surfaces_problems():
    record = _record([_span(1, "root", 1, 0), _span(2, "orphan", 2, 99)])
    text = TraceAnalyzer().render_waterfall(record)
    assert "! span 2 (orphan) has unresolved parent 99" in text


def test_critical_path_rendering_marks_dominant(tree_record):
    text = TraceAnalyzer().render_critical_path(tree_record)
    assert "critical path" in text
    assert "<-- dominant" in text
    assert text.splitlines()[-1].strip().startswith("dominant stage:")


def test_summarize_is_json_friendly(tree_record):
    import json

    summary = TraceAnalyzer().summarize(tree_record)
    assert summary["trace_id"] == 7
    assert summary["complete"] is True
    assert summary["dominant_stage"]
    assert summary["critical_path"][0]["stage"] == "primitive.append"
    assert math.isclose(
        sum(summary["by_stage"].values()), summary["duration_seconds"]
    )
    json.dumps(summary)  # must not raise
