"""Tests for the host-side reliable requester (repro.rdma.requester)."""


import pytest

from repro.mem.region import MemoryRegion
from repro.rdma.nic import RdmaNic
from repro.rdma.packets import Bth, Opcode, Reth, RoceV2Packet
from repro.rdma.qp import PsnPolicy, QueuePair
from repro.rdma.requester import ConnectionState, ReliableRequester


def make_responder():
    """A NIC serving READs, fronted as a delivery function."""
    region = MemoryRegion(size=256, base_address=0x1000, rkey=1)
    region.dma_write(0x1000, bytes(range(64)))
    nic = RdmaNic(region)
    nic.create_queue_pair(QueuePair(qp_number=7, policy=PsnPolicy.IGNORE))

    def deliver(frame: bytes):
        nic.receive_frame(frame)
        return nic.transmit()

    return nic, deliver


def read_request(va=0x1000, length=8):
    return RoceV2Packet(
        bth=Bth(opcode=int(Opcode.RC_RDMA_READ_REQUEST), dest_qp=7),
        reth=Reth(virtual_address=va, rkey=1, dma_length=length),
    )


class LossyDelivery:
    """Wraps a delivery function, dropping the first ``drop_first`` frames."""

    def __init__(self, inner, drop_first=0, drop_every=0, seed=0):
        self.inner = inner
        self.drop_first = drop_first
        self.drop_every = drop_every
        self.sent = 0

    def __call__(self, frame):
        self.sent += 1
        if self.sent <= self.drop_first:
            return []
        if self.drop_every and self.sent % self.drop_every == 0:
            return []
        return self.inner(frame)


class TestHappyPath:
    def test_post_and_complete(self):
        _, deliver = make_responder()
        requester = ReliableRequester(deliver)
        psn = requester.post(read_request(va=0x1008, length=4))
        assert requester.is_complete(psn)
        assert requester.response_of(psn) == bytes([8, 9, 10, 11])
        assert requester.outstanding == 0
        assert requester.stats.acked == 1

    def test_psns_consecutive(self):
        _, deliver = make_responder()
        requester = ReliableRequester(deliver, initial_psn=10)
        psns = [requester.post(read_request()) for _ in range(5)]
        assert psns == [10, 11, 12, 13, 14]


class TestLossRecovery:
    def test_retransmit_recovers_lost_request(self):
        _, inner = make_responder()
        lossy = LossyDelivery(inner, drop_first=1)
        requester = ReliableRequester(lossy, timeout_ticks=2)
        psn = requester.post(read_request())
        assert not requester.is_complete(psn)
        requester.tick(2)  # timeout fires, retransmission succeeds
        assert requester.is_complete(psn)
        assert requester.stats.retransmitted == 1

    def test_retry_budget_exhaustion_errors_connection(self):
        requester = ReliableRequester(
            lambda frame: [], timeout_ticks=1, max_retries=2
        )
        requester.post(read_request())
        requester.tick(10)
        assert requester.state is ConnectionState.ERROR
        assert requester.stats.timeouts == 1
        with pytest.raises(RuntimeError):
            requester.post(read_request())

    def test_sustained_random_loss_eventually_completes(self):
        _, inner = make_responder()
        lossy = LossyDelivery(inner, drop_every=3)  # every 3rd frame lost
        requester = ReliableRequester(lossy, timeout_ticks=1, max_retries=10)
        psns = [requester.post(read_request()) for _ in range(20)]
        for _ in range(40):
            if requester.outstanding == 0:
                break
            requester.tick()
        assert requester.state is ConnectionState.READY
        assert all(requester.is_complete(psn) for psn in psns)

    def test_duplicate_ack_ignored(self):
        _, inner = make_responder()
        captured = []

        def deliver(frame):
            responses = inner(frame)
            captured.extend(responses)
            return responses + responses  # duplicate every response

        requester = ReliableRequester(deliver)
        psn = requester.post(read_request())
        assert requester.is_complete(psn)
        assert requester.stats.acked == 1  # duplicate did not double-count

    def test_corrupt_response_ignored_then_recovered(self):
        _, inner = make_responder()

        def deliver(frame):
            responses = inner(frame)
            return [response[:-2] for response in responses]  # truncate

        requester = ReliableRequester(deliver, timeout_ticks=1, max_retries=5)
        psn = requester.post(read_request())
        assert not requester.is_complete(psn)
        # Recovery needs an uncorrupted path; swap it in and retransmit.
        requester._deliver = inner
        requester.tick(2)
        assert requester.is_complete(psn)


class TestValidation:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ReliableRequester(lambda f: [], timeout_ticks=0)
        with pytest.raises(ValueError):
            ReliableRequester(lambda f: [], max_retries=-1)

    def test_tick_validation(self):
        requester = ReliableRequester(lambda f: [])
        with pytest.raises(ValueError):
            requester.tick(-1)

    def test_unknown_psn_queries(self):
        requester = ReliableRequester(lambda f: [])
        assert not requester.is_complete(99)
        assert requester.response_of(99) is None
