"""Tests for the collector memory substrate (repro.mem)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.region import MemoryRegion, RegionAccessError
from repro.mem.slots import SlotCodec, SlotLayout


class TestMemoryRegion:
    def test_initially_zeroed(self):
        region = MemoryRegion(size=64, base_address=0x1000)
        assert region.dma_read(0x1000, 64) == b"\x00" * 64

    def test_write_then_read(self):
        region = MemoryRegion(size=64, base_address=0x1000, rkey=0xAB)
        region.dma_write(0x1010, b"hello", rkey=0xAB)
        assert region.dma_read(0x1010, 5, rkey=0xAB) == b"hello"
        assert region.write_count == 1

    def test_wrong_rkey_rejected(self):
        region = MemoryRegion(size=64, base_address=0x1000, rkey=0xAB)
        with pytest.raises(RegionAccessError):
            region.dma_write(0x1000, b"x", rkey=0xCD)

    def test_none_rkey_skips_check(self):
        region = MemoryRegion(size=64, base_address=0x1000, rkey=0xAB)
        region.dma_write(0x1000, b"x")  # local/trusted path

    @pytest.mark.parametrize(
        "address,length",
        [(0x0FFF, 1), (0x1000, 65), (0x1040, 1), (0x103F, 2)],
    )
    def test_out_of_bounds_rejected(self, address, length):
        region = MemoryRegion(size=64, base_address=0x1000)
        with pytest.raises(RegionAccessError):
            region.dma_read(address, length)

    def test_boundary_access_allowed(self):
        region = MemoryRegion(size=64, base_address=0x1000)
        region.dma_write(0x103F, b"z")
        assert region.dma_read(0x103F, 1) == b"z"

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryRegion(size=0)

    def test_fetch_add_returns_original_and_wraps(self):
        region = MemoryRegion(size=64, base_address=0x1000)
        assert region.dma_fetch_add(0x1000, 5) == 0
        assert region.dma_fetch_add(0x1000, 3) == 5
        assert int.from_bytes(region.dma_read(0x1000, 8), "big") == 8
        # Wrap-around modulo 2**64.
        region.dma_write(0x1008, (2**64 - 1).to_bytes(8, "big"))
        assert region.dma_fetch_add(0x1008, 2) == 2**64 - 1
        assert int.from_bytes(region.dma_read(0x1008, 8), "big") == 1

    def test_fetch_add_requires_alignment(self):
        region = MemoryRegion(size=64, base_address=0x1000)
        with pytest.raises(RegionAccessError):
            region.dma_fetch_add(0x1001, 1)

    def test_compare_swap_success_and_failure(self):
        region = MemoryRegion(size=64, base_address=0x1000)
        # Empty slot: compare 0 succeeds.
        assert region.dma_compare_swap(0x1000, compare=0, swap=42) == 0
        assert int.from_bytes(region.dma_read(0x1000, 8), "big") == 42
        # Occupied slot: compare 0 fails, value unchanged, original returned.
        assert region.dma_compare_swap(0x1000, compare=0, swap=99) == 42
        assert int.from_bytes(region.dma_read(0x1000, 8), "big") == 42

    def test_compare_swap_requires_alignment(self):
        region = MemoryRegion(size=64, base_address=0x1000)
        with pytest.raises(RegionAccessError):
            region.dma_compare_swap(0x1004, 0, 1)

    def test_snapshot_restore_roundtrip(self):
        region = MemoryRegion(size=32, base_address=0)
        region.dma_write(4, b"abcd")
        image = region.snapshot()
        region.dma_write(4, b"wxyz")
        region.restore(image)
        assert region.dma_read(4, 4) == b"abcd"

    def test_restore_wrong_size_rejected(self):
        region = MemoryRegion(size=32)
        with pytest.raises(ValueError):
            region.restore(b"\x00" * 31)

    def test_clear(self):
        region = MemoryRegion(size=16, base_address=0)
        region.dma_write(0, b"\xff" * 16)
        region.clear()
        assert region.snapshot() == b"\x00" * 16

    def test_local_offset_access(self):
        region = MemoryRegion(size=16, base_address=0xFF00)
        region.write_offset(2, b"ab")
        assert region.read_offset(2, 2) == b"ab"
        with pytest.raises(RegionAccessError):
            region.read_offset(15, 2)
        with pytest.raises(RegionAccessError):
            region.write_offset(-1, b"a")

    @given(
        offset=st.integers(min_value=0, max_value=56),
        payload=st.binary(min_size=1, max_size=8),
    )
    def test_write_read_roundtrip_property(self, offset, payload):
        region = MemoryRegion(size=64, base_address=0x2000)
        region.dma_write(0x2000 + offset, payload)
        assert region.dma_read(0x2000 + offset, len(payload)) == payload


class TestSlotLayout:
    def test_paper_figure4_layout(self):
        """160-bit values + 32-bit checksum = 24-byte slots (Figure 4)."""
        layout = SlotLayout(checksum_bits=32, value_bytes=20)
        assert layout.slot_bytes == 24
        assert layout.checksum_bytes == 4
        # 3 GB for 100M flows is ~30 B/flow; slots that fit:
        assert layout.slots_in(3 * 10**9) == 125_000_000

    def test_sub_byte_checksum_rounds_up(self):
        assert SlotLayout(checksum_bits=12, value_bytes=4).checksum_bytes == 2

    @pytest.mark.parametrize("bits,value", [(0, 4), (65, 4), (32, 0), (32, -1)])
    def test_invalid_layout_rejected(self, bits, value):
        with pytest.raises(ValueError):
            SlotLayout(checksum_bits=bits, value_bytes=value)

    def test_slots_in_small_memory(self):
        assert SlotLayout(32, 20).slots_in(23) == 0
        assert SlotLayout(32, 20).slots_in(24) == 1
        assert SlotLayout(32, 20).slots_in(47) == 1


class TestSlotCodec:
    def test_roundtrip(self):
        codec = SlotCodec(SlotLayout(checksum_bits=32, value_bytes=8))
        encoded = codec.encode(0xDEADBEEF, b"pathdata")
        assert len(encoded) == 12
        checksum, value = codec.decode(encoded)
        assert checksum == 0xDEADBEEF
        assert value == b"pathdata"

    def test_short_value_zero_padded(self):
        codec = SlotCodec(SlotLayout(checksum_bits=8, value_bytes=4))
        checksum, value = codec.decode(codec.encode(0x7F, b"ab"))
        assert checksum == 0x7F
        assert value == b"ab\x00\x00"

    def test_oversize_value_rejected(self):
        codec = SlotCodec(SlotLayout(checksum_bits=8, value_bytes=4))
        with pytest.raises(ValueError):
            codec.encode(0, b"abcde")

    def test_oversize_checksum_rejected(self):
        codec = SlotCodec(SlotLayout(checksum_bits=8, value_bytes=4))
        with pytest.raises(ValueError):
            codec.encode(0x100, b"abcd")

    def test_wrong_slot_size_rejected(self):
        codec = SlotCodec(SlotLayout(checksum_bits=8, value_bytes=4))
        with pytest.raises(ValueError):
            codec.decode(b"\x00" * 4)

    def test_slot_address(self):
        codec = SlotCodec(SlotLayout(checksum_bits=32, value_bytes=20))
        assert codec.slot_address(0x1000, 0) == 0x1000
        assert codec.slot_address(0x1000, 3) == 0x1000 + 72
        with pytest.raises(ValueError):
            codec.slot_address(0x1000, -1)

    @given(
        checksum=st.integers(min_value=0, max_value=2**32 - 1),
        value=st.binary(max_size=20),
    )
    def test_roundtrip_property(self, checksum, value):
        codec = SlotCodec(SlotLayout(checksum_bits=32, value_bytes=20))
        decoded_checksum, decoded_value = codec.decode(codec.encode(checksum, value))
        assert decoded_checksum == checksum
        assert decoded_value == value.ljust(20, b"\x00")
