"""Byte-equivalence suite for the columnar batch datapath.

The columnar datapath replaces per-report Python objects with one array
batch per layer: key folding (``fold_keys``), addressing
(``resolve_folded``), wire encoding (``DartSwitch.encode_batch``), fabric
transport (``send_batch``), NIC validation (``ingest_batch``) and region
landing (``write_offset_columnar``).  Every test here pins the contract
that makes that safe: *identical wire bytes and identical store state* to
the scalar reference path -- including PSN register evolution, drop
taxonomy and overwrite accounting, and including under impairment.
"""

import numpy as np
import pytest

from repro.core.addressing import COLLECTOR_FUNCTION_INDEX, DartAddressing
from repro.core.batch import ReportBatch
from repro.core.config import DartConfig
from repro.collector.store import DartStore
from repro.fabric import BufferedFabric, ImpairedFabric, InlineFabric
from repro.hashing.checksum import CHECKSUM_FUNCTION_INDEX
from repro.hashing.crc import CRC32
from repro.hashing.hash_family import fold_key, fold_keys
from repro.mem.region import MemoryRegion, RegionAccessError
from repro.rdma.frames import icrc_rows, write_be64, write_le32
from repro.switch.dart_switch import DartSwitch


def small_config(**overrides):
    defaults = dict(slots_per_collector=1 << 10, num_collectors=3, seed=3)
    defaults.update(overrides)
    return DartConfig(**defaults)


def make_items(count, width=7):
    """Flow-tuple keyed items with varied value lengths (including empty)."""
    items = []
    for i in range(count):
        key = (f"10.0.{i >> 8 & 255}.{i & 255}", "10.9.9.9", 5000 + i, 80, 6)
        value = (b"val-%d!" % i)[: i % (width + 1)]
        items.append((key, value))
    return items


def region_snapshots(store):
    return [collector.region.snapshot() for collector in store.cluster]


def nic_counter_views(store):
    return [collector.nic.counters for collector in store.cluster]


def frame_accounting(counters):
    """Fabric counters minus ``flushes``: the per-frame conservation fields.

    Flush *cadence* legitimately differs between the paths -- a columnar
    enqueue crosses a buffered threshold once per batch where the scalar
    path crosses it once per frame -- but every per-frame series
    (offered/delivered/executed/rejected/lost/duplicated/reordered) must
    be identical.
    """
    return {
        name: getattr(counters, name)
        for name, _metric in counters.FIELDS
        if name != "flushes"
    }


class TestVectorisedPrimitives:
    def test_hash_folded_array_matches_scalar(self):
        config = small_config()
        family = config.hash_family()
        keys = [("flow", i, "x" * (i % 5)) for i in range(64)]
        folded = fold_keys(keys)
        assert folded.dtype == np.uint64
        for index in (0, 1, 5, COLLECTOR_FUNCTION_INDEX, CHECKSUM_FUNCTION_INDEX):
            vector = family.hash_folded_array(folded, index)
            scalar = [family.hash_folded(fold_key(key), index) for key in keys]
            assert vector.tolist() == scalar

    def test_resolve_folded_matches_scalar_resolve(self):
        config = small_config(redundancy=3)
        addressing = DartAddressing(config)
        keys = [("flow", i) for i in range(128)]
        collectors, checksums, slots = addressing.resolve_folded(
            fold_keys(keys)
        )
        assert slots.shape == (3, len(keys))
        for position, key in enumerate(keys):
            resolved = addressing.resolve(key)
            assert int(collectors[position]) == resolved.collector_id
            assert int(checksums[position]) == resolved.checksum
            assert (
                tuple(int(slots[n, position]) for n in range(3))
                == resolved.slot_indexes
            )

    def test_crc_compute_rows_matches_scalar(self):
        rng = np.random.default_rng(5)
        rows = rng.integers(0, 256, size=(40, 91), dtype=np.uint8)
        vector = CRC32.compute_rows(rows)
        for position in range(len(rows)):
            assert int(vector[position]) == CRC32.compute(
                rows[position].tobytes()
            )

    def test_icrc_rows_matches_scalar_packed_trailers(self):
        """Row-vectorised iCRC equals the trailer the scalar packer wrote."""
        config = small_config(num_collectors=2)
        store = DartStore(config, packet_level=True, fabric=InlineFabric())
        frames = [
            frame
            for key, value in make_items(16)
            for _cid, frame in store._switch.report(key, value)
        ]
        matrix = np.frombuffer(b"".join(frames), dtype=np.uint8).reshape(
            len(frames), -1
        )
        computed = icrc_rows(matrix)
        trailers = np.ascontiguousarray(matrix[:, -4:]).view("<u4").ravel()
        assert np.array_equal(computed, trailers)


class TestReportBatch:
    def test_payload_rows_match_scalar_codec(self):
        config = small_config()
        addressing = DartAddressing(config)
        codec = config.slot_codec()
        items = make_items(50)
        batch = ReportBatch.from_items(addressing, items)
        assert batch.count == len(items)
        for position, (key, value) in enumerate(items):
            expected = codec.encode(addressing.checksum_of(key), value)
            assert batch.payloads[position].tobytes() == expected

    def test_oversized_value_raises_like_scalar_codec(self):
        config = small_config()
        addressing = DartAddressing(config)
        oversized = b"x" * (config.layout.value_bytes + 1)
        with pytest.raises(ValueError) as batch_error:
            ReportBatch.from_items(addressing, [(("flow", 1), oversized)])
        with pytest.raises(ValueError) as codec_error:
            config.slot_codec().encode(0, oversized)
        assert str(batch_error.value) == str(codec_error.value)

    def test_empty_batch(self):
        batch = ReportBatch.from_items(
            DartAddressing(small_config()), []
        )
        assert batch.count == 0
        assert batch.payloads.shape[0] == 0


class TestEncodeBatchWireEquality:
    def test_frames_and_psn_registers_identical_to_scalar(self):
        """Every columnar frame is byte-for-byte the scalar frame, in the
        scalar emission order, and PSN registers advance identically."""
        config = small_config(num_collectors=3, redundancy=2)
        scalar = DartStore(config, packet_level=True, fabric=InlineFabric())
        columnar = DartStore(config, packet_level=True, fabric=InlineFabric())
        items = make_items(120)

        expected = []
        for key, value in items:
            expected.extend(scalar._switch.report(key, value))

        switch = columnar._switch
        batch = switch.encode_batch(
            ReportBatch.from_items(switch.addressing, items)
        )
        try:
            assert batch.count == len(expected)
            for position, (collector_id, frame) in enumerate(expected):
                assert int(batch.endpoint_ids[position]) == collector_id
                assert batch.frame_bytes(position) == frame, (
                    f"frame {position} diverges from the scalar encoding"
                )
            for role in range(config.num_collectors):
                assert switch.psn_registers.read(role) == (
                    scalar._switch.psn_registers.read(role)
                )
        finally:
            batch.release()

    def test_missing_collector_entry_raises_like_scalar(self):
        config = small_config(num_collectors=2)
        fabric = InlineFabric()
        switch = DartSwitch(config, switch_id=0, fabric=fabric)
        scalar_switch = DartSwitch(config, switch_id=0, fabric=InlineFabric())
        # Find a key addressed to the (unprovisioned) collector 1.
        addressing = switch.addressing
        key = next(
            ("flow", i)
            for i in range(1000)
            if addressing.collector_of(("flow", i)) == 1
        )
        with pytest.raises(LookupError) as batch_error:
            switch.report_batch_into([(key, b"v")])
        with pytest.raises(LookupError) as scalar_error:
            scalar_switch.report(key, b"v")
        assert str(batch_error.value) == str(scalar_error.value)
        assert switch.counters.c_drops_no_entry.value == 1


FABRIC_FACTORIES = [
    ("inline", lambda: InlineFabric()),
    ("buffered_17", lambda: BufferedFabric(flush_threshold=17)),
    ("buffered_manual", lambda: BufferedFabric(flush_threshold=None)),
    ("impaired_loss", lambda: ImpairedFabric(InlineFabric(), loss=0.1, seed=11)),
    (
        "impaired_all_inline",
        lambda: ImpairedFabric(
            InlineFabric(),
            loss=0.05,
            duplication=0.08,
            reordering=0.15,
            seed=23,
        ),
    ),
    (
        "impaired_all_buffered",
        lambda: ImpairedFabric(
            BufferedFabric(flush_threshold=13),
            loss=0.05,
            duplication=0.08,
            reordering=0.15,
            seed=23,
        ),
    ),
]


class TestStoreStateEquivalence:
    @pytest.mark.parametrize(
        "factory", [f for _name, f in FABRIC_FACTORIES],
        ids=[name for name, _f in FABRIC_FACTORIES],
    )
    def test_columnar_store_matches_scalar_store(self, factory):
        """Same workload, same fabric (same seeds): scalar and columnar
        stores end with identical region bytes, NIC counters and fabric
        counters -- impairments draw the identical RNG sequence."""
        config = small_config(num_collectors=3, slots_per_collector=512)
        items = make_items(150)

        scalar = DartStore(config, packet_level=True, fabric=factory())
        columnar = DartStore(
            config, packet_level=True, fabric=factory(), columnar=True
        )
        offered_scalar = scalar.put_many(items)
        offered_columnar = columnar.put_many(items)
        scalar.fabric.flush()
        columnar.fabric.flush()

        assert offered_scalar == offered_columnar
        assert region_snapshots(scalar) == region_snapshots(columnar)
        for left, right in zip(
            nic_counter_views(scalar), nic_counter_views(columnar)
        ):
            assert left == right
        assert frame_accounting(scalar.fabric.counters) == frame_accounting(
            columnar.fabric.counters
        )
        if isinstance(scalar.fabric, ImpairedFabric):
            assert frame_accounting(
                scalar.fabric.delivered
            ) == frame_accounting(columnar.fabric.delivered)

    def test_columnar_store_queries_answer(self):
        config = small_config()
        store = DartStore(
            config, packet_level=True, fabric=InlineFabric(), columnar=True
        )
        items = make_items(60)
        store.put_many(items)
        hits = sum(
            1
            for key, value in items
            if (store.get_value(key) or b"").startswith(value)
        )
        # Collisions can cost a few keys; the vast majority must answer.
        assert hits >= 55

    def test_columnar_requires_packet_level(self):
        with pytest.raises(ValueError, match="packet_level=True"):
            DartStore(small_config(), columnar=True)


class TestNicBatchValidationParity:
    def _encode_batch(self, store, items):
        switch = store._switch
        return switch.encode_batch(
            ReportBatch.from_items(switch.addressing, items)
        )

    def test_drop_taxonomy_matches_scalar_ingest(self):
        """Corrupted iCRC, unknown QP, stale PSN and out-of-bounds VA all
        land in the same NIC drop counters on both ingest paths."""
        config = small_config(num_collectors=1, slots_per_collector=256)
        items = make_items(24)
        scalar = DartStore(config, packet_level=True, fabric=InlineFabric())
        columnar = DartStore(config, packet_level=True, fabric=InlineFabric())

        batch = self._encode_batch(columnar, items)
        frames = batch.frames
        width = batch.width
        # Out-of-bounds virtual address on row 3 (region ends well below).
        write_be64(
            frames[3:4], 54, np.array([1 << 40], dtype=np.uint64)
        )
        # Unknown destination QP on row 5.
        frames[5, 47:50] = (0xAB, 0xCD, 0xEF)
        # Re-seal every frame, then corrupt row 1's payload *after* sealing
        # so its iCRC check fails.
        write_le32(frames, width - 4, icrc_rows(frames))
        frames[1, 70] ^= 0xFF
        # Stale PSN: replay row 0 at the end (same PSN a second time).
        order = np.concatenate(
            [np.arange(batch.count, dtype=np.int64), np.array([0])]
        )
        replay = batch.select(order)
        batch.release()

        raw = [replay.frame_bytes(i) for i in range(replay.count)]
        executed_scalar = scalar.cluster[0].nic.ingest_many(raw)
        executed_columnar = columnar.cluster[0].nic.ingest_batch(replay)
        replay.release()

        assert executed_scalar == executed_columnar
        left = scalar.cluster[0].nic.counters
        right = columnar.cluster[0].nic.counters
        assert left == right
        assert right.dropped_decode >= 1  # iCRC corruption
        assert right.dropped_unknown_qp >= 1
        assert right.dropped_psn >= 1  # the replayed frame
        assert right.dropped_access >= 1  # out-of-bounds VA
        assert (
            scalar.cluster[0].region.snapshot()
            == columnar.cluster[0].region.snapshot()
        )


class TestRegionColumnarWrites:
    def _paired_regions(self, size=1024):
        return MemoryRegion(size), MemoryRegion(size)

    def test_matches_sequential_writes_with_duplicates(self):
        """Duplicate offsets resolve last-wins with identical overwrite
        accounting to applying the writes one at a time, in order."""
        rng = np.random.default_rng(9)
        width = 16
        slots = np.arange(0, 1024, width)
        offsets = rng.choice(slots, size=60, replace=True).astype(np.int64)
        payloads = rng.integers(0, 256, size=(60, width), dtype=np.uint8)
        # Some all-zero payloads so overwrite accounting sees dead slots.
        payloads[::7] = 0

        sequential, columnar = self._paired_regions()
        for offset, payload in zip(offsets, payloads):
            sequential.write_offset(int(offset), payload.tobytes())
        written = columnar.write_offset_columnar(offsets, payloads)

        assert written == len(offsets)
        assert sequential.snapshot() == columnar.snapshot()
        assert sequential.write_count == columnar.write_count
        assert (
            sequential.c_bytes_written.value == columnar.c_bytes_written.value
        )
        assert (
            sequential.c_slot_overwrites.value
            == columnar.c_slot_overwrites.value
        )

    def test_out_of_bounds_batch_applies_nothing(self):
        region = MemoryRegion(256)
        offsets = np.array([0, 16, 255], dtype=np.int64)  # last row spills
        payloads = np.full((3, 16), 0x5A, dtype=np.uint8)
        with pytest.raises(RegionAccessError, match="outside region"):
            region.write_offset_columnar(offsets, payloads)
        assert region.snapshot() == bytes(256)
        assert region.write_count == 0

    def test_empty_batch_is_a_no_op(self):
        region = MemoryRegion(64)
        assert region.write_offset_columnar(
            np.empty(0, dtype=np.int64), np.empty((0, 8), dtype=np.uint8)
        ) == 0
        assert region.write_count == 0
