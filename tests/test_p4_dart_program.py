"""Equivalence tests: the P4-IR DART program vs the direct switch model.

The strongest check in the switch substrate: for the same deployment
config, collector fleet and report sequence, the IR program's emitted
frames must be byte-identical to :class:`DartSwitch`'s, and must execute
correctly on the NIC model.
"""

import pytest

from repro.core.client import DartQueryClient
from repro.core.config import DartConfig
from repro.collector.collector import CollectorCluster
from repro.hashing.hash_family import stable_key_bytes
from repro.rdma.packets import RoceV2Packet
from repro.switch.control_plane import SwitchControlPlane
from repro.switch.dart_switch import DartSwitch
from repro.switch.p4.dart_program import (
    build_dart_program,
    encode_mirror_packet,
    install_collector_entry,
    ip_to_int,
    mac_to_int,
    process_report,
)


def make_pair(num_collectors=2, redundancy=2, value_bytes=8, switch_id=7):
    """A provisioned (DartSwitch, P4Program, cluster, config) quadruple."""
    config = DartConfig(
        slots_per_collector=1 << 10,
        num_collectors=num_collectors,
        redundancy=redundancy,
        value_bytes=value_bytes,
    )
    cluster = CollectorCluster(config)
    switch = DartSwitch(config, switch_id=switch_id)
    SwitchControlPlane(config).provision(switch, cluster.endpoints())
    program = build_dart_program(config, switch_id=switch_id)
    for endpoint in cluster.endpoints().values():
        install_collector_entry(program, endpoint)
    return switch, program, cluster, config


class TestAddressHelpers:
    def test_mac_roundtrip(self):
        assert mac_to_int("02:00:00:00:00:07") == 0x020000000007
        with pytest.raises(ValueError):
            mac_to_int("02:00")

    def test_ip_roundtrip(self):
        assert ip_to_int("10.1.2.3") == 0x0A010203
        with pytest.raises(ValueError):
            ip_to_int("10.1.2")

    def test_mirror_packet_framing(self):
        packet = encode_mirror_packet(b"KEY", b"VALUE")
        assert packet == b"\x00\x03KEYVALUE"
        with pytest.raises(ValueError):
            encode_mirror_packet(b"x" * 70000, b"")


class TestByteEquivalence:
    def test_frames_identical_across_keys_and_copies(self):
        """The core theorem: IR program == direct model, byte for byte."""
        switch, program, _, config = make_pair()
        for i in range(50):
            key = ("flow", i)
            value = i.to_bytes(8, "big")
            direct_frames = switch.report(key, value)
            for copy_index, (collector_id, direct) in enumerate(direct_frames):
                from_ir = process_report(
                    program, stable_key_bytes(key), value, copy_index
                )
                assert from_ir == direct, (i, copy_index)

    def test_equivalence_with_short_values(self):
        """Zero-padding of short values matches the slot codec."""
        switch, program, _, _ = make_pair(value_bytes=8)
        direct = switch.report(b"k", b"ab")
        for copy_index, (_, frame) in enumerate(direct):
            assert process_report(program, b"k", b"ab", copy_index) == frame

    def test_equivalence_across_redundancy(self):
        switch, program, _, _ = make_pair(redundancy=4)
        direct = switch.report(b"key", b"value")
        assert len(direct) == 4
        for copy_index, (_, frame) in enumerate(direct):
            assert process_report(program, b"key", b"value", copy_index) == frame

    def test_psn_sequences_stay_aligned(self):
        """Both PSN register implementations advance identically."""
        switch, program, _, _ = make_pair(num_collectors=1)
        for i in range(20):
            direct = switch.report(("f", i), b"\x00" * 8)
            for copy_index, (_, frame) in enumerate(direct):
                assert (
                    process_report(
                        program, stable_key_bytes(("f", i)), b"\x00" * 8, copy_index
                    )
                    == frame
                )

    def test_different_switch_ids_differ(self):
        _, program_a, _, _ = make_pair(switch_id=1)
        _, program_b, _, _ = make_pair(switch_id=2)
        frame_a = process_report(program_a, b"k", b"v", 0)
        frame_b = process_report(program_b, b"k", b"v", 0)
        assert frame_a != frame_b  # src MAC/IP identify the switch


class TestProgramExecution:
    def test_frames_execute_on_nic(self):
        _, program, cluster, config = make_pair()
        client = DartQueryClient(config, reader=cluster.read_slot)
        for i in range(30):
            key = ("flow", i)
            encoded = stable_key_bytes(key)
            for copy_index in range(config.redundancy):
                frame = process_report(
                    program, encoded, i.to_bytes(8, "big"), copy_index
                )
                packet = RoceV2Packet.unpack(frame)  # validates iCRC
                collector_id = packet.reth.rkey - 0x1000
                assert cluster[collector_id].receive_frame(frame)
        for i in range(30):
            result = client.query(("flow", i))
            assert result.answered
            assert result.value == i.to_bytes(8, "big")

    def test_unprovisioned_collector_leaves_frame_unroutable(self):
        """A missing lookup entry produces a frame whose endpoint fields
        stay zero -- the NIC rejects it (unknown QP), matching the
        direct model's drop-at-switch semantics in effect."""
        config = DartConfig(slots_per_collector=64, num_collectors=1)
        program = build_dart_program(config, switch_id=0)
        frame = process_report(program, b"k", b"v" * 20, 0)
        packet = RoceV2Packet.unpack(frame)
        assert packet.bth.dest_qp == 0
        cluster = CollectorCluster(config)
        assert not cluster[0].receive_frame(frame)

    def test_table_accessor(self):
        _, program, _, _ = make_pair()
        assert len(program.table("collector_lookup")) == 2
        with pytest.raises(KeyError):
            program.table("nonexistent")

    def test_process_phv_exposes_addressing(self):
        switch, program, _, config = make_pair()
        key = ("flow", 9)
        phv = program.process_phv(
            encode_mirror_packet(stable_key_bytes(key), b"\x01" * 8),
            metadata={"copy_index": 1},
        )
        assert phv.get_meta("collector") == switch.addressing.collector_of(key)
        assert phv.get_meta("slot") == switch.addressing.slot_index(key, 1)
        assert phv.get_meta("key_checksum") == switch.addressing.checksum_of(key)
