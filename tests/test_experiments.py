"""Unit tests for the experiment harnesses (repro.experiments.*).

The benchmarks assert the paper-shape claims at full parameters; these
tests pin the row structures and basic invariants at small parameters so
``pytest tests/`` alone exercises every harness.
"""

import pytest

from repro.experiments import ablations, fig1, fig3, fig4, fig5, headline, prototype, table1
from repro.experiments.reporting import format_table, print_experiment
from repro.experiments.resilience import resilience_rows


class TestReporting:
    def test_format_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_alignment_and_columns(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 22, "b": float("nan")}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "nan" in text
        custom = format_table(rows, columns=["b"])
        assert "a" not in custom.splitlines()[0]

    def test_small_float_scientific(self):
        text = format_table([{"p": 1.5e-9}])
        assert "e-09" in text

    def test_print_experiment(self, capsys):
        print_experiment("Title", [{"x": 1}])
        out = capsys.readouterr().out
        assert "Title" in out and "x" in out


class TestFig1:
    def test_fig1a_rows(self):
        rows = fig1.figure1a_rows(switch_counts=(100,), report_sizes=(64,))
        assert len(rows) == 1
        assert rows[0]["dpdk_io_cores"] >= 1
        assert rows[0]["dart_cores"] == 0

    def test_fig1b_rows(self):
        rows = fig1.figure1b_rows(reports=1_000_000)
        stacks = {r["stack"] for r in rows}
        assert "DART (zero-CPU)" in stacks
        assert all(r["total_gcycles"] >= 0 for r in rows)

    def test_functional_validation(self):
        rows = fig1.figure1b_functional_validation(sample_reports=200)
        assert len(rows) == 2
        with pytest.raises(ValueError):
            fig1.figure1b_functional_validation(sample_reports=0)


class TestFig3:
    def test_rows_structure(self):
        rows = fig3.figure3_rows(
            loads=(0.5,), redundancies=(1, 2), num_slots=1 << 12
        )
        assert len(rows) == 2
        assert all("optimal_n" in r for r in rows)
        assert rows[0]["optimal_n"] == rows[1]["optimal_n"]

    def test_band_rows(self):
        rows = fig3.optimal_band_rows(loads=(0.05, 3.0))
        assert rows[0]["optimal_n"] >= rows[-1]["optimal_n"]

    def test_n2_improvement(self):
        rows = fig3.n2_improvement_over_n1(loads=(0.25,), num_slots=1 << 12)
        assert rows[0]["n2_gain"] > 0


class TestFig4:
    def test_summary_rows(self):
        rows = fig4.figure4_summary(storage_gb=(3,), scale=200)
        assert {r["redundancy_n"] for r in rows} == {2, 4}
        for row in rows:
            assert row["avg_success_sim"] == pytest.approx(
                row["avg_success_theory"], abs=0.02
            )

    def test_aging_rows(self):
        rows = fig4.figure4_rows(storage_gb=(3,), scale=200, age_buckets=5)
        assert len(rows) == 5
        assert rows[0]["success_simulated"] < rows[-1]["success_simulated"]

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            fig4.figure4_rows(scale=0)

    def test_scale_invariance(self):
        rows = fig4.scale_invariance_rows(scales=(400, 200))
        rates = [r["avg_success"] for r in rows]
        assert abs(rates[0] - rates[1]) < 0.02


class TestFig5:
    def test_rows_structure(self):
        rows = fig5.figure5_rows(
            checksum_bits=(8,), loads=(1.0,), num_slots=1 << 14
        )
        assert len(rows) == 1
        assert rows[0]["error_rate_simulated"] <= rows[0][
            "theory_upper_bound_oldest"
        ] * 1.5 + 1e-4

    def test_scaling_fit_requires_data(self):
        with pytest.raises(ValueError):
            fig5.verify_2exp_scaling([{"checksum_bits": 8, "error_rate": 0.0}])


class TestTable1AndHeadline:
    def test_table1_all_roundtrip(self):
        rows = table1.table1_rows()
        assert len(rows) == 6
        assert all(r["roundtrip_ok"] for r in rows)

    def test_headline_statistical_small(self):
        rows = headline.headline_statistical_rows(num_flows=50_000)
        by = {r["redundancy_n"]: r for r in rows}
        assert by[4]["success_rate"] > by[1]["success_rate"]

    def test_memory_sizing_validation(self):
        with pytest.raises(ValueError):
            headline.memory_for_target_success(target=1.5)


class TestPrototypeAndAblations:
    def test_prototype_resources(self):
        rows = prototype.prototype_resource_rows(collector_counts=(10,))
        assert rows[0]["sram_bytes_per_collector"] > 0

    def test_prototype_pipeline_small(self):
        rows = prototype.prototype_pipeline_rows(reports=50)
        assert rows[0]["frames_executed"] == rows[0]["frames_emitted"]

    def test_cas_rows(self):
        rows = ablations.cas_strategy_rows(loads=(1.0,), num_slots=1 << 13)
        assert rows[0]["cas_gain"] > 0

    def test_return_policy_rows(self):
        rows = ablations.return_policy_rows(num_slots=1 << 13)
        assert len(rows) == 4

    def test_dynamic_n_rows(self):
        rows = ablations.dynamic_n_rows(
            load_ramp=(0.1, 2.0), candidates=(1, 2), num_slots=1 << 12
        )
        assert rows[-1]["load_factor"] == "MEAN"

    def test_fetch_add_rows(self):
        rows = ablations.fetch_add_rows(num_flows=50)
        assert rows[0]["underestimates"] == 0

    def test_update_heavy_rows(self):
        rows = ablations.update_heavy_rows(
            distinct_flows=100, reports_per_flow=5, num_slots=1 << 10
        )
        by = {r["system"]: r for r in rows}
        assert by["DART"]["collector_cpu_cycles"] == 0
        assert by["DPDK + Confluo (log)"]["collector_cpu_cycles"] > 0

    def test_placement_rows(self):
        rows = ablations.placement_rows(num_slots_total=1 << 12)
        assert {r["placement"] for r in rows} == {"single-collector", "spread"}

    def test_resilience_rows_structure(self):
        rows = resilience_rows(num_collectors=8, failures=(1,), num_keys=20_000)
        assert rows[0]["unreadable_spread"] <= rows[0]["unreadable_single"]
