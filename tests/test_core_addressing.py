"""Tests for stateless global addressing (repro.core.addressing)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.addressing import DartAddressing
from repro.core.config import DartConfig

key_strategy = st.one_of(
    st.binary(min_size=1, max_size=16),
    st.integers(min_value=0, max_value=2**64),
    st.tuples(st.integers(min_value=0, max_value=2**32), st.integers(0, 65535)),
)


def make_addressing(**kwargs):
    defaults = dict(slots_per_collector=1 << 12, num_collectors=4, redundancy=3)
    defaults.update(kwargs)
    return DartAddressing(DartConfig(**defaults))


class TestGlobalAgreement:
    """The coordination-free property: all parties compute the same map."""

    @given(key=key_strategy)
    def test_independent_instances_agree(self, key):
        a = make_addressing()
        b = make_addressing()
        assert a.collector_of(key) == b.collector_of(key)
        assert a.checksum_of(key) == b.checksum_of(key)
        for n in range(3):
            assert a.slot_index(key, n) == b.slot_index(key, n)

    def test_different_seed_changes_mapping(self):
        a = make_addressing(seed=1)
        b = make_addressing(seed=2)
        moved = sum(
            a.slot_index(i, 0) != b.slot_index(i, 0) for i in range(100)
        )
        assert moved > 90


class TestBounds:
    @given(key=key_strategy)
    def test_collector_in_range(self, key):
        addressing = make_addressing()
        assert 0 <= addressing.collector_of(key) < 4

    @given(key=key_strategy)
    def test_slots_in_range(self, key):
        addressing = make_addressing()
        for n in range(3):
            assert 0 <= addressing.slot_index(key, n) < (1 << 12)

    def test_copy_index_out_of_range_rejected(self):
        addressing = make_addressing(redundancy=2)
        with pytest.raises(ValueError):
            addressing.slot_index(b"key", 2)
        with pytest.raises(ValueError):
            addressing.slot_index(b"key", -1)


class TestLocate:
    def test_all_copies_on_same_collector(self):
        """Paper section 3.1: duplicates of any key stay on one collector."""
        addressing = make_addressing()
        for i in range(200):
            locations = addressing.locate(("flow", i))
            collectors = {loc.collector_id for loc in locations}
            assert len(collectors) == 1

    def test_locate_structure(self):
        addressing = make_addressing(redundancy=3)
        locations = addressing.locate(b"key")
        assert [loc.copy_index for loc in locations] == [0, 1, 2]
        assert all(
            loc.slot_index == addressing.slot_index(b"key", loc.copy_index)
            for loc in locations
        )

    def test_copies_usually_distinct_slots(self):
        """Independent hashes rarely collide in a 4096-slot region."""
        addressing = make_addressing(redundancy=2)
        collisions = sum(
            addressing.slot_index(i, 0) == addressing.slot_index(i, 1)
            for i in range(1000)
        )
        assert collisions < 10  # expected ~1000/4096 < 1


class TestSlotAddress:
    def test_address_arithmetic(self):
        addressing = make_addressing()
        slot_bytes = addressing.config.slot_bytes
        assert addressing.slot_address(0x1000, 0) == 0x1000
        assert addressing.slot_address(0x1000, 5) == 0x1000 + 5 * slot_bytes

    def test_out_of_region_rejected(self):
        addressing = make_addressing(slots_per_collector=16)
        with pytest.raises(ValueError):
            addressing.slot_address(0x1000, 16)


class TestDistribution:
    def test_collector_selection_balanced(self):
        addressing = make_addressing(num_collectors=8)
        counts = np.bincount(
            [addressing.collector_of(i) for i in range(8000)], minlength=8
        )
        expected = 1000
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 30  # chi2(7) 99.9th percentile ~24; allow slack

    def test_slot_distribution_uniform(self):
        addressing = make_addressing(slots_per_collector=64, num_collectors=1)
        counts = np.bincount(
            [addressing.slot_index(i, 0) for i in range(64000)], minlength=64
        )
        expected = 1000
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 120


class TestVectorised:
    def test_matches_scalar_distribution_bounds(self):
        addressing = make_addressing()
        keys = np.arange(10000, dtype=np.uint64)
        collectors = addressing.collectors_of_array(keys)
        slots = addressing.slot_indexes_array(keys, 1)
        checksums = addressing.checksums_array(keys)
        assert int(collectors.max()) < 4
        assert int(slots.max()) < (1 << 12)
        assert int(checksums.max()) < (1 << 32)

    def test_copy_index_validated(self):
        addressing = make_addressing(redundancy=2)
        with pytest.raises(ValueError):
            addressing.slot_indexes_array(np.arange(4, dtype=np.uint64), 2)

    def test_equality(self):
        assert make_addressing() == make_addressing()
        assert make_addressing(seed=1) != make_addressing(seed=2)
