"""Hot-path lint: batch code must not build per-report objects in loops.

The columnar datapath's whole point is that a batch of reports crosses
every layer as a handful of arrays.  The easiest way to lose that (and
the 10x packet-path win the CI gate enforces) is a well-meaning edit that
re-introduces a per-report dataclass -- a ``RoceV2Packet`` here, a
``SlotWrite`` there -- inside a loop of a batch function.  This test
walks the AST of every hot-path module and fails on exactly that pattern,
with the offending ``file:line`` in the message.

Scalar reference paths (``report_into``, ``receive_frame``, ...) are
exempt: the rule applies only to functions whose names mark them as part
of the batch datapath (``*batch*`` / ``*columnar*`` / ``*_many``, the
naming convention the primitive translators' batched entry points use).
"""

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules on the columnar datapath, switch to store.
HOT_PATH_MODULES = [
    SRC / "core" / "batch.py",
    SRC / "switch" / "dart_switch.py",
    SRC / "fabric" / "fabric.py",
    SRC / "fabric" / "impaired.py",
    SRC / "rdma" / "frames.py",
    SRC / "rdma" / "nic.py",
    SRC / "rdma" / "qp.py",
    SRC / "mem" / "region.py",
    SRC / "collector" / "collector.py",
    SRC / "collector" / "store.py",
    SRC / "collector" / "counters.py",
    SRC / "primitives" / "translator.py",
    SRC / "primitives" / "append.py",
    SRC / "primitives" / "sketch.py",
]

#: Per-report object constructors and codecs.  Constructing any of these
#: once per report inside a batch loop defeats the columnar layout.
PER_REPORT_CONSTRUCTORS = {
    "SlotWrite",
    "SlotLocation",
    "RoceV2Packet",
    "EthernetHeader",
    "Ipv4Header",
    "UdpHeader",
    "Bth",
    "Reth",
    "AtomicEth",
    "unpack",  # RoceV2Packet.unpack and friends: per-frame decode
    "compute_icrc",  # the scalar iCRC; batch code uses icrc_rows
}


def _call_name(node: ast.Call) -> str:
    """The terminal identifier of a call target (``a.b.C(...)`` -> ``C``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _batch_functions(tree: ast.AST):
    """Every (async) function whose name marks it as batch-datapath code."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            "batch" in node.name
            or "columnar" in node.name
            or node.name.endswith("_many")
        ):
            yield node


def _loop_violations(function: ast.AST, path: pathlib.Path):
    """Banned constructor calls inside any loop of ``function``."""
    for node in ast.walk(function):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call):
                name = _call_name(inner)
                if name in PER_REPORT_CONSTRUCTORS:
                    yield (
                        f"{path}:{inner.lineno}: {function.name}() calls "
                        f"{name}(...) inside a loop"
                    )


def test_hot_path_modules_exist():
    """The lint list tracks the real module layout."""
    for path in HOT_PATH_MODULES:
        assert path.is_file(), f"hot-path module moved or removed: {path}"


def test_no_per_report_objects_in_batch_loops():
    """Batch functions never allocate per-report objects per iteration."""
    violations = []
    for path in HOT_PATH_MODULES:
        tree = ast.parse(path.read_text(), filename=str(path))
        for function in _batch_functions(tree):
            violations.extend(_loop_violations(function, path))
    assert not violations, "\n".join(violations)


def test_lint_catches_a_seeded_violation():
    """The checker itself works: a synthetic offender is flagged."""
    tree = ast.parse(
        "def encode_batch(items):\n"
        "    out = []\n"
        "    for key, value in items:\n"
        "        out.append(RoceV2Packet(key, value))\n"
        "    return out\n"
    )
    function = next(_batch_functions(tree))
    flagged = list(_loop_violations(function, pathlib.Path("seeded.py")))
    assert len(flagged) == 1 and "RoceV2Packet" in flagged[0]
