"""Tests for the vectorised slot-level simulator (repro.core.simulator)."""

import numpy as np
import pytest

from repro.core import theory
from repro.core.config import DartConfig
from repro.core.policies import ReturnPolicy
from repro.core.simulator import (
    SimulationSpec,
    error_rate_experiment,
    simulate,
    simulate_cas_strategy,
    sweep_load_factors,
)


class TestSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_keys": 0, "num_slots": 10},
            {"num_keys": 10, "num_slots": 0},
            {"num_keys": 10, "num_slots": 10, "redundancy": 0},
            {"num_keys": 10, "num_slots": 10, "checksum_bits": 0},
            {"num_keys": 10, "num_slots": 10, "checksum_bits": 63},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SimulationSpec(**kwargs)

    def test_load_factor(self):
        assert SimulationSpec(num_keys=100, num_slots=400).load_factor == 0.25

    def test_from_config(self):
        config = DartConfig(slots_per_collector=1 << 10, num_collectors=2, seed=7)
        spec = SimulationSpec.from_config(config, num_keys=100)
        assert spec.num_slots == 2048
        assert spec.seed == 7
        assert spec.redundancy == config.redundancy
        override = SimulationSpec.from_config(config, num_keys=100, redundancy=4)
        assert override.redundancy == 4


class TestBasicBehaviour:
    def test_trivial_load_all_correct(self):
        """At load << 1 essentially every key is retrievable."""
        spec = SimulationSpec(num_keys=100, num_slots=1 << 16)
        result = simulate(spec)
        assert result.success_rate == 1.0
        assert result.error_rate == 0.0

    def test_freshest_keys_always_survive(self):
        """The most recent key's slots cannot have been overwritten."""
        spec = SimulationSpec(num_keys=1 << 15, num_slots=1 << 14)
        result = simulate(spec)
        assert bool(result.correct[-1])

    def test_outcome_partition(self):
        """correct + error + empty partitions all keys."""
        spec = SimulationSpec(num_keys=1 << 15, num_slots=1 << 13, checksum_bits=8)
        result = simulate(spec)
        total = result.correct.sum() + result.error.sum() + result.empty.sum()
        assert total == spec.num_keys
        assert result.success_rate + result.error_rate + result.empty_rate == (
            pytest.approx(1.0)
        )

    def test_deterministic_under_seed(self):
        spec = SimulationSpec(num_keys=1 << 12, num_slots=1 << 12, seed=3)
        assert simulate(spec).success_rate == simulate(spec).success_rate

    def test_seed_changes_outcome_details(self):
        a = simulate(SimulationSpec(num_keys=1 << 12, num_slots=1 << 12, seed=1))
        b = simulate(SimulationSpec(num_keys=1 << 12, num_slots=1 << 12, seed=2))
        assert not np.array_equal(a.correct, b.correct)


class TestAgainstTheory:
    """Paper section 5.1: 'simulations adhere to the aforementioned theory'."""

    @pytest.mark.parametrize(
        "alpha,n", [(0.5, 1), (0.5, 2), (1.0, 2), (2.0, 2), (0.2, 4)]
    )
    def test_average_success_matches_closed_form(self, alpha, n):
        num_slots = 1 << 18
        spec = SimulationSpec(
            num_keys=int(alpha * num_slots), num_slots=num_slots, redundancy=n
        )
        result = simulate(spec)
        expected = theory.average_queryability(alpha, n)
        assert result.success_rate == pytest.approx(expected, abs=0.01)

    def test_oldest_keys_match_worst_case_form(self):
        alpha, n = 1.0, 2
        num_slots = 1 << 18
        spec = SimulationSpec(
            num_keys=int(alpha * num_slots), num_slots=num_slots, redundancy=n
        )
        result = simulate(spec)
        expected = theory.queryability(alpha, n)
        assert result.oldest_fraction_success(0.02) == pytest.approx(
            expected, abs=0.03
        )

    def test_aging_curve_monotone(self):
        """Older buckets cannot be more queryable than fresher ones."""
        spec = SimulationSpec(num_keys=1 << 18, num_slots=1 << 18)
        curve = simulate(spec).success_by_age(buckets=8)
        assert curve.shape == (8,)
        # Allow small statistical wiggle but require the overall trend.
        assert curve[0] < curve[-1]
        assert np.all(np.diff(curve) > -0.02)

    def test_error_rate_within_theory_bounds_b8(self):
        """Return errors at b=8 sit below the oldest-key upper bound and
        above the freshest-key lower bound (age-averaged)."""
        alpha = 2.0
        result = error_rate_experiment(
            num_keys=1 << 19, num_slots=1 << 18, checksum_bits=8
        )
        _, upper = theory.return_error_bounds(alpha, 2, 8)
        assert 0 < result.error_rate < upper

    def test_32bit_checksum_errors_unreproducible(self):
        """Paper section 5.3: 32-bit checksums fail to reproduce errors."""
        result = error_rate_experiment(
            num_keys=1 << 19, num_slots=1 << 17, checksum_bits=32
        )
        assert result.error_rate == 0.0


class TestPolicies:
    def test_policy_ordering_on_errors(self):
        """FIRST_MATCH errs at least as often as PLURALITY, which errs at
        least as often as CONSENSUS_2 (with slack for noise)."""
        rates = {}
        for policy in (
            ReturnPolicy.FIRST_MATCH,
            ReturnPolicy.PLURALITY,
            ReturnPolicy.CONSENSUS_2,
        ):
            spec = SimulationSpec(
                num_keys=1 << 18,
                num_slots=1 << 16,
                checksum_bits=8,
                policy=policy,
            )
            rates[policy] = simulate(spec).error_rate
        assert rates[ReturnPolicy.FIRST_MATCH] >= rates[ReturnPolicy.PLURALITY]
        assert rates[ReturnPolicy.PLURALITY] >= rates[ReturnPolicy.CONSENSUS_2]

    def test_consensus_trades_empties_for_errors(self):
        spec_kwargs = dict(num_keys=1 << 16, num_slots=1 << 15, checksum_bits=8)
        plurality = simulate(
            SimulationSpec(policy=ReturnPolicy.PLURALITY, **spec_kwargs)
        )
        consensus = simulate(
            SimulationSpec(policy=ReturnPolicy.CONSENSUS_2, **spec_kwargs)
        )
        assert consensus.empty_rate > plurality.empty_rate
        assert consensus.error_rate <= plurality.error_rate

    def test_single_value_policy_runs(self):
        spec = SimulationSpec(
            num_keys=1 << 14, num_slots=1 << 13, policy=ReturnPolicy.SINGLE_VALUE
        )
        result = simulate(spec)
        assert 0 < result.success_rate < 1


class TestVectorisedMatchesScalar:
    """The simulator must agree with the scalar resolve() on the same data."""

    def test_cross_validation_small_scale(self):
        from repro.core.policies import resolve

        rng = np.random.default_rng(0)
        for policy in (
            ReturnPolicy.SINGLE_VALUE,
            ReturnPolicy.PLURALITY,
            ReturnPolicy.CONSENSUS_2,
            ReturnPolicy.FIRST_MATCH,
        ):
            from repro.core.simulator import _SENTINEL, _resolve_vectorised

            rows = rng.integers(0, 5, size=(500, 4)).astype(np.int64)
            mask = rng.random((500, 4)) < 0.4
            values = np.where(mask, rows, _SENTINEL)
            answered, value = _resolve_vectorised(values, policy)
            for i in range(500):
                matching = [
                    int(v).to_bytes(8, "big") for v in values[i] if v != _SENTINEL
                ]
                scalar = resolve(matching, policy, slots_read=4)
                assert bool(answered[i]) == scalar.answered, (policy, i, matching)
                if scalar.answered:
                    assert int(value[i]).to_bytes(8, "big") == scalar.value


class TestCasStrategy:
    def test_cas_requires_n2(self):
        with pytest.raises(ValueError):
            simulate_cas_strategy(
                SimulationSpec(num_keys=10, num_slots=10, redundancy=3)
            )

    @pytest.mark.parametrize("alpha", [0.3, 0.6, 1.0])
    def test_cas_improves_queryability(self, alpha):
        """Paper section 7: WRITE+CAS 'can potentially improve queryability'."""
        num_slots = 1 << 17
        spec = SimulationSpec(
            num_keys=int(alpha * num_slots), num_slots=num_slots, redundancy=2
        )
        assert (
            simulate_cas_strategy(spec).success_rate
            > simulate(spec).success_rate
        )


class TestSweeps:
    def test_sweep_shapes(self):
        points = sweep_load_factors(
            [0.25, 0.5, 1.0], redundancy=2, num_slots=1 << 14
        )
        assert len(points) == 3
        alphas = [a for a, _ in points]
        rates = [r for _, r in points]
        assert alphas == [0.25, 0.5, 1.0]
        assert all(0 <= r <= 1 for r in rates)
        assert rates[0] > rates[-1]

    def test_sweep_cas_strategy(self):
        write = sweep_load_factors([0.5], redundancy=2, num_slots=1 << 14)
        cas = sweep_load_factors(
            [0.5], redundancy=2, num_slots=1 << 14, strategy="cas"
        )
        assert cas[0][1] > write[0][1]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            sweep_load_factors([0.5], redundancy=2, strategy="bogus")


class TestResultHelpers:
    def test_success_by_age_validation(self):
        result = simulate(SimulationSpec(num_keys=100, num_slots=1000))
        with pytest.raises(ValueError):
            result.success_by_age(0)
        with pytest.raises(ValueError):
            result.oldest_fraction_success(0.0)
        with pytest.raises(ValueError):
            result.oldest_fraction_success(1.5)

    def test_more_buckets_than_keys(self):
        result = simulate(SimulationSpec(num_keys=3, num_slots=1000))
        curve = result.success_by_age(buckets=10)
        assert curve.shape == (10,)


class TestChunkedSimulation:
    """simulate(chunk_size=...) must be exact, not approximate."""

    def test_chunked_identical_to_full(self):
        spec = SimulationSpec(
            num_keys=50_000, num_slots=40_000, checksum_bits=8, seed=5
        )
        full = simulate(spec)
        for chunk in (999, 7_777, 50_000, 200_000):
            chunked = simulate(spec, chunk_size=chunk)
            assert np.array_equal(full.correct, chunked.correct)
            assert np.array_equal(full.answered, chunked.answered)

    def test_invalid_chunk_size(self):
        spec = SimulationSpec(num_keys=10, num_slots=10)
        with pytest.raises(ValueError):
            simulate(spec, chunk_size=0)

    def test_chunked_respects_policies(self):
        spec = SimulationSpec(
            num_keys=20_000,
            num_slots=10_000,
            checksum_bits=8,
            policy=ReturnPolicy.CONSENSUS_2,
        )
        assert np.array_equal(
            simulate(spec).correct, simulate(spec, chunk_size=3_000).correct
        )
