"""Tests for repro.obs.timeseries: rings, scrapes, persistence, trends."""

import json

import pytest

from repro import obs
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.timeseries import (
    MetricsScraper,
    Series,
    load_jsonl,
    sparkline,
    trend_diff,
)


def _with_registry():
    """Install a fresh registry; returns (registry, restore)."""
    registry = obs.MetricsRegistry()
    previous = obs.set_registry(registry)
    return registry, lambda: obs.set_registry(previous)


class TestSparkline:
    def test_empty_is_empty_string(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_low_blocks(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_ramp_ends_at_tallest_block(self):
        text = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert text[0] == "▁"
        assert text[-1] == "█"

    def test_width_keeps_the_trailing_points(self):
        text = sparkline([0] * 100 + [10], width=4)
        assert len(text) == 4
        assert text[-1] == "█"


class TestSeries:
    def test_capacity_evicts_oldest(self):
        series = Series("c", (), "counter", capacity=3)
        for tick in range(5):
            series.append(tick, tick * 10)
        assert series.ticks() == [2, 3, 4]
        assert series.values() == [20, 30, 40]
        assert len(series) == 3

    def test_capacity_below_two_rejected(self):
        with pytest.raises(ValueError):
            Series("c", (), "counter", capacity=1)

    def test_delta_and_rate(self):
        series = Series("c", (), "counter", capacity=8)
        series.append(0, 0)
        series.append(2, 10)
        series.append(4, 30)
        assert series.delta() == 30.0
        assert series.rate() == 30.0 / 4
        assert series.delta(window=2) == 20.0
        assert series.rate(window=2) == 10.0

    def test_counter_reset_clamps_to_zero(self):
        series = Series("c", (), "counter", capacity=8)
        series.append(0, 100)
        series.append(1, 5)  # registry reset mid-run
        assert series.delta() == 0.0
        assert series.deltas() == [0.0]

    def test_gauge_delta_may_go_negative(self):
        series = Series("g", (), "gauge", capacity=8)
        series.append(0, 10)
        series.append(1, 4)
        assert series.delta() == -6.0
        # Gauges report readings, not steps.
        assert series.deltas() == [10.0, 4.0]

    def test_empty_windows_are_zero(self):
        series = Series("c", (), "counter", capacity=8)
        assert series.delta() == 0.0
        assert series.rate() == 0.0
        assert series.latest() is None
        series.append(5, 1)
        assert series.rate() == 0.0  # single point: no span

    def test_histogram_windowed_quantile(self):
        bounds = (0.1, 1.0, 10.0)
        series = Series("h", (), "histogram", capacity=8, bounds=bounds)
        # Cumulative bucket counts: first scrape all small, second adds
        # 10 observations in the 1.0..10.0 bucket.
        series.append(0, ((5, 0, 0, 0), 0.5))
        series.append(1, ((5, 0, 10, 0), 40.5))
        assert series.quantile(0.5) == 10.0
        assert series.quantile(0.0) == pytest.approx(0.1, abs=10)

    def test_quantile_rejects_non_histograms_and_bad_q(self):
        counter = Series("c", (), "counter", capacity=4)
        with pytest.raises(ValueError):
            counter.quantile(0.5)
        histogram = Series("h", (), "histogram", capacity=4, bounds=(1.0,))
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_quantile_empty_window_is_zero(self):
        series = Series("h", (), "histogram", capacity=4, bounds=(1.0,))
        assert series.quantile(0.9) == 0.0


class TestMetricsScraper:
    def test_scrape_appends_points_per_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        scraper = MetricsScraper(registry)
        counter.inc(3)
        scraper.scrape(1)
        counter.inc(4)
        scraper.scrape(2)
        series = scraper.series("events")
        assert series.points() == [(1, 3), (2, 7)]
        assert scraper.delta("events") == 4.0
        assert scraper.scrapes == 2

    def test_maybe_scrape_honours_interval(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        scraper = MetricsScraper(registry, interval=10)
        assert scraper.maybe_scrape(0) is not None  # first always scrapes
        assert scraper.maybe_scrape(5) is None
        assert scraper.maybe_scrape(9) is None
        assert scraper.maybe_scrape(10) is not None
        assert scraper.scrapes == 2

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsScraper(MetricsRegistry(), interval=0)

    def test_scrape_without_tick_self_advances(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        scraper = MetricsScraper(registry)
        scraper.scrape()
        scraper.scrape()
        assert scraper.series("events").ticks() == [0, 1]

    def test_default_registry_is_process_registry(self):
        registry, restore = _with_registry()
        try:
            registry.counter("events").inc()
            scraper = MetricsScraper()
            scraper.scrape(1)
            assert scraper.series("events").latest() == 1
        finally:
            restore()

    def test_histogram_series_and_windowed_quantile(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", LATENCY_BUCKETS)
        scraper = MetricsScraper(registry)
        histogram.observe(0.00005)
        scraper.scrape(1)
        for _ in range(20):
            histogram.observe(0.004)
        scraper.scrape(2)
        series = scraper.series("lat")
        assert series.kind == "histogram"
        assert series.delta() == 20.0
        assert scraper.quantile("lat", 0.5) == 0.005

    def test_family_and_total_series_roll_up_labels(self):
        registry = MetricsRegistry()
        registry.counter("hits", labels={"kind": "a"}).inc(2)
        registry.counter("hits", labels={"kind": "b"}).inc(3)
        scraper = MetricsScraper(registry)
        scraper.scrape(1)
        registry.counter("hits", labels={"kind": "a"}).inc(5)
        scraper.scrape(2)
        assert len(scraper.family("hits")) == 2
        assert scraper.total_series("hits") == [(1, 5.0), (2, 10.0)]
        assert scraper.total_delta("hits") == 5.0
        assert "hits" in scraper.names()

    def test_unknown_series_queries_are_zero(self):
        scraper = MetricsScraper(MetricsRegistry())
        assert scraper.series("nope") is None
        assert scraper.delta("nope") == 0.0
        assert scraper.rate("nope") == 0.0
        assert scraper.quantile("nope", 0.5) == 0.0
        assert scraper.total_delta("nope") == 0.0

    def test_ring_capacity_bounds_retention(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        scraper = MetricsScraper(registry, capacity=4)
        for tick in range(10):
            counter.inc()
            scraper.scrape(tick)
        series = scraper.series("events")
        assert len(series) == 4
        assert series.ticks() == [6, 7, 8, 9]


class TestPersistenceAndTrendDiff:
    def test_persist_writes_one_json_line_per_scrape(self, tmp_path):
        path = tmp_path / "run.jsonl"
        registry = MetricsRegistry()
        counter = registry.counter("events")
        histogram = registry.histogram("lat", LATENCY_BUCKETS)
        scraper = MetricsScraper(registry, persist_path=str(path))
        counter.inc(2)
        histogram.observe(0.001)
        scraper.scrape(1)
        counter.inc(3)
        scraper.scrape(2)
        rows = load_jsonl(str(path))
        assert [row["tick"] for row in rows] == [1, 2]
        by_name = {s["name"]: s for s in rows[-1]["samples"]}
        assert by_name["events"]["value"] == 5
        assert by_name["lat"]["count"] == 1
        # Each line is standalone JSON (tail -1 friendly).
        last = path.read_text().strip().splitlines()[-1]
        assert json.loads(last)["tick"] == 2

    def test_trend_diff_compares_final_totals(self, tmp_path):
        def run(path, final):
            registry = MetricsRegistry()
            counter = registry.counter("events")
            scraper = MetricsScraper(registry, persist_path=str(path))
            counter.inc(1)
            scraper.scrape(1)
            counter.inc(final - 1)
            scraper.scrape(2)

        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run(a, 10)
        run(b, 17)
        diff = trend_diff(load_jsonl(str(a)), load_jsonl(str(b)))
        assert diff["events"] == {"a": 10.0, "b": 17.0, "delta": 7.0}

    def test_trend_diff_missing_families_read_as_zero(self):
        run_a = [{"tick": 1, "samples": [
            {"name": "only_a", "labels": {}, "kind": "counter", "value": 4}]}]
        run_b = [{"tick": 1, "samples": [
            {"name": "only_b", "labels": {}, "kind": "counter", "value": 9}]}]
        diff = trend_diff(run_a, run_b)
        assert diff["only_a"]["delta"] == -4.0
        assert diff["only_b"]["delta"] == 9.0
        assert trend_diff([], []) == {}

    def test_trend_diff_groups_per_node_series(self, tmp_path):
        """A one-collector regression must not be averaged away."""

        def run(path, per_node):
            registry = MetricsRegistry()
            for node, value in per_node.items():
                registry.counter(
                    "nic_frames_received", labels=(("node", node),)
                ).inc(value)
            registry.counter("fabric_frames_offered").inc(
                sum(per_node.values())
            )
            MetricsScraper(registry, persist_path=str(path)).scrape(1)

        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run(a, {"collector-0": 100, "collector-1": 100})
        run(b, {"collector-0": 100, "collector-1": 40})
        runs = (load_jsonl(str(a)), load_jsonl(str(b)))

        # Ungrouped, the sick collector hides inside the fleet total ...
        flat = trend_diff(*runs)
        assert flat["nic_frames_received"]["delta"] == -60.0
        # ... grouped per node, it is pinpointed (keys Prometheus-style).
        by_node = trend_diff(*runs, group_label="node")
        assert by_node['nic_frames_received{node="collector-0"}'][
            "delta"
        ] == 0.0
        assert by_node['nic_frames_received{node="collector-1"}'][
            "delta"
        ] == -60.0
        # Unlabelled families pass through under their bare name.
        assert by_node["fabric_frames_offered"]["delta"] == -60.0


class TestSimulationDrivesScraper:
    def test_int_simulation_drives_maybe_scrape(self):
        from repro.core.config import DartConfig
        from repro.network.flows import FlowGenerator
        from repro.network.simulation import IntSimulation
        from repro.network.topology import FatTreeTopology

        registry, restore = _with_registry()
        try:
            scraper = MetricsScraper(registry, interval=8)
            tree = FatTreeTopology(k=4)
            sim = IntSimulation(
                tree,
                DartConfig(slots_per_collector=512, seed=3),
                scraper=scraper,
            )
            flows = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=3)
            sim.trace_flows(flows.uniform(40))
            # Ticks are report counts: first report scrapes, then every
            # 8th (ticks 1, 9, 17, 25, 33).
            assert scraper.scrapes == 5
            assert scraper.last_tick == 33
            assert scraper.total_delta("mem_writes") > 0
        finally:
            restore()

    def test_packet_network_drives_maybe_scrape(self):
        from repro.core.config import DartConfig
        from repro.network.flows import FlowGenerator
        from repro.network.packet_sim import PacketLevelIntNetwork
        from repro.network.topology import FatTreeTopology

        registry, restore = _with_registry()
        try:
            scraper = MetricsScraper(registry, interval=4)
            tree = FatTreeTopology(k=4)
            net = PacketLevelIntNetwork(
                tree,
                DartConfig(slots_per_collector=512, seed=3),
                scraper=scraper,
            )
            flows = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=3)
            for flow in flows.uniform(8):
                net.send(flow)
            assert scraper.scrapes == 2
            assert scraper.total_delta("nic_frames_received") > 0
        finally:
            restore()
