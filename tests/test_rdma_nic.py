"""Tests for the software RNIC and queue pairs (repro.rdma.nic, repro.rdma.qp)."""

import pytest

from repro.mem.region import MemoryRegion
from repro.rdma.nic import RdmaNic
from repro.rdma.packets import (
    AtomicEth,
    Bth,
    Opcode,
    Reth,
    RoceV2Packet,
)
from repro.rdma.qp import PSN_MODULUS, PsnPolicy, QueuePair, QueuePairState, psn_distance


def make_nic(size=256, base=0x10000, rkey=0x42, qp_number=0x11, policy=PsnPolicy.RESYNC_ON_GAP):
    region = MemoryRegion(size=size, base_address=base, rkey=rkey)
    nic = RdmaNic(region)
    nic.create_queue_pair(QueuePair(qp_number=qp_number, policy=policy))
    return nic, region


def write_packet(payload, psn=0, dest_qp=0x11, va=0x10000, rkey=0x42):
    return RoceV2Packet(
        bth=Bth(opcode=int(Opcode.RC_RDMA_WRITE_ONLY), dest_qp=dest_qp, psn=psn),
        reth=Reth(virtual_address=va, rkey=rkey, dma_length=len(payload)),
        payload=payload,
    )


class TestPsn:
    def test_distance(self):
        assert psn_distance(0, 0) == 0
        assert psn_distance(0, 5) == 5
        assert psn_distance(5, 0) == PSN_MODULUS - 5
        assert psn_distance(PSN_MODULUS - 1, 0) == 1

    def test_in_order_acceptance(self):
        qp = QueuePair(qp_number=1)
        for psn in range(5):
            assert qp.accept(psn)
        assert qp.accepted == 5
        assert qp.expected_psn == 5

    def test_duplicate_dropped(self):
        qp = QueuePair(qp_number=1)
        assert qp.accept(0)
        assert not qp.accept(0)
        assert qp.duplicates_dropped == 1

    def test_gap_resync_policy(self):
        qp = QueuePair(qp_number=1, policy=PsnPolicy.RESYNC_ON_GAP)
        assert qp.accept(0)
        assert qp.accept(10)  # 1..9 lost; resync
        assert qp.gaps_observed == 1
        assert qp.expected_psn == 11

    def test_gap_strict_policy_errors_qp(self):
        qp = QueuePair(qp_number=1, policy=PsnPolicy.STRICT)
        assert qp.accept(0)
        assert not qp.accept(10)
        assert qp.state is QueuePairState.ERROR
        assert not qp.accept(1)  # QP dead until reset

    def test_ignore_policy_accepts_anything(self):
        qp = QueuePair(qp_number=1, policy=PsnPolicy.IGNORE)
        assert qp.accept(100)
        assert qp.accept(3)
        assert qp.accept(3)

    def test_psn_wraparound(self):
        qp = QueuePair(qp_number=1, expected_psn=PSN_MODULUS - 1)
        assert qp.accept(PSN_MODULUS - 1)
        assert qp.expected_psn == 0
        assert qp.accept(0)

    def test_reset(self):
        qp = QueuePair(qp_number=1, policy=PsnPolicy.STRICT)
        qp.accept(0)
        qp.accept(5)
        assert qp.state is QueuePairState.ERROR
        qp.reset(initial_psn=7)
        assert qp.state is QueuePairState.READY
        assert qp.accept(7)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            QueuePair(qp_number=1 << 24)
        with pytest.raises(ValueError):
            QueuePair(qp_number=1, expected_psn=-1)
        with pytest.raises(ValueError):
            QueuePair(qp_number=1).reset(initial_psn=PSN_MODULUS)


class TestNicWrites:
    def test_write_lands_in_memory(self):
        nic, region = make_nic()
        assert nic.receive_frame(write_packet(b"abcd", psn=0).pack())
        assert region.dma_read(0x10000, 4) == b"abcd"
        assert nic.counters.writes_executed == 1

    def test_uc_write_only_also_supported(self):
        nic, region = make_nic()
        packet = write_packet(b"wxyz", psn=0)
        packet.bth.opcode = int(Opcode.UC_RDMA_WRITE_ONLY)
        assert nic.receive_frame(packet.pack())
        assert region.dma_read(0x10000, 4) == b"wxyz"

    def test_corrupted_frame_dropped_silently(self):
        nic, region = make_nic()
        wire = bytearray(write_packet(b"abcd").pack())
        wire[-6] ^= 0xFF
        assert not nic.receive_frame(bytes(wire))
        assert nic.counters.dropped_decode == 1
        assert region.dma_read(0x10000, 4) == b"\x00" * 4

    def test_unknown_qp_dropped(self):
        nic, _ = make_nic(qp_number=0x11)
        assert not nic.receive_frame(write_packet(b"abcd", dest_qp=0x99).pack())
        assert nic.counters.dropped_unknown_qp == 1

    def test_wrong_rkey_dropped(self):
        nic, region = make_nic(rkey=0x42)
        assert not nic.receive_frame(write_packet(b"abcd", rkey=0x43).pack())
        assert nic.counters.dropped_access == 1
        assert region.dma_read(0x10000, 4) == b"\x00" * 4

    def test_out_of_bounds_write_dropped(self):
        nic, _ = make_nic(size=256, base=0x10000)
        bad = write_packet(b"abcd", va=0x10000 + 255)
        assert not nic.receive_frame(bad.pack())
        assert nic.counters.dropped_access == 1

    def test_duplicate_psn_dropped(self):
        nic, _ = make_nic()
        assert nic.receive_frame(write_packet(b"a", psn=0).pack())
        assert not nic.receive_frame(write_packet(b"b", psn=0).pack())
        assert nic.counters.dropped_psn == 1

    def test_gap_tolerated_by_default(self):
        nic, region = make_nic()
        assert nic.receive_frame(write_packet(b"a", psn=0).pack())
        assert nic.receive_frame(write_packet(b"b", psn=7, va=0x10008).pack())
        assert region.dma_read(0x10008, 1) == b"b"

    def test_dma_length_mismatch_dropped(self):
        nic, _ = make_nic()
        packet = write_packet(b"abcd")
        packet.reth.dma_length = 2  # lies about payload length
        assert not nic.receive_packet(packet)
        assert nic.counters.dropped_decode == 1

    def test_unsupported_opcode_dropped(self):
        nic, _ = make_nic()
        # WRITE_FIRST (multi-packet writes) is not supported by the model.
        packet = RoceV2Packet(
            bth=Bth(opcode=int(Opcode.RC_RDMA_WRITE_FIRST), dest_qp=0x11, psn=0),
            reth=Reth(virtual_address=0x10000, rkey=0x42, dma_length=4),
            payload=b"abcd",
        )
        assert not nic.receive_packet(packet)
        assert nic.counters.dropped_opcode == 1

    def test_counters_aggregate(self):
        nic, _ = make_nic()
        nic.receive_frame(write_packet(b"a", psn=0).pack())
        nic.receive_frame(write_packet(b"b", psn=0).pack())  # dup
        nic.receive_frame(b"garbage")
        assert nic.counters.frames_received == 3
        assert nic.counters.frames_dropped == 2
        assert nic.counters.writes_executed == 1

    def test_duplicate_qp_rejected(self):
        nic, _ = make_nic(qp_number=0x11)
        with pytest.raises(ValueError):
            nic.create_queue_pair(QueuePair(qp_number=0x11))
        assert nic.queue_pair(0x11) is not None
        assert nic.queue_pair(0x99) is None


class TestNicAtomics:
    def atomic_packet(self, opcode, va=0x10000, swap_add=0, compare=0, psn=0, rkey=0x42):
        return RoceV2Packet(
            bth=Bth(opcode=int(opcode), dest_qp=0x11, psn=psn),
            atomic_eth=AtomicEth(
                virtual_address=va, rkey=rkey, swap_add=swap_add, compare=compare
            ),
        )

    def test_fetch_add(self):
        nic, region = make_nic()
        assert nic.receive_frame(
            self.atomic_packet(Opcode.RC_FETCH_ADD, swap_add=5, psn=0).pack()
        )
        assert nic.receive_frame(
            self.atomic_packet(Opcode.RC_FETCH_ADD, swap_add=3, psn=1).pack()
        )
        assert int.from_bytes(region.dma_read(0x10000, 8), "big") == 8
        assert nic.counters.atomics_executed == 2

    def test_compare_swap_fills_empty_slot_only(self):
        nic, region = make_nic()
        first = self.atomic_packet(Opcode.RC_CMP_SWAP, swap_add=111, compare=0, psn=0)
        second = self.atomic_packet(Opcode.RC_CMP_SWAP, swap_add=222, compare=0, psn=1)
        assert nic.receive_frame(first.pack())
        assert nic.receive_frame(second.pack())  # executes, but CAS fails
        assert int.from_bytes(region.dma_read(0x10000, 8), "big") == 111

    def test_misaligned_atomic_dropped(self):
        nic, _ = make_nic()
        packet = self.atomic_packet(Opcode.RC_FETCH_ADD, va=0x10001, swap_add=1)
        assert not nic.receive_frame(packet.pack())
        assert nic.counters.dropped_access == 1
