"""Tests for the Table-1 telemetry backends (repro.telemetry)."""

import pytest

from repro.core.config import DartConfig
from repro.collector.store import DartStore
from repro.network.flows import FlowGenerator
from repro.network.topology import FatTreeTopology
from repro.telemetry.anomalies import AnomalyEvent, AnomalyKind, FlowAnomalyBackend
from repro.telemetry.failures import FailureEvent, FailureKind, NetworkFailureBackend
from repro.telemetry.int_inband import InbandIntBackend
from repro.telemetry.mirroring import QueryAnswer, QueryMirrorBackend
from repro.telemetry.postcards import PostcardBackend, PostcardMeasurement
from repro.telemetry.traces import TraceAnalysisBackend, WindowStats


@pytest.fixture
def store():
    return DartStore(DartConfig(slots_per_collector=1 << 12, num_collectors=2))


@pytest.fixture
def flow():
    return FlowGenerator(num_hosts=16, seed=0).uniform(1)[0]


class TestInbandInt:
    def test_sink_report_and_trace(self, store, flow):
        backend = InbandIntBackend(store)
        backend.sink_report(flow, [3, 9, 17, 12, 5])
        assert backend.trace_of(flow) == [3, 9, 17, 12, 5]
        assert backend.reports == 1

    def test_short_path(self, store, flow):
        backend = InbandIntBackend(store)
        backend.sink_report(flow, [7])
        assert backend.trace_of(flow) == [7]

    def test_missing_flow_none(self, store, flow):
        assert InbandIntBackend(store).trace_of(flow) is None

    def test_value_size_requirement(self):
        small = DartStore(DartConfig(value_bytes=8, slots_per_collector=64))
        with pytest.raises(ValueError):
            InbandIntBackend(small)

    def test_with_real_topology(self, store):
        tree = FatTreeTopology(k=4)
        backend = InbandIntBackend(store)
        flows = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=4).uniform(20)
        for f in flows:
            path = tree.path(f.src_host, f.dst_host, f.five_tuple)
            backend.sink_report(f, path)
        for f in flows:
            trace = backend.trace_of(f)
            assert trace == tree.path(f.src_host, f.dst_host, f.five_tuple)


class TestPostcards:
    def test_measurement_roundtrip(self):
        measurement = PostcardMeasurement(
            timestamp_ns=1_700_000_000_000_000_000,
            queue_depth=42,
            egress_port=7,
            hop_latency_ns=1500,
            congestion_flag=True,
        )
        assert PostcardMeasurement.unpack(measurement.pack()) == measurement
        assert len(measurement.pack()) == 20

    def test_per_switch_keys(self, store, flow):
        """Paper: postcard keys concatenate switchID and the 5-tuple."""
        backend = PostcardBackend(store)
        m1 = PostcardMeasurement(1, 10, 1, 100)
        m2 = PostcardMeasurement(2, 20, 2, 200)
        backend.switch_report(5, flow, m1)
        backend.switch_report(9, flow, m2)
        assert backend.hop_measurement(5, flow) == m1
        assert backend.hop_measurement(9, flow) == m2
        assert backend.hop_measurement(6, flow) is None

    def test_path_measurements(self, store, flow):
        backend = PostcardBackend(store)
        for switch_id in (1, 2, 3):
            backend.switch_report(
                switch_id, flow, PostcardMeasurement(switch_id, 0, 0, 0)
            )
        collected = backend.path_measurements(flow, [1, 2, 3, 4])
        assert collected[1].timestamp_ns == 1
        assert collected[3].timestamp_ns == 3
        assert collected[4] is None


class TestMirroring:
    def test_answer_roundtrip(self, store):
        backend = QueryMirrorBackend(store)
        answer = QueryAnswer(matched_packets=100, matched_bytes=64000, last_switch_id=3)
        backend.update_answer(7, answer)
        assert backend.answer_of(7) == answer
        assert backend.answer_of(8) is None

    def test_updates_overwrite(self, store):
        backend = QueryMirrorBackend(store)
        backend.update_answer(1, QueryAnswer(1, 100, 2))
        backend.update_answer(1, QueryAnswer(2, 200, 4))
        assert backend.answer_of(1).matched_packets == 2

    def test_negative_query_id_rejected(self, store):
        with pytest.raises(ValueError):
            QueryMirrorBackend(store).update_answer(-1, QueryAnswer(0, 0, 0))


class TestTraceAnalysis:
    def test_window_roundtrip(self, store, flow):
        backend = TraceAnalysisBackend(store, analysis_id="retrans-hunt")
        stats = WindowStats(
            packets=500, bytes_total=750_000, retransmissions=3, max_gap_ns=90_000
        )
        backend.publish_window(flow.five_tuple, 12, stats)
        assert backend.window_stats(flow.five_tuple, 12) == stats
        assert backend.window_stats(flow.five_tuple, 13) is None

    def test_analyses_are_isolated(self, store, flow):
        a = TraceAnalysisBackend(store, analysis_id="a")
        b = TraceAnalysisBackend(store, analysis_id="b")
        a.publish_window(flow.five_tuple, 0, WindowStats(1, 1, 0, 0))
        assert b.window_stats(flow.five_tuple, 0) is None

    def test_negative_window_rejected(self, store, flow):
        with pytest.raises(ValueError):
            TraceAnalysisBackend(store).key_for(flow.five_tuple, -1)


class TestAnomalies:
    def test_event_roundtrip(self, store, flow):
        backend = FlowAnomalyBackend(store)
        event = AnomalyEvent(
            timestamp_ns=123456789,
            switch_id=17,
            kind=AnomalyKind.LATENCY_SPIKE,
            detail=250_000,
        )
        backend.report_event(flow.five_tuple, event)
        assert backend.last_event(flow.five_tuple, AnomalyKind.LATENCY_SPIKE) == event
        assert backend.last_event(flow.five_tuple, AnomalyKind.PACKET_DROP) is None

    def test_kinds_keyed_independently(self, store, flow):
        """Paper Table 1: key = (flow 5-tuple, anomaly ID)."""
        backend = FlowAnomalyBackend(store)
        spike = AnomalyEvent(1, 1, AnomalyKind.LATENCY_SPIKE, 100)
        drop = AnomalyEvent(2, 2, AnomalyKind.PACKET_DROP, 1)
        backend.report_event(flow.five_tuple, spike)
        backend.report_event(flow.five_tuple, drop)
        report = backend.flow_report(flow.five_tuple)
        assert set(e.kind for e in report) == {
            AnomalyKind.LATENCY_SPIKE,
            AnomalyKind.PACKET_DROP,
        }


class TestFailures:
    def test_failure_roundtrip(self, store):
        backend = NetworkFailureBackend(store)
        event = FailureEvent(
            timestamp_ns=999,
            kind=FailureKind.LINK_DOWN,
            severity=200,
            debug_code=0xDEAD,
        )
        backend.record_failure(42, "pod3/edge1/port12", event)
        assert backend.lookup(42, "pod3/edge1/port12") == event
        assert backend.lookup(42, "pod3/edge1/port13") is None

    def test_negative_id_rejected(self, store):
        with pytest.raises(ValueError):
            NetworkFailureBackend.key_for(-1, "x")


class TestBackendCommon:
    def test_oversize_value_rejected(self, flow):
        tiny = DartStore(DartConfig(value_bytes=4, slots_per_collector=64))
        backend = FlowAnomalyBackend(tiny)
        with pytest.raises(ValueError, match="exceeds"):
            backend.report_event(
                flow.five_tuple, AnomalyEvent(1, 1, AnomalyKind.CONGESTION, 0)
            )

    def test_raw_query_exposes_outcome(self, store, flow):
        backend = InbandIntBackend(store)
        backend.sink_report(flow, [1, 2, 3])
        result = backend.raw_query(flow.five_tuple)
        assert result.answered and result.matches == 2

    def test_backends_share_one_store(self, store, flow):
        """Different backends' keys never clash in the shared region."""
        int_backend = InbandIntBackend(store)
        anomaly_backend = FlowAnomalyBackend(store)
        int_backend.sink_report(flow, [1, 2, 3])
        anomaly_backend.report_event(
            flow.five_tuple, AnomalyEvent(5, 5, AnomalyKind.CONGESTION, 9)
        )
        assert int_backend.trace_of(flow) == [1, 2, 3]
        assert (
            anomaly_backend.last_event(flow.five_tuple, AnomalyKind.CONGESTION)
            is not None
        )
