"""Tests for switch-side event detection (repro.switch.event_detection)."""

import pytest

from repro.switch.event_detection import ChangeDetector, suppression_rows


class TestChangeDetector:
    def test_first_observation_reports(self):
        detector = ChangeDetector(cache_lines=1 << 10)
        assert detector.observe(b"flow", b"value-1")

    def test_unchanged_value_suppressed(self):
        detector = ChangeDetector(cache_lines=1 << 10)
        detector.observe(b"flow", b"value-1")
        for _ in range(10):
            assert not detector.observe(b"flow", b"value-1")
        assert detector.stats.packets_observed == 11
        assert detector.stats.reports_triggered == 1

    def test_changed_value_reports(self):
        detector = ChangeDetector(cache_lines=1 << 10)
        detector.observe(b"flow", b"value-1")
        assert detector.observe(b"flow", b"value-2")
        assert not detector.observe(b"flow", b"value-2")
        assert detector.observe(b"flow", b"value-1")  # changed back

    def test_cache_collision_causes_spurious_reports(self):
        """Two flows in one line evict each other -- extra reports, never
        silently dropped changes."""
        detector = ChangeDetector(cache_lines=1)  # everything collides
        detector.observe(b"flow-a", b"x")
        detector.observe(b"flow-b", b"y")
        # flow-a's digest was evicted, so its unchanged value re-reports.
        assert detector.observe(b"flow-a", b"x")

    def test_suppression_ratio(self):
        detector = ChangeDetector(cache_lines=1 << 10)
        detector.observe(b"f", b"v")
        for _ in range(99):
            detector.observe(b"f", b"v")
        assert detector.stats.suppression_ratio == pytest.approx(100.0)

    def test_reset(self):
        detector = ChangeDetector(cache_lines=1 << 6)
        detector.observe(b"f", b"v")
        detector.reset()
        assert detector.stats.packets_observed == 0
        assert detector.observe(b"f", b"v")  # cache cold again

    def test_sram_accounting(self):
        assert ChangeDetector(cache_lines=1024).sram_bytes == 4096

    @pytest.mark.parametrize(
        "kwargs",
        [{"cache_lines": 0}, {"digest_bits": 0}, {"digest_bits": 32}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ChangeDetector(**kwargs)


class TestSuppressionExperiment:
    def test_big_cache_approaches_ideal(self):
        rows = suppression_rows(
            num_flows=500,
            packets_per_flow=40,
            change_every=10,
            cache_lines_options=(1 << 6, 1 << 14),
        )
        small, big = rows[0], rows[-1]
        # Bigger caches suppress more (fewer collision-driven reports).
        assert big["reports"] < small["reports"]
        # And approach the ideal change-only report count.
        assert big["report_inflation_vs_ideal"] < 1.3
        assert small["report_inflation_vs_ideal"] > big["report_inflation_vs_ideal"]

    def test_suppression_is_orders_of_magnitude(self):
        """The section-2 premise: per-packet telemetry collapses to a few
        reports per flow."""
        rows = suppression_rows(
            num_flows=300,
            packets_per_flow=100,
            change_every=25,
            cache_lines_options=(1 << 14,),
        )
        # Ideal suppression here is 100 packets / 5 reports = 20x; a large
        # cache should achieve most of it.
        assert rows[0]["suppression_ratio"] > 12
