"""End-to-end acceptance: one causal span tree across both planes.

The scenario the tracing subsystem exists for: a writer drives an
Append batch through switch-side translation -> impaired fabric -> NIC
-> collector ring while an operator issues a one-sided READ, all under
5% frame loss with a deliberately slow collector NIC on the query leg.
One trace must tell the whole story:

- the reservation FETCH_ADDs, the columnar WRITE batch, the retries and
  the query READ hang off a single root (data + query planes, one tree);
- a lost reservation surfaces as a ``retry`` child span of the reserve;
- the ``trace_seconds`` histogram's p99 bucket exposes an exemplar trace
  id that resolves to a tail-retained trace;
- :class:`~repro.obs.TraceAnalyzer` names the injected-delay stage
  (``query.read`` against the slowed NIC) as the critical path.
"""

import time

import pytest

from repro import obs
from repro.fabric import ImpairedFabric, InlineFabric
from repro.obs.metrics import LATENCY_BUCKETS
from repro.obs.trace_analysis import TraceAnalyzer
from repro.primitives import AppendStore
from repro.primitives.clients import APPEND_READER_QP_BASE, OneSidedReader

#: Pinned so the impairment schedule loses at least one reservation
#: FETCH_ADD (forcing a visible retry) while the query READ survives.
SEED = 2

#: Frame loss of the impaired fabric (the acceptance scenario's 5%).
LOSS = 0.05

#: Injected NIC service delay on the query leg (dominates the trace).
DELAY = 0.02


class SlowPort:
    """Delegating NIC wrapper that injects scalar-ingest service delay."""

    def __init__(self, inner):
        self.inner = inner
        self.delay = 0.0

    def receive_frame(self, frame):
        if self.delay:
            time.sleep(self.delay)
        return self.inner.receive_frame(frame)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def run_scenario(seed=SEED, delay=DELAY):
    """Run the acceptance scenario; returns (tracer, registry, record,
    payload) where ``record`` is the single cross-plane trace."""
    registry = obs.MetricsRegistry()
    previous_registry = obs.set_registry(registry)
    tracer = obs.Tracer(sample_rate=1.0)
    previous_tracer = obs.set_tracer(tracer)
    try:
        fabric = ImpairedFabric(InlineFabric(), loss=LOSS, seed=seed)
        store = AppendStore(capacity=64, record_bytes=16, fabric=fabric)
        slow = SlowPort(store.nic)
        fabric.detach(store.endpoint_id)
        fabric.attach(store.endpoint_id, slow)
        writer = store.register_writer(0)
        reader = OneSidedReader(
            fabric,
            store.endpoint_id,
            store.nic,
            APPEND_READER_QP_BASE,
            store.demux,
            store.region.rkey,
        )

        trace_id = tracer.begin("e2e", key="append+query")
        tracer.span(trace_id, "test.scenario", "append batch + query read")
        with tracer.activate(trace_id):
            # Data plane: one columnar batch plus per-record appends --
            # every reservation FETCH_ADD rides this same trace, so a
            # lost one records its retry as a child span.
            writer.append_many([b"batch-%03d" % i for i in range(8)])
            for i in range(12):
                writer.append(b"solo-%04d" % i)
            # Query plane: a one-sided READ against the slowed NIC.
            slow.delay = delay
            payload = reader.read(store.data_address, store.record_bytes)
            slow.delay = 0.0
        tracer.end(trace_id)
        record = tracer.trace(trace_id)
        return tracer, registry, record, payload
    finally:
        obs.set_tracer(previous_tracer)
        obs.set_registry(previous_registry)


@pytest.fixture(scope="module")
def scenario():
    return run_scenario()


def test_one_causal_tree_spans_both_planes(scenario):
    tracer, _registry, record, payload = scenario
    assert record is not None and record.sealed
    # Data plane: switch-side translation, fabric delivery, NIC ingest.
    assert "primitive.append" in record.stages
    assert "append.reserve" in record.stages
    assert "nic.ingest" in record.stages
    assert "fabric.deliver" in record.stages
    # Query plane, in the same tree.
    assert "query.read" in record.stages
    assert payload is not None and payload.startswith(b"batch-000")
    # It really is one tree: a single root, structurally complete.
    analysis = TraceAnalyzer().analyze(record)
    assert analysis.complete, analysis.problems
    roots = [t for t in analysis.timings if t.depth == 0]
    assert len(roots) == 1
    assert roots[0].span.stage == "test.scenario"
    # The terminal bindings all released: nothing leaks past sealing.
    assert tracer.bindings_live == 0


def test_lost_reservation_is_a_retry_child_span(scenario):
    _tracer, _registry, record, _payload = scenario
    retries = [s for s in record.spans if s.stage == "append.reserve.retry"]
    assert retries, "pinned seed must lose at least one FETCH_ADD"
    for retry in retries:
        assert retry.status == "retry"
        parent = record.span_by_id(retry.parent_id)
        assert parent is not None
        assert parent.stage == "append.reserve"


def test_p99_exemplar_resolves_to_kept_trace(scenario):
    tracer, registry, record, _payload = scenario
    histogram = registry.histogram("trace_seconds", LATENCY_BUCKETS)
    exemplar = histogram.exemplar(0.99)
    assert exemplar == record.trace_id
    resolved = tracer.trace(exemplar)
    assert resolved is record
    # Tail retention fired: the retry (and any drops) force-keep it.
    assert resolved.keep_reasons
    assert resolved in tracer.kept()


def test_injected_delay_stage_is_the_critical_path(scenario):
    _tracer, _registry, record, _payload = scenario
    analysis = TraceAnalyzer().analyze(record)
    path_stages = [t.span.stage for t in analysis.critical_path]
    assert path_stages[0] == "test.scenario"
    assert "query.read" in path_stages
    # The slowed NIC owns the wall-clock: query.read is dominant and
    # holds the majority of the end-to-end duration.
    assert analysis.dominant_stage == "query.read"
    assert analysis.dominant.self_time >= 0.5 * analysis.duration


def test_scenario_without_delay_is_append_bound():
    """Control: remove the injected delay and the query leg no longer
    dominates -- the analyzer's answer tracks the actual bottleneck."""
    _tracer, _registry, record, _payload = run_scenario(delay=0.0)
    analysis = TraceAnalyzer().analyze(record)
    assert analysis.complete, analysis.problems
    assert analysis.dominant_stage != "query.read"
