"""Tests for DartConfig (repro.core.config)."""

import pytest

from repro.core.config import DartConfig


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"redundancy": 0},
            {"checksum_bits": 0},
            {"checksum_bits": 65},
            {"value_bytes": 0},
            {"slots_per_collector": 0},
            {"num_collectors": 0},
            {"seed": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DartConfig(**kwargs)

    def test_defaults_match_paper_suggestions(self):
        config = DartConfig()
        assert config.redundancy == 2  # section 5.1: N=2 a good compromise
        assert config.checksum_bits == 32  # section 4 default suggestion
        assert config.value_bytes == 20  # 160-bit values (Figure 4)


class TestDerived:
    def test_slot_and_region_sizes(self):
        config = DartConfig(slots_per_collector=1000)
        assert config.slot_bytes == 24  # 4B checksum + 20B value
        assert config.region_bytes == 24000
        assert config.total_slots == 1000

    def test_total_slots_across_fleet(self):
        config = DartConfig(slots_per_collector=1000, num_collectors=4)
        assert config.total_slots == 4000

    def test_load_factor(self):
        config = DartConfig(slots_per_collector=1000)
        assert config.load_factor(500) == 0.5
        assert config.load_factor(0) == 0.0
        with pytest.raises(ValueError):
            config.load_factor(-1)

    def test_bytes_per_key(self):
        config = DartConfig(redundancy=2)
        assert config.bytes_per_key() == 48.0

    def test_components_agree_for_equal_configs(self):
        a, b = DartConfig(seed=5), DartConfig(seed=5)
        assert a.hash_family() == b.hash_family()
        assert a.key_checksum() == b.key_checksum()
        assert a == b

    def test_frozen(self):
        config = DartConfig()
        with pytest.raises(Exception):
            config.redundancy = 3


class TestMemoryBudget:
    def test_figure4_3gb_budget(self):
        """3 GB with 24-byte slots = 125M slots (Figure 4, 100M flows)."""
        config = DartConfig.for_memory_budget(3 * 10**9)
        assert config.slots_per_collector == 125_000_000
        assert config.load_factor(100_000_000) == pytest.approx(0.8)

    def test_budget_split_across_collectors(self):
        config = DartConfig.for_memory_budget(48000, num_collectors=2)
        assert config.slots_per_collector == 1000
        assert config.total_slots == 2000

    def test_budget_too_small_rejected(self):
        with pytest.raises(ValueError):
            DartConfig.for_memory_budget(10)

    def test_headline_300_bytes_per_flow(self):
        """Intro claim: 99.9% success with ~300 bytes per flow.

        300 B/flow with 24 B slots is load factor alpha = 24/300 = 0.08.
        The success probability at that load is validated in the theory
        and simulator tests; here we pin the arithmetic relationship.
        """
        flows = 10_000
        config = DartConfig.for_memory_budget(300 * flows)
        assert config.load_factor(flows) == pytest.approx(0.08)
