"""The flight-recorder journal: ring semantics, wire codec, SLO wiring."""

import json

import pytest

from repro import obs
from repro.obs.journal import (
    KNOWN_KINDS,
    NULL_JOURNAL,
    EventJournal,
    NullJournal,
    decode_event,
    encode_event,
)


def _with_journal(journal=None):
    journal = journal if journal is not None else EventJournal()
    previous = obs.set_journal(journal)
    return journal, lambda: obs.set_journal(previous)


class TestEventJournal:
    def test_record_assigns_monotonic_seq_and_current_tick(self):
        journal = EventJournal()
        journal.advance(10)
        first = journal.record("failover", "role 0 moved")
        journal.advance(25)
        second = journal.record("epoch_bump", "epoch 2")
        assert (first.seq, first.tick) == (0, 10)
        assert (second.seq, second.tick) == (1, 25)
        assert journal.next_seq == 2

    def test_advance_is_monotone(self):
        journal = EventJournal()
        journal.advance(50)
        journal.advance(20)  # a stale clock must not rewind the journal
        assert journal.tick == 50

    def test_ring_overwrites_oldest_and_keeps_absolute_seq(self):
        journal = EventJournal(capacity=4)
        for index in range(6):
            journal.record("failover", f"event {index}")
        events = list(journal)
        assert [event.seq for event in events] == [2, 3, 4, 5]
        assert journal.overwritten == 2
        assert journal.next_seq == 6

    def test_events_since_cursor_reads(self):
        journal = EventJournal(capacity=8)
        for index in range(5):
            journal.record("failover", f"event {index}")
        assert [e.seq for e in journal.events_since(3)] == [3, 4]
        assert journal.events_since(5) == []
        # A cursor older than the retained window returns what's left.
        small = EventJournal(capacity=2)
        for index in range(5):
            small.record("failover", f"event {index}")
        assert [e.seq for e in small.events_since(0)] == [3, 4]

    def test_events_filter_and_tail(self):
        journal = EventJournal()
        journal.record("failover", "a")
        journal.record("epoch_bump", "b")
        journal.record("failover", "c")
        assert [e.message for e in journal.events(kind="failover")] == ["a", "c"]
        assert [e.message for e in journal.tail(2)] == ["b", "c"]

    def test_attrs_stringified_and_sorted(self):
        journal = EventJournal()
        event = journal.record("failover", "m", zeta=1, alpha="x")
        assert event.attrs == (("alpha", "x"), ("zeta", "1"))
        assert event.attr("alpha") == "x"
        assert event.attr("missing") is None

    def test_unknown_kind_rejected(self):
        journal = EventJournal()
        with pytest.raises(ValueError):
            journal.record("made-up-kind", "m")

    def test_render_and_rows_are_json_friendly(self):
        journal = EventJournal()
        journal.advance(7)
        journal.record("slo_alert", "rule: ok -> firing", rule="r")
        rendered = journal.render()
        assert "slo_alert" in rendered and "@7" in rendered
        row = journal.tail(1)[0].to_row()
        json.dumps(row)  # must serialise cleanly
        assert row["kind"] == "slo_alert"

    def test_null_journal_is_a_noop(self):
        assert isinstance(NULL_JOURNAL, NullJournal)
        NULL_JOURNAL.advance(5)
        assert NULL_JOURNAL.record("failover", "ignored") is None
        assert len(NULL_JOURNAL) == 0
        assert NULL_JOURNAL.events_since(0) == []

    def test_process_accessors_swap_and_restore(self):
        journal, restore = _with_journal()
        try:
            assert obs.get_journal() is journal
            obs.get_journal().record("failover", "caught")
            assert len(journal) == 1
        finally:
            restore()
        assert obs.get_journal() is not journal


class TestWireCodec:
    def test_round_trip_preserves_identity_fields(self):
        journal = EventJournal()
        journal.advance(123)
        event = journal.record(
            "plan_apply", "role 0: node 0 -> node 4", trace_id=909
        )
        decoded = decode_event(encode_event(event, 64))
        assert decoded is not None
        assert (decoded.seq, decoded.tick) == (event.seq, event.tick)
        assert decoded.kind == "plan_apply"
        assert decoded.message == "role 0: node 0 -> node 4"
        assert decoded.trace_id == 909

    def test_record_is_exactly_record_bytes(self):
        journal = EventJournal()
        event = journal.record("failover", "x")
        for size in (32, 64, 128):
            assert len(encode_event(event, size)) == size

    def test_long_message_truncated_not_fatal(self):
        journal = EventJournal()
        event = journal.record("failover", "y" * 500)
        decoded = decode_event(encode_event(event, 64))
        assert decoded is not None
        assert decoded.kind == "failover"
        assert decoded.message.startswith("yyy")
        assert len(decoded.message) < 500

    def test_garbage_decodes_to_none(self):
        assert decode_event(b"") is None
        assert decode_event(b"\x00" * 64) is None
        assert decode_event(b"\xff" * 64) is None

    def test_all_known_kinds_survive_the_wire(self):
        journal = EventJournal()
        for kind in KNOWN_KINDS:
            event = journal.record(kind, f"msg-{kind}")
            decoded = decode_event(encode_event(event, 64))
            assert decoded is not None and decoded.kind == kind


class TestControlPlaneJournaling:
    def test_slo_transitions_are_journaled_and_hooks_fire(self):
        journal, restore = _with_journal()
        try:
            registry = obs.MetricsRegistry(enabled=True)
            previous = obs.set_registry(registry)
            try:
                counter = registry.counter("demo_total")
                scraper = obs.MetricsScraper(registry)
                engine = obs.SloEngine(scraper, registry)
                engine.add_rule(
                    obs.SloRule(
                        name="demo-high",
                        expr="demo_total",
                        comparator=">",
                        threshold=5,
                        for_ticks=2,
                    )
                )
                fired = []
                engine.add_fire_hook(
                    lambda alert, tick: fired.append((alert.rule.name, tick))
                )
                engine.evaluate(1)  # ok
                counter.inc(10)
                engine.evaluate(2)  # pending
                engine.evaluate(3)  # firing
                assert fired == [("demo-high", 3)]
                kinds = [e.kind for e in journal]
                assert kinds.count("slo_alert") == 2
                messages = [e.message for e in journal.events(kind="slo_alert")]
                assert any("ok -> pending" in m for m in messages)
                assert any("pending -> firing" in m for m in messages)
            finally:
                obs.set_registry(previous)
        finally:
            restore()

    def test_ring_overwrite_journaled_by_append_translator(self):
        from repro.primitives import AppendStore

        journal, restore = _with_journal()
        try:
            store = AppendStore(capacity=4, record_bytes=8)
            writer = store.register_writer(0)
            writer.append_many([b"r%d" % i for i in range(10)])
            events = journal.events(kind="ring_overwrite")
            assert events, "lapping the ring must journal an overwrite"
            assert sum(int(e.attr("overwritten")) for e in events) == 6
        finally:
            restore()


class TestTraceCorrelation:
    def test_record_defaults_to_the_active_trace(self):
        tracer = obs.Tracer()
        previous = obs.set_tracer(tracer)
        try:
            journal = EventJournal()
            trace_id = tracer.begin("failover", key="role-0")
            with tracer.activate(trace_id):
                event = journal.record("failover", "role 0 moved")
            assert event.trace_id == trace_id
            # Outside any active trace nothing is invented.
            assert journal.record("failover", "later").trace_id is None
            # An explicit id always wins over the ambient one.
            with tracer.activate(trace_id):
                explicit = journal.record("failover", "pinned", trace_id=7)
            assert explicit.trace_id == 7
        finally:
            obs.set_tracer(previous)

    def test_trace_id_surfaces_in_row_and_render(self):
        journal = EventJournal()
        event = journal.record("plan_apply", "node 0 -> 4", trace_id=909)
        assert event.to_row()["trace_id"] == 909
        assert "trace=909" in event.render()
        bare = journal.record("plan_apply", "no trace")
        assert "trace_id" not in bare.to_row()
