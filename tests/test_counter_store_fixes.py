"""Regression tests for the CounterStore read/write-path fixes.

Three bugs fixed alongside the primitive translators:

- ``heavy_hitters`` estimated every candidate twice (double bank reads
  and double ``c_estimates`` ticks);
- ``merge_from`` called ``dma_fetch_add`` directly on the target region,
  bypassing the fabric and NIC so ``total_adds()`` and the health
  reconciliation never saw merges;
- zero-amount adds crafted and sent FETCH_ADD frames that added nothing,
  burning PSNs and inflating ``c_adds``.
"""

import pytest

from repro import obs
from repro.collector.counters import CounterStore
from repro.obs.health import PipelineHealth


def _with_registry():
    registry = obs.MetricsRegistry()
    previous = obs.set_registry(registry)
    return registry, lambda: obs.set_registry(previous)


class TestHeavyHittersSingleEstimate:
    def test_one_estimate_per_candidate(self):
        """Regression: each candidate is estimated exactly once."""
        registry, restore = _with_registry()
        try:
            store = CounterStore(cells_per_row=256, rows=2)
            for i in range(50):
                store.add(("flow", i % 10))
            candidates = [("flow", i) for i in range(10)]
            before = store.c_estimates.value
            hits = store.heavy_hitters(candidates, threshold=1)
            assert store.c_estimates.value - before == len(candidates)
            assert len(hits) == 10
            # Results are (key, estimate) sorted descending by estimate.
            estimates = [estimate for _key, estimate in hits]
            assert estimates == sorted(estimates, reverse=True)
        finally:
            restore()

    def test_reported_estimate_matches_estimate(self):
        store = CounterStore(cells_per_row=256, rows=2)
        store.add(("flow", 1), 9)
        [(key, estimate)] = store.heavy_hitters([("flow", 1)], threshold=5)
        assert estimate == store.estimate(key)


class TestZeroAmountShortCircuit:
    def test_zero_add_moves_nothing(self):
        store = CounterStore(cells_per_row=64, rows=2)
        psn_before = store._psn
        store.add(("flow", 1), 0)
        assert store.c_adds.value == 0
        assert store._psn == psn_before
        assert store.total_adds() == 0
        assert store.craft_add_frames(("flow", 1), 0) == []

    def test_psn_and_c_adds_stay_consistent_through_mixed_batch(self):
        """PSNs advance exactly one per offered frame; c_adds one per
        counted key -- zeros contribute to neither."""
        store = CounterStore(cells_per_row=64, rows=2)
        items = [
            (("flow", 1), 2),
            (("flow", 2), 0),
            (("flow", 3), 1),
            (("flow", 4), 0),
        ]
        offered = store.add_many(items)
        assert offered == 4  # 2 non-zero keys x 2 rows
        assert store._psn == offered
        assert store.c_adds.value == 2
        assert store.total_adds() == offered
        # Scalar path agrees.
        store.add(("flow", 5), 0)
        store.add(("flow", 6), 1)
        assert store._psn == offered + store.rows
        assert store.c_adds.value == 3

    def test_negative_amount_rejected_without_side_effects(self):
        store = CounterStore(cells_per_row=64, rows=1)
        with pytest.raises(ValueError):
            store.add(("flow", 1), -1)
        with pytest.raises(ValueError):
            store.add_many([(("flow", 1), -5)])
        assert store.c_adds.value == 0
        assert store._psn == 0


class TestMergeOnTheWire:
    def test_merge_counts_as_nic_traffic(self):
        """Regression: merge_from used to bypass the fabric and NIC."""
        registry, restore = _with_registry()
        try:
            a = CounterStore(cells_per_row=64, rows=2)
            b = CounterStore(cells_per_row=64, rows=2)
            for i in range(10):
                b.add(("flow", i), 3)
            nonzero = int((b.cell_matrix() != 0).sum())
            adds_before = a.total_adds()
            a.merge_from(b)
            # One NIC-executed FETCH_ADD per non-zero source cell.
            assert a.total_adds() - adds_before == nonzero
            assert a.nic.counters.atomics_executed == nonzero
            health = PipelineHealth.from_registry(registry)
            assert health.atomic_bypass_delta == 0
            assert health.mem_atomics == health.nic_atomics_executed
        finally:
            restore()

    def test_merged_estimates_match_union(self):
        a = CounterStore(cells_per_row=128, rows=2)
        b = CounterStore(cells_per_row=128, rows=2)
        union = CounterStore(cells_per_row=128, rows=2)
        for i in range(60):
            key, amount = ("flow", i % 12), 1 + i % 3
            (a if i % 2 else b).add(key, amount)
            union.add(key, amount)
        a.merge_from(b)
        for i in range(12):
            assert a.estimate(("flow", i)) == union.estimate(("flow", i))

    def test_merge_metrics_count_cells(self):
        registry, restore = _with_registry()
        try:
            a = CounterStore(cells_per_row=64, rows=1)
            b = CounterStore(cells_per_row=64, rows=1)
            b.add(("flow", 1), 5)
            b.add(("flow", 2), 5)
            a.merge_from(b)
            merger = a.merger()
            assert merger.c_merges.value == 1
            assert merger.c_merge_cells.value == int(
                (b.cell_matrix() != 0).sum()
            )
        finally:
            restore()
