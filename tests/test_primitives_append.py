"""The Append primitive: tail reservation, ring wrap, multi-writer safety."""

import pytest

from repro import obs
from repro.fabric import BufferedFabric, ImpairedFabric, InlineFabric
from repro.obs.health import PipelineHealth
from repro.primitives import (
    AppendQueryClient,
    AppendReserveError,
    AppendStore,
)


def _with_registry():
    registry = obs.MetricsRegistry()
    previous = obs.set_registry(registry)
    return registry, lambda: obs.set_registry(previous)


class TestSingleWriter:
    def test_absolute_indexes_are_monotonic(self):
        writer = AppendStore(capacity=8, record_bytes=8).register_writer(0)
        indexes = [writer.append(b"r%d" % i) for i in range(5)]
        assert indexes == [0, 1, 2, 3, 4]

    def test_ring_wrap_keeps_newest_records(self):
        store = AppendStore(capacity=8, record_bytes=8)
        writer = store.register_writer(0)
        records = [i.to_bytes(8, "big") for i in range(14)]
        writer.append_many(records[:6])
        writer.append_many(records[6:])
        snapshot = store.recover()
        assert (snapshot.head, snapshot.tail) == (6, 14)
        assert snapshot.values() == records[6:]
        # 14 appends into capacity 8: the first 6 were overwritten.
        assert writer.c_overwrites.value == 6

    def test_append_and_append_many_interchangeable(self):
        scalar_store = AppendStore(capacity=16, record_bytes=8)
        batch_store = AppendStore(capacity=16, record_bytes=8)
        scalar = scalar_store.register_writer(0)
        batch = batch_store.register_writer(0)
        records = [b"rec-%03d" % i for i in range(10)]
        for record in records:
            scalar.append(record)
        assert batch.append_many(records) == 0  # same first absolute index
        assert scalar_store.records() == batch_store.records()

    def test_oversized_record_rejected(self):
        writer = AppendStore(capacity=8, record_bytes=4).register_writer(0)
        with pytest.raises(ValueError):
            writer.append(b"too-long")

    def test_empty_batch_is_a_noop(self):
        store = AppendStore(capacity=8, record_bytes=8)
        writer = store.register_writer(0)
        assert writer.append_many([]) is None
        assert store.tail() == 0


class TestMultiWriter:
    def test_writers_reserve_disjoint_slots(self):
        store = AppendStore(capacity=64, record_bytes=8)
        writers = [store.register_writer(w) for w in range(3)]
        for round_number in range(5):
            for writer in writers:
                writer.append_many(
                    [b"w%d-%d-%d" % (writer.writer_id, round_number, i)
                     for i in range(3)]
                )
        snapshot = store.recover()
        assert snapshot.tail == 45
        assert len(set(snapshot.values())) == 45  # no slot collisions

    def test_per_writer_insertion_order_survives_interleaving(self):
        """Each writer's records appear in its own submission order."""
        store = AppendStore(capacity=256, record_bytes=8)
        writers = [store.register_writer(w) for w in range(2)]
        expected = {0: [], 1: []}
        for i in range(30):
            writer = writers[i % 2]
            record = b"w%d-%05d" % (writer.writer_id, i)
            expected[writer.writer_id].append(record)
            writer.append(record)
        values = store.recover().values()
        for writer_id, records in expected.items():
            mine = [v for v in values if v.startswith(b"w%d-" % writer_id)]
            assert mine == records


class TestImpairedFabric:
    def test_reservations_retry_through_loss_and_reconcile(self):
        """Lost tail FETCH_ADDs are retried; fabric counters reconcile."""
        registry, restore = _with_registry()
        try:
            # Capacity exceeds the append count so a lost WRITE leaves a
            # zeroed slot rather than a stale record from a previous lap
            # (which would defeat the insertion-order check below).
            fabric = ImpairedFabric(InlineFabric(), loss=0.3, seed=11)
            store = AppendStore(capacity=64, record_bytes=8, fabric=fabric)
            writers = [store.register_writer(w) for w in range(2)]
            expected = {0: [], 1: []}
            for i in range(40):
                writer = writers[i % 2]
                record = b"w%d-%05d" % (writer.writer_id, i)
                expected[writer.writer_id].append(record)
                writer.append(record)

            # Every reservation eventually landed: the tail equals the
            # number of appends even though requests were dropped.
            assert store.tail() == 40
            retries = sum(w.c_reserve_retries.value for w in writers)
            assert retries > 0
            # A retry only ever follows a drop, so the impairment layer
            # must account for at least that many lost frames.
            assert fabric.counters.frames_dropped_loss >= retries

            # Surviving records keep per-writer insertion order (WRITE
            # frames may be lost, so order is checked as a subsequence).
            values = store.recover().values()
            for writer_id, records in expected.items():
                mine = [v for v in values if v.startswith(b"w%d-" % writer_id)]
                iterator = iter(records)
                assert all(record in iterator for record in mine)

            # Cross-layer reconciliation: every atomic the memory saw came
            # through a NIC (no bypass), and the NIC saw exactly what the
            # impairment layer let through.
            health = PipelineHealth.from_registry(registry)
            assert health.atomic_bypass_delta == 0
            assert health.frames_offered - health.frames_lost >= (
                health.nic_frames_received
            )
            assert health.nic_frames_received == health.frames_delivered
        finally:
            restore()

    def test_reserve_gives_up_after_retry_budget(self):
        fabric = ImpairedFabric(InlineFabric(), loss=1.0, seed=3)
        store = AppendStore(capacity=8, record_bytes=8, fabric=fabric)
        writer = store.register_writer(0, max_retries=2)
        with pytest.raises(AppendReserveError):
            writer.append(b"doomed")
        assert writer.c_reserve_retries.value == 2

    def test_buffered_fabric_round_trip(self):
        fabric = BufferedFabric(flush_threshold=4)
        store = AppendStore(capacity=16, record_bytes=8, fabric=fabric)
        writer = store.register_writer(0)
        records = [b"buf-%04d" % i for i in range(10)]
        writer.append_many(records)
        assert store.records() == records


class TestTailFollow:
    def test_first_follow_returns_everything_readable(self):
        store = AppendStore(capacity=8, record_bytes=8)
        writer = store.register_writer(0)
        records = [b"rec-%04d" % i for i in range(5)]
        writer.append_many(records)
        client = AppendQueryClient(store)
        batch = client.follow()
        assert batch is not None
        assert batch.values() == records
        assert (batch.cursor, batch.missed) == (5, 0)
        assert client.cursor == 5

    def test_follow_returns_only_the_delta(self):
        store = AppendStore(capacity=16, record_bytes=8)
        writer = store.register_writer(0)
        writer.append_many([b"old-%04d" % i for i in range(4)])
        client = AppendQueryClient(store)
        client.follow()
        new = [b"new-%04d" % i for i in range(3)]
        writer.append_many(new)
        batch = client.follow()
        assert batch.values() == new
        assert [index for index, _record in batch.records] == [4, 5, 6]
        # Nothing new: an empty batch, cursor parked at the tail.
        assert len(client.follow()) == 0
        assert client.cursor == 7

    def test_lagging_follower_counts_overwritten_records_as_missed(self):
        store = AppendStore(capacity=4, record_bytes=8)
        writer = store.register_writer(0)
        writer.append_many([b"a-%05d" % i for i in range(3)])
        client = AppendQueryClient(store)
        client.follow()  # cursor at 3
        writer.append_many([b"b-%05d" % i for i in range(8)])  # tail 11, head 7
        batch = client.follow()
        assert batch.missed == 4  # absolute indexes 3..6 were lapped
        assert [index for index, _record in batch.records] == [7, 8, 9, 10]
        assert client.c_follow_missed.value == 4

    def test_lost_tail_read_leaves_the_cursor_untouched(self):
        fabric = ImpairedFabric(InlineFabric(), loss=0.0, seed=3)
        store = AppendStore(capacity=8, record_bytes=8, fabric=fabric)
        writer = store.register_writer(0)
        records = [b"rec-%04d" % i for i in range(4)]
        writer.append_many(records)
        client = AppendQueryClient(store)
        fabric.loss = 1.0
        assert client.follow() is None
        assert client.cursor is None
        # Once the wire heals, the next follow picks up from the start.
        fabric.loss = 0.0
        batch = client.follow()
        assert batch is not None and batch.values() == records

    def test_reset_cursor_rewinds_or_fast_forwards(self):
        store = AppendStore(capacity=16, record_bytes=8)
        writer = store.register_writer(0)
        records = [b"rec-%04d" % i for i in range(6)]
        writer.append_many(records)
        client = AppendQueryClient(store)
        client.follow()
        client.reset_cursor()  # back to the ring's head
        assert client.follow().values() == records
        client.reset_cursor(4)  # resume from an absolute index
        assert client.follow().values() == records[4:]


class TestRemoteRecovery:
    def test_remote_snapshot_matches_local_recover(self):
        store = AppendStore(capacity=8, record_bytes=8)
        writer = store.register_writer(0)
        writer.append_many([b"rec-%03d" % i for i in range(12)])
        client = AppendQueryClient(store)
        snapshot = client.snapshot()
        local = store.recover()
        assert snapshot is not None
        assert (snapshot.head, snapshot.tail) == (local.head, local.tail)
        assert snapshot.records == local.records
        assert client.tail() == 12
