"""Tests for collector hosts, the store facade, counters and epochs."""

import pytest

from repro.core.config import DartConfig
from repro.core.policies import QueryOutcome, ReturnPolicy
from repro.collector.collector import Collector, CollectorCluster
from repro.collector.counters import CounterStore
from repro.collector.epochs import EpochArchive, EpochImageMissingError, EpochManager
from repro.collector.store import DartStore


def small_config(**kwargs):
    defaults = dict(
        slots_per_collector=1 << 10, num_collectors=2, redundancy=2, value_bytes=8
    )
    defaults.update(kwargs)
    return DartConfig(**defaults)


class TestCollector:
    def test_construction_and_endpoint(self):
        config = small_config()
        collector = Collector(config, collector_id=1)
        endpoint = collector.endpoint
        assert endpoint.collector_id == 1
        assert endpoint.qp_number == 0x101
        assert endpoint.rkey == 0x1001
        assert endpoint.base_address == 0x100000
        assert endpoint.sram_bytes == 25

    def test_collector_id_validated(self):
        with pytest.raises(ValueError):
            Collector(small_config(num_collectors=2), collector_id=2)

    def test_slot_read_write(self):
        config = small_config()
        collector = Collector(config, 0)
        payload = b"\x01" * config.slot_bytes
        collector.write_slot(5, payload)
        assert collector.read_slot(5) == payload
        assert collector.read_slot(6) == b"\x00" * config.slot_bytes

    def test_slot_bounds_validated(self):
        config = small_config(slots_per_collector=16)
        collector = Collector(config, 0)
        with pytest.raises(ValueError):
            collector.read_slot(16)
        with pytest.raises(ValueError):
            collector.write_slot(-1, b"\x00" * config.slot_bytes)
        with pytest.raises(ValueError):
            collector.write_slot(0, b"\x00")  # wrong size

    def test_clear(self):
        config = small_config()
        collector = Collector(config, 0)
        collector.write_slot(0, b"\xff" * config.slot_bytes)
        collector.clear()
        assert collector.read_slot(0) == b"\x00" * config.slot_bytes


class TestCollectorCluster:
    def test_fleet_size_and_iteration(self):
        cluster = CollectorCluster(small_config(num_collectors=3))
        assert len(cluster) == 3
        assert [c.collector_id for c in cluster] == [0, 1, 2]
        assert cluster[2].collector_id == 2

    def test_endpoints_table(self):
        cluster = CollectorCluster(small_config(num_collectors=3))
        endpoints = cluster.endpoints()
        assert set(endpoints) == {0, 1, 2}
        assert len({e.ip for e in endpoints.values()}) == 3

    def test_total_memory(self):
        config = small_config(slots_per_collector=100, num_collectors=2)
        cluster = CollectorCluster(config)
        assert cluster.total_memory_bytes() == 2 * 100 * config.slot_bytes


class TestDartStore:
    def test_put_get_roundtrip(self):
        store = DartStore(small_config())
        assert store.put(b"flow-1", b"value-1") == 2
        result = store.get(b"flow-1")
        assert result.answered
        assert result.value == b"value-1\x00"

    def test_get_value_none_on_miss(self):
        store = DartStore(small_config())
        assert store.get_value(b"missing") is None

    def test_tuple_keys(self):
        store = DartStore(small_config())
        five_tuple = ("10.0.0.1", "10.0.0.2", 5000, 80, 6)
        store.put(five_tuple, b"trace")
        assert store.get(five_tuple).answered

    def test_policy_override(self):
        store = DartStore(small_config(), policy=ReturnPolicy.PLURALITY)
        store.put(b"k", b"v")
        assert store.get(b"k", policy=ReturnPolicy.CONSENSUS_2).answered

    def test_counters_and_load_factor(self):
        store = DartStore(small_config())
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        store.get(b"a")
        assert store.puts == 2 and store.gets == 1
        assert store.load_factor() == 2 / 2048
        assert store.load_factor(live_keys=100) == 100 / 2048

    def test_memory_bytes(self):
        config = small_config()
        store = DartStore(config)
        assert store.memory_bytes == config.total_slots * config.slot_bytes

    def test_clear(self):
        store = DartStore(small_config())
        store.put(b"k", b"v")
        store.clear()
        assert store.get(b"k").outcome is QueryOutcome.EMPTY

    def test_packet_level_mode_equivalent(self):
        """Packet-level writes yield byte-identical state to in-process."""
        config = small_config(num_collectors=1)
        fast = DartStore(config)
        wire = DartStore(config, packet_level=True)
        for i in range(50):
            key = ("flow", i)
            value = i.to_bytes(8, "big")
            fast.put(key, value)
            assert wire.put(key, value) == 2
        assert (
            fast.cluster[0].region.snapshot() == wire.cluster[0].region.snapshot()
        )

    def test_packet_level_queryable(self):
        store = DartStore(small_config(), packet_level=True)
        store.put(b"k", b"v")
        assert store.get(b"k").answered


class TestCounterStore:
    def test_single_row_counts(self):
        counters = CounterStore(cells_per_row=1 << 12, rows=1)
        for _ in range(5):
            counters.add(b"flow-a")
        counters.add(b"flow-b", amount=3)
        assert counters.estimate(b"flow-a") == 5
        assert counters.estimate(b"flow-b") == 3
        assert counters.estimate(b"flow-never") == 0
        assert counters.total_adds() == 6

    def test_count_min_multiple_rows(self):
        counters = CounterStore(cells_per_row=1 << 10, rows=3)
        counters.add(b"x", amount=7)
        assert counters.estimate(b"x") == 7
        assert counters.total_adds() == 3  # one FETCH_ADD per row

    def test_estimates_are_upper_bounds(self):
        """Collisions can only inflate counts, never deflate them."""
        counters = CounterStore(cells_per_row=8, rows=2)  # force collisions
        truth = {}
        for i in range(50):
            key = ("flow", i % 10)
            counters.add(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert counters.estimate(key) >= count

    def test_aggregation_across_switches(self):
        """Atomic adds from different reporters commute (sketch merging)."""
        counters = CounterStore(cells_per_row=1 << 10, rows=2)
        # Two 'switches' crafting frames independently.
        frames = counters.craft_add_frames(b"flow", 2) + counters.craft_add_frames(
            b"flow", 3
        )
        for frame in frames:
            assert counters.nic.receive_frame(frame)
        assert counters.estimate(b"flow") == 5

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CounterStore(cells_per_row=0)
        with pytest.raises(ValueError):
            CounterStore(rows=0)
        with pytest.raises(ValueError):
            CounterStore().craft_add_frames(b"k", amount=-1)


class TestEpochs:
    def test_rotation_archives_and_clears(self):
        config = small_config(num_collectors=1)
        cluster = CollectorCluster(config)
        archive = EpochArchive(config)
        manager = EpochManager(list(cluster), archive, reports_per_epoch=2)

        store = DartStore(config)
        store.cluster = cluster  # share the collectors
        store.client._reader = cluster.read_slot

        cluster[0].write_slot(0, b"\xaa" * config.slot_bytes)
        assert manager.note_report() is None
        assert manager.note_report() == 0  # boundary crossed, epoch 0 archived
        assert manager.current_epoch == 1
        assert cluster[0].read_slot(0) == b"\x00" * config.slot_bytes
        assert archive.epochs() == [0]

    def test_historical_query_against_archive(self):
        config = small_config(num_collectors=1)
        cluster = CollectorCluster(config)
        archive = EpochArchive(config)
        manager = EpochManager(list(cluster), archive, reports_per_epoch=10)

        from repro.core.reporter import DartReporter

        reporter = DartReporter(config)
        for write in reporter.writes_for(b"old-flow", b"old-path"):
            cluster[write.collector_id].write_slot(write.slot_index, write.payload)
        manager.rotate()

        # Live region is now empty; the archive still answers.
        result = archive.query(0, b"old-flow")
        assert result.answered
        assert result.value == b"old-path"

    def test_disk_backed_archive(self, tmp_path):
        config = small_config(num_collectors=1)
        archive = EpochArchive(config, directory=tmp_path)
        image = bytes(config.region_bytes)
        archive.store(3, 0, image)
        assert archive.load(3, 0) == image
        assert archive.epochs() == [3]
        with pytest.raises(KeyError):
            archive.load(4, 0)

    def test_memory_archive_missing_epoch(self):
        archive = EpochArchive(small_config())
        with pytest.raises(KeyError):
            archive.load(0, 0)

    def test_invalid_manager(self):
        config = small_config()
        with pytest.raises(ValueError):
            EpochManager([], EpochArchive(config), reports_per_epoch=0)
        manager = EpochManager([], EpochArchive(config), reports_per_epoch=5)
        with pytest.raises(ValueError):
            manager.note_report(-1)


class TestFailureInjection:
    def test_dead_host_blackholes_everything(self):
        config = small_config()
        collector = Collector(config, collector_id=0)
        collector.fail()
        assert not collector.alive
        assert collector.receive_frame(b"\x00" * 64) is False
        assert collector.ingest_many([b"\x00" * 64, b"\x01" * 64]) == 0
        assert collector.transmit() == []
        assert collector.nic.counters.frames_received == 0  # NIC untouched

    def test_recover_restores_the_ingest_path(self):
        config = small_config()
        collector = Collector(config, collector_id=0)
        collector.fail()
        collector.recover()
        assert collector.alive
        # A garbage frame now reaches the NIC (and is rejected *by* it).
        collector.receive_frame(b"\x00" * 64)
        assert collector.nic.counters.frames_received == 1


class TestClusterRoleMap:
    def make_cluster(self, num_standbys=1, **kwargs):
        return CollectorCluster(
            small_config(**kwargs), num_standbys=num_standbys
        )

    def test_standby_construction(self):
        cluster = self.make_cluster(num_standbys=2)
        assert len(cluster) == 2  # keyspace size, not host count
        assert [n.collector_id for n in cluster.standbys] == [2, 3]
        assert [n.collector_id for n in cluster.all_nodes] == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            CollectorCluster(small_config(), num_standbys=-1)
        # Standby node IDs may exceed the keyspace; negatives may not.
        Collector(small_config(), collector_id=5, standby=True)
        with pytest.raises(ValueError):
            Collector(small_config(), collector_id=-1, standby=True)

    def test_promote_moves_the_role(self):
        cluster = self.make_cluster()
        displaced = cluster.promote(0, 2)
        assert displaced.collector_id == 0
        assert cluster.node_for(0).collector_id == 2
        assert cluster.standbys == []
        assert cluster.role_of(2) == 0
        assert cluster.role_of(0) is None
        # Role-keyed accessors all resolve through the live map.
        assert cluster.collectors[0].collector_id == 2
        assert cluster[0].collector_id == 2
        assert cluster.endpoints()[0].ip == cluster.node(2).nic.ip

    def test_promote_validation(self):
        cluster = self.make_cluster()
        with pytest.raises(ValueError, match="outside"):
            cluster.promote(5, 2)
        with pytest.raises(ValueError, match="not an available standby"):
            cluster.promote(0, 1)  # node 1 serves a role, it is no spare

    def test_withdraw_removes_a_spare(self):
        cluster = self.make_cluster()
        withdrawn = cluster.withdraw(2)
        assert withdrawn.collector_id == 2
        assert cluster.standbys == []
        with pytest.raises(ValueError, match="not in the standby pool"):
            cluster.withdraw(2)

    def test_readmit_requires_recovered_roleless_host(self):
        cluster = self.make_cluster()
        cluster.promote(0, 2)
        node = cluster.node(0)
        node.fail()
        with pytest.raises(ValueError, match="has not recovered"):
            cluster.readmit(0)
        node.recover()
        node.write_slot(0, b"\xaa" * cluster.config.slot_bytes)
        cluster.readmit(0)
        # Readmission zeroes the region: the missed epoch is lost.
        assert node.read_slot(0) == b"\x00" * cluster.config.slot_bytes
        assert cluster.standbys == [node]
        with pytest.raises(ValueError, match="already a standby"):
            cluster.readmit(0)
        with pytest.raises(ValueError, match="still serving"):
            cluster.readmit(2)

    def test_node_lookup_errors(self):
        cluster = self.make_cluster()
        with pytest.raises(KeyError, match="no collector node 9"):
            cluster.node(9)

    def test_read_slot_follows_the_role_map(self):
        cluster = self.make_cluster()
        marker = b"\x42" * cluster.config.slot_bytes
        cluster.node(2).write_slot(7, marker)
        cluster.promote(1, 2)
        assert cluster.read_slot(1, 7) == marker


class TestEpochImageMissingError:
    def test_disk_archive_error_names_the_path(self, tmp_path):
        config = small_config(num_collectors=1)
        archive = EpochArchive(config, directory=tmp_path)
        with pytest.raises(EpochImageMissingError) as excinfo:
            archive.load(7, 0)
        error = excinfo.value
        assert error.epoch == 7
        assert error.collector_id == 0
        assert error.path is not None
        message = str(error)
        assert "collector 0" in message
        assert "epoch 7" in message
        assert str(error.path) in message

    def test_memory_archive_error_has_no_path(self):
        archive = EpochArchive(small_config(num_collectors=1))
        with pytest.raises(EpochImageMissingError) as excinfo:
            archive.load(3, 1)
        error = excinfo.value
        assert error.epoch == 3
        assert error.collector_id == 1
        assert error.path is None
        assert "expected" not in str(error)

    def test_is_a_key_error(self):
        # Pre-existing handlers catch KeyError; the subclass keeps working.
        archive = EpochArchive(small_config(num_collectors=1))
        assert issubclass(EpochImageMissingError, KeyError)
        with pytest.raises(KeyError):
            archive.load(0, 0)
