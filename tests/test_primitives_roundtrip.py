"""End-to-end round trips of all three primitives over every fabric kind.

The same workloads run over inline, buffered and impaired transports;
exact-equality cases use a reorder-only impairment (no loss), and the
lossy cases check the measured outcome against the section-4-style
models in :mod:`repro.primitives.theory`.
"""

import numpy as np
import pytest

from repro import obs
from repro.fabric import BufferedFabric, ImpairedFabric, InlineFabric
from repro.obs.health import PipelineHealth
from repro.primitives import (
    AppendStore,
    CounterQueryClient,
    SketchStore,
    SwitchSketch,
    theory,
)
from repro.collector.counters import CounterStore


def _make_fabric(kind):
    if kind == "inline":
        return InlineFabric()
    if kind == "buffered":
        return BufferedFabric(flush_threshold=16)
    # Reorder-only: exercises the impairment layer without losing or
    # double-applying any FETCH_ADD, so exact equalities still hold.
    return ImpairedFabric(InlineFabric(), reordering=0.5, seed=5)


FABRICS = ["inline", "buffered", "impaired"]


@pytest.mark.parametrize("kind", FABRICS)
class TestRoundTrips:
    def test_append_round_trip(self, kind):
        store = AppendStore(capacity=32, record_bytes=8, fabric=_make_fabric(kind))
        writers = [store.register_writer(w) for w in range(2)]
        records = [b"k%d-%05d" % (i % 2, i) for i in range(20)]
        for i, record in enumerate(records):
            writers[i % 2].append(record)
        assert store.tail() == 20
        assert sorted(store.records()) == sorted(records)

    def test_key_increment_round_trip(self, kind):
        store = CounterStore(
            cells_per_row=1 << 10, rows=3, fabric=_make_fabric(kind)
        )
        truth = {}
        items = []
        for i in range(300):
            key = ("flow", i % 40)
            amount = 1 + i % 5
            truth[key] = truth.get(key, 0) + amount
            items.append((key, amount))
        store.add_many(items)
        for key, exact in truth.items():
            assert store.estimate(key) >= exact  # never undercounts
        assert store.total_count() == sum(truth.values())

    def test_sketch_merge_round_trip(self, kind):
        sketch = SwitchSketch(cells_per_row=256, rows=2)
        sketch.update_many([(("flow", i % 20), 1 + i % 3) for i in range(100)])
        store = SketchStore(cells_per_row=256, rows=2, fabric=_make_fabric(kind))
        store.merge_sketch(sketch)
        # Cell-wise identical to the switch-resident matrix.
        assert np.array_equal(store.cell_matrix(), sketch.cells)
        for i in range(20):
            key = ("flow", i)
            assert store.estimate(key) == sketch.estimate(key)


class TestSketchMergeEqualsLocal:
    def test_wire_merge_matches_direct_adds(self):
        """Merging two switch sketches over the wire equals counting the
        union stream directly -- cell for cell."""
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            shape = dict(cells_per_row=512, rows=2)
            site_a, site_b = SwitchSketch(**shape), SwitchSketch(**shape)
            combined = CounterStore(**shape)
            for i in range(200):
                key, amount = ("flow", i % 30), 1 + i % 4
                (site_a if i % 2 else site_b).update(key, amount)
                combined.add(key, amount)
            merged = SketchStore(**shape)
            merged.merge_sketch(site_a)
            merged.merge_sketch(site_b)
            assert np.array_equal(merged.cell_matrix(), combined.cell_matrix())
            # Both banks were fed exclusively through NIC-executed atomics.
            assert PipelineHealth.from_registry(registry).atomic_bypass_delta == 0
        finally:
            obs.set_registry(previous)


class TestTheoryChecks:
    def test_count_min_within_epsilon_delta(self):
        """Measured violation rate stays within the (epsilon, delta) bound."""
        store = CounterStore(cells_per_row=256, rows=3)
        epsilon, delta = store.error_bound()
        assert (epsilon, delta) == theory.count_min_bounds(256, 3)
        rng = np.random.default_rng(7)
        truth = {}
        items = []
        for key_id in rng.zipf(1.3, size=2000):
            key = ("flow", int(key_id) % 500)
            truth[key] = truth.get(key, 0) + 1
            items.append((key, 1))
        store.add_many(items)
        estimates = {key: store.estimate(key) for key in truth}
        rate = theory.count_min_violation_rate(
            truth, estimates, sum(truth.values()), epsilon
        )
        # delta = e^-3 ~ 0.0498; leave headroom for the single hash draw.
        assert rate <= 2 * delta

    def test_ring_recovery_matches_loss_model(self):
        """Readable records after loss + lapping track the closed form."""
        appends, capacity, loss = 400, 128, 0.2
        fabric = ImpairedFabric(InlineFabric(), loss=loss, seed=21)
        store = AppendStore(capacity=capacity, record_bytes=8, fabric=fabric)
        writer = store.register_writer(0)
        marker = b"\xAAREC"
        for i in range(appends):
            writer.append(marker + i.to_bytes(4, "big"))
        # A slot is readable only if it holds the record reserved for its
        # absolute index -- a lost WRITE leaves the previous lap's record
        # (or zeros), which the index check rejects.
        snapshot = store.recover()
        readable = sum(
            1
            for index, value in snapshot.records
            if value == marker + index.to_bytes(4, "big")
        )
        predicted = theory.expected_readable_records(appends, capacity, loss)
        # Binomial noise around capacity * (1 - loss): allow ~4 sigma.
        sigma = (capacity * loss * (1 - loss)) ** 0.5
        assert abs(readable - predicted) <= 4 * sigma
        assert theory.ring_overwritten_fraction(appends, capacity) == (
            (appends - capacity) / appends
        )

    def test_remote_estimates_match_local(self):
        store = CounterStore(cells_per_row=512, rows=2)
        store.add_many([(("flow", i % 25), 2) for i in range(100)])
        client = CounterQueryClient(store)
        for i in range(25):
            key = ("flow", i)
            assert client.estimate(key) == store.estimate(key)
