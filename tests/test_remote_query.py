"""Tests for RDMA READ support and zero-CPU remote queries."""

import pytest

from repro.core.config import DartConfig
from repro.core.policies import QueryOutcome, ReturnPolicy
from repro.core.reporter import DartReporter
from repro.collector.collector import CollectorCluster
from repro.collector.remote_query import RemoteQueryClient
from repro.mem.region import MemoryRegion
from repro.rdma.nic import RdmaNic
from repro.rdma.packets import (
    Aeth,
    Bth,
    Opcode,
    Reth,
    RoceV2Packet,
)
from repro.rdma.qp import PsnPolicy, QueuePair


class TestAeth:
    def test_roundtrip(self):
        aeth = Aeth(syndrome=0x1F, msn=0x123456)
        assert Aeth.unpack(aeth.pack()) == aeth
        assert len(aeth.pack()) == 4

    def test_msn_bounds(self):
        with pytest.raises(ValueError):
            Aeth(msn=1 << 24).pack()

    def test_packet_with_aeth_roundtrips(self):
        packet = RoceV2Packet(
            bth=Bth(opcode=int(Opcode.RC_RDMA_READ_RESPONSE_ONLY), dest_qp=1, psn=3),
            aeth=Aeth(syndrome=0, msn=7),
            payload=b"slotdata",
        )
        decoded = RoceV2Packet.unpack(packet.pack())
        assert decoded.aeth == Aeth(syndrome=0, msn=7)
        assert decoded.payload == b"slotdata"

    def test_missing_aeth_rejected(self):
        packet = RoceV2Packet(
            bth=Bth(opcode=int(Opcode.RC_RDMA_READ_RESPONSE_ONLY), dest_qp=1)
        )
        with pytest.raises(ValueError, match="AETH"):
            packet.pack()


class TestNicReads:
    def make_nic(self):
        region = MemoryRegion(size=256, base_address=0x1000, rkey=0x42)
        nic = RdmaNic(region)
        nic.create_queue_pair(QueuePair(qp_number=9, policy=PsnPolicy.IGNORE))
        return nic, region

    def read_request(self, va=0x1000, length=8, rkey=0x42, psn=0):
        return RoceV2Packet(
            bth=Bth(opcode=int(Opcode.RC_RDMA_READ_REQUEST), dest_qp=9, psn=psn),
            reth=Reth(virtual_address=va, rkey=rkey, dma_length=length),
        )

    def test_read_returns_memory(self):
        nic, region = self.make_nic()
        region.dma_write(0x1008, b"telemetry")
        assert nic.receive_frame(self.read_request(va=0x1008, length=9).pack())
        responses = nic.transmit()
        assert len(responses) == 1
        response = RoceV2Packet.unpack(responses[0])
        assert response.bth.opcode == Opcode.RC_RDMA_READ_RESPONSE_ONLY
        assert response.payload == b"telemetry"
        assert response.aeth is not None
        assert nic.counters.reads_executed == 1
        assert nic.counters.responses_emitted == 1

    def test_response_echoes_psn(self):
        nic, _ = self.make_nic()
        nic.receive_frame(self.read_request(psn=0x1234).pack())
        response = RoceV2Packet.unpack(nic.transmit()[0])
        assert response.bth.psn == 0x1234

    def test_read_bad_rkey_dropped_silently(self):
        nic, _ = self.make_nic()
        assert not nic.receive_frame(self.read_request(rkey=0x43).pack())
        assert nic.transmit() == []
        assert nic.counters.dropped_access == 1

    def test_read_out_of_bounds_dropped(self):
        nic, _ = self.make_nic()
        assert not nic.receive_frame(self.read_request(va=0x10F9, length=16).pack())
        assert nic.transmit() == []

    def test_transmit_drains(self):
        nic, _ = self.make_nic()
        nic.receive_frame(self.read_request(psn=0).pack())
        nic.receive_frame(self.read_request(psn=1).pack())
        assert len(nic.transmit()) == 2
        assert nic.transmit() == []

    def test_msn_advances(self):
        nic, _ = self.make_nic()
        nic.receive_frame(self.read_request(psn=0).pack())
        nic.receive_frame(self.read_request(psn=1).pack())
        first, second = [RoceV2Packet.unpack(f) for f in nic.transmit()]
        assert second.aeth.msn == first.aeth.msn + 1


class TestRemoteQueryClient:
    def make_deployment(self, **kwargs):
        defaults = dict(
            slots_per_collector=1 << 10, num_collectors=2, value_bytes=8
        )
        defaults.update(kwargs)
        config = DartConfig(**defaults)
        cluster = CollectorCluster(config)
        reporter = DartReporter(config)
        return config, cluster, reporter

    def write(self, cluster, reporter, key, value):
        for write in reporter.writes_for(key, value):
            cluster[write.collector_id].write_slot(write.slot_index, write.payload)

    def test_remote_query_roundtrip(self):
        config, cluster, reporter = self.make_deployment()
        self.write(cluster, reporter, b"flow-1", b"path-abc")
        client = RemoteQueryClient(config, cluster)
        result = client.query(b"flow-1")
        assert result.answered
        assert result.value == b"path-abc"
        assert result.matches == 2
        assert client.read_requests_sent == 2

    def test_remote_matches_local(self):
        """Remote READ-based queries agree with the local query path."""
        from repro.core.client import DartQueryClient

        config, cluster, reporter = self.make_deployment()
        for i in range(100):
            self.write(cluster, reporter, ("f", i), i.to_bytes(8, "big"))
        local = DartQueryClient(config, reader=cluster.read_slot)
        remote = RemoteQueryClient(config, cluster)
        for i in range(100):
            local_result = local.query(("f", i))
            remote_result = remote.query(("f", i))
            assert local_result.answered == remote_result.answered
            assert local_result.value == remote_result.value

    def test_missing_key_empty(self):
        config, cluster, _ = self.make_deployment()
        client = RemoteQueryClient(config, cluster)
        assert client.query(b"nothing").outcome is QueryOutcome.EMPTY
        assert client.query_value(b"nothing") is None

    def test_policy_override(self):
        config, cluster, reporter = self.make_deployment()
        self.write(cluster, reporter, b"k", b"v")
        client = RemoteQueryClient(config, cluster, policy=ReturnPolicy.PLURALITY)
        assert client.query(b"k", policy=ReturnPolicy.CONSENSUS_2).answered

    def test_zero_collector_cpu(self):
        """The whole loop never invokes a collector-side slot read."""
        config, cluster, reporter = self.make_deployment(num_collectors=1)
        self.write(cluster, reporter, b"k", b"v")
        client = RemoteQueryClient(config, cluster)
        # Counting local reads: monkey-patch read_slot to detect use.
        calls = []
        original = cluster[0].read_slot
        cluster[0].read_slot = lambda idx: calls.append(idx) or original(idx)
        assert client.query(b"k").answered
        assert calls == []  # queries never touched the local read path

    def test_operator_ids_isolated(self):
        config, cluster, reporter = self.make_deployment()
        self.write(cluster, reporter, b"k", b"v")
        a = RemoteQueryClient(config, cluster, operator_id=1)
        b = RemoteQueryClient(config, cluster, operator_id=2)
        assert a.query(b"k").answered
        assert b.query(b"k").answered  # separate QPs, no PSN interference

    def test_invalid_operator_id(self):
        config, cluster, _ = self.make_deployment()
        with pytest.raises(ValueError):
            RemoteQueryClient(config, cluster, operator_id=-1)


class TestLossyRemoteQueries:
    """The operator side is a reliable requester: retries recover loss."""

    def make(self, loss_probability, max_retries):
        from repro.network.simulation import LossModel

        config = DartConfig(
            slots_per_collector=1 << 10, num_collectors=1, value_bytes=8
        )
        cluster = CollectorCluster(config)
        reporter = DartReporter(config)
        for i in range(100):
            for write in reporter.writes_for(("f", i), i.to_bytes(8, "big")):
                cluster[write.collector_id].write_slot(
                    write.slot_index, write.payload
                )
        return RemoteQueryClient(
            config,
            cluster,
            loss=LossModel(loss_probability, seed=3),
            max_retries=max_retries,
        )

    def test_no_retries_loss_degrades_queries(self):
        client = self.make(loss_probability=0.4, max_retries=0)
        answered = sum(client.query(("f", i)).answered for i in range(100))
        assert answered < 95  # loss visibly hurts

    def test_retries_recover_lost_reads(self):
        # Per attempt both legs must survive (0.6^2 = 0.36); with 9
        # attempts a slot read fails with prob 0.64^9 ~ 2%, and a query
        # needs just one of its two slot reads.
        client = self.make(loss_probability=0.4, max_retries=8)
        answered = sum(client.query(("f", i)).answered for i in range(100))
        assert answered >= 99
        assert client.retries_performed > 0

    def test_retry_validation(self):
        config = DartConfig(slots_per_collector=64, num_collectors=1)
        cluster = CollectorCluster(config)
        with pytest.raises(ValueError):
            RemoteQueryClient(config, cluster, max_retries=-1)
