"""Tests for the INT header codecs and the packet-level INT network."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import DartConfig
from repro.network.flows import FlowGenerator
from repro.network.packet_sim import PacketLevelIntNetwork
from repro.network.simulation import decode_path
from repro.network.topology import FatTreeTopology
from repro.telemetry.int_headers import (
    IntDecodeError,
    IntShim,
    IntStack,
    new_probe,
)


class TestIntShim:
    def test_roundtrip(self):
        shim = IntShim(hop_metadata_words=1, remaining_hops=5, stack_words=3)
        assert IntShim.unpack(shim.pack()) == shim
        assert len(shim.pack()) == 6

    def test_bad_version_rejected(self):
        corrupted = bytearray(IntShim().pack())
        corrupted[0] = 9
        with pytest.raises(IntDecodeError, match="version"):
            IntShim.unpack(bytes(corrupted))

    def test_truncated_rejected(self):
        with pytest.raises(IntDecodeError):
            IntShim.unpack(b"\x02\x01")


class TestIntStack:
    def test_push_and_travel_order(self):
        stack = new_probe(b"data", max_hops=5)
        for switch_id in (10, 20, 30):
            assert stack.push_hop(switch_id)
        # Stack top holds the latest hop; travel order is reversed.
        assert stack.hop_words == [30, 20, 10]
        assert stack.travel_path() == [10, 20, 30]

    def test_pack_unpack_roundtrip(self):
        stack = new_probe(b"payload", max_hops=6)
        stack.push_hop(7)
        stack.push_hop(8)
        decoded = IntStack.unpack(stack.pack())
        assert decoded.travel_path() == [7, 8]
        assert decoded.user_payload == b"payload"
        assert decoded.shim.remaining_hops == 4

    def test_budget_exhaustion(self):
        stack = new_probe(max_hops=2)
        assert stack.push_hop(1)
        assert stack.push_hop(2)
        assert not stack.push_hop(3)  # budget spent
        assert stack.travel_path() == [1, 2]

    def test_strip(self):
        stack = new_probe(b"user", max_hops=4)
        stack.push_hop(5)
        path, payload = stack.strip()
        assert path == [5]
        assert payload == b"user"

    def test_truncated_stack_rejected(self):
        stack = new_probe(max_hops=4)
        stack.push_hop(1)
        wire = stack.pack()
        with pytest.raises(IntDecodeError, match="stack"):
            IntStack.unpack(wire[:7])

    def test_probe_validation(self):
        with pytest.raises(ValueError):
            new_probe(max_hops=0)
        with pytest.raises(ValueError):
            new_probe(max_hops=300)

    @given(
        hops=st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=8),
        payload=st.binary(max_size=32),
    )
    def test_roundtrip_property(self, hops, payload):
        stack = new_probe(payload, max_hops=max(len(hops), 1))
        recorded = [h for h in hops if stack.push_hop(h)]
        decoded = IntStack.unpack(stack.pack())
        assert decoded.travel_path() == recorded
        assert decoded.user_payload == payload


class TestPacketLevelNetwork:
    @pytest.fixture(scope="class")
    def network(self):
        tree = FatTreeTopology(k=4)
        config = DartConfig(slots_per_collector=1 << 12, num_collectors=2)
        return PacketLevelIntNetwork(tree, config), tree

    def test_packet_records_true_path(self, network):
        net, tree = network
        flow = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=0).uniform(1)[0]
        result = net.send(flow, b"hello")
        expected = tree.path(flow.src_host, flow.dst_host, flow.five_tuple)
        assert result.recorded_path == expected
        assert result.delivered_payload == b"hello"
        assert result.report_frames == net.config.redundancy

    def test_path_queryable_after_delivery(self, network):
        net, tree = network
        flows = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=1).uniform(40)
        expectations = {}
        for flow in flows:
            result = net.send(flow)
            expectations[flow.five_tuple] = result.recorded_path
        for flow in flows:
            query = net.query_path(flow)
            assert query.answered
            assert decode_path(query.value) == expectations[flow.five_tuple]

    def test_cross_pod_is_five_hops(self, network):
        net, tree = network
        # hosts 0 and 15 are in different pods of a k=4 tree.
        flow = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=2).uniform(1)[0]
        flow = type(flow)(
            src_ip=tree.host_ip(0),
            dst_ip=tree.host_ip(15),
            src_port=40000,
            dst_port=80,
            protocol=6,
            src_host=0,
            dst_host=15,
        )
        result = net.send(flow)
        assert len(result.recorded_path) == 5

    def test_transit_counters(self, network):
        net, tree = network
        before = sum(t.packets_seen for t in net.transits.values())
        flow = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=3).uniform(1)[0]
        result = net.send(flow)
        after = sum(t.packets_seen for t in net.transits.values())
        # Every non-sink hop processed the packet exactly once.
        assert after - before == len(result.recorded_path) - 1

    def test_hop_budget_truncates_long_recording(self):
        tree = FatTreeTopology(k=4)
        config = DartConfig(slots_per_collector=1 << 10, num_collectors=1)
        net = PacketLevelIntNetwork(tree, config, max_int_hops=2)
        flow = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=4).uniform(1)[0]
        # Pick a cross-pod flow (5 switch hops) to exceed the budget.
        flow = type(flow)(
            src_ip=tree.host_ip(1),
            dst_ip=tree.host_ip(14),
            src_port=41000,
            dst_port=443,
            protocol=6,
            src_host=1,
            dst_host=14,
        )
        result = net.send(flow)
        assert len(result.recorded_path) == 2  # only the first two hops fit
