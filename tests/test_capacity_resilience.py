"""Tests for the capacity model and placement-resilience experiments."""

import pytest

from repro.network.capacity import (
    RNIC_MESSAGES_PER_SEC,
    collector_capacity_rows,
    simulate_ingestion,
    storm_comparison_rows,
)
from repro.experiments.resilience import (
    failure_unreadable_fraction,
    resilience_rows,
)


class TestCollectorCapacity:
    def test_dart_orders_of_magnitude_ahead(self):
        """Paper section 2: the RNIC rate is 'significantly faster than
        CPU-based telemetry collectors'."""
        rows = {r["stack"]: r for r in collector_capacity_rows()}
        dart = rows["DART (RNIC DMA)"]["reports_per_sec_per_host"]
        confluo = rows["DPDK + Confluo"]["reports_per_sec_per_host"]
        kafka = rows["sockets + Kafka"]["reports_per_sec_per_host"]
        assert dart == RNIC_MESSAGES_PER_SEC
        assert dart > 50 * confluo  # orders of magnitude
        assert confluo > kafka  # Confluo stack beats Kafka stack

    def test_host_counts_for_datacenter(self):
        rows = {r["stack"]: r for r in collector_capacity_rows()}
        # 10K switches at 1M reports/s = 1e10 reports/s total.
        assert rows["DART (RNIC DMA)"]["hosts_for_10k_switches_1mps"] == 50
        assert rows["DPDK + Confluo"]["hosts_for_10k_switches_1mps"] > 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            collector_capacity_rows(cores_per_collector=0)
        with pytest.raises(ValueError):
            collector_capacity_rows(cpu_ghz=0)


class TestIngestionQueue:
    def test_underload_all_delivered(self):
        result = simulate_ingestion([10] * 100, capacity_per_slot=20, queue_limit=100)
        assert result.delivered == result.offered == 1000
        assert result.dropped == 0

    def test_overload_drops(self):
        result = simulate_ingestion([100] * 10, capacity_per_slot=10, queue_limit=50)
        assert result.dropped > 0
        assert result.delivered + result.dropped == result.offered
        assert result.delivered_fraction < 1.0

    def test_burst_absorbed_by_queue(self):
        """A short burst within queue capacity loses nothing."""
        offered = [10] * 40 + [50] + [0] * 10
        result = simulate_ingestion(offered, capacity_per_slot=12, queue_limit=100)
        assert result.dropped == 0
        assert result.peak_queue > 0

    def test_conservation(self):
        offered = [7, 0, 93, 12, 0, 55]
        result = simulate_ingestion(offered, capacity_per_slot=9, queue_limit=30)
        assert result.delivered + result.dropped == sum(offered)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_ingestion([1], capacity_per_slot=-1, queue_limit=0)
        with pytest.raises(ValueError):
            simulate_ingestion([-1], capacity_per_slot=1, queue_limit=0)
        with pytest.raises(ValueError):
            simulate_ingestion([1], capacity_per_slot=1, queue_limit=-1)


class TestStormComparison:
    def test_dart_survives_storm_cpu_stacks_drop(self):
        rows = {r["stack"]: r for r in storm_comparison_rows()}
        assert rows["DART (RNIC DMA)"]["delivered_fraction"] == 1.0
        assert rows["sockets + Kafka"]["delivered_fraction"] < 0.5
        assert rows["DPDK + Confluo"]["delivered_fraction"] < 1.0

    def test_ordering(self):
        rows = {r["stack"]: r for r in storm_comparison_rows()}
        assert (
            rows["DART (RNIC DMA)"]["delivered_fraction"]
            >= rows["DPDK + Confluo"]["delivered_fraction"]
            >= rows["sockets + Kafka"]["delivered_fraction"]
        )


class TestPlacementResilience:
    def test_single_placement_loses_owned_fraction(self):
        """One dead collector of C: ~1/C of keys unreadable."""
        fraction = failure_unreadable_fraction(
            num_keys=100_000, num_collectors=10, failed=[3], spread=False
        )
        assert fraction == pytest.approx(0.1, abs=0.01)

    def test_spread_placement_quadratically_safer(self):
        """Spread with N=2: ~ (f/C)^2 unreadable."""
        fraction = failure_unreadable_fraction(
            num_keys=200_000, num_collectors=10, failed=[3], spread=True
        )
        assert fraction == pytest.approx(0.01, abs=0.005)

    def test_all_failed_loses_everything(self):
        for spread in (False, True):
            fraction = failure_unreadable_fraction(
                num_keys=1000,
                num_collectors=4,
                failed=[0, 1, 2, 3],
                spread=spread,
            )
            assert fraction == 1.0

    def test_no_failures_loses_nothing(self):
        for spread in (False, True):
            assert (
                failure_unreadable_fraction(
                    num_keys=1000, num_collectors=4, failed=[], spread=spread
                )
                == 0.0
            )

    def test_rows_match_expectations(self):
        rows = resilience_rows(num_collectors=16, failures=(1, 4, 8))
        for row in rows:
            assert row["unreadable_single"] == pytest.approx(
                row["expected_single"], abs=0.02
            )
            assert row["unreadable_spread"] == pytest.approx(
                row["expected_spread"], abs=0.02
            )
            # The paper's trade: resiliency vs query locality.
            assert row["unreadable_spread"] <= row["unreadable_single"]
            assert row["queries_contact_spread"] > row["queries_contact_single"]

    def test_validation(self):
        with pytest.raises(ValueError):
            failure_unreadable_fraction(
                num_keys=0, num_collectors=4, failed=[]
            )
        with pytest.raises(ValueError):
            failure_unreadable_fraction(
                num_keys=10, num_collectors=4, failed=[9]
            )
