"""Tests for the network substrate (repro.network)."""

import pytest

from repro.core.config import DartConfig
from repro.network.flows import FlowGenerator
from repro.network.simulation import (
    IntSimulation,
    LossModel,
    decode_path,
    encode_path,
)
from repro.network.topology import FatTreeTopology, SwitchRole


class TestFatTree:
    def test_k4_counts(self):
        """k=4: 16 hosts, 20 switches (8 edge, 8 agg, 4 core)."""
        tree = FatTreeTopology(k=4)
        assert tree.num_hosts == 16
        assert tree.num_switches == 20
        roles = [s.role for s in tree.switches]
        assert roles.count(SwitchRole.EDGE) == 8
        assert roles.count(SwitchRole.AGGREGATION) == 8
        assert roles.count(SwitchRole.CORE) == 4

    def test_k8_counts(self):
        tree = FatTreeTopology(k=8)
        assert tree.num_hosts == 128  # k^3/4
        assert tree.num_switches == 80  # 5k^2/4

    @pytest.mark.parametrize("k", [0, 3, 5, -2])
    def test_invalid_k(self, k):
        with pytest.raises(ValueError):
            FatTreeTopology(k=k)

    def test_connected(self):
        assert FatTreeTopology(k=4).all_pairs_reachable()

    def test_host_addressing_roundtrip(self):
        tree = FatTreeTopology(k=4)
        for host in range(tree.num_hosts):
            assert tree.host_of_ip(tree.host_ip(host)) == host

    def test_host_ip_plan(self):
        tree = FatTreeTopology(k=4)
        assert tree.host_ip(0) == "10.0.0.2"
        assert tree.host_ip(5) == "10.1.0.3"  # pod 1, edge 0, host 1

    def test_bad_ip_rejected(self):
        tree = FatTreeTopology(k=4)
        with pytest.raises(ValueError):
            tree.host_of_ip("192.168.0.1")
        with pytest.raises(ValueError):
            tree.host_of_ip("10.9.9.9")

    def test_edge_switch_of_bounds(self):
        tree = FatTreeTopology(k=4)
        with pytest.raises(ValueError):
            tree.edge_switch_of(16)


class TestPaths:
    def test_same_edge_one_hop(self):
        tree = FatTreeTopology(k=4)
        path = tree.path(0, 1, ("f",))  # hosts 0,1 share edge switch
        assert len(path) == 1
        assert path[0] == tree.edge_switch_of(0)

    def test_same_pod_three_hops(self):
        tree = FatTreeTopology(k=4)
        path = tree.path(0, 2, ("f",))  # same pod, different edge
        assert len(path) == 3
        assert path[0] == tree.edge_switch_of(0)
        assert path[2] == tree.edge_switch_of(2)
        assert tree.switches[path[1]].role is SwitchRole.AGGREGATION

    def test_cross_pod_five_hops(self):
        """The paper's '5-hop fat-tree topology'."""
        tree = FatTreeTopology(k=4)
        path = tree.path(0, 15, ("f",))
        assert len(path) == 5
        roles = [tree.switches[s].role for s in path]
        assert roles == [
            SwitchRole.EDGE,
            SwitchRole.AGGREGATION,
            SwitchRole.CORE,
            SwitchRole.AGGREGATION,
            SwitchRole.EDGE,
        ]

    def test_path_edges_exist_in_graph(self):
        """Consecutive path switches are physically connected."""
        tree = FatTreeTopology(k=4)
        for flow_id in range(20):
            path = tree.path(0, 15, ("flow", flow_id))
            for a, b in zip(path, path[1:]):
                assert tree.graph.has_edge(("switch", a), ("switch", b))

    def test_ecmp_deterministic_per_flow(self):
        tree = FatTreeTopology(k=4)
        assert tree.path(0, 15, ("f", 1)) == tree.path(0, 15, ("f", 1))

    def test_ecmp_spreads_flows(self):
        tree = FatTreeTopology(k=8)
        cores = {tree.path(0, 127, ("flow", i))[2] for i in range(200)}
        assert len(cores) > 4  # many of the 16 cores exercised

    def test_self_path_rejected(self):
        with pytest.raises(ValueError):
            FatTreeTopology(k=4).path(3, 3, ("f",))


class TestFlows:
    def test_uniform_flows(self):
        generator = FlowGenerator(num_hosts=16, seed=1)
        flows = generator.uniform(100)
        assert len(flows) == 100
        for flow in flows:
            assert flow.src_host != flow.dst_host
            assert 0 <= flow.src_host < 16
            assert flow.protocol in (6, 17)
            assert len(flow.five_tuple) == 5

    def test_deterministic_by_seed(self):
        a = FlowGenerator(num_hosts=16, seed=5).uniform(10)
        b = FlowGenerator(num_hosts=16, seed=5).uniform(10)
        assert a == b
        c = FlowGenerator(num_hosts=16, seed=6).uniform(10)
        assert a != c

    def test_zipf_skews_destinations(self):
        flows = FlowGenerator(num_hosts=1000, seed=2).zipf(2000, skew=1.3)
        counts = {}
        for flow in flows:
            counts[flow.dst_host] = counts.get(flow.dst_host, 0) + 1
        top = max(counts.values())
        assert top > 2000 / 1000 * 20  # far above the uniform expectation

    def test_zipf_validation(self):
        generator = FlowGenerator(num_hosts=10)
        with pytest.raises(ValueError):
            generator.zipf(10, skew=1.0)
        with pytest.raises(ValueError):
            generator.zipf(-1)

    def test_stream_lazy(self):
        stream = FlowGenerator(num_hosts=4).stream(batch=8)
        flows = [next(stream) for _ in range(20)]
        assert len(flows) == 20

    def test_packet_counts(self):
        counts = FlowGenerator(num_hosts=4, seed=0).packet_counts(5000)
        assert counts.shape == (5000,)
        assert counts.min() >= 1
        assert counts.max() > counts.mean() * 5  # elephants exist

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowGenerator(num_hosts=1)
        with pytest.raises(ValueError):
            FlowGenerator(num_hosts=4).uniform(-1)
        with pytest.raises(ValueError):
            FlowGenerator(num_hosts=4).stream(batch=0)


class TestPathCodec:
    @pytest.mark.parametrize("hops", [[7], [1, 2, 3], [10, 20, 30, 40, 50]])
    def test_roundtrip(self, hops):
        assert decode_path(encode_path(hops)) == hops

    def test_value_is_160_bits(self):
        """Figure 4's '160-bit values'."""
        assert len(encode_path([1, 2, 3, 4, 5])) == 20

    def test_switch_zero_distinguished_from_padding(self):
        assert decode_path(encode_path([0])) == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            encode_path([])
        with pytest.raises(ValueError):
            encode_path([1, 2, 3, 4, 5, 6])
        with pytest.raises(ValueError):
            decode_path(b"\x00" * 19)


class TestLossModel:
    def test_no_loss(self):
        loss = LossModel(0.0)
        assert all(loss.deliver() for _ in range(100))
        assert loss.lost == 0

    def test_full_loss(self):
        loss = LossModel(1.0)
        assert not any(loss.deliver() for _ in range(100))
        assert loss.delivered == 0

    def test_partial_loss_rate(self):
        loss = LossModel(0.3, seed=1)
        outcomes = [loss.deliver() for _ in range(10000)]
        rate = 1 - sum(outcomes) / len(outcomes)
        assert 0.27 < rate < 0.33

    def test_validation(self):
        with pytest.raises(ValueError):
            LossModel(1.5)


class TestIntSimulation:
    def make_sim(self, **kwargs):
        tree = FatTreeTopology(k=4)
        config = DartConfig(slots_per_collector=1 << 12, num_collectors=2)
        return IntSimulation(tree, config, **kwargs), tree

    def test_trace_and_query(self):
        sim, tree = self.make_sim()
        flows = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=0).uniform(50)
        records = sim.trace_flows(flows)
        assert len(records) == 50
        evaluation = sim.evaluate()
        assert evaluation.success_rate > 0.99  # trivial load
        assert evaluation.wrong == 0

    def test_query_path_decodes_ground_truth(self):
        sim, tree = self.make_sim()
        flow = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip).uniform(1)[0]
        record = sim.trace_flow(flow)
        result = sim.query_path(flow)
        assert result.answered
        assert decode_path(result.value) == record.path

    def test_packet_level_equivalence(self):
        """Packet-level and fast-path simulations agree on stored bytes."""
        tree = FatTreeTopology(k=4)
        config = DartConfig(slots_per_collector=1 << 12, num_collectors=1)
        flows = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=3).uniform(30)
        fast = IntSimulation(tree, config)
        wire = IntSimulation(tree, config, packet_level=True)
        fast.trace_flows(flows)
        wire.trace_flows(flows)
        assert (
            fast.cluster[0].region.snapshot() == wire.cluster[0].region.snapshot()
        )

    def test_loss_degrades_but_redundancy_protects(self):
        """With N=2 and independent 20% report loss, most flows survive."""
        tree = FatTreeTopology(k=4)
        config = DartConfig(slots_per_collector=1 << 14, num_collectors=1)
        sim = IntSimulation(tree, config, loss=LossModel(0.2, seed=7))
        flows = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=1).uniform(
            500
        )
        sim.trace_flows(flows)
        evaluation = sim.evaluate()
        # P(both copies lost) = 0.04 -> ~96% retrievable.
        assert evaluation.success_rate > 0.93

    def test_value_size_validated(self):
        tree = FatTreeTopology(k=4)
        with pytest.raises(ValueError):
            IntSimulation(tree, DartConfig(value_bytes=8, slots_per_collector=64))

    def test_evaluation_counts_partition(self):
        sim, tree = self.make_sim()
        flows = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip).uniform(40)
        sim.trace_flows(flows)
        evaluation = sim.evaluate()
        assert evaluation.correct + evaluation.empty + evaluation.wrong == (
            evaluation.total
        )
