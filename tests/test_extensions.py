"""Tests for the section-7 / future-work extensions:
the packet-level CAS store and the dynamic-N controller."""

import pytest

from repro.core import theory
from repro.core.cas_store import (
    CasDartStore,
    pack_compact_slot,
    unpack_compact_slot,
)
from repro.core.config import DartConfig
from repro.core.dynamic_n import DynamicRedundancyController, LoadEstimator


class TestCompactSlotCodec:
    def test_roundtrip(self):
        word = pack_compact_slot(0xABCDEF, 0x12345678AB)
        assert unpack_compact_slot(word) == (0xABCDEF, 0x12345678AB)

    def test_bounds(self):
        with pytest.raises(ValueError):
            pack_compact_slot(1 << 24, 0)
        with pytest.raises(ValueError):
            pack_compact_slot(0, 1 << 40)
        with pytest.raises(ValueError):
            pack_compact_slot(-1, 0)


class TestCasDartStore:
    def test_put_get_roundtrip(self):
        store = CasDartStore(num_slots=1 << 10)
        store.put(b"flow-1", 12345)
        store.put(b"flow-2", 67890)
        assert store.get(b"flow-1") == 12345
        assert store.get(b"flow-2") == 67890
        assert store.get(b"missing") is None

    def test_uses_real_atomics(self):
        store = CasDartStore(num_slots=1 << 10)
        store.put(b"k", 1)
        assert store.nic.counters.writes_executed == 1
        assert store.nic.counters.atomics_executed == 1

    def test_cas_slot_not_overwritten_by_later_cas(self):
        """The CAS copy keeps the *first* writer's data until a plain
        WRITE lands on it."""
        store = CasDartStore(num_slots=4, seed=0)  # tiny: force collisions
        # Find two keys whose CAS copies collide but WRITE copies differ.
        keys = [b"k%d" % i for i in range(200)]
        target = None
        for a in keys:
            for b in keys:
                if a == b:
                    continue
                if (
                    store.addressing.slot_index(a, 1)
                    == store.addressing.slot_index(b, 1)
                    and store.addressing.slot_index(b, 0)
                    != store.addressing.slot_index(a, 1)
                    and store.addressing.slot_index(a, 0)
                    != store.addressing.slot_index(a, 1)
                ):
                    target = (a, b)
                    break
            if target:
                break
        assert target is not None
        first, second = target
        store.put(first, 111)
        store.put(second, 222)
        # first's CAS slot still holds first's data; second can still be
        # read through its WRITE slot.
        assert store.get(first) == 111
        assert store.get(second) == 222

    def test_update_through_write_slot(self):
        store = CasDartStore(num_slots=1 << 10)
        store.put(b"k", 1)
        store.put(b"k", 2)
        assert store.get(b"k") == 2  # WRITE slot is fresh

    def test_value_range_enforced(self):
        store = CasDartStore(num_slots=64)
        with pytest.raises(ValueError):
            store.put(b"k", 1 << 40)

    def test_validation(self):
        with pytest.raises(ValueError):
            CasDartStore(num_slots=0)


class TestLoadEstimator:
    def test_first_observation_unsmoothed(self):
        estimator = LoadEstimator(total_slots=1000)
        assert estimator.observe(500) == 0.5

    def test_ewma_smoothing(self):
        estimator = LoadEstimator(total_slots=1000, alpha_weight=0.5)
        estimator.observe(1000)  # 1.0
        assert estimator.observe(0) == pytest.approx(0.5)
        assert estimator.observe(0) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadEstimator(total_slots=0)
        with pytest.raises(ValueError):
            LoadEstimator(total_slots=10, alpha_weight=0.0)
        with pytest.raises(ValueError):
            LoadEstimator(total_slots=10).observe(-1)


class TestDynamicRedundancyController:
    def make(self, redundancy=4, slots=1000, **kwargs):
        config = DartConfig(redundancy=redundancy, slots_per_collector=slots)
        return DynamicRedundancyController(config, **kwargs)

    def test_starts_at_maximum_protection(self):
        assert self.make(redundancy=4).current == 4

    def test_light_load_keeps_high_n(self):
        controller = self.make(redundancy=4)
        for _ in range(5):
            n = controller.observe_interval(20)  # alpha = 0.02
        assert n == 4

    def test_heavy_load_drops_to_n1(self):
        controller = self.make(redundancy=4)
        for _ in range(10):
            n = controller.observe_interval(3000)  # alpha -> 3.0
        assert n == 1
        assert controller.switches >= 1

    def test_recommendation_matches_theory(self):
        controller = self.make(redundancy=8, candidates=(1, 2, 3, 4, 8))
        for alpha in (0.05, 0.5, 1.5, 3.0):
            assert controller.recommend(alpha) == theory.optimal_redundancy(
                alpha, (1, 2, 3, 4, 8)
            )

    def test_hysteresis_prevents_thrash(self):
        """Near a crossover, tiny load wobbles must not flip N every
        interval."""
        controller = self.make(redundancy=4, hysteresis=0.05)
        # Feed loads oscillating around a crossover point.
        switches_before = controller.switches
        for i in range(20):
            controller.observe_interval(900 + (i % 2) * 50)
        assert controller.switches - switches_before <= 1

    def test_candidates_validated(self):
        with pytest.raises(ValueError):
            self.make(redundancy=2, candidates=(1, 2, 3))
        with pytest.raises(ValueError):
            self.make(candidates=())
        with pytest.raises(ValueError):
            self.make(hysteresis=-0.1)

    def test_predicted_queryability(self):
        controller = self.make(redundancy=4)
        controller.observe_interval(100)
        predicted = controller.predicted_queryability()
        assert 0 <= predicted <= 1
        assert controller.predicted_queryability(0.0) == pytest.approx(1.0)

    def test_adaptive_beats_static_across_load_ramp(self):
        """The future-work claim: adjusting N as load fluctuates improves
        queryability over any single static N (averaged across the ramp)."""
        loads = [0.05, 0.1, 0.3, 0.8, 1.5, 2.5]
        candidates = (1, 2, 4)
        adaptive = sum(
            theory.average_queryability(a, theory.optimal_redundancy(a, candidates))
            for a in loads
        )
        for static_n in candidates:
            static = sum(
                theory.average_queryability(a, static_n) for a in loads
            )
            assert adaptive >= static - 1e-12
