"""Tests for repro.obs.metrics: registry, histograms, snapshots, exposition."""

import json

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Histogram,
    MetricsRegistry,
)


class TestCounterGauge:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_identity_per_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("events", labels={"kind": "a"})
        b = registry.counter("events", labels={"kind": "a"})
        c = registry.counter("events", labels={"kind": "b"})
        assert a is b
        assert a is not c

    def test_label_normalisation_is_order_independent(self):
        registry = MetricsRegistry()
        a = registry.counter("x", labels=[("b", "2"), ("a", "1")])
        b = registry.counter("x", labels={"a": "1", "b": "2"})
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_gauge_set_and_set_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.set_max(3)
        assert gauge.value == 5
        gauge.set_max(9)
        assert gauge.value == 9

    def test_total_aggregates_with_filters(self):
        registry = MetricsRegistry()
        registry.counter("hits", labels={"kind": "a"}).inc(2)
        registry.counter("hits", labels={"kind": "b"}).inc(3)
        assert registry.total("hits") == 5
        assert registry.total("hits", kind="a") == 2

    def test_instance_labels_are_unique(self):
        registry = MetricsRegistry()
        first = registry.instance_labels("Widget")
        second = registry.instance_labels("Widget")
        assert first != second
        assert dict(first)["kind"] == "Widget"


class TestHistogramBuckets:
    def test_value_on_boundary_lands_in_le_bucket(self):
        # Prometheus `le` semantics: v <= bound is inclusive.
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        h.observe(1.0)
        h.observe(2.0)
        h.observe(5.0)
        assert h.counts == (1, 1, 1, 0)

    def test_value_above_last_bound_overflows(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(2.0001)
        h.observe(1e9)
        assert h.counts == (0, 0, 2)

    def test_value_below_first_bound(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(0.0)
        h.observe(-3.0)
        assert h.counts == (2, 0, 0)

    def test_cumulative_counts(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 1.7, 3.0, 100.0):
            h.observe(value)
        assert h.cumulative() == (1, 3, 4, 5)
        assert h.count == 5
        assert h.sum == pytest.approx(106.7)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_quantile_returns_bucket_bound(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for _ in range(99):
            h.observe(0.5)
        h.observe(4.0)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 5.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_mean_and_reset(self):
        h = Histogram("h", buckets=LATENCY_BUCKETS)
        h.observe(0.25)
        h.observe(0.75)
        assert h.mean == pytest.approx(0.5)
        h.reset()
        assert h.count == 0 and h.sum == 0.0
        assert set(h.counts) == {0}


class TestSnapshotDiff:
    def test_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        snap = registry.snapshot()
        assert snap.get("c") == 3
        assert snap.get("g") == 7
        counts, total, bounds = snap.samples[("h", ())][1]
        assert counts == (0, 1, 0) and bounds == (1.0, 2.0)
        # Snapshots are copies: further increments don't leak in.
        registry.counter("c").inc()
        assert snap.get("c") == 3

    def test_diff_window_semantics(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        h = registry.histogram("h", buckets=(1.0,))
        counter.inc(2)
        gauge.set(10)
        h.observe(0.5)
        before = registry.snapshot()
        counter.inc(5)
        gauge.set(4)
        h.observe(0.5)
        h.observe(99.0)
        window = registry.snapshot().diff(before)
        assert window.get("c") == 5  # counters subtract
        assert window.get("g") == 4  # gauges keep the newer reading
        counts, _total, _bounds = window.samples[("h", ())][1]
        assert counts == (1, 1)  # histogram buckets subtract

    def test_diff_passes_through_new_series(self):
        registry = MetricsRegistry()
        before = registry.snapshot()
        registry.counter("fresh").inc(9)
        window = registry.snapshot().diff(before)
        assert window.get("fresh") == 9

    def test_reset_zeroes_but_keeps_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(4)
        registry.reset()
        assert counter.value == 0
        assert registry.counter("c") is counter


class TestExposition:
    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("frames", labels={"kind": "nic"}).inc(2)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.to_prometheus()
        assert '# TYPE repro_frames counter' in text
        assert 'repro_frames_total{kind="nic"} 2' in text
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_count 1" in text

    def test_json_exposition_parses(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        rows = json.loads(registry.to_json())
        by_name = {row["name"]: row for row in rows}
        assert by_name["c"]["value"] == 1
        assert by_name["h"]["count"] == 1
        assert by_name["h"]["buckets"][-1]["le"] == "+Inf"


def _parse_prometheus(text):
    """Minimal exposition-format parser for the round-trip test.

    Returns (types, helps, samples) where ``types``/``helps`` map family
    name -> list of occurrences (so the test can assert exactly-once) and
    ``samples`` maps each sample line's name+labels part -> float value.
    """
    types = {}
    helps = {}
    samples = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _hash, _kw, family, kind = line.split(" ", 3)
            types.setdefault(family, []).append(kind)
        elif line.startswith("# HELP "):
            _hash, _kw, family, help_text = line.split(" ", 3)
            helps.setdefault(family, []).append(help_text)
        else:
            samples[line.rsplit(" ", 1)[0]] = float(line.rsplit(" ", 1)[1])
    return types, helps, samples


class TestPrometheusRoundTrip:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter(
            "frames", labels={"kind": "nic"}, help="frames seen"
        ).inc(2)
        registry.counter("frames", labels={"kind": "fabric"}).inc(5)
        registry.gauge("depth", help="queue depth").set(3)
        h = registry.histogram("lat", buckets=(0.1, 1.0), help="latency")
        h.observe(0.05)
        h.observe(0.5)
        return registry

    def test_type_and_help_once_per_family(self):
        text = self._registry().to_prometheus()
        types, helps, samples = _parse_prometheus(text)
        # Exactly one TYPE per family even with multiple label sets.
        assert types == {
            "repro_frames": ["counter"],
            "repro_depth": ["gauge"],
            "repro_lat": ["histogram"],
        }
        assert helps == {
            "repro_frames": ["frames seen"],
            "repro_depth": ["queue depth"],
            "repro_lat": ["latency"],
        }
        assert samples['repro_frames_total{kind="nic"}'] == 2.0
        assert samples['repro_frames_total{kind="fabric"}'] == 5.0
        assert samples["repro_depth"] == 3.0
        assert samples['repro_lat_bucket{le="+Inf"}'] == 2.0

    def test_node_labelled_families_group_under_one_comment_pair(self):
        """Per-node series of one family share a single HELP/TYPE pair."""
        registry = MetricsRegistry()
        with registry.node_scope("collector-0"):
            registry.counter(
                "nic_frames_received",
                labels=registry.instance_labels("RdmaNic"),
                help="frames the NIC accepted",
            ).inc(1190)
        with registry.node_scope("collector-1"):
            registry.counter(
                "nic_frames_received",
                labels=registry.instance_labels("RdmaNic"),
            ).inc(740)
        registry.counter("fabric_frames_offered").inc(2000)
        types, helps, samples = _parse_prometheus(registry.to_prometheus())
        # One comment pair per family, not per node.
        assert types["repro_nic_frames_received"] == ["counter"]
        assert helps["repro_nic_frames_received"] == [
            "frames the NIC accepted"
        ]
        # Both nodes' samples survive the round trip with their values.
        per_node = {
            key: value
            for key, value in samples.items()
            if key.startswith("repro_nic_frames_received_total")
        }
        assert len(per_node) == 2
        assert sum(per_node.values()) == 1930.0
        for node, value in (("collector-0", 1190.0), ("collector-1", 740.0)):
            (key,) = [k for k in per_node if f'node="{node}"' in k]
            assert per_node[key] == value
        # Snapshot exposition agrees byte-for-byte with the live one.
        assert registry.snapshot().to_prometheus() == registry.to_prometheus()

    def test_comments_precede_all_family_samples(self):
        text = self._registry().to_prometheus()
        lines = text.splitlines()
        first_sample = {}
        last_comment = {}
        for index, line in enumerate(lines):
            if line.startswith("#"):
                family = line.split(" ", 3)[2]
                last_comment[family] = index
            else:
                name = line.split("{", 1)[0].split(" ", 1)[0]
                for suffix in ("_bucket", "_sum", "_count", "_total"):
                    if name.endswith(suffix):
                        name = name[: -len(suffix)]
                        break
                first_sample.setdefault(name, index)
        for family, comment_index in last_comment.items():
            assert comment_index < first_sample[family], (
                f"comment for {family} interleaved with its samples"
            )

    def test_families_without_help_omit_the_help_line(self):
        registry = MetricsRegistry()
        registry.counter("bare").inc()
        text = registry.to_prometheus()
        assert "# HELP repro_bare" not in text
        assert "# TYPE repro_bare counter" in text

    def test_help_and_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter(
            "odd",
            labels={"path": 'a"b\\c\nd'},
            help="line one\nline \\ two",
        ).inc()
        text = registry.to_prometheus()
        assert "# HELP repro_odd line one\\nline \\\\ two" in text
        assert '{path="a\\"b\\\\c\\nd"}' in text
        # Escapes keep each sample on a single physical line.
        assert len([ln for ln in text.splitlines() if "repro_odd" in ln]) == 3


class TestDiffRegressions:
    def test_gauge_decrease_keeps_latest_reading(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        before = registry.snapshot()
        gauge.set(2)
        window = registry.snapshot().diff(before)
        # A gauge delta of -8 would read as nonsense; diff reports the
        # newer reading instead.
        assert window.get("depth") == 2

    def test_histogram_diff_buckets_stay_non_negative_and_monotone(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        h.observe(0.05)
        h.observe(5.0)
        before = registry.snapshot()
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        window = registry.snapshot().diff(before)
        counts, total, bounds = window.samples[("lat", ())][1]
        assert all(count >= 0 for count in counts)
        assert sum(counts) == 3
        assert bounds == (0.1, 1.0, 10.0)
        # Cumulative form (what the exposition emits) must be monotone.
        running = 0
        cumulative = []
        for count in counts:
            running += count
            cumulative.append(running)
        assert cumulative == sorted(cumulative)

    def test_diff_carries_help_texts(self):
        registry = MetricsRegistry()
        registry.counter("c", help="a counter").inc()
        before = registry.snapshot()
        registry.counter("c").inc()
        window = registry.snapshot().diff(before)
        assert "# HELP repro_c a counter" in window.to_prometheus()


class TestDisabledRegistry:
    def test_disabled_registry_hands_out_null_singletons(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("c") is NULL_COUNTER
        assert registry.gauge("g") is NULL_GAUGE
        assert registry.histogram("h", buckets=(1.0,)) is NULL_HISTOGRAM

    def test_null_metrics_record_nothing(self):
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(5)
        NULL_GAUGE.set_max(9)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0
        assert NULL_HISTOGRAM.count == 0
        assert NULL_HISTOGRAM.quantile(0.5) == 0.0
        assert not NULL_COUNTER.enabled

    def test_disabled_registry_exposes_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc()
        assert registry.snapshot().samples == {}
        assert registry.to_prometheus() == ""


class TestHistogramExemplars:
    def test_exemplar_tracks_the_quantile_bucket(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        # 98 fast observations, 2 slow ones carrying exemplar trace ids.
        for _ in range(98):
            h.observe(0.05)
        h.observe_exemplar(5.0, 41)
        h.observe_exemplar(5.0, 42)
        # p99 rank lands in the slow bucket: latest exemplar wins there.
        assert h.exemplar(0.99) == 42
        # The median bucket has no exemplar stamped: nothing invented.
        assert h.exemplar(0.5) is None

    def test_exemplar_without_observations_is_none(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(1.0,))
        assert h.exemplar() is None
        h.observe(0.5)  # plain observations never stamp exemplars
        assert h.exemplar() is None

    def test_exemplar_lands_in_overflow_bucket(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(1.0,))
        h.observe_exemplar(99.0, 7)  # beyond the last bound
        assert h.exemplar(0.99) == 7

    def test_exemplar_validates_quantile(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.exemplar(1.5)

    def test_reset_clears_exemplars(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(1.0,))
        h.observe_exemplar(0.5, 11)
        h.reset()
        assert h.exemplar() is None

    def test_observe_exemplar_counts_like_observe(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(1.0,))
        h.observe_exemplar(0.5, 11)
        assert sum(h.counts) == 1
        assert h.count == 1
        assert h.sum == 0.5

    def test_null_histogram_exemplars_are_inert(self):
        registry = MetricsRegistry(enabled=False)
        h = registry.histogram("lat", buckets=(1.0,))
        h.observe_exemplar(0.5, 11)
        assert h.exemplar() is None
