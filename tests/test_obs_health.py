"""Tests for repro.obs.health plus fabric/queue observability regressions."""

import numpy as np

from repro import obs
from repro.core.config import DartConfig
from repro.core.policies import ReturnPolicy
from repro.collector.store import DartStore
from repro.fabric.fabric import BufferedFabric, Fabric, InlineFabric
from repro.fabric.impaired import ImpairedFabric
from repro.mem.region import MemoryRegion
from repro.obs.health import PipelineHealth, render_dashboard, render_histogram
from repro.rdma.frames import FrameBatch


class _Port:
    """Minimal fabric endpoint that accepts every frame."""

    def __init__(self):
        self.frames = []

    def receive_frame(self, frame):
        self.frames.append(frame)
        return True

    def transmit(self):
        return []


def _with_registry():
    """Install a fresh registry; returns (registry, restore)."""
    registry = obs.MetricsRegistry()
    previous = obs.set_registry(registry)
    return registry, lambda: obs.set_registry(previous)


class TestPipelineHealthRates:
    def test_rates_reconcile_with_fabric_counters(self):
        registry, restore = _with_registry()
        try:
            fabric = ImpairedFabric(
                InlineFabric(), loss=0.2, duplication=0.1, seed=7
            )
            fabric.attach(1, _Port())
            for index in range(200):
                fabric.send(1, b"frame-%03d" % index)
            fabric.flush()
            health = PipelineHealth.from_registry(registry)
            counters = fabric.counters
            assert health.impairment_offered == 200
            assert health.frames_lost == counters.frames_dropped_loss
            assert health.frames_lost > 0
            assert health.loss_rate == counters.frames_dropped_loss / 200
            assert health.duplication_rate == counters.frames_duplicated / 200
            # Every delivered frame reached the port: delta must be... well,
            # the _Port here is not a NIC, so nic_frames_received is 0 and
            # the delivered count belongs to the inner fabric.
            assert health.frames_delivered == fabric.delivered.frames_delivered
            assert (
                health.frames_delivered
                == 200
                - counters.frames_dropped_loss
                + counters.frames_duplicated
            )
        finally:
            restore()

    def test_impairment_offered_falls_back_to_all_offered(self):
        registry, restore = _with_registry()
        try:
            fabric = InlineFabric()
            fabric.attach(1, _Port())
            for _ in range(10):
                fabric.send(1, b"frame")
            health = PipelineHealth.from_registry(registry)
            assert health.impairment_offered == 10
            assert health.loss_rate == 0.0
            assert health.delivery_rate == 0.0  # no NIC attached here
        finally:
            restore()

    def test_slot_overwrite_rate(self):
        registry, restore = _with_registry()
        try:
            region = MemoryRegion(size=64)
            region.write_offset(0, b"\x01" * 8)   # fresh slot
            region.write_offset(0, b"\x02" * 8)   # overwrites live data
            region.write_offset(16, b"\x03" * 8)  # fresh slot
            health = PipelineHealth.from_registry(registry)
            assert health.mem_writes == 3
            assert health.mem_slot_overwrites == 1
            assert health.slot_overwrite_rate == 1 / 3
        finally:
            restore()

    def test_query_success_split_per_policy(self):
        registry, restore = _with_registry()
        try:
            config = DartConfig(slots_per_collector=256, redundancy=2, seed=0)
            store = DartStore(config)
            store.put(("flow", 1), b"value")
            store.get(("flow", 1))  # answered, PLURALITY
            store.get(("flow", 2))  # empty, PLURALITY
            store.get(("flow", 1), policy=ReturnPolicy.FIRST_MATCH)
            health = PipelineHealth.from_registry(registry)
            by_policy = {q.policy: q for q in health.queries}
            assert by_policy["PLURALITY"].total == 2
            assert by_policy["PLURALITY"].answered == 1
            assert by_policy["PLURALITY"].success_rate == 0.5
            assert by_policy["FIRST_MATCH"].total == 1
            assert by_policy["FIRST_MATCH"].success_rate == 1.0
            assert health.to_dict()["queries"]["PLURALITY"]["total"] == 2
        finally:
            restore()

    def test_zero_queries_report_none_not_zero_division(self):
        registry, restore = _with_registry()
        try:
            # A policy with registered counters but zero traffic: the
            # success rate must read None ("no data"), never divide by
            # zero or claim 0.0 ("everything failed").
            registry.counter(
                "queries_total", labels={"policy": "PLURALITY"}
            ).inc(0)
            registry.counter(
                "queries_answered", labels={"policy": "PLURALITY"}
            ).inc(0)
            health = PipelineHealth.from_registry(registry)
            by_policy = {q.policy: q for q in health.queries}
            assert by_policy["PLURALITY"].success_rate is None
            assert health.to_dict()["queries"]["PLURALITY"]["success_rate"] is None
            text = render_dashboard(registry)
            assert "success_rate=n/a" in text
        finally:
            restore()

    def test_end_to_end_packet_level_reconciliation(self):
        """Fabric-delivered and NIC-received must agree after a flush."""
        registry, restore = _with_registry()
        try:
            config = DartConfig(slots_per_collector=512, redundancy=2, seed=0)
            fabric = ImpairedFabric(
                BufferedFabric(flush_threshold=32), loss=0.05, seed=3
            )
            store = DartStore(config, packet_level=True, fabric=fabric)
            store.put_many(
                ((("flow", i), b"v%d" % i) for i in range(100))
            )
            fabric.flush()
            health = PipelineHealth.from_registry(registry)
            assert health.fabric_nic_delta == 0
            assert health.nic_frames_received == health.frames_delivered
            assert health.frames_lost > 0
            assert health.mem_writes == health.nic_writes_executed
        finally:
            restore()

    def test_columnar_packet_level_reconciliation(self):
        """The columnar batch seam reconciles under a fully impaired,
        buffered fabric exactly like the scalar path: every frame the
        fabric claims to have delivered was received by a NIC, and every
        executed write landed in a region."""
        registry, restore = _with_registry()
        try:
            config = DartConfig(slots_per_collector=512, redundancy=2, seed=0)
            fabric = ImpairedFabric(
                BufferedFabric(flush_threshold=32),
                loss=0.05,
                duplication=0.05,
                reordering=0.1,
                seed=3,
            )
            store = DartStore(
                config, packet_level=True, fabric=fabric, columnar=True
            )
            store.put_many(
                [(("flow", i), b"v%d" % i) for i in range(100)]
            )
            fabric.flush()
            health = PipelineHealth.from_registry(registry)
            assert health.impairment_offered == 200
            assert health.frames_lost > 0
            counters = fabric.counters
            assert health.frames_lost == counters.frames_dropped_loss
            assert counters.frames_duplicated > 0
            assert counters.frames_reordered > 0
            # Conservation through the batch seam: offered frames either
            # dropped in flight or delivered (duplicates add deliveries).
            assert (
                fabric.delivered.frames_delivered
                == 200
                - counters.frames_dropped_loss
                + counters.frames_duplicated
            )
            assert health.fabric_nic_delta == 0
            assert health.nic_frames_received == health.frames_delivered
            assert health.mem_writes == health.nic_writes_executed
        finally:
            restore()


class TestDashboardRendering:
    def test_dashboard_sections_present(self):
        registry, restore = _with_registry()
        try:
            fabric = InlineFabric()
            fabric.attach(1, _Port())
            fabric.send(1, b"frame")
            text = render_dashboard(registry)
            assert "== pipeline health ==" in text
            assert "frame loss rate" in text
            assert "== query success rate ==" in text
            assert "(no queries executed)" in text
        finally:
            restore()

    def test_render_histogram_elides_empty_buckets(self):
        registry, restore = _with_registry()
        try:
            histogram = registry.histogram("h", buckets=(1.0, 2.0, 5.0))
            histogram.observe(0.5)
            histogram.observe(0.5)
            text = render_histogram(histogram)
            assert "count=2" in text
            assert "<= 1" in text
            assert "<= 2" not in text  # empty bucket elided
        finally:
            restore()


class TestEveryFabricCountsDeliveries:
    def test_every_fabric_subclass_increments_shared_delivered_total(self):
        """Meta-test: each concrete Fabric must account delivered frames in
        the shared ``fabric_frames_delivered`` family (ImpairedFabric via
        the inner fabric it delegates delivery to)."""
        subclasses = set(Fabric.__subclasses__())
        assert {InlineFabric, BufferedFabric, ImpairedFabric} <= subclasses
        for cls in sorted(subclasses, key=lambda c: c.__name__):
            registry, restore = _with_registry()
            try:
                try:
                    fabric = cls()
                except TypeError:
                    fabric = cls(InlineFabric())
                fabric.attach(1, _Port())
                fabric.send(1, b"meta-test-frame")
                fabric.flush()
                delivered = registry.total("fabric_frames_delivered")
                assert delivered >= 1, (
                    f"{cls.__name__} delivered a frame without incrementing "
                    f"fabric_frames_delivered"
                )
                assert registry.total("fabric_frames_offered") >= 1
            finally:
                restore()

    def test_every_fabric_subclass_accounts_batch_deliveries(self):
        """Meta-test: the columnar ``send_batch`` seam must account frames
        in the same shared families as the scalar path, for every concrete
        Fabric (ImpairedFabric via the inner fabric it delegates to)."""
        subclasses = set(Fabric.__subclasses__())
        assert {InlineFabric, BufferedFabric, ImpairedFabric} <= subclasses
        for cls in sorted(subclasses, key=lambda c: c.__name__):
            registry, restore = _with_registry()
            try:
                try:
                    fabric = cls()
                except TypeError:
                    fabric = cls(InlineFabric())
                fabric.attach(1, _Port())
                batch = FrameBatch(
                    np.zeros((3, 16), dtype=np.uint8),
                    np.ones(3, dtype=np.int64),
                )
                fabric.send_batch(batch)
                fabric.flush()
                assert registry.total("fabric_frames_offered") >= 3, (
                    f"{cls.__name__}.send_batch did not account offered "
                    f"frames in fabric_frames_offered"
                )
                assert registry.total("fabric_frames_delivered") >= 3, (
                    f"{cls.__name__}.send_batch delivered frames without "
                    f"incrementing fabric_frames_delivered"
                )
            finally:
                restore()


class TestBufferedFabricQueueObservability:
    def test_flush_at_exactly_threshold_frames(self):
        """Regression: the threshold boundary itself must trigger a flush."""
        registry, restore = _with_registry()
        try:
            threshold = 8
            fabric = BufferedFabric(flush_threshold=threshold)
            port = _Port()
            fabric.attach(1, port)
            for index in range(threshold - 1):
                fabric.send(1, b"frame-%d" % index)
            assert fabric.pending() == threshold - 1
            assert fabric.counters.flushes == 0
            fabric.send(1, b"frame-last")  # exactly `threshold` queued
            assert fabric.pending() == 0
            assert len(port.frames) == threshold
            assert fabric.counters.flushes == 1
            assert fabric.last_flush_depth == threshold
            assert fabric.queue_depth_high_water == threshold
            assert registry.total("fabric_queue_depth_hwm") == threshold
        finally:
            restore()

    def test_high_water_mark_survives_flush(self):
        _registry, restore = _with_registry()
        try:
            fabric = BufferedFabric(flush_threshold=None)
            fabric.attach(1, _Port())
            for index in range(5):
                fabric.send(1, b"frame-%d" % index)
            assert fabric.queue_depth_high_water == 5
            fabric.flush()
            assert fabric.pending() == 0
            assert fabric.queue_depth_high_water == 5  # HWM is sticky
            assert fabric.last_flush_depth == 5
            fabric.send(1, b"one-more")
            assert fabric.queue_depth_high_water == 5  # 1 < 5
        finally:
            restore()

    def test_send_many_respects_threshold_and_hwm(self):
        _registry, restore = _with_registry()
        try:
            fabric = BufferedFabric(flush_threshold=4)
            port = _Port()
            fabric.attach(1, port)
            fabric.send_many(1, [b"a", b"b", b"c", b"d", b"e"])
            assert fabric.pending() == 0
            assert len(port.frames) == 5
            assert fabric.counters.flushes == 1
            assert fabric.queue_depth_high_water == 5
        finally:
            restore()
