"""Tests for the P4 switch substrate (repro.switch)."""

import pytest

from repro.core.config import DartConfig
from repro.collector.collector import CollectorCluster
from repro.switch.control_plane import SwitchControlPlane
from repro.switch.dart_switch import DartSwitch
from repro.switch.externs import CrcEngine, MirrorSession, RegisterArray, TofinoRng
from repro.switch.pipeline import MatchActionTable, MatchKind, TableEntry
from repro.rdma.packets import Opcode, RoceV2Packet


class TestRegisterArray:
    def test_read_write(self):
        regs = RegisterArray(size=4, width_bits=32)
        regs.write(2, 0xDEADBEEF)
        assert regs.read(2) == 0xDEADBEEF
        assert regs.read(0) == 0

    def test_width_wraps(self):
        regs = RegisterArray(size=1, width_bits=16)
        regs.write(0, 0x1FFFF)
        assert regs.read(0) == 0xFFFF

    def test_read_and_increment(self):
        regs = RegisterArray(size=1, width_bits=8)
        assert regs.read_and_increment(0) == 0
        assert regs.read_and_increment(0) == 1
        regs.write(0, 255)
        assert regs.read_and_increment(0) == 255
        assert regs.read(0) == 0  # wrapped

    def test_bounds(self):
        regs = RegisterArray(size=2)
        with pytest.raises(IndexError):
            regs.read(2)
        with pytest.raises(IndexError):
            regs.write(-1, 0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RegisterArray(size=0)
        with pytest.raises(ValueError):
            RegisterArray(size=1, width_bits=12)

    def test_sram_accounting(self):
        assert RegisterArray(size=100, width_bits=32).sram_bytes == 400


class TestTofinoRng:
    def test_bounds_and_determinism(self):
        rng_a, rng_b = TofinoRng(seed=7), TofinoRng(seed=7)
        samples_a = [rng_a.next(4) for _ in range(100)]
        samples_b = [rng_b.next(4) for _ in range(100)]
        assert samples_a == samples_b
        assert all(0 <= s < 4 for s in samples_a)
        assert len(set(samples_a)) == 4  # all values reached

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            TofinoRng().next(0)


class TestCrcEngine:
    def test_hash_fields_concatenates(self):
        engine = CrcEngine()
        assert engine.hash_fields(b"ab", b"cd") == engine.hash_fields(b"abcd")

    def test_icrc_matches_crc32(self):
        from repro.hashing.crc import crc32

        assert CrcEngine().icrc(b"masked") == crc32(b"masked")


class TestMirrorSession:
    def test_truncation(self):
        mirror = MirrorSession(session_id=1, truncate_to=8)
        assert mirror.clone(b"0123456789abcdef") == b"01234567"
        assert mirror.clone(b"short") == b"short"
        assert mirror.clones_emitted == 2

    def test_no_truncation(self):
        mirror = MirrorSession(session_id=1)
        assert mirror.clone(b"x" * 300) == b"x" * 300


class TestMatchActionTable:
    def test_exact_match(self):
        table = MatchActionTable("t", [MatchKind.EXACT], max_entries=4)
        table.add_entry(TableEntry(match=(5,), action="hit", params={"x": 1}))
        assert table.lookup(5) == ("hit", {"x": 1})
        assert table.lookup(6) is None
        assert table.hits == 1 and table.misses == 1

    def test_default_action(self):
        table = MatchActionTable("t", [MatchKind.EXACT], max_entries=4)
        table.set_default("drop")
        assert table.lookup(9) == ("drop", {})

    def test_capacity_enforced(self):
        table = MatchActionTable("t", [MatchKind.EXACT], max_entries=1)
        table.add_entry(TableEntry(match=(1,), action="a"))
        with pytest.raises(ValueError):
            table.add_entry(TableEntry(match=(2,), action="b"))

    def test_duplicate_exact_rejected(self):
        table = MatchActionTable("t", [MatchKind.EXACT], max_entries=4)
        table.add_entry(TableEntry(match=(1,), action="a"))
        with pytest.raises(ValueError):
            table.add_entry(TableEntry(match=(1,), action="b"))

    def test_arity_enforced(self):
        table = MatchActionTable("t", [MatchKind.EXACT, MatchKind.EXACT], max_entries=4)
        with pytest.raises(ValueError):
            table.add_entry(TableEntry(match=(1,), action="a"))
        with pytest.raises(ValueError):
            table.lookup(1)

    def test_remove_entry(self):
        table = MatchActionTable("t", [MatchKind.EXACT], max_entries=4)
        table.add_entry(TableEntry(match=(1,), action="a"))
        assert table.remove_entry((1,))
        assert not table.remove_entry((1,))
        assert table.lookup(1) is None

    def test_ternary_priority(self):
        table = MatchActionTable("t", [MatchKind.TERNARY], max_entries=4)
        table.add_entry(
            TableEntry(match=(0x10,), action="broad", masks=(0xF0,), priority=1)
        )
        table.add_entry(
            TableEntry(match=(0x15,), action="narrow", masks=(0xFF,), priority=2)
        )
        assert table.lookup(0x15)[0] == "narrow"
        assert table.lookup(0x12)[0] == "broad"
        assert table.lookup(0x25) is None

    def test_lpm_longest_prefix_wins(self):
        table = MatchActionTable("t", [MatchKind.LPM], max_entries=4)
        ip = lambda a, b, c, d: (a << 24) | (b << 16) | (c << 8) | d
        table.add_entry(
            TableEntry(match=(ip(10, 0, 0, 0),), action="slash8", masks=(8,))
        )
        table.add_entry(
            TableEntry(match=(ip(10, 1, 0, 0),), action="slash16", masks=(16,))
        )
        assert table.lookup(ip(10, 1, 2, 3))[0] == "slash16"
        assert table.lookup(ip(10, 2, 2, 3))[0] == "slash8"
        assert table.lookup(ip(11, 0, 0, 1)) is None

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MatchActionTable("t", [], max_entries=4)
        with pytest.raises(ValueError):
            MatchActionTable("t", [MatchKind.EXACT], max_entries=0)
        with pytest.raises(ValueError):
            TableEntry(match=(1, 2), action="a", masks=(None,))


def make_deployment(**kwargs):
    defaults = dict(
        slots_per_collector=1 << 10, num_collectors=2, redundancy=2, value_bytes=8
    )
    defaults.update(kwargs)
    config = DartConfig(**defaults)
    cluster = CollectorCluster(config)
    switch = DartSwitch(config, switch_id=1)
    SwitchControlPlane(config).provision(switch, cluster.endpoints())
    return config, cluster, switch


class TestDartSwitch:
    def test_report_emits_n_valid_frames(self):
        config, _, switch = make_deployment(redundancy=3)
        frames = switch.report(b"flow", b"telem")
        assert len(frames) == 3
        for _collector_id, frame in frames:
            packet = RoceV2Packet.unpack(frame)  # iCRC must validate
            assert packet.bth.opcode == Opcode.RC_RDMA_WRITE_ONLY
            assert packet.reth.dma_length == config.slot_bytes

    def test_frames_target_addressed_slots(self):
        config, _, switch = make_deployment()
        frames = switch.report(b"flow", b"telem")
        locations = switch.addressing.locate(b"flow")
        base = 0x100000  # DEFAULT_BASE_ADDRESS
        for (collector_id, frame), loc in zip(frames, locations):
            packet = RoceV2Packet.unpack(frame)
            assert collector_id == loc.collector_id
            expected = base + loc.slot_index * config.slot_bytes
            assert packet.reth.virtual_address == expected

    def test_psn_advances_per_collector(self):
        _, _, switch = make_deployment(redundancy=2)
        switch.report(b"flow", b"telem")  # 2 frames to one collector
        collector_id = switch.addressing.collector_of(b"flow")
        assert switch.psn_registers.read(collector_id) == 2

    def test_end_to_end_delivery(self):
        """Switch-crafted frames land in collector memory and are queryable."""
        from repro.core.client import DartQueryClient

        config, cluster, switch = make_deployment()
        for collector_id, frame in switch.report(b"flow-x", b"hopdata!"):
            assert cluster[collector_id].receive_frame(frame)
        client = DartQueryClient(config, reader=cluster.read_slot)
        result = client.query(b"flow-x")
        assert result.answered
        assert result.value == b"hopdata!"

    def test_report_single_uses_rng(self):
        _, cluster, switch = make_deployment()
        seen_copies = set()
        for _ in range(50):
            collector_id, frame = switch.report_single(b"flow", b"telem")
            packet = RoceV2Packet.unpack(frame)
            locations = switch.addressing.locate(b"flow")
            base = 0x100000
            for loc in locations:
                if packet.reth.virtual_address == base + loc.slot_index * 12:
                    seen_copies.add(loc.copy_index)
        assert seen_copies == {0, 1}  # RNG exercises both copy slots

    def test_missing_collector_entry_raises(self):
        config = DartConfig(slots_per_collector=64, num_collectors=2)
        switch = DartSwitch(config, switch_id=0)  # never provisioned
        with pytest.raises(LookupError):
            switch.report(b"flow", b"x")
        assert switch.counters.drops_no_collector_entry == 1

    def test_sram_accounting_matches_paper_order(self):
        """Paper: ~20 bytes of SRAM per collector."""
        _, _, switch = make_deployment()
        per_collector = switch.sram_bytes_per_collector()
        assert 15 <= per_collector <= 35
        assert switch.sram_bytes_total() > 0

    def test_counters(self):
        _, _, switch = make_deployment(redundancy=2)
        switch.report(b"a", b"1")
        switch.report_single(b"b", b"2")
        assert switch.counters.events_seen == 2
        assert switch.counters.reports_emitted == 3
        assert switch.mirror.clones_emitted == 2


class TestControlPlane:
    def test_provision_validates_config(self):
        config_a = DartConfig(slots_per_collector=64)
        config_b = DartConfig(slots_per_collector=128)
        cluster = CollectorCluster(config_a)
        switch = DartSwitch(config_b, switch_id=0)
        with pytest.raises(ValueError, match="different DartConfig"):
            SwitchControlPlane(config_a).provision(switch, cluster.endpoints())

    def test_provision_detects_missing_collectors(self):
        config = DartConfig(slots_per_collector=64, num_collectors=2)
        cluster = CollectorCluster(config)
        endpoints = cluster.endpoints()
        del endpoints[1]
        switch = DartSwitch(config, switch_id=0)
        with pytest.raises(ValueError, match="missing collector IDs"):
            SwitchControlPlane(config).provision(switch, endpoints)

    def test_provision_fleet(self):
        config = DartConfig(slots_per_collector=64, num_collectors=3)
        cluster = CollectorCluster(config)
        switches = [DartSwitch(config, switch_id=i) for i in range(4)]
        plane = SwitchControlPlane(config)
        installed = plane.provision_fleet(switches, cluster.endpoints())
        assert installed == {0: 3, 1: 3, 2: 3, 3: 3}
        assert plane.switches_provisioned == 4
        assert plane.entries_installed == 12

    def test_initial_psns(self):
        config = DartConfig(slots_per_collector=64, num_collectors=1)
        cluster = CollectorCluster(config)
        switch = DartSwitch(config, switch_id=0)
        SwitchControlPlane(config).provision(
            switch, cluster.endpoints(), initial_psns={0: 100}
        )
        assert switch.psn_registers.read(0) == 100


class TestRuntimeReconfiguration:
    def make_plane(self, num_standbys=1, num_switches=2):
        config = DartConfig(
            slots_per_collector=1 << 10,
            num_collectors=2,
            redundancy=2,
            value_bytes=8,
        )
        cluster = CollectorCluster(config, num_standbys=num_standbys)
        plane = SwitchControlPlane(config)
        switches = [DartSwitch(config, switch_id=i) for i in range(num_switches)]
        plane.connect_fleet(switches, cluster)
        return config, cluster, plane, switches

    def test_provision_error_lists_every_missing_id(self):
        config = DartConfig(slots_per_collector=64, num_collectors=4)
        cluster = CollectorCluster(config)
        endpoints = cluster.endpoints()
        del endpoints[1]
        del endpoints[3]
        switch = DartSwitch(config, switch_id=0)
        with pytest.raises(ValueError, match=r"missing collector IDs \[1, 3\]"):
            SwitchControlPlane(config).provision(switch, endpoints)

    def test_provision_rejects_partially(self):
        """A rejected provision must not leave half-installed state."""
        config = DartConfig(slots_per_collector=64, num_collectors=2)
        cluster = CollectorCluster(config)
        endpoints = cluster.endpoints()
        del endpoints[1]
        switch = DartSwitch(config, switch_id=0)
        plane = SwitchControlPlane(config)
        with pytest.raises(ValueError):
            plane.provision(switch, endpoints)
        assert len(switch.collector_table) == 0
        assert plane.switches == []

    def test_switch_registry_in_id_order(self):
        _, _, plane, switches = self.make_plane(num_switches=3)
        assert [s.switch_id for s in plane.switches] == [0, 1, 2]
        assert plane.switches == switches

    def test_apply_update_validates_config(self):
        config, cluster, plane, _switches = self.make_plane()
        other = DartSwitch(
            DartConfig(slots_per_collector=1 << 9, num_collectors=2),
            switch_id=9,
        )
        with pytest.raises(ValueError, match="different DartConfig"):
            plane.apply_update(other, 0, cluster.node(0).endpoint)

    def test_apply_update_validates_role(self):
        config, cluster, plane, switches = self.make_plane()
        with pytest.raises(ValueError, match="role 2 outside"):
            plane.apply_update(switches[0], 2, cluster.node(0).endpoint)
        with pytest.raises(ValueError, match="role -1 outside"):
            plane.apply_update(switches[0], -1, cluster.node(0).endpoint)

    def test_update_collector_returns_previous_row(self):
        config, cluster, plane, switches = self.make_plane()
        switch = switches[0]
        old = dict(switch.collector_endpoint(0))
        old_psn = switch.psn_registers.read(0)
        standby = cluster.node(2)
        previous = plane.apply_update(
            switch, 0, standby.endpoint, initial_psn=9, epoch=4
        )
        assert previous is not None
        assert previous["mac"] == old["mac"]
        assert previous["initial_psn"] == old_psn
        assert previous["epoch"] == 0
        assert switch.collector_endpoint(0)["mac"] == standby.nic.mac
        assert switch.psn_registers.read(0) == 9
        assert switch.endpoint_epochs[0] == 4

    def test_update_collector_on_empty_role_returns_none(self):
        config = DartConfig(slots_per_collector=64, num_collectors=2)
        switch = DartSwitch(config, switch_id=0)  # never provisioned
        endpoint = CollectorCluster(config).node(0).endpoint
        previous = switch.update_collector(
            collector_id=0,
            mac=endpoint.mac,
            ip=endpoint.ip,
            qp_number=endpoint.qp_number,
            rkey=endpoint.rkey,
            base_address=endpoint.base_address,
        )
        assert previous is None
        assert switch.collector_endpoint(0)["mac"] == endpoint.mac

    def test_collector_endpoint_reads_do_not_count_as_lookups(self):
        """Control-plane reads must not pollute data-plane table counters."""
        _, _, plane, switches = self.make_plane()
        switch = switches[0]
        hits_before = switch.collector_table.hits
        misses_before = switch.collector_table.misses
        assert switch.collector_endpoint(0) is not None
        assert switch.collector_endpoint(7) is None
        assert switch.collector_table.hits == hits_before
        assert switch.collector_table.misses == misses_before
