"""Tests for the telemetry fabric seam (repro.fabric) and batched paths.

Three claims are enforced here:

1. transport semantics -- inline delivers synchronously, buffered defers
   until threshold/flush, counters account for every frame;
2. equivalence -- routing a workload through ``BufferedFabric`` (flushed)
   leaves collector memory bit-identical to ``InlineFabric``, and the
   batched write/addressing APIs produce bit-identical results to their
   scalar counterparts;
3. the seam itself -- no module in ``src/`` outside the fabric and the
   endpoint implementations calls ``receive_frame`` directly.
"""

import pathlib

import pytest

from repro.core.addressing import DartAddressing
from repro.core.config import DartConfig
from repro.core.reporter import DartReporter
from repro.collector.collector import CollectorCluster
from repro.collector.counters import CounterStore
from repro.collector.remote_query import RemoteQueryClient
from repro.collector.store import DartStore
from repro.core.cas_store import CasDartStore
from repro.fabric import (
    BufferedFabric,
    Fabric,
    FabricPort,
    ImpairedFabric,
    InlineFabric,
)
from repro.fabric.fabric import drain_pairs
from repro.hashing.hash_family import HashFamily, fold_key
from repro.network.flows import FlowGenerator
from repro.network.packet_sim import PacketLevelIntNetwork
from repro.network.simulation import IntSimulation
from repro.network.topology import FatTreeTopology
from repro.switch.dart_switch import DartSwitch


class RecordingPort:
    """A minimal FabricPort that records frames and executes on demand."""

    def __init__(self, execute=True):
        self.frames = []
        self.execute = execute
        self.outbound = []

    def receive_frame(self, frame):
        self.frames.append(frame)
        return self.execute

    def transmit(self):
        drained, self.outbound = self.outbound, []
        return drained


def small_config(**overrides):
    defaults = dict(slots_per_collector=1 << 10, num_collectors=2, seed=3)
    defaults.update(overrides)
    return DartConfig(**defaults)


class TestEndpointRegistry:
    def test_attach_and_lookup(self):
        fabric = InlineFabric()
        port = RecordingPort()
        fabric.attach(7, port)
        assert fabric.port(7) is port
        assert fabric.endpoint_ids() == [7]

    def test_duplicate_attach_rejected(self):
        fabric = InlineFabric()
        fabric.attach(1, RecordingPort())
        with pytest.raises(ValueError, match="already attached"):
            fabric.attach(1, RecordingPort())

    def test_unknown_endpoint_raises(self):
        fabric = InlineFabric()
        fabric.attach(0, RecordingPort())
        with pytest.raises(KeyError):
            fabric.port(5)
        with pytest.raises(KeyError):
            fabric.send(5, b"frame")

    def test_ports_satisfy_protocol(self):
        config = small_config()
        cluster = CollectorCluster(config)
        assert isinstance(cluster[0], FabricPort)
        assert isinstance(RecordingPort(), FabricPort)


class TestInlineFabric:
    def test_synchronous_delivery(self):
        fabric = InlineFabric()
        port = RecordingPort(execute=True)
        fabric.attach(0, port)
        assert fabric.send(0, b"a") is True
        assert port.frames == [b"a"]
        assert fabric.pending() == 0
        counters = fabric.counters
        assert counters.frames_offered == 1
        assert counters.frames_delivered == 1
        assert counters.frames_executed == 1
        assert counters.frames_rejected == 0

    def test_rejected_frames_counted(self):
        fabric = InlineFabric()
        fabric.attach(0, RecordingPort(execute=False))
        assert fabric.send(0, b"bad") is False
        assert fabric.counters.frames_rejected == 1
        assert fabric.counters.frames_executed == 0

    def test_send_many_uses_bulk_path(self):
        fabric = InlineFabric()
        port = RecordingPort()
        fabric.attach(0, port)
        executed = fabric.send_many(0, [b"a", b"b", b"c"])
        assert executed == 3
        assert port.frames == [b"a", b"b", b"c"]
        assert fabric.counters.frames_offered == 3
        assert fabric.counters.frames_delivered == 3

    def test_drain_pairs_counts_executed(self):
        fabric = InlineFabric()
        fabric.attach(0, RecordingPort(execute=True))
        fabric.attach(1, RecordingPort(execute=False))
        assert drain_pairs(fabric, [(0, b"x"), (1, b"y"), (0, b"z")]) == 2

    def test_poll_drains_outbound(self):
        fabric = InlineFabric()
        port = RecordingPort()
        port.outbound = [b"resp"]
        fabric.attach(0, port)
        assert fabric.poll(0) == [b"resp"]
        assert fabric.poll(0) == []


class TestBufferedFabric:
    def test_defers_until_flush(self):
        fabric = BufferedFabric(flush_threshold=None)
        port = RecordingPort()
        fabric.attach(0, port)
        assert fabric.send(0, b"a") is None
        assert fabric.send(0, b"b") is None
        assert port.frames == []
        assert fabric.pending() == 2
        assert fabric.pending_for(0) == 2
        delivered = fabric.flush()
        assert delivered == 2
        assert port.frames == [b"a", b"b"]
        assert fabric.pending() == 0
        assert fabric.counters.frames_delivered == 2

    def test_threshold_triggers_per_link_flush(self):
        fabric = BufferedFabric(flush_threshold=3)
        port_a, port_b = RecordingPort(), RecordingPort()
        fabric.attach(0, port_a)
        fabric.attach(1, port_b)
        fabric.send(0, b"a1")
        fabric.send(0, b"a2")
        fabric.send(1, b"b1")
        assert port_a.frames == [] and port_b.frames == []
        fabric.send(0, b"a3")  # hits the threshold on link 0 only
        assert port_a.frames == [b"a1", b"a2", b"a3"]
        assert port_b.frames == []
        assert fabric.pending_for(1) == 1

    def test_order_preserved_per_link(self):
        fabric = BufferedFabric(flush_threshold=None)
        port = RecordingPort()
        fabric.attach(0, port)
        frames = [bytes([i]) for i in range(10)]
        fabric.send_many(0, frames)
        fabric.flush()
        assert port.frames == frames

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            BufferedFabric(flush_threshold=0)

    def test_send_validates_endpoint_before_queueing(self):
        fabric = BufferedFabric()
        with pytest.raises(KeyError):
            fabric.send(9, b"frame")
        assert fabric.pending() == 0

    def test_poll_flushes_the_polled_link_first(self):
        fabric = BufferedFabric(flush_threshold=None)
        port = RecordingPort()
        fabric.attach(0, port)
        fabric.send(0, b"req")
        assert fabric.poll(0) == []  # nothing outbound, but the link drained
        assert port.frames == [b"req"]


class TestBatchedPrimitives:
    """The batched APIs must be bit-identical to their scalar counterparts."""

    def test_hash_folded_matches_hash_key(self):
        family = HashFamily(seed=11)
        for key in [("flow", 1), ("10.0.0.1", "10.0.0.2", 5000, 80, 6), "k"]:
            folded = fold_key(key)
            for index in (0, 1, 5, 0x7FFFFFFF):
                assert family.hash_folded(folded, index) == family.hash_key(
                    key, index
                )

    def test_resolve_matches_scalar_addressing(self):
        config = small_config(redundancy=3)
        addressing = DartAddressing(config)
        for i in range(50):
            key = ("flow", i)
            resolved = addressing.resolve(key)
            assert resolved.collector_id == addressing.collector_of(key)
            assert resolved.checksum == addressing.checksum_of(key)
            assert resolved.slot_indexes == tuple(
                addressing.slot_index(key, n)
                for n in range(config.redundancy)
            )

    def test_report_batch_matches_writes_for(self):
        config = small_config()
        reporter_a = DartReporter(config)
        reporter_b = DartReporter(config)
        items = [(("flow", i), i.to_bytes(20, "big")) for i in range(40)]
        batched = reporter_a.report_batch(items)
        scalar = [
            write for key, value in items
            for write in reporter_b.writes_for(key, value)
        ]
        assert batched == scalar

    def test_ingest_many_equals_looped_receive(self):
        config = small_config(num_collectors=1)
        store_a = DartStore(config, packet_level=True)
        store_b = DartStore(config, packet_level=True)
        frames = []
        for i in range(20):
            frames.extend(
                frame
                for _cid, frame in store_a._switch.report(
                    ("flow", i), i.to_bytes(20, "big")
                )
            )
        # Same frames into store_b's NIC: once batched, once one-by-one.
        nic_b = store_b.cluster[0].nic
        executed_batch = nic_b.ingest_many(frames)
        executed_loop = sum(
            1 for frame in frames if store_a.cluster[0].nic.receive_frame(frame)
        )
        assert executed_batch == executed_loop == len(frames)
        assert (
            store_b.cluster[0].region.snapshot()
            == store_a.cluster[0].region.snapshot()
        )

    def test_put_many_equals_sequential_puts(self):
        config = small_config()
        store_a = DartStore(config)
        store_b = DartStore(config)
        items = [(("flow", i), i.to_bytes(20, "big")) for i in range(60)]
        written = store_a.put_many(items)
        for key, value in items:
            store_b.put(key, value)
        assert written == len(items) * config.redundancy
        for collector_a, collector_b in zip(store_a.cluster, store_b.cluster):
            assert collector_a.region.snapshot() == collector_b.region.snapshot()
        assert store_a.puts == store_b.puts


def run_workload(store):
    """A deterministic mixed workload, returns the keys used."""
    keys = []
    for i in range(120):
        key = ("flow", i % 40)  # repeats force overwrites
        store.put(key, (i * 7 % 251).to_bytes(20, "big"))
        keys.append(key)
    return keys


class TestFabricEquivalence:
    """Same workload, different transport: memory must be bit-identical."""

    def test_inline_vs_buffered_store(self):
        config = small_config()
        inline_store = DartStore(config, packet_level=True, fabric=InlineFabric())
        buffered = BufferedFabric(flush_threshold=None)
        buffered_store = DartStore(config, packet_level=True, fabric=buffered)

        run_workload(inline_store)
        run_workload(buffered_store)
        assert buffered.pending() > 0  # really was deferred
        buffered.flush()
        assert buffered.pending() == 0

        for collector_a, collector_b in zip(
            inline_store.cluster, buffered_store.cluster
        ):
            assert (
                collector_a.region.snapshot() == collector_b.region.snapshot()
            )
            counters_a = collector_a.nic.counters
            counters_b = collector_b.nic.counters
            assert counters_a.frames_received == counters_b.frames_received
            assert counters_a.writes_executed == counters_b.writes_executed
            assert counters_a.frames_dropped == counters_b.frames_dropped

        # Every key queryable through either store, same answers.
        for key in set(run_workload(DartStore(config))):
            assert (
                inline_store.get(key).value == buffered_store.get(key).value
            )

    def test_inline_vs_buffered_auto_threshold(self):
        config = small_config()
        inline_store = DartStore(config, packet_level=True)
        buffered = BufferedFabric(flush_threshold=5)
        buffered_store = DartStore(config, packet_level=True, fabric=buffered)
        run_workload(inline_store)
        run_workload(buffered_store)
        buffered.flush()
        for collector_a, collector_b in zip(
            inline_store.cluster, buffered_store.cluster
        ):
            assert (
                collector_a.region.snapshot() == collector_b.region.snapshot()
            )

    def test_put_many_packet_level_equivalence(self):
        config = small_config()
        store_a = DartStore(config, packet_level=True)
        store_b = DartStore(
            config, packet_level=True, fabric=BufferedFabric(flush_threshold=None)
        )
        items = [(("flow", i), i.to_bytes(20, "big")) for i in range(50)]
        offered_a = store_a.put_many(items)
        offered_b = store_b.put_many(items)  # put_many flushes internally
        assert offered_a == offered_b == len(items) * config.redundancy
        assert store_b.fabric.pending() == 0
        for collector_a, collector_b in zip(store_a.cluster, store_b.cluster):
            assert collector_a.region.snapshot() == collector_b.region.snapshot()


class TestFabricIntegration:
    def test_switch_requires_bound_fabric(self):
        config = small_config()
        switch = DartSwitch(config, switch_id=1)
        with pytest.raises(RuntimeError, match="no fabric bound"):
            switch.report_into(("flow", 1), b"\x00" * 20)

    def test_switch_report_into(self):
        config = small_config(num_collectors=1)
        store = DartStore(config, packet_level=True)
        switch = store._switch
        offered = switch.report_into(("flow", 9), b"\x09" * 20)
        assert offered == config.redundancy
        assert store.get_value(("flow", 9)) == b"\x09" * 20

    def test_packet_network_over_buffered_fabric(self):
        tree = FatTreeTopology(k=4)
        config = DartConfig(slots_per_collector=1 << 12, num_collectors=1)
        fabric = BufferedFabric(flush_threshold=None)
        network = PacketLevelIntNetwork(tree, config, fabric=fabric)
        flows = FlowGenerator(
            tree.num_hosts, host_ip=tree.host_ip, seed=2
        ).uniform(30)
        for flow in flows:
            result = network.send(flow)
            assert result.report_frames == config.redundancy
        assert fabric.pending() > 0
        fabric.flush()
        for flow in flows:
            assert network.query_path(flow).answered

    def test_int_simulation_over_buffered_fabric(self):
        tree = FatTreeTopology(k=4)
        config = DartConfig(slots_per_collector=1 << 12, num_collectors=1)
        fabric = BufferedFabric(flush_threshold=8)
        sim = IntSimulation(tree, config, packet_level=True, fabric=fabric)
        flows = FlowGenerator(
            tree.num_hosts, host_ip=tree.host_ip, seed=4
        ).uniform(40)
        sim.trace_flows(flows)
        fabric.flush()
        evaluation = sim.evaluate()
        assert evaluation.success_rate == 1.0

    def test_fabric_requires_packet_level(self):
        config = small_config()
        with pytest.raises(ValueError, match="packet_level=True"):
            DartStore(config, fabric=InlineFabric())
        with pytest.raises(ValueError, match="packet_level=True"):
            IntSimulation(FatTreeTopology(k=4), config, fabric=InlineFabric())

    def test_remote_query_through_buffered_fabric(self):
        config = small_config()
        store = DartStore(config)
        keys = run_workload(store)
        fabric = store.cluster.attach_to(BufferedFabric(flush_threshold=None))
        remote = RemoteQueryClient(config, store.cluster, fabric=fabric)
        for key in set(keys):
            local = store.get(key)
            assert remote.query(key).value == local.value
        assert remote.read_requests_sent > 0

    def test_remote_query_many(self):
        config = small_config()
        store = DartStore(config)
        keys = run_workload(store)
        remote = RemoteQueryClient(config, store.cluster)
        results = remote.query_many(keys)
        assert set(results) == set(keys)
        for key, result in results.items():
            assert result.value == store.get(key).value

    def test_counter_store_over_fabric(self):
        inline = CounterStore(cells_per_row=1 << 10, rows=2)
        batched = CounterStore(cells_per_row=1 << 10, rows=2)
        items = [((f"flow-{i % 7}",), i % 3 + 1) for i in range(30)]
        for key, amount in items:
            inline.add(key, amount)
        offered = batched.add_many(items)
        assert offered == len(items) * 2  # one frame per sketch row
        assert inline.total_adds() == batched.total_adds()
        for key, _amount in items:
            assert inline.estimate(key) == batched.estimate(key)

    def test_cas_store_over_fabric(self):
        store_a = CasDartStore(num_slots=1 << 10, seed=2)
        store_b = CasDartStore(
            num_slots=1 << 10, seed=2, fabric=BufferedFabric(flush_threshold=None)
        )
        items = [((f"k{i}",), i) for i in range(40)]
        for key, value in items:
            store_a.put(key, value)
        offered = store_b.put_many(items)
        assert offered == len(items) * 2  # WRITE + CAS per key
        assert store_a.region.snapshot() == store_b.region.snapshot()
        for key, value in items:
            assert store_a.get(key) == store_b.get(key)


ALLOWED_RECEIVE_FRAME_FILES = {
    # The seam itself plus the two endpoint implementations.
    pathlib.PurePosixPath("repro/fabric/fabric.py"),
    pathlib.PurePosixPath("repro/rdma/nic.py"),
    pathlib.PurePosixPath("repro/collector/collector.py"),
}


class TestSeamEnforcement:
    """No module outside the fabric/endpoints may deliver frames directly."""

    def test_no_direct_receive_frame_calls_in_src(self):
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            relative = pathlib.PurePosixPath(
                path.relative_to(src).as_posix()
            )
            if relative in ALLOWED_RECEIVE_FRAME_FILES:
                continue
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                stripped = line.split("#", 1)[0]
                if ".receive_frame(" in stripped:
                    offenders.append(f"{relative}:{lineno}")
        assert offenders == [], (
            "direct receive_frame() deliveries bypass the fabric seam: "
            + ", ".join(offenders)
        )

    def test_fabric_is_abstract(self):
        fabric = Fabric()
        fabric.attach(0, RecordingPort())
        with pytest.raises(NotImplementedError):
            fabric.send(0, b"frame")

    def test_impaired_exported_from_package(self):
        assert ImpairedFabric is not None
