"""Tests for the section-4 closed forms (repro.core.theory)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import theory

alphas = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
redundancies = st.integers(min_value=1, max_value=8)
checksum_widths = st.integers(min_value=1, max_value=62)


class TestBasicForms:
    def test_slot_overwrite_probability(self):
        assert theory.p_slot_overwritten(0.0, 2) == 0.0
        assert theory.p_slot_overwritten(1.0, 1) == pytest.approx(1 - math.exp(-1))
        assert theory.p_slot_overwritten(1.0, 2) == pytest.approx(1 - math.exp(-2))

    def test_all_copies_overwritten(self):
        expected = (1 - math.exp(-2)) ** 2
        assert theory.p_all_copies_overwritten(1.0, 2) == pytest.approx(expected)

    def test_queryability_complements(self):
        assert theory.queryability(0.0, 3) == 1.0
        total = theory.queryability(1.5, 2) + theory.p_all_copies_overwritten(1.5, 2)
        assert total == pytest.approx(1.0)

    def test_paper_figure4_oldest_report_anchor(self):
        """Paper: oldest reports at 3 GB predicted ~38.7% queryable.

        3 GB / 24-byte slots with 100 M flows is alpha in [0.745, 0.80]
        depending on the GB convention; the closed form must bracket the
        paper's 38.7% in that range.
        """
        low = theory.queryability(0.80, 2)  # GB = 1e9
        high = theory.queryability(0.745, 2)  # GB = 2^30
        assert low < 0.387 < high

    def test_vectorised_alpha(self):
        values = theory.queryability(np.array([0.0, 0.5, 1.0]), 2)
        assert values.shape == (3,)
        assert values[0] == 1.0
        assert np.all(np.diff(values) < 0)

    @pytest.mark.parametrize(
        "call",
        [
            lambda: theory.p_slot_overwritten(-0.1, 2),
            lambda: theory.p_slot_overwritten(1.0, 0),
            lambda: theory.empty_return_probability(1.0, 2, 0),
            lambda: theory.empty_return_probability(1.0, 2, 65),
        ],
    )
    def test_validation(self, call):
        with pytest.raises(ValueError):
            call()


class TestEmptyReturn:
    def test_simple_formula(self):
        alpha, n, b = 1.0, 2, 8
        expected = (1 - math.exp(-2)) ** 2 * (1 - 2**-8) ** 2
        assert theory.empty_return_probability(alpha, n, b) == pytest.approx(expected)

    @given(alpha=alphas, n=redundancies, b=checksum_widths)
    def test_bounded_by_all_overwritten(self, alpha, n, b):
        empty = theory.empty_return_probability(alpha, n, b)
        assert 0.0 <= empty <= theory.p_all_copies_overwritten(alpha, n) + 1e-12

    @given(alpha=alphas, n=redundancies, b=checksum_widths)
    def test_ambiguity_bounds_ordered(self, alpha, n, b):
        lower, upper = theory.empty_return_ambiguity_bounds(alpha, n, b)
        assert -1e-12 <= lower <= upper + 1e-12
        assert upper <= 1.0

    def test_ambiguity_zero_for_n1(self):
        """With N=1 there is no multi-value ambiguity."""
        lower, upper_extra = theory.empty_return_ambiguity_bounds(1.0, 1, 8)
        assert lower == 0.0


class TestReturnError:
    @given(alpha=alphas, n=redundancies, b=checksum_widths)
    def test_bounds_ordered_and_probabilities(self, alpha, n, b):
        lower, upper = theory.return_error_bounds(alpha, n, b)
        assert -1e-15 <= lower <= upper + 1e-15
        assert upper <= 1.0

    def test_wider_checksum_reduces_error(self):
        """Figure 5's main message: longer checksums, fewer errors."""
        _, err8 = theory.return_error_bounds(2.0, 2, 8)
        _, err16 = theory.return_error_bounds(2.0, 2, 16)
        _, err32 = theory.return_error_bounds(2.0, 2, 32)
        assert err8 > err16 > err32
        assert err32 < 1e-8  # 32-bit checksums make errors negligible

    def test_lower_bound_formula(self):
        alpha, n, b = 2.0, 2, 8
        all_over = (1 - math.exp(-4)) ** 2
        expected = all_over * 2 * 2**-8 * (1 - 2**-8)
        lower, _ = theory.return_error_bounds(alpha, n, b)
        assert lower == pytest.approx(expected)


class TestAverageQueryability:
    def test_zero_load_is_perfect(self):
        assert theory.average_queryability(0.0, 2) == pytest.approx(1.0)

    def test_matches_numerical_integration(self):
        """Closed form equals the integral of per-age queryability."""
        from scipy.integrate import quad

        for alpha in (0.2, 0.8, 2.0):
            for n in (1, 2, 4):
                numeric, _ = quad(
                    lambda t: theory.queryability(alpha * t, n), 0, 1
                )
                closed = theory.average_queryability(alpha, n)
                assert closed == pytest.approx(numeric, abs=1e-9)

    def test_paper_figure4_average_anchor(self):
        """Paper: 71.4% average queryability at 3 GB for 100 M flows."""
        low = theory.average_queryability(0.80, 2)
        high = theory.average_queryability(0.745, 2)
        assert low < 0.714 < high + 0.01

    def test_paper_figure4_30gb_anchors(self):
        """Paper: 99.3% at 30 GB (N=2); 99.9% with N=4."""
        assert theory.average_queryability(0.08, 2) == pytest.approx(0.993, abs=0.002)
        assert theory.average_queryability(0.08, 4) == pytest.approx(0.999, abs=0.0005)

    @given(alpha=st.floats(min_value=0.01, max_value=5.0), n=redundancies)
    def test_average_above_oldest(self, alpha, n):
        """The average over ages always beats the oldest key's odds."""
        assert theory.average_queryability(alpha, n) >= theory.queryability(
            alpha, n
        ) - 1e-12

    def test_monotone_decreasing_in_load(self):
        values = theory.average_queryability(np.linspace(0.01, 3, 50), 2)
        assert np.all(np.diff(values) < 0)


class TestOptimalRedundancy:
    def test_light_load_prefers_more_copies(self):
        assert theory.optimal_redundancy(0.02) >= 4

    def test_heavy_load_prefers_single_copy(self):
        assert theory.optimal_redundancy(3.0) == 1

    def test_moderate_load_prefers_two(self):
        """The paper's N=2 sweet spot appears at moderate loads."""
        assert theory.optimal_redundancy(0.7, candidates=(1, 2, 3, 4, 8)) == 2

    def test_bands_monotone_nonincreasing(self):
        """Optimal N never increases as load grows."""
        bands = theory.optimal_redundancy_bands(np.linspace(0.05, 3, 60))
        ns = [n for _, n in bands]
        assert all(a >= b for a, b in zip(ns, ns[1:]))

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            theory.optimal_redundancy(1.0, candidates=())


class TestHelpers:
    def test_age_to_alpha(self):
        assert theory.age_to_alpha(100, 1000) == 0.1
        with pytest.raises(ValueError):
            theory.age_to_alpha(-1, 10)
        with pytest.raises(ValueError):
            theory.age_to_alpha(1, 0)

    @given(alpha=alphas, n=redundancies, b=st.integers(min_value=8, max_value=62))
    def test_success_probability_in_range(self, alpha, n, b):
        p = theory.success_probability(alpha, n, b)
        assert 0.0 <= p <= 1.0
        assert p <= theory.queryability(alpha, n) + 1e-12
