"""Meta-tests: documentation coverage of the public API.

Deliverable (e) requires doc comments on every public item; these tests
enforce it mechanically so regressions fail CI rather than review.
"""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro",
    "repro.baselines",
    "repro.collector",
    "repro.control",
    "repro.core",
    "repro.experiments",
    "repro.fabric",
    "repro.hashing",
    "repro.mem",
    "repro.network",
    "repro.obs",
    "repro.primitives",
    "repro.query",
    "repro.rdma",
    "repro.switch",
    "repro.switch.p4",
    "repro.telemetry",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if info.ispkg:
                continue
            yield importlib.import_module(f"{package_name}.{info.name}")


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(member) is not module:
            continue  # re-exports are documented at their home
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__
            for module in iter_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, member in public_members(module):
                if not (member.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_every_public_method_documented(self):
        undocumented = []
        for module in iter_modules():
            for class_name, klass in public_members(module):
                if not inspect.isclass(klass):
                    continue
                for name, method in vars(klass).items():
                    if name.startswith("_"):
                        continue
                    if not callable(method) and not isinstance(
                        method, (property, staticmethod, classmethod)
                    ):
                        continue
                    target = method
                    if isinstance(method, property):
                        target = method.fget
                    elif isinstance(method, (staticmethod, classmethod)):
                        target = method.__func__
                    if not callable(target):
                        continue
                    if not (getattr(target, "__doc__", None) or "").strip():
                        undocumented.append(
                            f"{module.__name__}.{class_name}.{name}"
                        )
        assert undocumented == []

    def test_version_exported(self):
        assert repro.__version__
