"""End-to-end identity: the query front end vs direct reads, per fabric.

The front end is only trustworthy if its answers are *identical* to what
a direct one-sided client sees -- same bytes from the keys plane, same
count-min estimates, same ring records -- over every fabric flavour the
fleet runs on, and across a mid-run failover that moves a shard to a
standby under the service's feet.
"""

import pytest

from repro import obs
from repro.core.client import DartQueryClient
from repro.core.policies import ReturnPolicy
from repro.query.fleet import QueryFleet, fabric_flavour
from repro.query.service import QueryService

FLAVOURS = ("inline", "buffered", "impaired")

#: Fabrics whose probe round trips complete without an external flush --
#: the flavours the failure-detector-driven failover leg can run on.
#: (BufferedFabric defers probe frames past the detector's poll, so a
#: controller on it would declare every host dead; its identity legs run
#: without a controller.)
CONTROLLED_FLAVOURS = ("inline", "impaired")


@pytest.fixture
def registry():
    registry = obs.MetricsRegistry(enabled=True)
    previous = obs.set_registry(registry)
    yield registry
    obs.set_registry(previous)


def build_fleet(flavour, registry, standbys=0):
    """One populated fleet of the requested fabric flavour."""
    fleet = QueryFleet(
        fabric_factory=fabric_flavour(flavour, loss=0.03, seed=7),
        num_standbys=standbys,
    )
    fleet.put_many((f"flow-{i}", b"value-%02d" % i) for i in range(40))
    fleet.count_many((f"flow-{i}", 3 * i + 1) for i in range(40))
    fleet.sketch_many((f"flow-{i}", i + 2) for i in range(40))
    for index in range(12):
        fleet.append(f"flow-{index}", b"rec-%02d" % index)
    return fleet


def assert_keys_identical(fleet, service, policy=ReturnPolicy.PLURALITY):
    """Service key rows must be byte-identical to direct client reads."""
    direct = DartQueryClient(
        fleet.config, reader=fleet.cluster.read_slot, policy=policy
    )
    result = service.serve(f"select value from keys policy {policy.value}")
    by_key = {row["key"]: row for row in result.answer.rows}
    assert set(by_key) == {f"flow-{i}" for i in range(40)}
    for key in fleet.known_keys:
        expected = direct.query(key)
        row = by_key[key]
        assert row["value"] == expected.value  # byte identity
        assert row["answered"] == expected.answered
    return result


def assert_estimates_identical(fleet, service, source):
    """Service estimates must equal the collector-local ground truth."""
    result = service.serve(f"select est from {source}")
    by_key = {row["key"]: row["est"] for row in result.answer.rows}
    for key in fleet.known_keys:
        assert by_key[key] == fleet.direct_estimate(key, source=source)


def assert_ring_identical(fleet, service):
    """Service ring rows must equal each shard's recovered snapshot."""
    result = service.serve("select record from ring")
    served = sorted(
        (row["index"], row["record"]) for row in result.answer.rows
    )
    expected = sorted(
        pair
        for store in fleet.ring_stores.values()
        for pair in store.recover().records
    )
    assert served == expected


class TestIdentityPerFabric:
    @pytest.mark.parametrize("flavour", FLAVOURS)
    def test_keys_byte_identical_to_direct_client(self, registry, flavour):
        fleet = build_fleet(flavour, registry)
        service = QueryService(fleet, cache_ttl_ticks=1)
        result = assert_keys_identical(fleet, service)
        assert result.answer.complete

    @pytest.mark.parametrize("flavour", FLAVOURS)
    def test_every_policy_resolves_identically(self, registry, flavour):
        fleet = build_fleet(flavour, registry)
        service = QueryService(fleet, cache_ttl_ticks=1)
        for policy in ReturnPolicy:
            assert_keys_identical(fleet, service, policy=policy)

    @pytest.mark.parametrize("flavour", FLAVOURS)
    def test_counter_and_sketch_estimates_identical(self, registry, flavour):
        fleet = build_fleet(flavour, registry)
        service = QueryService(fleet, cache_ttl_ticks=1)
        assert_estimates_identical(fleet, service, "counters")
        assert_estimates_identical(fleet, service, "sketch")

    @pytest.mark.parametrize("flavour", FLAVOURS)
    def test_ring_window_identical(self, registry, flavour):
        fleet = build_fleet(flavour, registry)
        service = QueryService(fleet, cache_ttl_ticks=1)
        assert_ring_identical(fleet, service)

    @pytest.mark.parametrize("flavour", FLAVOURS)
    def test_aggregates_match_ground_truth(self, registry, flavour):
        fleet = build_fleet(flavour, registry)
        service = QueryService(fleet, cache_ttl_ticks=1)
        truth = sum(
            fleet.direct_estimate(key, source="counters")
            for key in fleet.known_keys
        )
        assert service.serve("select sum(est) from counters").answer.value == truth
        assert (
            service.serve("select count(*) from ring").answer.value
            == sum(len(s.recover()) for s in fleet.ring_stores.values())
        )


class TestMidRunFailover:
    @pytest.mark.parametrize("flavour", CONTROLLED_FLAVOURS)
    def test_failover_bumps_epoch_and_preserves_identity(
        self, registry, flavour
    ):
        fleet = build_fleet(flavour, registry, standbys=1)
        fleet.enable_control(fail_after=4, tick_interval=5)
        fleet.settle(10)
        service = QueryService(fleet, cache_ttl_ticks=100_000)

        before = assert_keys_identical(fleet, service)
        assert before.answer.complete
        # The same query again is a cache hit at the stable epoch.
        assert service.serve(
            "select value from keys policy plurality"
        ).cached
        epoch_before = service.current_epoch

        # Crash the node serving role 0 mid-run; the controller detects
        # the failure on the packet clock and promotes the standby.
        victim = fleet.shard_map().node_for(0)
        fleet.kill_node(victim)
        fleet.settle(60)
        assert service.current_epoch > epoch_before
        assert fleet.shard_map().node_for(0) != victim

        # The epoch bump invalidated the cache: the next serve re-plans
        # against the new shard map and fans out to the standby.
        after = service.serve("select value from keys policy plurality")
        assert not after.cached
        assert after.epoch > epoch_before
        assert after.answer.complete

        # And the re-fanned-out answer is still byte-identical to a
        # direct client read over the *new* topology.
        assert_keys_identical(fleet, service)

    def test_reader_rebinds_to_promoted_standby(self, registry):
        fleet = build_fleet("inline", registry, standbys=1)
        fleet.enable_control(fail_after=2, tick_interval=5)
        fleet.settle(6)
        service = QueryService(fleet, cache_ttl_ticks=1)
        service.serve("select value from keys")
        victim = fleet.shard_map().node_for(2)
        fleet.kill_node(victim)
        fleet.settle(40)
        promoted = fleet.shard_map().node_for(2)
        assert promoted != victim
        # The backend must have dropped the reader bound to the dead
        # node; the fresh serve reads role 2 from the promoted host.
        result = service.serve("select value from keys")
        assert result.answer.complete
        assert (2, victim) not in fleet.backend._keys_readers
        assert (2, promoted) in fleet.backend._keys_readers
