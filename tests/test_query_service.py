"""The query service: cache TTL/epoch semantics, quotas, admission, health."""

import asyncio

import pytest

from repro import obs
from repro.obs.health import PipelineHealth
from repro.query.fleet import QueryFleet
from repro.query.planner import QueryAnswer
from repro.query.service import (
    AdmissionRejected,
    QueryService,
    QuotaExceeded,
    ResultCache,
    TokenBucket,
)


@pytest.fixture
def registry():
    registry = obs.MetricsRegistry(enabled=True)
    previous = obs.set_registry(registry)
    yield registry
    obs.set_registry(previous)


@pytest.fixture
def fleet(registry):
    fleet = QueryFleet(num_standbys=1)
    fleet.put_many((f"flow-{i}", b"v%d" % i) for i in range(16))
    fleet.count_many((f"flow-{i}", i + 1) for i in range(16))
    return fleet


def tenant_counter(registry, family, tenant):
    """The live per-tenant counter value for one family (0 when absent)."""
    total = 0
    for labels, metric in registry.samples(family):
        if labels.get("tenant") == tenant:
            total += metric.value
    return total


class TestTokenBucket:
    def test_burst_then_starvation(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=0)
        assert [bucket.take(0) for _ in range(4)] == [True, True, True, False]

    def test_refills_on_clock_not_calls(self):
        bucket = TokenBucket(rate=0.5, burst=2.0, clock=0)
        assert bucket.take(0) and bucket.take(0)
        assert not bucket.take(0)
        assert not bucket.take(1)  # 0.5 tokens: still short
        assert bucket.take(3)  # 1.5 accrued by tick 3

    def test_clock_never_runs_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=10)
        assert bucket.take(10)
        bucket.refill(5)
        assert not bucket.take(5)
        assert bucket.take(11)


class TestResultCacheUnit:
    def answer(self):
        from repro.query.lang import parse_query

        return QueryAnswer(
            query=parse_query("select value from keys"),
            epoch=0, rows=[], value=None,
        )

    def test_ttl_expiry_on_logical_clock(self):
        cache = ResultCache(capacity=4, ttl_ticks=10)
        cache.put(("q",), self.answer(), clock=0, epoch=0)
        assert cache.get(("q",), clock=9, epoch=0) is not None
        assert cache.get(("q",), clock=10, epoch=0) is None
        assert len(cache) == 0  # expired entries are dropped on lookup

    def test_epoch_mismatch_invalidates(self):
        cache = ResultCache(capacity=4, ttl_ticks=100)
        cache.put(("q",), self.answer(), clock=0, epoch=3)
        assert cache.get(("q",), clock=1, epoch=3) is not None
        assert cache.get(("q",), clock=1, epoch=4) is None
        assert len(cache) == 0

    def test_lru_eviction_counts(self):
        cache = ResultCache(capacity=2, ttl_ticks=100)
        assert cache.put(("a",), self.answer(), 0, 0) == 0
        assert cache.put(("b",), self.answer(), 0, 0) == 0
        assert cache.get(("a",), 1, 0) is not None  # refresh "a"
        assert cache.put(("c",), self.answer(), 1, 0) == 1
        assert cache.get(("b",), 1, 0) is None  # "b" was the LRU victim
        assert cache.get(("a",), 1, 0) is not None

    def test_sweep_drops_expired_and_stale(self):
        cache = ResultCache(capacity=8, ttl_ticks=5)
        cache.put(("old",), self.answer(), clock=0, epoch=0)
        cache.put(("stale",), self.answer(), clock=8, epoch=0)
        cache.put(("live",), self.answer(), clock=8, epoch=1)
        assert cache.sweep(clock=9, epoch=1) == 2
        assert len(cache) == 1


class TestServiceCaching:
    QUERY = 'select value from keys where key == "flow-3"'

    def test_hit_and_miss_accounting_per_tenant(self, registry, fleet):
        service = QueryService(fleet)
        first = service.serve(self.QUERY, tenant="alpha")
        second = service.serve(self.QUERY, tenant="alpha")
        third = service.serve(self.QUERY, tenant="beta")
        assert not first.cached and second.cached and third.cached
        assert tenant_counter(registry, "query_cache_misses_total", "alpha") == 1
        assert tenant_counter(registry, "query_cache_hits_total", "alpha") == 1
        assert tenant_counter(registry, "query_cache_hits_total", "beta") == 1
        assert tenant_counter(registry, "query_cache_misses_total", "beta") == 0

    def test_cached_answer_is_value_identical(self, registry, fleet):
        service = QueryService(fleet)
        uncached = service.serve(self.QUERY)
        cached = service.serve(self.QUERY)
        assert cached.answer.rows == uncached.answer.rows

    def test_ttl_expires_on_packet_clock(self, registry, fleet):
        service = QueryService(fleet, cache_ttl_ticks=8)
        service.serve(self.QUERY)
        fleet.settle(4)
        assert service.serve(self.QUERY).cached
        fleet.settle(8)
        assert not service.serve(self.QUERY).cached

    def test_epoch_bump_invalidates_cache(self, registry, fleet):
        fleet.enable_control(fail_after=2, tick_interval=5)
        fleet.settle(6)
        service = QueryService(fleet, cache_ttl_ticks=10_000)
        service.serve(self.QUERY)
        assert service.serve(self.QUERY).cached
        epoch_before = service.current_epoch
        fleet.kill_node(fleet.shard_map().node_for(3))
        fleet.settle(40)
        assert service.current_epoch > epoch_before
        refreshed = service.serve(self.QUERY)
        assert not refreshed.cached  # old-epoch entry was purged
        assert refreshed.epoch > epoch_before

    def test_concurrent_tenants_share_entries_not_counters(self, registry, fleet):
        service = QueryService(fleet, tenant_burst=1000)

        async def tenant_loop(tenant):
            for _request in range(5):
                await service.query(self.QUERY, tenant=tenant)

        async def run():
            await asyncio.gather(*(tenant_loop(f"t{i}") for i in range(4)))

        asyncio.run(run())
        hits = sum(
            tenant_counter(registry, "query_cache_hits_total", f"t{i}")
            for i in range(4)
        )
        misses = sum(
            tenant_counter(registry, "query_cache_misses_total", f"t{i}")
            for i in range(4)
        )
        assert misses == 1  # exactly one fan-out populated the entry
        assert hits == 19


class TestQuotasAndAdmission:
    QUERY = 'select value from keys where key == "flow-1"'

    def test_over_quota_tenant_rejected_with_metric(self, registry, fleet):
        service = QueryService(fleet, tenant_rate=1.0, tenant_burst=2.0)
        service.serve(self.QUERY, tenant="greedy")
        service.serve(self.QUERY, tenant="greedy")
        with pytest.raises(QuotaExceeded):
            service.serve(self.QUERY, tenant="greedy")
        assert (
            tenant_counter(registry, "query_quota_rejections_total", "greedy")
            == 1
        )

    def test_quota_is_per_tenant(self, registry, fleet):
        service = QueryService(fleet, tenant_rate=1.0, tenant_burst=1.0)
        service.serve(self.QUERY, tenant="greedy")
        with pytest.raises(QuotaExceeded):
            service.serve(self.QUERY, tenant="greedy")
        # A different tenant still has its full bucket.
        assert service.serve(self.QUERY, tenant="polite").answer.complete

    def test_bucket_refills_on_packet_clock(self, registry, fleet):
        service = QueryService(fleet, tenant_rate=0.5, tenant_burst=1.0)
        service.serve(self.QUERY, tenant="t")
        with pytest.raises(QuotaExceeded):
            service.serve(self.QUERY, tenant="t")
        fleet.settle(2)  # one token accrues
        assert service.serve(self.QUERY, tenant="t") is not None

    def test_admission_cap_sheds_load(self, registry, fleet):
        service = QueryService(fleet, max_pending=0)

        async def run():
            with pytest.raises(AdmissionRejected):
                await service.query(self.QUERY)

        asyncio.run(run())
        assert registry.total("query_admission_rejections_total") == 1


class TestFanoutHealthRegression:
    """Satellite: partial-shard failures must be visible in PipelineHealth."""

    def test_fanout_counters_flow_into_health(self, registry, fleet):
        service = QueryService(fleet)
        service.serve("select sum(est) from counters")
        health = PipelineHealth.from_registry(registry)
        assert health.fanout_shards == fleet.config.num_collectors
        assert health.fanout_shard_failures == 0
        assert health.shard_failure_rate == 0.0

    def test_partial_shard_failure_is_visible(self, registry, fleet):
        service = QueryService(fleet, cache_ttl_ticks=1)
        shards = fleet.config.num_collectors

        from repro.query.backend import ShardUnavailable

        original = fleet.backend.rows_for

        def flaky_rows_for(source, shard, keys, policy):
            if shard.role == 0:
                raise ShardUnavailable(shard.role, shard.node_id)
            return original(source, shard, keys, policy)

        fleet.backend.rows_for = flaky_rows_for
        result = service.serve("select sum(est) from counters")
        assert not result.answer.complete

        health = PipelineHealth.from_registry(registry)
        assert health.fanout_shards == shards
        assert health.fanout_shard_failures == 1
        assert health.shard_failure_rate == pytest.approx(1 / shards)
        # The dashboard line renders the failure, not just the counters.
        dashboard = obs.render_dashboard(registry)
        assert "query fan-out shards" in dashboard
        assert "failed 1" in dashboard

    def test_incomplete_answers_are_never_cached(self, registry, fleet):
        service = QueryService(fleet)

        from repro.query.backend import ShardUnavailable

        original = fleet.backend.rows_for

        def flaky_rows_for(source, shard, keys, policy):
            if shard.role == 0:
                raise ShardUnavailable(shard.role, shard.node_id)
            return original(source, shard, keys, policy)

        fleet.backend.rows_for = flaky_rows_for
        assert not service.serve("select sum(est) from counters").answer.complete
        fleet.backend.rows_for = original
        # The healed fleet must not serve the partial answer from cache.
        healed = service.serve("select sum(est) from counters")
        assert not healed.cached
        assert healed.answer.complete

    def test_keys_fanout_threads_per_policy_success(self, registry, fleet):
        service = QueryService(fleet)
        service.serve("select value from keys", tenant="ops")
        health = PipelineHealth.from_registry(registry)
        by_policy = {q.policy: q for q in health.queries}
        assert "PLURALITY" in by_policy
        assert by_policy["PLURALITY"].total == len(fleet.known_keys)
        assert by_policy["PLURALITY"].answered == len(fleet.known_keys)


class TestSloRules:
    def test_query_rules_watch_latency_and_shards(self, registry, fleet):
        from repro.obs.timeseries import MetricsScraper

        service = QueryService(fleet)
        service.serve("select sum(est) from counters")
        scraper = MetricsScraper(registry)
        engine = obs.SloEngine(scraper, registry)
        engine.add_rules(
            obs.query_rules(p99_seconds=10.0, for_ticks=1)
        )
        scraper.scrape(tick=1)
        alerts = {a.rule.name: a for a in engine.evaluate(tick=1)}
        assert not alerts["query-p99-latency"].firing
        assert alerts["query-p99-latency"].value is not None
        assert not alerts["query-shard-failures"].firing
        assert not alerts["query-admission-sheds"].firing

    def test_shard_failure_rule_fires(self, registry, fleet):
        from repro.obs.timeseries import MetricsScraper
        from repro.query.backend import ShardUnavailable

        service = QueryService(fleet, cache_ttl_ticks=1)

        def dead_rows_for(source, shard, keys, policy):
            raise ShardUnavailable(shard.role, shard.node_id)

        fleet.backend.rows_for = dead_rows_for
        service.serve("select sum(est) from counters")
        scraper = MetricsScraper(registry)
        engine = obs.SloEngine(scraper, registry)
        engine.add_rules(obs.query_rules(for_ticks=1))
        scraper.scrape(tick=1)
        alerts = {a.rule.name: a for a in engine.evaluate(tick=1)}
        assert alerts["query-shard-failures"].firing
