"""Unit tests for the switch-side verb translators and response demux."""

import pytest

from repro.fabric import InlineFabric
from repro.hashing.hash_family import HashFamily
from repro.primitives import (
    KeyIncrementTranslator,
    ResponseDemux,
    SketchMergeTranslator,
)
from repro.rdma.packets import Opcode, RoceV2Packet
from repro.rdma.qp import PSN_MODULUS


class _CaptureFabric:
    """Records every offered frame's exact wire bytes, delivers nothing."""

    def __init__(self):
        self.frames = []

    def send(self, endpoint_id, frame):
        self.frames.append(bytes(frame))
        return True

    def send_batch(self, batch):
        for index in range(batch.count):
            self.frames.append(batch.frames[index].tobytes())
        batch.release()
        return batch.count

    def flush(self):
        return 0


def _translator(fabric, psn=0, rows=2, cells=256):
    return KeyIncrementTranslator(
        fabric,
        0,
        0x200,
        base_address=0x200000,
        rkey=0x77,
        cells_per_row=cells,
        rows=rows,
        family=HashFamily(seed=0),
    )


class TestScalarColumnarParity:
    def test_increment_many_frames_byte_identical_to_scalar(self):
        """The columnar encode is indistinguishable on the wire."""
        items = [(("flow", i % 5), 1 + i % 3) for i in range(20)]
        scalar_fabric, batch_fabric = _CaptureFabric(), _CaptureFabric()
        scalar = _translator(scalar_fabric)
        batch = _translator(batch_fabric)
        for key, amount in items:
            scalar.increment(key, amount)
        batch.increment_many(items)
        assert batch_fabric.frames == scalar_fabric.frames
        assert batch.psn == scalar.psn

    def test_sketch_merge_scalar_and_columnar_parity(self):
        import numpy as np

        cells = np.arange(32, dtype=np.uint64).reshape(2, 16)
        scalar_fabric, batch_fabric = _CaptureFabric(), _CaptureFabric()
        args = dict(base_address=0x200000, rkey=0x77)
        SketchMergeTranslator(scalar_fabric, 0, 0x201, **args).merge_scalar(cells)
        SketchMergeTranslator(batch_fabric, 0, 0x201, **args).merge(cells)
        assert batch_fabric.frames == scalar_fabric.frames
        # Zero cells cost nothing on the wire: 31 non-zero of 32.
        assert len(batch_fabric.frames) == 31


class TestPsnWraparound:
    def test_craft_add_frames_wraps_at_24_bits(self):
        """PSNs are 24-bit: the frame after 0xFFFFFF carries PSN 0."""
        translator = _translator(_CaptureFabric(), rows=2)
        translator._psn = PSN_MODULUS - 1
        frames = translator.craft_add_frames(("flow", 1), 7)
        psns = [RoceV2Packet.unpack(frame).bth.psn for frame in frames]
        assert psns == [PSN_MODULUS - 1, 0]
        assert translator.psn == 1

    def test_columnar_psn_sequence_wraps_identically(self):
        items = [(("flow", i), 1) for i in range(4)]
        scalar_fabric, batch_fabric = _CaptureFabric(), _CaptureFabric()
        scalar = _translator(scalar_fabric)
        batch = _translator(batch_fabric)
        scalar._psn = PSN_MODULUS - 3
        batch._psn = PSN_MODULUS - 3
        for key, amount in items:
            scalar.increment(key, amount)
        batch.increment_many(items)
        assert batch_fabric.frames == scalar_fabric.frames
        psns = [
            RoceV2Packet.unpack(frame).bth.psn for frame in batch_fabric.frames
        ]
        assert psns == [
            PSN_MODULUS - 3, PSN_MODULUS - 2, PSN_MODULUS - 1, 0, 1, 2, 3, 4,
        ]


class TestZeroAndNegativeAmounts:
    def test_zero_amount_crafts_nothing_and_burns_no_psn(self):
        translator = _translator(_CaptureFabric())
        before = translator.psn
        assert translator.craft_add_frames(("flow", 1), 0) == []
        assert translator.increment(("flow", 1), 0) == 0
        assert translator.psn == before
        assert translator.c_increments.value == 0

    def test_increment_many_skips_zero_amounts(self):
        fabric = _CaptureFabric()
        translator = _translator(fabric, rows=2)
        offered = translator.increment_many(
            [(("flow", 1), 0), (("flow", 2), 5), (("flow", 3), 0)]
        )
        assert offered == 2  # one surviving key x 2 rows
        assert len(fabric.frames) == 2
        assert translator.psn == 2

    def test_negative_amount_rejected(self):
        translator = _translator(_CaptureFabric())
        with pytest.raises(ValueError):
            translator.craft_add_frames(("flow", 1), -1)
        with pytest.raises(ValueError):
            translator.increment_many([(("flow", 1), -2)])


class TestResponseDemux:
    def _ack(self, dest_qp, psn):
        from repro.rdma.packets import Aeth, Bth

        return RoceV2Packet(
            bth=Bth(
                opcode=int(Opcode.RC_ATOMIC_ACKNOWLEDGE),
                dest_qp=dest_qp,
                psn=psn,
            ),
            aeth=Aeth(syndrome=0, msn=1),
            payload=(0).to_bytes(8, "big"),
        ).pack()

    def test_responses_routed_by_destination_qp(self):
        class _Queue:
            def __init__(self, frames):
                self._frames = frames

            def poll(self, endpoint_id):
                frames, self._frames = self._frames, []
                return frames

        fabric = _Queue([self._ack(0x300, 1), self._ack(0x301, 2), b"junk"])
        demux = ResponseDemux()
        assert demux.poll(fabric, 0) == 2  # junk dropped, two filed
        mine = demux.take(0x300)
        assert [p.bth.psn for p in mine] == [1]
        assert [p.bth.psn for p in demux.take(0x301)] == [2]
        # Inboxes drain: a second take is empty.
        assert demux.take(0x300) == []

    def test_poll_against_real_fabric_is_safe_when_idle(self):
        from repro.mem.region import MemoryRegion
        from repro.rdma.nic import RdmaNic

        fabric = InlineFabric()
        fabric.attach(0, RdmaNic(MemoryRegion(size=64)))
        demux = ResponseDemux()
        assert demux.poll(fabric, 0) == 0


class TestDemuxInterleaving:
    """Counter and Append requesters sharing one endpoint's demux.

    ``Fabric.poll`` drains everything queued for an endpoint, so the
    write-side atomic ACKs and the read-side READ responses ride the same
    queue.  These tests interleave writers and one-sided readers on a
    single store and assert nobody consumes anybody else's responses.
    """

    def test_counter_adds_interleave_with_two_query_operators(self):
        from repro.collector.counters import CounterStore
        from repro.primitives import CounterQueryClient

        store = CounterStore(cells_per_row=256, rows=2)
        first = CounterQueryClient(store, operator_id=0)
        second = CounterQueryClient(store, operator_id=1)
        # Writes interleave with estimates from both operators; each
        # client must see only its own READ responses.
        store.add(("flow", 1), 5)
        assert first.estimate(("flow", 1)) == 5
        store.add(("flow", 2), 7)
        store.add(("flow", 1), 3)
        assert second.estimate(("flow", 2)) == 7
        assert first.estimate(("flow", 1)) == 8

    def test_in_flight_read_survives_another_operators_poll(self):
        from repro.collector.counters import CounterStore
        from repro.primitives import CounterQueryClient

        store = CounterStore(cells_per_row=256, rows=2)
        first = CounterQueryClient(store, operator_id=0)
        second = CounterQueryClient(store, operator_id=1)
        store.add(("flow", 1), 5)
        # Put operator 0's READ on the wire without polling for it.
        reader = first.reader
        psn = reader._next_psn()
        reader.fabric.send(
            store.endpoint_id,
            reader._craft_read(store.region.base_address, 8, psn),
        )
        # Operator 1 now drains the endpoint for its own estimate.  The
        # demux must file operator 0's response rather than lose it.
        assert second.estimate(("flow", 1)) == 5
        pending = store.demux.take(reader.qp.qp_number)
        assert [p.bth.psn for p in pending] == [psn]
        assert pending[0].bth.opcode == int(Opcode.RC_RDMA_READ_RESPONSE_ONLY)

    def test_append_writer_interleaves_with_two_followers(self):
        from repro.primitives import AppendQueryClient, AppendStore

        store = AppendStore(capacity=16, record_bytes=8)
        writer = store.register_writer(0)
        first = AppendQueryClient(store, operator_id=0)
        second = AppendQueryClient(store, operator_id=1)
        # The writer *consumes* its FETCH_ADD ACK to learn the reserved
        # slot, so interleaving appends between follows proves the
        # followers' READ responses never starve the reservation path.
        writer.append(b"rec-0000")
        assert first.follow().values() == [b"rec-0000"]
        writer.append(b"rec-0001")
        assert second.follow().values() == [b"rec-0000", b"rec-0001"]
        writer.append(b"rec-0002")
        assert first.follow().values() == [b"rec-0001", b"rec-0002"]
        assert second.follow().values() == [b"rec-0002"]
        # Independent cursors: both operators converged on the same tail.
        assert first.cursor == second.cursor == 3
        assert store.tail() == 3
