"""Stateful property-based testing of DartStore semantics.

DART is deliberately lossy, so the model invariants are subtle but exact
(given 32-bit checksums, where fake matches are ~2^-32 and never occur at
test scales):

1. an answered query for key k returns the *latest* value put for k --
   every put overwrites all N of k's slots, so no stale value survives;
2. a key put and not subsequently collided is answered;
3. a never-put key is never answered;
4. clear() empties everything.

Collisions between different keys may turn (2) into an empty return --
that is the probabilistic design -- but can never violate (1) or (3).
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.config import DartConfig
from repro.collector.store import DartStore

KEYS = [("flow", i) for i in range(40)]


class DartStoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = DartStore(
            DartConfig(slots_per_collector=1 << 10, num_collectors=2, value_bytes=8)
        )
        self.latest = {}

    @rule(key=st.sampled_from(KEYS), value=st.binary(min_size=1, max_size=8))
    def put(self, key, value):
        self.store.put(key, value)
        self.latest[key] = value.ljust(8, b"\x00")

    @rule(key=st.sampled_from(KEYS))
    def get_put_key(self, key):
        result = self.store.get(key)
        if key in self.latest:
            if result.answered:
                # Invariant 1: only the latest value can come back.
                assert result.value == self.latest[key]
        else:
            # Invariant 3: unknown keys are never answered.
            assert not result.answered

    @rule()
    def clear(self):
        self.store.clear()
        self.latest.clear()

    @invariant()
    def fresh_put_is_readable(self):
        # Touch a sentinel key: put-then-get must answer immediately
        # (no intervening writes can have happened within the invariant).
        self.store.put(("sentinel",), b"s")
        result = self.store.get(("sentinel",))
        assert result.answered and result.value == b"s".ljust(8, b"\x00")


TestDartStoreStateful = DartStoreMachine.TestCase
TestDartStoreStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)


class TestNicFuzz:
    """The NIC must treat arbitrary bytes as hostile input: drop, count,
    never raise, never write memory."""

    def test_random_frames_never_crash(self):
        from repro.mem.region import MemoryRegion
        from repro.rdma.nic import RdmaNic
        from repro.rdma.qp import QueuePair

        rng = random.Random(0)
        region = MemoryRegion(size=256, base_address=0x1000, rkey=1)
        nic = RdmaNic(region)
        nic.create_queue_pair(QueuePair(qp_number=5))
        blank = region.snapshot()
        for _ in range(500):
            frame = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 120)))
            assert nic.receive_frame(frame) is False
        assert nic.counters.frames_received == 500
        assert nic.counters.frames_dropped == 500
        assert region.snapshot() == blank  # memory untouched

    def test_bitflipped_valid_frames_never_crash(self):
        """Mutations of a valid frame are dropped (iCRC) without writes."""
        from repro.mem.region import MemoryRegion
        from repro.rdma.nic import RdmaNic
        from repro.rdma.packets import Bth, Opcode, Reth, RoceV2Packet
        from repro.rdma.qp import PsnPolicy, QueuePair

        region = MemoryRegion(size=256, base_address=0x1000, rkey=1)
        nic = RdmaNic(region)
        nic.create_queue_pair(
            QueuePair(qp_number=5, policy=PsnPolicy.IGNORE)
        )
        valid = RoceV2Packet(
            bth=Bth(opcode=int(Opcode.RC_RDMA_WRITE_ONLY), dest_qp=5, psn=0),
            reth=Reth(virtual_address=0x1000, rkey=1, dma_length=4),
            payload=b"good",
        ).pack()
        # Bytes the iCRC does *not* cover: the whole Ethernet header (L2 is
        # protected by the FCS, which this model omits) and the masked
        # volatile fields -- IPv4 DSCP/TTL/checksum, UDP checksum, BTH
        # resv8a.  Offsets for this fixed frame layout:
        exempt = set(range(14)) | {15, 22, 24, 25, 40, 41, 46}
        rng = random.Random(1)
        executed = 0
        for _ in range(300):
            mutated = bytearray(valid)
            positions = []
            for _ in range(rng.randrange(1, 4)):
                position = rng.randrange(len(mutated))
                positions.append(position)
                mutated[position] ^= 1 << rng.randrange(8)
            if nic.receive_frame(bytes(mutated)):
                executed += 1
                # Any accepted mutation must be confined to bytes the
                # invariant CRC legitimately does not protect.
                assert all(p in exempt for p in positions), positions
        assert executed < 100  # the vast majority are dropped
