"""Frame-pool ownership tests: reuse without aliasing.

The pool's contract is simple to state and easy to break: a buffer may be
recycled into a later batch *only after* every batch holding a lease on it
has released it.  These tests pin the reuse behaviour (steady-state batch
traffic stops allocating) and the non-aliasing consequence under the
riskiest schedule -- a :class:`BufferedFabric` holding batches in its
queues while the switch keeps encoding new ones, plus an impaired fabric
reordering frames out of their batch's lifetime.
"""

import numpy as np

from repro.core.config import DartConfig
from repro.collector.store import DartStore
from repro.fabric import BufferedFabric, ImpairedFabric, InlineFabric
from repro.rdma.frames import FrameBatch, FramePool


def small_config(**overrides):
    defaults = dict(slots_per_collector=256, num_collectors=1, seed=3)
    defaults.update(overrides)
    return DartConfig(**defaults)


def make_items(count, tag=0):
    return [
        ((f"10.{tag}.0.{i & 255}", "10.9.9.9", 5000 + i, 80, 6), b"v%d" % i)
        for i in range(count)
    ]


class TestFramePool:
    def test_release_then_acquire_reuses_the_buffer(self):
        pool = FramePool()
        lease, view = pool.acquire(10, 98)
        first_ptr = view.__array_interface__["data"][0]
        assert pool.allocations == 1 and pool.in_flight == 1
        lease.release()
        assert pool.in_flight == 0
        lease2, view2 = pool.acquire(8, 98)
        assert view2.__array_interface__["data"][0] == first_ptr
        assert pool.reuses == 1 and pool.allocations == 1
        lease2.release()

    def test_acquire_while_leased_never_aliases(self):
        pool = FramePool()
        lease_a, view_a = pool.acquire(10, 98)
        lease_b, view_b = pool.acquire(10, 98)
        assert (
            view_a.__array_interface__["data"][0]
            != view_b.__array_interface__["data"][0]
        )
        assert pool.allocations == 2 and pool.in_flight == 2
        lease_a.release()
        lease_b.release()

    def test_select_is_independent_of_the_source_batch(self):
        pool = FramePool()
        lease, view = pool.acquire(4, 16)
        view[:] = np.arange(4, dtype=np.uint8)[:, None]
        batch = FrameBatch(view, np.zeros(4, dtype=np.int64), lease)
        sub = batch.select(np.array([1, 3]))
        batch.frames[:] = 0xEE  # clobber the source after selection
        assert sub.frame_bytes(0) == bytes([1] * 16)
        assert sub.frame_bytes(1) == bytes([3] * 16)
        batch.release()
        # The source buffer went back to the pool, but the sub-batch still
        # owns its own lease: its bytes remain readable and un-aliased.
        lease2, view2 = pool.acquire(4, 16)
        view2[:] = 0x77
        assert sub.frame_bytes(0) == bytes([1] * 16)
        sub.release()
        lease2.release()

    def test_release_is_idempotent(self):
        pool = FramePool()
        lease, view = pool.acquire(2, 8)
        batch = FrameBatch(view, np.zeros(2, dtype=np.int64), lease)
        batch.release()
        batch.release()
        assert pool.in_flight == 0

    def test_retain_keeps_the_buffer_leased(self):
        pool = FramePool()
        lease, view = pool.acquire(2, 8)
        batch = FrameBatch(view, np.zeros(2, dtype=np.int64), lease)
        handle = batch.retain()
        batch.release()
        assert pool.in_flight == 1  # the retained handle still owns it
        handle.release()
        assert pool.in_flight == 0


class TestNoAliasingUnderBufferedFabric:
    def test_queued_batches_pin_their_buffers(self):
        """While a BufferedFabric holds batches in its queues, the switch
        pool must not hand their buffers to new encodes; after the flush
        the buffers recycle."""
        config = small_config()
        fabric = BufferedFabric(flush_threshold=None)
        store = DartStore(
            config, packet_level=True, fabric=fabric, columnar=True
        )
        switch = store._switch
        pool = switch.frame_pool

        switch.report_batch_into(make_items(20, tag=1))
        switch.report_batch_into(make_items(20, tag=2))
        assert fabric.pending() == 80  # 2 batches x 20 reports x N=2
        # Both batches are queued and still lease their buffers.
        assert pool.in_flight == 2
        queued = [
            entry
            for entry in fabric._queues[0]
            if isinstance(entry, FrameBatch)
        ]
        assert len(queued) == 2
        assert queued[0].data_ptr() != queued[1].data_ptr()

        # A third batch encoded while the first two are in flight must get
        # a third buffer, not alias a queued one.
        pinned = {entry.data_ptr() for entry in queued}
        switch.report_batch_into(make_items(20, tag=3))
        third = [
            entry
            for entry in fabric._queues[0]
            if isinstance(entry, FrameBatch)
        ][-1]
        assert third.data_ptr() not in pinned
        assert pool.in_flight == 3 and pool.allocations == 3

        # Flushing delivers and releases every queued batch; the buffers
        # return to the pool and the next encode reuses one.
        fabric.flush()
        assert fabric.pending() == 0
        assert pool.in_flight == 0
        switch.report_batch_into(make_items(20, tag=4))
        fabric.flush()
        assert pool.reuses >= 1
        assert pool.allocations == 3  # steady state: no new buffers

    def test_flushed_bytes_survive_buffer_recycling(self):
        """Frames delivered from a queued batch equal the originally
        encoded bytes even after the pool has recycled buffers many
        times over -- the delivery reads happen before the release."""
        config = small_config()
        inline = InlineFabric()
        buffered = BufferedFabric(flush_threshold=None)
        a = DartStore(config, packet_level=True, fabric=inline, columnar=True)
        b = DartStore(
            config, packet_level=True, fabric=buffered, columnar=True
        )
        items = make_items(25)
        for round_tag in range(6):  # several rounds force heavy reuse
            a.put_many(items)
            b.put_many(items)
        assert b._switch.frame_pool.reuses >= 5
        assert (
            a.cluster[0].region.snapshot() == b.cluster[0].region.snapshot()
        )

    def test_reordered_frames_outlive_their_batch(self):
        """A frame held by ImpairedFabric reordering is materialised as
        bytes, so it stays intact after its batch's buffer is recycled
        into later encodes."""
        config = small_config()
        fabric = ImpairedFabric(InlineFabric(), reordering=0.5, seed=9)
        scalar_fabric = ImpairedFabric(InlineFabric(), reordering=0.5, seed=9)
        columnar = DartStore(
            config, packet_level=True, fabric=fabric, columnar=True
        )
        scalar = DartStore(config, packet_level=True, fabric=scalar_fabric)
        for round_tag in range(4):
            items = make_items(25, tag=round_tag)
            columnar.put_many(items)
            scalar.put_many(items)
        fabric.flush()
        scalar_fabric.flush()
        assert fabric.counters.frames_reordered > 0
        assert columnar._switch.frame_pool.reuses >= 1
        assert (
            columnar.cluster[0].region.snapshot()
            == scalar.cluster[0].region.snapshot()
        )
