"""Tests for the global hash family (repro.hashing.hash_family)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.hash_family import (
    HashFamily,
    hash_distribution_chi2,
    mix64,
    splitmix64,
    stable_key_bytes,
)

key_strategy = st.one_of(
    st.binary(min_size=0, max_size=32),
    st.text(max_size=32),
    st.integers(min_value=0, max_value=2**128),
    st.tuples(st.integers(min_value=0, max_value=2**32), st.text(max_size=8)),
)


class TestStableKeyBytes:
    def test_bytes_pass_through(self):
        assert stable_key_bytes(b"\x01\x02") == b"\x01\x02"

    def test_str_utf8(self):
        assert stable_key_bytes("flow") == b"flow"

    def test_int_big_endian_min_8_bytes(self):
        assert stable_key_bytes(5) == b"\x00" * 7 + b"\x05"
        assert len(stable_key_bytes(2**100)) == 13

    def test_tuple_length_prefixed(self):
        encoded = stable_key_bytes((b"ab", b"c"))
        assert encoded == b"\x00\x00\x00\x02ab\x00\x00\x00\x01c"

    def test_tuple_nesting_distinguishes_groupings(self):
        assert stable_key_bytes(((b"a", b"b"), b"c")) != stable_key_bytes(
            (b"a", (b"b", b"c"))
        )

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            stable_key_bytes(-1)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            stable_key_bytes(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            stable_key_bytes(3.14)

    @given(key=key_strategy)
    def test_deterministic(self, key):
        assert stable_key_bytes(key) == stable_key_bytes(key)


class TestMixers:
    def test_splitmix64_reference_values(self):
        # Reference sequence from the splitmix64 paper seed 0 stream.
        assert splitmix64(0) == 0xE220A8397B1DCDAF
        assert splitmix64(1) == 0x910A2DEC89025CC1

    @given(value=st.integers(min_value=0, max_value=2**64 - 1))
    def test_mix64_stays_in_64_bits(self, value):
        assert 0 <= mix64(value) < 2**64

    @given(value=st.integers(min_value=0, max_value=2**64 - 1))
    def test_mix64_seed_changes_output(self, value):
        assert mix64(value, seed=1) != mix64(value, seed=2)


class TestHashFamily:
    def test_same_seed_same_functions(self):
        """The global property: independent parties agree on every hash."""
        a, b = HashFamily(seed=7), HashFamily(seed=7)
        for index in range(8):
            assert a.hash_key(b"key", index) == b.hash_key(b"key", index)

    def test_different_seeds_differ(self):
        assert HashFamily(0).hash_key(b"key") != HashFamily(1).hash_key(b"key")

    def test_different_indexes_differ(self):
        family = HashFamily()
        hashes = family.hash_many(b"key", 16)
        assert len(set(hashes)) == 16

    def test_equality_and_hash(self):
        assert HashFamily(3) == HashFamily(3)
        assert HashFamily(3) != HashFamily(4)
        assert hash(HashFamily(3)) == hash(HashFamily(3))

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            HashFamily(seed=-1)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            HashFamily().hash_key(b"key", -1)

    def test_mod_bounds(self):
        family = HashFamily()
        for index in range(4):
            value = family.hash_key_mod(b"key", index, 97)
            assert 0 <= value < 97

    def test_mod_zero_rejected(self):
        with pytest.raises(ValueError):
            HashFamily().hash_key_mod(b"key", 0, 0)

    @given(key=key_strategy, index=st.integers(min_value=0, max_value=64))
    def test_deterministic(self, key, index):
        family = HashFamily(seed=42)
        assert family.hash_key(key, index) == family.hash_key(key, index)

    def test_distribution_uniform(self):
        """Chi-squared over 64 buckets should be near 63 for uniform hashes."""
        family = HashFamily(seed=123)
        samples = [family.hash_key(i) for i in range(20000)]
        chi2 = hash_distribution_chi2(samples, buckets=64)
        # 99.9th percentile of chi2(63) is ~106; far above means a broken hash.
        assert chi2 < 120

    def test_avalanche(self):
        """Flipping one key bit flips close to half the output bits."""
        family = HashFamily(seed=9)
        flipped_fractions = []
        for i in range(200):
            base = family.hash_key(i)
            neighbour = family.hash_key(i ^ 1)
            flipped_fractions.append(bin(base ^ neighbour).count("1") / 64)
        mean = sum(flipped_fractions) / len(flipped_fractions)
        assert 0.45 < mean < 0.55


class TestVectorisedHashing:
    def test_hash_array_matches_shape(self):
        family = HashFamily()
        keys = np.arange(1000, dtype=np.uint64)
        hashes = family.hash_array(keys, index=2)
        assert hashes.shape == keys.shape
        assert hashes.dtype == np.uint64

    def test_hash_array_deterministic_and_index_sensitive(self):
        family = HashFamily(seed=5)
        keys = np.arange(100, dtype=np.uint64)
        assert np.array_equal(family.hash_array(keys, 0), family.hash_array(keys, 0))
        assert not np.array_equal(
            family.hash_array(keys, 0), family.hash_array(keys, 1)
        )

    def test_hash_array_mod_bounds(self):
        family = HashFamily()
        keys = np.arange(10000, dtype=np.uint64)
        reduced = family.hash_array_mod(keys, 0, 1009)
        assert int(reduced.max()) < 1009
        assert int(reduced.min()) >= 0

    def test_hash_array_mod_uniform(self):
        family = HashFamily(seed=11)
        keys = np.arange(100000, dtype=np.uint64)
        reduced = family.hash_array_mod(keys, 0, 64)
        counts = np.bincount(reduced.astype(np.int64), minlength=64)
        expected = len(keys) / 64
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 120

    def test_mod_zero_rejected(self):
        with pytest.raises(ValueError):
            HashFamily().hash_array_mod(np.arange(4, dtype=np.uint64), 0, 0)


def test_chi2_empty_rejected():
    with pytest.raises(ValueError):
        hash_distribution_chi2([], buckets=8)
