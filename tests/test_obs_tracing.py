"""Tests for repro.obs.tracing: span ordering, frame binding, eviction."""

from repro import obs
from repro.fabric.fabric import BufferedFabric, InlineFabric
from repro.fabric.impaired import ImpairedFabric
from repro.obs.trace_analysis import TraceAnalyzer
from repro.obs.tracing import (
    EVICTED_TRACE,
    NULL_TRACER,
    UNSAMPLED_TRACE,
    Tracer,
)
from repro.primitives import AppendStore


class _Port:
    """Minimal fabric endpoint that accepts every frame."""

    def __init__(self):
        self.frames = []

    def receive_frame(self, frame):
        self.frames.append(frame)
        return True

    def transmit(self):
        return []


def _fresh_obs():
    """Install a fresh registry+tracer; returns (registry, tracer, restore)."""
    registry = obs.MetricsRegistry()
    previous_registry = obs.set_registry(registry)
    tracer = obs.Tracer()  # after set_registry: its gauges land here
    previous_tracer = obs.set_tracer(tracer)

    def restore():
        obs.set_registry(previous_registry)
        obs.set_tracer(previous_tracer)

    return registry, tracer, restore


class TestTracerBasics:
    def test_spans_carry_monotonic_sequence(self):
        tracer = Tracer()
        a = tracer.begin("report", key="flow-a")
        b = tracer.begin("report", key="flow-b")
        tracer.span(a, "stage.one")
        tracer.span(b, "stage.one")
        tracer.span(a, "stage.two", detail="x")
        record = tracer.trace(a)
        assert record.stages == ("stage.one", "stage.two")
        seqs = [span.seq for span in record.spans]
        assert seqs == sorted(seqs)
        # The interleaved span on b sits between a's two spans.
        assert record.spans[0].seq < tracer.trace(b).spans[0].seq
        assert tracer.trace(b).spans[0].seq < record.spans[1].seq

    def test_frame_binding_routes_spans(self):
        tracer = Tracer()
        trace_id = tracer.begin("report")
        tracer.bind_frame(b"frame-1", trace_id)
        tracer.frame_span(b"frame-1", "nic.ingest", "executed")
        tracer.frame_span(b"unknown", "nic.ingest")  # silently ignored
        record = tracer.trace_for_frame(b"frame-1")
        assert record.trace_id == trace_id
        assert record.stages == ("nic.ingest",)

    def test_span_on_unknown_trace_is_ignored(self):
        tracer = Tracer()
        tracer.span(999, "stage")
        assert tracer.spans_recorded == 0

    def test_render_contains_key_and_stages(self):
        tracer = Tracer()
        trace_id = tracer.begin("switch_report", key="(1, 2)")
        tracer.span(trace_id, "switch.report", "copies=2")
        text = tracer.trace(trace_id).render()
        assert "kind=switch_report" in text
        assert "key=(1, 2)" in text
        assert "switch.report (copies=2)" in text

    def test_eviction_unbinds_frames(self):
        tracer = Tracer(max_traces=2)
        first = tracer.begin("report")
        tracer.bind_frame(b"old-frame", first)
        tracer.begin("report")
        tracer.begin("report")  # evicts `first`
        assert tracer.trace(first) is EVICTED_TRACE
        assert tracer.trace_for_frame(b"old-frame") is None
        tracer.frame_span(b"old-frame", "late.stage")  # must not raise
        assert tracer.traces_evicted == 1
        assert len(tracer.traces()) == 2

    def test_evicted_marker_is_deterministic_across_wraparound(self):
        tracer = Tracer(max_traces=2)
        ids = [tracer.begin("report") for _ in range(50)]
        # However far the ring wrapped, every issued-but-evicted id maps
        # to the shared marker -- never a KeyError, never None.
        for trace_id in ids[:-2]:
            assert tracer.trace(trace_id) is EVICTED_TRACE
        for trace_id in ids[-2:]:
            record = tracer.trace(trace_id)
            assert record is not EVICTED_TRACE
            assert record.trace_id == trace_id
        assert EVICTED_TRACE.kind == "evicted"
        assert "evicted" in EVICTED_TRACE.render()

    def test_never_issued_ids_stay_none(self):
        tracer = Tracer(max_traces=2)
        assert tracer.trace(0) is None
        assert tracer.trace(1) is None  # not issued yet
        issued = tracer.begin("report")
        assert tracer.trace(issued) is not None
        assert tracer.trace(issued + 1) is None  # beyond the id watermark

    def test_reset_traces_also_return_the_marker(self):
        tracer = Tracer()
        first = tracer.begin("report")
        tracer.reset()
        assert tracer.trace(first) is EVICTED_TRACE

    def test_spans_on_evicted_traces_are_ignored(self):
        tracer = Tracer(max_traces=1)
        first = tracer.begin("report")
        tracer.begin("report")  # evicts `first`
        tracer.span(first, "late.stage")  # must not raise or record
        assert tracer.spans_recorded == 0
        assert EVICTED_TRACE.spans == []

    def test_traces_filter_by_kind(self):
        tracer = Tracer()
        tracer.begin("report")
        tracer.begin("query")
        assert len(tracer.traces()) == 2
        assert [r.kind for r in tracer.traces(kind="query")] == ["query"]

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.begin("report") == 0
        NULL_TRACER.bind_frame(b"f", 0)
        NULL_TRACER.span(0, "stage")
        NULL_TRACER.frame_span(b"f", "stage")
        assert NULL_TRACER.trace(0) is None
        assert NULL_TRACER.trace_for_frame(b"f") is None
        assert NULL_TRACER.traces() == []


class TestSpanOrderingUnderReordering:
    def test_adjacent_swap_orders_spans_after_newer_frame(self):
        """With reordering=1.0 the first frame is held and must acquire its
        delivery span *after* the frame that overtook it."""
        _registry, tracer, restore = _fresh_obs()
        try:
            fabric = ImpairedFabric(InlineFabric(), reordering=1.0, seed=0)
            fabric.attach(1, _Port())
            held_frame, overtaking_frame = b"frame-A", b"frame-B"
            trace_a = tracer.begin("report", key="A")
            trace_b = tracer.begin("report", key="B")
            tracer.bind_frame(held_frame, trace_a)
            tracer.bind_frame(overtaking_frame, trace_b)

            assert fabric.send(1, held_frame) is None  # held for reorder
            fabric.send(1, overtaking_frame)  # overtakes, releases A after

            record_a = tracer.trace(trace_a)
            record_b = tracer.trace(trace_b)
            assert record_a.stages == (
                "fabric.impair",  # held:reorder
                "fabric.impair",  # released:reorder
                "fabric.deliver",
            )
            assert [s.detail for s in record_a.spans[:2]] == [
                "held:reorder",
                "released:reorder",
            ]
            assert record_b.stages == ("fabric.deliver",)
            deliver_a = record_a.spans[-1].seq
            deliver_b = record_b.spans[-1].seq
            assert deliver_b < deliver_a  # B landed first: adjacent swap
        finally:
            restore()

    def test_held_frame_released_by_flush_is_traced(self):
        _registry, tracer, restore = _fresh_obs()
        try:
            fabric = ImpairedFabric(InlineFabric(), reordering=1.0, seed=0)
            fabric.attach(1, _Port())
            trace_id = tracer.begin("report")
            tracer.bind_frame(b"only-frame", trace_id)
            assert fabric.send(1, b"only-frame") is None
            assert fabric.pending() == 1
            fabric.flush()
            record = tracer.trace(trace_id)
            assert record.stages[-1] == "fabric.deliver"
        finally:
            restore()

    def test_duplicate_frames_share_one_trace(self):
        _registry, tracer, restore = _fresh_obs()
        try:
            fabric = ImpairedFabric(InlineFabric(), duplication=1.0, seed=0)
            port = _Port()
            fabric.attach(1, port)
            trace_id = tracer.begin("report")
            tracer.bind_frame(b"dup-frame", trace_id)
            fabric.send(1, b"dup-frame")
            assert port.frames == [b"dup-frame", b"dup-frame"]
            record = tracer.trace(trace_id)
            # offered once, duplicated once, delivered twice -- all on
            # the same trace because a duplicate IS the same report copy.
            assert record.stages.count("fabric.deliver") == 2
            assert "duplicated" in [s.detail for s in record.spans]
        finally:
            restore()

    def test_lost_frame_records_drop_span(self):
        _registry, tracer, restore = _fresh_obs()
        try:
            fabric = ImpairedFabric(InlineFabric(), loss=1.0, seed=0)
            fabric.attach(1, _Port())
            trace_id = tracer.begin("report")
            tracer.bind_frame(b"doomed", trace_id)
            assert fabric.send(1, b"doomed") is False
            record = tracer.trace(trace_id)
            assert record.stages == ("fabric.impair",)
            assert record.spans[0].detail == "dropped:loss"
        finally:
            restore()


class TestSamplingAndTailRetention:
    def test_head_sampling_is_deterministic_and_roughly_calibrated(self):
        tracer = Tracer(sample_rate=0.25)
        verdicts = [tracer.sampled(tid) for tid in range(1, 2001)]
        assert verdicts == [tracer.sampled(tid) for tid in range(1, 2001)]
        fraction = sum(verdicts) / len(verdicts)
        assert 0.15 < fraction < 0.35

    def test_unsampled_traces_record_nothing_but_stay_identifiable(self):
        tracer = Tracer(sample_rate=0.0)
        trace_id = tracer.begin("report", key="dropped")
        tracer.span(trace_id, "stage.one")
        tracer.bind_frame(b"frame", trace_id)
        assert tracer.spans_recorded == 0
        assert tracer.traces() == []
        assert tracer.traces_sampled_out == 1
        assert tracer.trace(trace_id) is UNSAMPLED_TRACE
        assert UNSAMPLED_TRACE.kind == "unsampled"

    def test_rate_bounds_are_exact(self):
        always = Tracer(sample_rate=1.0)
        never = Tracer(sample_rate=0.0)
        assert all(always.sampled(tid) for tid in range(1, 100))
        assert not any(never.sampled(tid) for tid in range(1, 100))

    def test_non_ok_status_tail_retains_the_sealed_trace(self):
        tracer = Tracer()
        trace_id = tracer.begin("append")
        tracer.span(trace_id, "append.reserve")
        tracer.span(trace_id, "append.reserve.retry", status="retry")
        tracer.end(trace_id)
        record = tracer.trace(trace_id)
        assert record.sealed
        assert "status:retry" in record.keep_reasons
        assert record in tracer.kept()
        # Clean traces seal without being retained.
        clean = tracer.begin("append")
        tracer.span(clean, "append.reserve")
        tracer.end(clean)
        assert tracer.trace(clean) not in tracer.kept()

    def test_keep_live_tags_inflight_traces(self):
        tracer = Tracer()
        first = tracer.begin("report")
        tracer.span(first, "stage.one")
        done = tracer.begin("report")
        tracer.end(done)  # sealed before the keep: not tagged
        assert tracer.keep_live("slo:drop-rate") >= 1
        tracer.end(first)
        assert "slo:drop-rate" in tracer.trace(first).keep_reasons
        assert tracer.trace(first) in tracer.kept()
        assert "slo:drop-rate" not in tracer.trace(done).keep_reasons

    def test_kept_is_bounded_by_max_kept(self):
        tracer = Tracer(max_kept=3)
        ids = []
        for i in range(6):
            trace_id = tracer.begin("report", key=f"k{i}")
            tracer.span(trace_id, "stage", status="error")
            tracer.end(trace_id)
            ids.append(trace_id)
        kept = tracer.kept()
        assert len(kept) == 3
        assert [r.trace_id for r in kept] == ids[-3:]

    def test_bindings_gauge_returns_to_zero(self):
        registry, tracer, restore = _fresh_obs()
        try:
            gauge = registry.gauge("tracer_bindings_live")
            fabric = ImpairedFabric(InlineFabric(), loss=1.0, seed=0)
            fabric.attach(1, _Port())
            delivered = tracer.begin("report")
            tracer.bind_frame(b"ok-frame", delivered)
            assert tracer.bindings_live == 1
            assert gauge.value == 1
            lossless = ImpairedFabric(InlineFabric(), seed=0)
            lossless.attach(1, _Port())
            lossless.send(1, b"ok-frame")
            assert tracer.bindings_live == 0
            # A lost frame's binding is released by the drop span too.
            doomed = tracer.begin("report")
            tracer.bind_frame(b"doomed", doomed)
            fabric.send(1, b"doomed")
            assert tracer.bindings_live == 0
            assert gauge.value == 0
        finally:
            restore()


class TestRetentionUnderImpairment:
    """The satellite invariant: every tail-retained trace -- however it
    got retained, and even when eviction or sampling raced it -- holds a
    structurally complete root-to-leaf span tree."""

    def _assert_kept_complete(self, tracer):
        analyzer = TraceAnalyzer()
        kept = tracer.kept()
        assert kept, "scenario must tail-retain at least one trace"
        for record in kept:
            assert record.keep_reasons
            analysis = analyzer.analyze(record)
            assert analysis.complete, (
                f"trace {record.trace_id}: {analysis.problems}"
            )

    def test_impaired_loss_with_eviction_and_sampling(self):
        _registry, _tracer, restore = _fresh_obs()
        tracer = Tracer(max_traces=6, sample_rate=0.6, max_kept=64)
        obs.set_tracer(tracer)
        try:
            fabric = ImpairedFabric(
                InlineFabric(), loss=0.15, reordering=0.4, seed=3
            )
            store = AppendStore(capacity=256, record_bytes=16, fabric=fabric)
            writer = store.register_writer(0)
            for i in range(60):
                writer.append(b"rec-%04d" % i)
            fabric.flush()
            assert tracer.traces_evicted > 0
            assert tracer.traces_sampled_out > 0
            self._assert_kept_complete(tracer)
            assert tracer.bindings_live == 0
        finally:
            restore()

    def test_buffered_reordering_with_midflight_keeps(self):
        _registry, _tracer, restore = _fresh_obs()
        tracer = Tracer(max_traces=6, sample_rate=0.7, max_kept=64)
        obs.set_tracer(tracer)
        try:
            fabric = BufferedFabric(flush_threshold=8)
            store = AppendStore(capacity=256, record_bytes=16, fabric=fabric)
            writer = store.register_writer(0)
            for i in range(40):
                if i % 10 == 9:
                    # Every tenth append runs under an explicitly kept
                    # audit trace; eviction must not corrupt its tree.
                    trace_id = tracer.begin("audit", key=f"i={i}")
                    with tracer.activate(trace_id):
                        writer.append(b"buf-%04d" % i)
                    tracer.keep(trace_id, "audit")
                    tracer.end(trace_id)
                else:
                    writer.append(b"buf-%04d" % i)
            fabric.flush()
            assert tracer.traces_evicted > 0
            self._assert_kept_complete(tracer)
            assert tracer.bindings_live == 0
        finally:
            restore()
