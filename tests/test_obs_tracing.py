"""Tests for repro.obs.tracing: span ordering, frame binding, eviction."""

from repro import obs
from repro.fabric.fabric import InlineFabric
from repro.fabric.impaired import ImpairedFabric
from repro.obs.tracing import EVICTED_TRACE, NULL_TRACER, Tracer


class _Port:
    """Minimal fabric endpoint that accepts every frame."""

    def __init__(self):
        self.frames = []

    def receive_frame(self, frame):
        self.frames.append(frame)
        return True

    def transmit(self):
        return []


def _fresh_obs():
    """Install a fresh registry+tracer; returns (registry, tracer, restore)."""
    registry = obs.MetricsRegistry()
    tracer = obs.Tracer()
    previous_registry = obs.set_registry(registry)
    previous_tracer = obs.set_tracer(tracer)

    def restore():
        obs.set_registry(previous_registry)
        obs.set_tracer(previous_tracer)

    return registry, tracer, restore


class TestTracerBasics:
    def test_spans_carry_monotonic_sequence(self):
        tracer = Tracer()
        a = tracer.begin("report", key="flow-a")
        b = tracer.begin("report", key="flow-b")
        tracer.span(a, "stage.one")
        tracer.span(b, "stage.one")
        tracer.span(a, "stage.two", detail="x")
        record = tracer.trace(a)
        assert record.stages == ("stage.one", "stage.two")
        seqs = [span.seq for span in record.spans]
        assert seqs == sorted(seqs)
        # The interleaved span on b sits between a's two spans.
        assert record.spans[0].seq < tracer.trace(b).spans[0].seq
        assert tracer.trace(b).spans[0].seq < record.spans[1].seq

    def test_frame_binding_routes_spans(self):
        tracer = Tracer()
        trace_id = tracer.begin("report")
        tracer.bind_frame(b"frame-1", trace_id)
        tracer.frame_span(b"frame-1", "nic.ingest", "executed")
        tracer.frame_span(b"unknown", "nic.ingest")  # silently ignored
        record = tracer.trace_for_frame(b"frame-1")
        assert record.trace_id == trace_id
        assert record.stages == ("nic.ingest",)

    def test_span_on_unknown_trace_is_ignored(self):
        tracer = Tracer()
        tracer.span(999, "stage")
        assert tracer.spans_recorded == 0

    def test_render_contains_key_and_stages(self):
        tracer = Tracer()
        trace_id = tracer.begin("switch_report", key="(1, 2)")
        tracer.span(trace_id, "switch.report", "copies=2")
        text = tracer.trace(trace_id).render()
        assert "kind=switch_report" in text
        assert "key=(1, 2)" in text
        assert "switch.report (copies=2)" in text

    def test_eviction_unbinds_frames(self):
        tracer = Tracer(max_traces=2)
        first = tracer.begin("report")
        tracer.bind_frame(b"old-frame", first)
        tracer.begin("report")
        tracer.begin("report")  # evicts `first`
        assert tracer.trace(first) is EVICTED_TRACE
        assert tracer.trace_for_frame(b"old-frame") is None
        tracer.frame_span(b"old-frame", "late.stage")  # must not raise
        assert tracer.traces_evicted == 1
        assert len(tracer.traces()) == 2

    def test_evicted_marker_is_deterministic_across_wraparound(self):
        tracer = Tracer(max_traces=2)
        ids = [tracer.begin("report") for _ in range(50)]
        # However far the ring wrapped, every issued-but-evicted id maps
        # to the shared marker -- never a KeyError, never None.
        for trace_id in ids[:-2]:
            assert tracer.trace(trace_id) is EVICTED_TRACE
        for trace_id in ids[-2:]:
            record = tracer.trace(trace_id)
            assert record is not EVICTED_TRACE
            assert record.trace_id == trace_id
        assert EVICTED_TRACE.kind == "evicted"
        assert "evicted" in EVICTED_TRACE.render()

    def test_never_issued_ids_stay_none(self):
        tracer = Tracer(max_traces=2)
        assert tracer.trace(0) is None
        assert tracer.trace(1) is None  # not issued yet
        issued = tracer.begin("report")
        assert tracer.trace(issued) is not None
        assert tracer.trace(issued + 1) is None  # beyond the id watermark

    def test_reset_traces_also_return_the_marker(self):
        tracer = Tracer()
        first = tracer.begin("report")
        tracer.reset()
        assert tracer.trace(first) is EVICTED_TRACE

    def test_spans_on_evicted_traces_are_ignored(self):
        tracer = Tracer(max_traces=1)
        first = tracer.begin("report")
        tracer.begin("report")  # evicts `first`
        tracer.span(first, "late.stage")  # must not raise or record
        assert tracer.spans_recorded == 0
        assert EVICTED_TRACE.spans == []

    def test_traces_filter_by_kind(self):
        tracer = Tracer()
        tracer.begin("report")
        tracer.begin("query")
        assert len(tracer.traces()) == 2
        assert [r.kind for r in tracer.traces(kind="query")] == ["query"]

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.begin("report") == 0
        NULL_TRACER.bind_frame(b"f", 0)
        NULL_TRACER.span(0, "stage")
        NULL_TRACER.frame_span(b"f", "stage")
        assert NULL_TRACER.trace(0) is None
        assert NULL_TRACER.trace_for_frame(b"f") is None
        assert NULL_TRACER.traces() == []


class TestSpanOrderingUnderReordering:
    def test_adjacent_swap_orders_spans_after_newer_frame(self):
        """With reordering=1.0 the first frame is held and must acquire its
        delivery span *after* the frame that overtook it."""
        _registry, tracer, restore = _fresh_obs()
        try:
            fabric = ImpairedFabric(InlineFabric(), reordering=1.0, seed=0)
            fabric.attach(1, _Port())
            held_frame, overtaking_frame = b"frame-A", b"frame-B"
            trace_a = tracer.begin("report", key="A")
            trace_b = tracer.begin("report", key="B")
            tracer.bind_frame(held_frame, trace_a)
            tracer.bind_frame(overtaking_frame, trace_b)

            assert fabric.send(1, held_frame) is None  # held for reorder
            fabric.send(1, overtaking_frame)  # overtakes, releases A after

            record_a = tracer.trace(trace_a)
            record_b = tracer.trace(trace_b)
            assert record_a.stages == (
                "fabric.impair",  # held:reorder
                "fabric.impair",  # released:reorder
                "fabric.deliver",
            )
            assert [s.detail for s in record_a.spans[:2]] == [
                "held:reorder",
                "released:reorder",
            ]
            assert record_b.stages == ("fabric.deliver",)
            deliver_a = record_a.spans[-1].seq
            deliver_b = record_b.spans[-1].seq
            assert deliver_b < deliver_a  # B landed first: adjacent swap
        finally:
            restore()

    def test_held_frame_released_by_flush_is_traced(self):
        _registry, tracer, restore = _fresh_obs()
        try:
            fabric = ImpairedFabric(InlineFabric(), reordering=1.0, seed=0)
            fabric.attach(1, _Port())
            trace_id = tracer.begin("report")
            tracer.bind_frame(b"only-frame", trace_id)
            assert fabric.send(1, b"only-frame") is None
            assert fabric.pending() == 1
            fabric.flush()
            record = tracer.trace(trace_id)
            assert record.stages[-1] == "fabric.deliver"
        finally:
            restore()

    def test_duplicate_frames_share_one_trace(self):
        _registry, tracer, restore = _fresh_obs()
        try:
            fabric = ImpairedFabric(InlineFabric(), duplication=1.0, seed=0)
            port = _Port()
            fabric.attach(1, port)
            trace_id = tracer.begin("report")
            tracer.bind_frame(b"dup-frame", trace_id)
            fabric.send(1, b"dup-frame")
            assert port.frames == [b"dup-frame", b"dup-frame"]
            record = tracer.trace(trace_id)
            # offered once, duplicated once, delivered twice -- all on
            # the same trace because a duplicate IS the same report copy.
            assert record.stages.count("fabric.deliver") == 2
            assert "duplicated" in [s.detail for s in record.spans]
        finally:
            restore()

    def test_lost_frame_records_drop_span(self):
        _registry, tracer, restore = _fresh_obs()
        try:
            fabric = ImpairedFabric(InlineFabric(), loss=1.0, seed=0)
            fabric.attach(1, _Port())
            trace_id = tracer.begin("report")
            tracer.bind_frame(b"doomed", trace_id)
            assert fabric.send(1, b"doomed") is False
            record = tracer.trace(trace_id)
            assert record.stages == ("fabric.impair",)
            assert record.spans[0].detail == "dropped:loss"
        finally:
            restore()
