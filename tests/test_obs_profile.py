"""Tests for repro.obs.profile: stage stats, event ring, Chrome export."""

import json

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import NULL_PROFILER, StageProfiler, StageStats


class TestStageStats:
    def test_aggregates_fold_observations(self):
        stats = StageStats("s")
        stats.add(0.002)
        stats.add(0.004)
        assert stats.count == 2
        assert stats.total == pytest.approx(0.006)
        assert stats.mean == pytest.approx(0.003)
        assert stats.min == pytest.approx(0.002)
        assert stats.max == pytest.approx(0.004)

    def test_to_dict_on_empty_stats(self):
        row = StageStats("s").to_dict()
        assert row["count"] == 0
        assert row["mean_seconds"] == 0.0
        assert row["min_seconds"] == 0.0


class TestStageProfiler:
    def test_record_accumulates_stats_and_events(self):
        profiler = StageProfiler()
        profiler.record("a", 1.0, 1.5)
        profiler.record("a", 2.0, 2.25)
        profiler.record("b", 3.0, 3.1)
        stats = {s.stage: s for s in profiler.stats()}
        assert stats["a"].count == 2
        assert stats["a"].total == pytest.approx(0.75)
        assert stats["b"].count == 1
        assert len(profiler.events()) == 3
        # Heaviest-first ordering for the table.
        assert profiler.stats()[0].stage == "a"

    def test_negative_durations_clamp_to_zero(self):
        profiler = StageProfiler()
        profiler.record("a", 5.0, 4.0)
        assert profiler.stats()[0].total == 0.0

    def test_stage_context_manager_records(self):
        profiler = StageProfiler()
        with profiler.stage("scoped"):
            pass
        assert profiler.stats()[0].stage == "scoped"
        assert profiler.stats()[0].count == 1

    def test_event_ring_drops_oldest_but_keeps_aggregates(self):
        profiler = StageProfiler(max_events=8)
        for i in range(20):
            profiler.record("s", float(i), float(i) + 0.001)
        assert len(profiler.events()) <= 8
        assert profiler.dropped_events > 0
        assert profiler.stats()[0].count == 20  # aggregates stay exact
        assert "ring wrapped" in profiler.render()

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError):
            StageProfiler(max_events=0)

    def test_registry_histograms_fed_when_given(self):
        registry = MetricsRegistry()
        profiler = StageProfiler(registry)
        profiler.record("hot", 0.0, 0.001)
        profiler.record("hot", 0.0, 0.002)
        series = [
            (labels, metric)
            for labels, metric in registry.samples("stage_seconds")
        ]
        assert len(series) == 1
        labels, metric = series[0]
        assert labels["stage"] == "hot"
        assert metric.count == 2

    def test_render_lists_stages(self):
        profiler = StageProfiler()
        profiler.record("alpha", 0.0, 0.004)
        text = profiler.render()
        assert "stage profile" in text
        assert "alpha" in text
        assert "calls" in text


class TestChromeTraceExport:
    def _validate_trace(self, trace):
        """Assert the object satisfies the trace_event JSON-object schema."""
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert trace["displayTimeUnit"] == "ms"
        for event in trace["traceEvents"]:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["name"], str)
            assert isinstance(event["pid"], int)
            if event["ph"] == "X":
                assert isinstance(event["tid"], int)
                assert event["ts"] >= 0
                assert event["dur"] >= 0
                assert event["cat"] == "repro"
            else:
                assert "name" in event["args"]

    def test_export_schema_and_round_trip(self, tmp_path):
        profiler = StageProfiler()
        base = profiler.now()
        profiler.record("fabric.deliver", base + 0.001, base + 0.002)
        profiler.record("nic.ingest", base + 0.002, base + 0.0025)
        profiler.record("fabric.deliver", base + 0.003, base + 0.004)
        trace = profiler.to_chrome_trace(process_name="unit-test")
        self._validate_trace(trace)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert len(events) == 3
        # One process_name plus one thread_name per distinct stage.
        assert len(metadata) == 3
        assert metadata[0]["args"]["name"] == "unit-test"
        # Same stage shares a tid; distinct stages get distinct tids.
        tids = {e["name"]: e["tid"] for e in events}
        assert len(set(tids.values())) == 2
        # Durations are microseconds: 1ms -> 1000us.
        assert events[0]["dur"] == pytest.approx(1000.0)
        # JSON round-trip through a file (what chrome://tracing loads).
        path = tmp_path / "trace.json"
        written = profiler.write_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(written))
        self._validate_trace(loaded)

    def test_null_profiler_trace_is_empty_but_valid(self):
        trace = NULL_PROFILER.to_chrome_trace()
        self._validate_trace(trace)
        assert trace["traceEvents"] == []


class TestNullProfiler:
    def test_inert_surface(self):
        assert not NULL_PROFILER.enabled
        NULL_PROFILER.record("s", 0.0, 1.0)
        with NULL_PROFILER.stage("s"):
            pass
        assert NULL_PROFILER.stats() == []
        assert NULL_PROFILER.events() == []
        assert NULL_PROFILER.now() == 0.0
        assert "disabled" in NULL_PROFILER.render()

    def test_process_default_is_null(self):
        assert obs.get_profiler() is NULL_PROFILER or not obs.get_profiler().enabled


class TestDatapathWiring:
    def test_packet_pipeline_records_all_hot_stages(self):
        from repro.collector.store import DartStore
        from repro.core.config import DartConfig
        from repro.fabric.fabric import BufferedFabric

        registry = obs.MetricsRegistry()
        profiler = StageProfiler()
        previous_registry = obs.set_registry(registry)
        previous_profiler = obs.set_profiler(profiler)
        try:
            store = DartStore(
                DartConfig(slots_per_collector=1024, seed=2),
                packet_level=True,
                fabric=BufferedFabric(flush_threshold=16),
            )
            keys = [("10.0.0.1", f"10.0.2.{i}", 7000 + i, 80, 6)
                    for i in range(30)]
            store.put_many((key, b"value") for key in keys)
            store.fabric.flush()
            for key in keys:
                store.get(key)
            stages = {s.stage for s in profiler.stats()}
            assert {
                "fabric.deliver",
                "nic.ingest",
                "store.put_many",
                "client.query",
            } <= stages
            assert all(s.count > 0 for s in profiler.stats())
        finally:
            obs.set_registry(previous_registry)
            obs.set_profiler(previous_profiler)

    def test_disabled_profiler_records_nothing_on_datapath(self):
        from repro.collector.store import DartStore
        from repro.core.config import DartConfig

        registry = obs.MetricsRegistry()
        previous_registry = obs.set_registry(registry)
        try:
            store = DartStore(DartConfig(slots_per_collector=512, seed=2))
            store.put(("10.0.0.1", "10.0.0.2", 5000, 80, 6), b"v")
            store.get(("10.0.0.1", "10.0.0.2", 5000, 80, 6))
            assert obs.get_profiler().stats() == []
        finally:
            obs.set_registry(previous_registry)
