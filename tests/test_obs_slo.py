"""Tests for repro.obs.slo: rules, alert lifecycle, conformance watchdogs."""

import pytest

from repro import obs
from repro.core import theory
from repro.core.config import DartConfig
from repro.core.policies import ReturnPolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    Alert,
    AlertState,
    SloEngine,
    SloRule,
    conformance_rules,
    default_rules,
    expected_success,
)
from repro.obs.timeseries import MetricsScraper


def _engine(registry=None):
    """A fresh (registry, scraper, engine) triple for lifecycle tests."""
    registry = registry if registry is not None else MetricsRegistry()
    scraper = MetricsScraper(registry)
    return registry, scraper, SloEngine(scraper, registry)


class TestSloRule:
    def test_unknown_comparator_rejected(self):
        with pytest.raises(ValueError):
            SloRule(name="r", expr="x", comparator="~", threshold=1)

    def test_for_ticks_must_be_positive(self):
        with pytest.raises(ValueError):
            SloRule(name="r", expr="x", comparator=">", threshold=1, for_ticks=0)

    def test_none_never_breaches(self):
        rule = SloRule(name="r", expr="x", comparator=">", threshold=0)
        assert not rule.breached(None)
        assert rule.breached(1.0)

    def test_bare_metric_expr_reads_registry_total(self):
        registry, scraper, engine = _engine()
        registry.counter("events", labels={"kind": "a"}).inc(2)
        registry.counter("events", labels={"kind": "b"}).inc(3)
        engine.add_rule(
            SloRule(name="r", expr="events", comparator=">=", threshold=5)
        )
        scraper.scrape(1)
        engine.evaluate(1)
        assert engine.alert("r").value == 5.0
        assert engine.alert("r").firing

    def test_health_expr_reads_pipeline_health(self):
        registry, scraper, engine = _engine()
        registry.counter("mem_writes").inc(10)
        registry.counter("mem_slot_overwrites").inc(5)
        engine.add_rule(
            SloRule(
                name="overwrites",
                expr="health.slot_overwrite_rate",
                comparator=">",
                threshold=0.4,
            )
        )
        scraper.scrape(1)
        engine.evaluate(1)
        assert engine.alert("overwrites").value == 0.5
        assert engine.alert("overwrites").firing

    def test_rate_and_delta_exprs_read_scraper_window(self):
        registry, scraper, engine = _engine()
        counter = registry.counter("events")
        engine.add_rule(
            SloRule(name="d", expr="delta(events)", comparator=">", threshold=5)
        )
        engine.add_rule(
            SloRule(name="v", expr="rate(events)", comparator=">", threshold=3)
        )
        counter.inc(1)
        scraper.scrape(0)
        engine.evaluate(0)
        # One scrape: no window yet, deltas are 0, nothing breaches.
        assert not engine.alert("d").firing
        counter.inc(8)
        scraper.scrape(2)
        engine.evaluate(2)
        assert engine.alert("d").value == 8.0
        assert engine.alert("d").firing
        assert engine.alert("v").value == 4.0
        assert engine.alert("v").firing

    def test_rate_expr_without_series_is_none(self):
        registry, scraper, engine = _engine()
        engine.add_rule(
            SloRule(name="r", expr="rate(ghost)", comparator=">", threshold=0)
        )
        scraper.scrape(1)
        engine.evaluate(1)
        assert engine.alert("r").value is None
        assert engine.alert("r").state is AlertState.OK

    def test_callable_expr_sees_context(self):
        registry, scraper, engine = _engine()
        engine.add_rule(
            SloRule(
                name="tick",
                expr=lambda ctx: float(ctx.tick),
                comparator=">=",
                threshold=3,
            )
        )
        scraper.scrape(3)
        engine.evaluate(3)
        assert engine.alert("tick").firing


class TestAlertLifecycle:
    def _rule(self, for_ticks=2):
        return SloRule(
            name="r", expr="x", comparator=">", threshold=0, for_ticks=for_ticks
        )

    def test_pending_then_firing_then_resolved(self):
        alert = Alert(rule=self._rule(for_ticks=2))
        alert.observe(1, 1.0, True)
        assert alert.state is AlertState.PENDING
        assert alert.pending_since == 1
        alert.observe(2, 1.0, True)
        assert alert.state is AlertState.FIRING
        assert alert.fired_at == 2
        alert.observe(3, 0.0, False)
        assert alert.state is AlertState.RESOLVED
        assert alert.transitions == [
            (1, AlertState.PENDING),
            (2, AlertState.FIRING),
            (3, AlertState.RESOLVED),
        ]

    def test_streak_reset_keeps_pending_from_firing(self):
        alert = Alert(rule=self._rule(for_ticks=3))
        alert.observe(1, 1.0, True)
        alert.observe(2, 1.0, True)
        alert.observe(3, 0.0, False)  # streak broken before for_ticks
        assert alert.state is AlertState.OK
        alert.observe(4, 1.0, True)
        assert alert.state is AlertState.PENDING
        assert alert.pending_since == 4
        assert alert.fired_at is None

    def test_for_ticks_one_fires_immediately(self):
        alert = Alert(rule=self._rule(for_ticks=1))
        alert.observe(1, 2.0, True)
        assert alert.state is AlertState.FIRING

    def test_resolved_can_refire(self):
        alert = Alert(rule=self._rule(for_ticks=1))
        alert.observe(1, 1.0, True)
        alert.observe(2, 0.0, False)
        assert alert.state is AlertState.RESOLVED
        alert.observe(3, 0.0, False)
        assert alert.state is AlertState.RESOLVED
        alert.observe(4, 1.0, True)
        assert alert.state is AlertState.FIRING

    def test_render_mentions_state_and_rule(self):
        alert = Alert(rule=self._rule(for_ticks=1))
        alert.observe(1, 1.5, True)
        text = alert.render()
        assert "firing" in text
        assert "r" in text
        assert "1.5" in text


class TestSloEngine:
    def test_duplicate_rule_names_rejected(self):
        _registry, _scraper, engine = _engine()
        engine.add_rule(SloRule(name="r", expr="x", comparator=">", threshold=0))
        with pytest.raises(ValueError):
            engine.add_rule(
                SloRule(name="r", expr="y", comparator=">", threshold=0)
            )

    def test_gauges_mirror_alert_states_into_registry(self):
        registry, scraper, engine = _engine()
        registry.counter("events").inc()
        engine.add_rule(
            SloRule(
                name="fires-slowly",
                expr="events",
                comparator=">",
                threshold=0,
                for_ticks=2,
            )
        )
        scraper.scrape(1)
        engine.evaluate(1)
        assert registry.total("alerts_pending") == 1.0
        assert registry.total("alerts_firing") == 0.0
        scraper.scrape(2)
        engine.evaluate(2)
        assert registry.total("alerts_pending") == 0.0
        assert registry.total("alerts_firing") == 1.0
        assert "repro_alerts_firing 1" in registry.to_prometheus()

    def test_render_sorts_firing_first(self):
        registry, scraper, engine = _engine()
        registry.counter("events").inc()
        engine.add_rule(
            SloRule(name="zz-hot", expr="events", comparator=">", threshold=0)
        )
        engine.add_rule(
            SloRule(name="aa-cold", expr="events", comparator=">", threshold=99)
        )
        scraper.scrape(1)
        engine.evaluate(1)
        text = engine.render()
        assert "1 firing" in text
        assert text.index("zz-hot") < text.index("aa-cold")

    def test_default_rules_cover_the_pr1_invariants(self):
        names = {rule.name for rule in default_rules()}
        assert names == {
            "frame-loss-rate",
            "nic-drops",
            "fabric-nic-reconciliation",
        }


class TestConformance:
    def test_expected_success_matches_theory(self):
        config = DartConfig(slots_per_collector=4096, redundancy=2)
        keys = 512
        expected = expected_success(config, keys)
        assert expected == pytest.approx(
            float(theory.average_queryability(config.load_factor(keys), 2))
        )

    def test_conformance_none_until_min_queries(self):
        registry, scraper, engine = _engine()
        config = DartConfig(slots_per_collector=1024, redundancy=2)
        engine.add_rules(conformance_rules(config, min_queries=32))
        registry.counter("store_puts").inc(10)
        labels = {"policy": "PLURALITY"}
        registry.counter("queries_total", labels=labels).inc(5)
        registry.counter("queries_answered", labels=labels).inc(1)
        scraper.scrape(1)
        engine.evaluate(1)
        alert = engine.alert("conformance-PLURALITY")
        assert alert.value is None  # below min_queries: no data, no flap
        assert alert.state is AlertState.OK

    def test_conformance_breaches_on_measured_shortfall(self):
        registry, scraper, engine = _engine()
        config = DartConfig(slots_per_collector=4096, redundancy=2)
        engine.add_rules(
            conformance_rules(config, tolerance=0.1, for_ticks=1)
        )
        registry.counter("store_puts").inc(256)
        labels = {"policy": "PLURALITY"}
        registry.counter("queries_total", labels=labels).inc(100)
        registry.counter("queries_answered", labels=labels).inc(50)
        scraper.scrape(1)
        engine.evaluate(1)
        alert = engine.alert("conformance-PLURALITY")
        # Model predicts ~0.97 at alpha 0.0625; measured 0.5.
        assert alert.value == pytest.approx(
            expected_success(config, 256) - 0.5
        )
        assert alert.firing


def _run_pipeline(fabric, config, rounds=2, keys_per_round=192):
    """Drive a packet-level store over ``fabric`` and evaluate conformance.

    Returns (registry, engine) after ``rounds`` put/query/scrape/evaluate
    cycles -- the acceptance harness for the paper-model watchdog.
    """
    from repro.collector.store import DartStore

    registry = obs.MetricsRegistry()
    previous = obs.set_registry(registry)
    try:
        store = DartStore(config, packet_level=True, fabric=fabric)
        scraper = MetricsScraper(registry)
        engine = SloEngine(scraper, registry)
        engine.add_rules(
            conformance_rules(config, tolerance=0.1, for_ticks=2)
        )
        for tick in range(1, rounds + 1):
            base = (tick - 1) * keys_per_round
            chunk = [
                ("10.0.0.1", f"10.0.1.{i % 250}", 6000 + base + i, 80, 6)
                for i in range(keys_per_round)
            ]
            store.put_many(
                (key, f"v{base + i}".encode()) for i, key in enumerate(chunk)
            )
            store.fabric.flush()
            for key in chunk:
                store.get(key, policy=ReturnPolicy.PLURALITY)
            scraper.scrape(tick)
            engine.evaluate(tick)
        return registry, engine
    finally:
        obs.set_registry(previous)


class TestConformanceAcceptance:
    CONFIG = dict(slots_per_collector=4096, redundancy=2, seed=5)

    def test_lossy_fabric_drives_pending_then_firing(self):
        from repro.fabric.fabric import InlineFabric
        from repro.fabric.impaired import ImpairedFabric

        config = DartConfig(**self.CONFIG)
        fabric = ImpairedFabric(InlineFabric(), loss=0.5, seed=5)
        registry, engine = _run_pipeline(fabric, config)
        alert = engine.alert("conformance-PLURALITY")
        # Losing half the frames floors measured success around
        # (1 - loss^2) while the model stays ~0.97: a clear breach, walked
        # pending -> firing across the two evaluation rounds.
        assert alert.transitions == [
            (1, AlertState.PENDING),
            (2, AlertState.FIRING),
        ]
        assert alert.firing
        assert alert.value > 0.1
        assert registry.total("alerts_firing") >= 1.0
        assert "repro_alerts_firing 1" in registry.to_prometheus()

    def test_clean_fabric_stays_ok(self):
        from repro.fabric.fabric import InlineFabric

        config = DartConfig(**self.CONFIG)
        registry, engine = _run_pipeline(InlineFabric(), config)
        alert = engine.alert("conformance-PLURALITY")
        # No impairment: measured success tracks the model inside the
        # tolerance band, so the alert never leaves OK.
        assert alert.state is AlertState.OK
        assert alert.transitions == []
        assert alert.value is not None
        assert abs(alert.value) < 0.1
        assert registry.total("alerts_firing") == 0.0
        assert "repro_alerts_firing 0" in registry.to_prometheus()


class TestTraceRetentionOnFire:
    def test_firing_transition_tail_retains_live_traces(self):
        registry, scraper, engine = _engine()
        tracer = obs.Tracer()
        previous = obs.set_tracer(tracer)
        try:
            trace_id = tracer.begin("append", key="inflight")
            tracer.span(trace_id, "append.reserve")
            registry.counter("events").inc(10)
            engine.add_rule(
                SloRule(
                    name="event-burst", expr="events",
                    comparator=">=", threshold=5,
                )
            )
            scraper.scrape(1)
            engine.evaluate(1)
            assert engine.alert("event-burst").firing
            tracer.end(trace_id)
            record = tracer.trace(trace_id)
            assert "slo:event-burst" in record.keep_reasons
            assert record in tracer.kept()
            # Still-firing ticks are not new transitions: a trace begun
            # after the transition is not retroactively tagged.
            later = tracer.begin("append", key="later")
            tracer.span(later, "append.reserve")
            scraper.scrape(2)
            engine.evaluate(2)
            tracer.end(later)
            assert "slo:event-burst" not in tracer.trace(later).keep_reasons
        finally:
            obs.set_tracer(previous)
