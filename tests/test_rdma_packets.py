"""Tests for RoCEv2 wire-format codecs (repro.rdma.packets)."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rdma.packets import (
    ROCEV2_UDP_PORT,
    AtomicEth,
    Bth,
    EthernetHeader,
    Ipv4Header,
    Opcode,
    PacketDecodeError,
    Reth,
    RoceV2Packet,
    UdpHeader,
    compute_icrc,
    internet_checksum,
    opcode_has_atomic_eth,
    opcode_has_reth,
)


def make_write_packet(payload=b"\x01" * 24, psn=0, dest_qp=0x11, va=0x10000, rkey=0x42):
    return RoceV2Packet(
        eth=EthernetHeader(dst_mac="02:00:00:00:00:01", src_mac="02:00:00:00:00:02"),
        ipv4=Ipv4Header(src_ip="10.0.0.2", dst_ip="10.0.0.1"),
        udp=UdpHeader(src_port=49152),
        bth=Bth(opcode=int(Opcode.RC_RDMA_WRITE_ONLY), dest_qp=dest_qp, psn=psn),
        reth=Reth(virtual_address=va, rkey=rkey, dma_length=len(payload)),
        payload=payload,
    )


class TestHeaderCodecs:
    def test_ethernet_roundtrip(self):
        header = EthernetHeader(dst_mac="aa:bb:cc:dd:ee:ff", src_mac="11:22:33:44:55:66")
        decoded = EthernetHeader.unpack(header.pack())
        assert decoded == header

    def test_ethernet_truncated(self):
        with pytest.raises(PacketDecodeError):
            EthernetHeader.unpack(b"\x00" * 13)

    def test_ipv4_roundtrip(self):
        header = Ipv4Header(src_ip="192.168.1.2", dst_ip="10.0.0.1", total_length=100, ttl=17)
        decoded = Ipv4Header.unpack(header.pack())
        assert decoded.src_ip == "192.168.1.2"
        assert decoded.dst_ip == "10.0.0.1"
        assert decoded.total_length == 100
        assert decoded.ttl == 17

    def test_ipv4_checksum_valid(self):
        packed = Ipv4Header(src_ip="1.2.3.4", dst_ip="5.6.7.8", total_length=40).pack()
        assert internet_checksum(packed) == 0

    def test_ipv4_rejects_options(self):
        bad = bytearray(Ipv4Header().pack())
        bad[0] = 0x46  # IHL = 6 words
        with pytest.raises(PacketDecodeError):
            Ipv4Header.unpack(bytes(bad))

    def test_udp_roundtrip(self):
        header = UdpHeader(src_port=1234, length=64)
        decoded = UdpHeader.unpack(header.pack())
        assert decoded == header
        assert decoded.dst_port == ROCEV2_UDP_PORT

    def test_bth_roundtrip(self):
        header = Bth(
            opcode=int(Opcode.RC_FETCH_ADD),
            solicited=True,
            pad_count=2,
            dest_qp=0xABCDEF,
            ack_request=True,
            psn=0x123456,
        )
        decoded = Bth.unpack(header.pack())
        assert decoded == header

    def test_bth_field_limits(self):
        with pytest.raises(ValueError):
            Bth(dest_qp=1 << 24).pack()
        with pytest.raises(ValueError):
            Bth(psn=1 << 24).pack()

    def test_bth_length(self):
        assert len(Bth().pack()) == Bth.LENGTH == 12

    def test_reth_roundtrip(self):
        header = Reth(virtual_address=0xDEADBEEF00, rkey=0x1234, dma_length=24)
        assert Reth.unpack(header.pack()) == header
        assert len(header.pack()) == 16

    def test_atomic_eth_roundtrip(self):
        header = AtomicEth(
            virtual_address=0x10000, rkey=0x42, swap_add=7, compare=2**63
        )
        assert AtomicEth.unpack(header.pack()) == header
        assert len(header.pack()) == 28

    def test_opcode_extension_header_map(self):
        assert opcode_has_reth(Opcode.RC_RDMA_WRITE_ONLY)
        assert opcode_has_reth(Opcode.UC_RDMA_WRITE_ONLY)
        assert not opcode_has_reth(Opcode.RC_FETCH_ADD)
        assert opcode_has_atomic_eth(Opcode.RC_CMP_SWAP)
        assert opcode_has_atomic_eth(Opcode.RC_FETCH_ADD)
        assert not opcode_has_atomic_eth(Opcode.RC_RDMA_WRITE_ONLY)


class TestFullPacket:
    def test_write_packet_roundtrip(self):
        packet = make_write_packet(payload=b"telemetry-value-data-123")
        wire = packet.pack()
        decoded = RoceV2Packet.unpack(wire)
        assert decoded.bth.opcode == Opcode.RC_RDMA_WRITE_ONLY
        assert decoded.reth.virtual_address == 0x10000
        assert decoded.reth.rkey == 0x42
        assert decoded.payload == b"telemetry-value-data-123"

    def test_lengths_filled_in(self):
        packet = make_write_packet(payload=b"x" * 10)
        wire = packet.pack()
        decoded = RoceV2Packet.unpack(wire)
        # Eth(14) + IP(20) + UDP(8) + BTH(12) + RETH(16) + 10 + iCRC(4)
        assert len(wire) == 84
        assert decoded.ipv4.total_length == 70
        assert decoded.udp.length == 50

    def test_atomic_packet_roundtrip(self):
        packet = RoceV2Packet(
            bth=Bth(opcode=int(Opcode.RC_CMP_SWAP), dest_qp=1, psn=9),
            atomic_eth=AtomicEth(
                virtual_address=0x10008, rkey=0x42, swap_add=111, compare=0
            ),
        )
        decoded = RoceV2Packet.unpack(packet.pack())
        assert decoded.atomic_eth.swap_add == 111
        assert decoded.atomic_eth.compare == 0
        assert decoded.payload == b""

    def test_missing_extension_header_rejected(self):
        packet = RoceV2Packet(bth=Bth(opcode=int(Opcode.RC_RDMA_WRITE_ONLY)))
        with pytest.raises(ValueError):
            packet.pack()

    def test_icrc_corruption_detected(self):
        wire = bytearray(make_write_packet().pack())
        wire[-10] ^= 0x01  # flip a payload bit
        with pytest.raises(PacketDecodeError, match="iCRC"):
            RoceV2Packet.unpack(bytes(wire))

    def test_icrc_invariant_to_ttl_change(self):
        """Routers decrement TTL in flight; the iCRC must not break."""
        packet = make_write_packet()
        wire = bytearray(packet.pack())
        original = RoceV2Packet.unpack(bytes(wire))
        # Decrement TTL and fix the IP header checksum, as a router would.
        ttl_offset = 14 + 8
        wire[ttl_offset] -= 1
        rebuilt_ip = Ipv4Header.unpack(bytes(wire[14:34])).pack()
        wire[14:34] = rebuilt_ip
        rerouted = RoceV2Packet.unpack(bytes(wire))
        assert rerouted.payload == original.payload

    def test_icrc_validation_can_be_disabled(self):
        wire = bytearray(make_write_packet().pack())
        wire[-10] ^= 0x01
        decoded = RoceV2Packet.unpack(bytes(wire), validate_icrc=False)
        assert decoded.bth.opcode == Opcode.RC_RDMA_WRITE_ONLY

    def test_non_ipv4_rejected(self):
        wire = bytearray(make_write_packet().pack())
        wire[12:14] = struct.pack(">H", 0x86DD)  # IPv6 ethertype
        with pytest.raises(PacketDecodeError, match="IPv4"):
            RoceV2Packet.unpack(bytes(wire))

    def test_non_rocev2_port_rejected(self):
        packet = make_write_packet()
        packet.udp.dst_port = 4792
        # Bypass pack()'s defaulting by rebuilding manually.
        wire = packet.pack()
        with pytest.raises(PacketDecodeError, match="RoCEv2"):
            RoceV2Packet.unpack(wire)

    def test_truncated_frame_rejected(self):
        wire = make_write_packet().pack()
        with pytest.raises(PacketDecodeError):
            RoceV2Packet.unpack(wire[:-8])

    @given(payload=st.binary(min_size=0, max_size=64), psn=st.integers(0, 2**24 - 1))
    def test_roundtrip_property(self, payload, psn):
        packet = make_write_packet(payload=payload, psn=psn)
        decoded = RoceV2Packet.unpack(packet.pack())
        assert decoded.payload == payload
        assert decoded.bth.psn == psn

    def test_icrc_depends_on_payload(self):
        a = compute_icrc(Ipv4Header(), UdpHeader(), Bth(), b"aaaa")
        b = compute_icrc(Ipv4Header(), UdpHeader(), Bth(), b"aaab")
        assert a != b

    def test_wire_length_property(self):
        packet = make_write_packet(payload=b"x" * 24)
        assert packet.wire_length == len(packet.pack())
