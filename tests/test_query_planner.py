"""The planner: shard binding, push-down, partial-aggregate merging."""

import pytest

from repro import obs
from repro.query.backend import ShardUnavailable
from repro.query.fleet import QueryFleet
from repro.query.lang import Aggregate, parse_query
from repro.query.planner import PartialAggregate, plan_query


@pytest.fixture
def registry():
    registry = obs.MetricsRegistry(enabled=True)
    previous = obs.set_registry(registry)
    yield registry
    obs.set_registry(previous)


@pytest.fixture
def fleet(registry):
    fleet = QueryFleet()
    fleet.put_many((f"flow-{i}", b"v%d" % i) for i in range(24))
    fleet.count_many((f"flow-{i}", i + 1) for i in range(24))
    return fleet


class TestPartialAggregate:
    def test_merge_is_equivalent_to_single_pass(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        whole = PartialAggregate()
        for value in values:
            whole.observe(value)
        left, right = PartialAggregate(), PartialAggregate()
        for value in values[:3]:
            left.observe(value)
        for value in values[3:]:
            right.observe(value)
        left.merge(right)
        for aggregate in (
            Aggregate.SUM,
            Aggregate.COUNT,
            Aggregate.AVG,
            Aggregate.MIN,
            Aggregate.MAX,
        ):
            assert left.final(aggregate) == whole.final(aggregate)

    def test_empty_window_finals(self):
        empty = PartialAggregate()
        assert empty.final(Aggregate.COUNT) == 0.0
        assert empty.final(Aggregate.SUM) is None
        assert empty.final(Aggregate.AVG) is None

    def test_merge_with_empty_partial_is_identity(self):
        partial = PartialAggregate()
        partial.observe(7.0)
        partial.merge(PartialAggregate())
        assert partial.final(Aggregate.MIN) == 7.0
        assert partial.final(Aggregate.MAX) == 7.0


class TestPlanBinding:
    def test_candidates_grouped_by_owning_shard(self, fleet):
        query = parse_query("select est from counters")
        plan = plan_query(
            query, fleet.shard_map(), fleet.backend, keys=fleet.known_keys
        )
        assert plan.epoch == 0
        planned = {key for shard in plan.shards for key in shard.keys}
        assert planned == set(fleet.known_keys)
        for shard in plan.shards:
            for key in shard.keys:
                assert fleet.backend.addressing.collector_of(key) == shard.role

    def test_key_pushdown_prunes_before_fanout(self, fleet):
        query = parse_query('select est from counters where key == "flow-3"')
        plan = plan_query(
            query, fleet.shard_map(), fleet.backend, keys=fleet.known_keys
        )
        assert plan.pruned_keys == len(fleet.known_keys) - 1
        assert len(plan.shards) == 1
        assert plan.shards[0].keys == ("flow-3",)

    def test_fully_pruned_shards_are_dropped(self, fleet):
        query = parse_query('select est from counters where key == "no-such"')
        plan = plan_query(
            query, fleet.shard_map(), fleet.backend, keys=fleet.known_keys
        )
        assert plan.shards == []

    def test_ring_always_fans_to_every_shard(self, fleet):
        query = parse_query("select count(*) from ring")
        plan = plan_query(query, fleet.shard_map(), fleet.backend, keys=None)
        assert len(plan.shards) == fleet.config.num_collectors

    def test_explain_mentions_binding(self, fleet):
        query = parse_query('select est from counters where key == "flow-3"')
        plan = plan_query(
            query, fleet.shard_map(), fleet.backend, keys=fleet.known_keys
        )
        rendering = plan.explain()
        assert "epoch" in rendering
        assert "pruned" in rendering
        assert "1 shard(s)" in rendering


class TestExecutionAndMerge:
    def test_aggregate_matches_ground_truth(self, fleet):
        query = parse_query("select sum(est) from counters")
        plan = plan_query(
            query, fleet.shard_map(), fleet.backend, keys=fleet.known_keys
        )
        outcomes = [
            plan.execute_shard(fleet.backend, shard) for shard in plan.shards
        ]
        answer = plan.merge(outcomes)
        assert answer.value == sum(i + 1 for i in range(24))
        assert answer.complete

    def test_row_predicates_filter_per_shard(self, fleet):
        query = parse_query("select est from counters where est > 20")
        plan = plan_query(
            query, fleet.shard_map(), fleet.backend, keys=fleet.known_keys
        )
        outcomes = [
            plan.execute_shard(fleet.backend, shard) for shard in plan.shards
        ]
        answer = plan.merge(outcomes)
        assert sorted(row["est"] for row in answer.rows) == [21, 22, 23, 24]

    def test_topk_merges_across_shards(self, fleet):
        query = parse_query("select est from counters top 3 by est")
        plan = plan_query(
            query, fleet.shard_map(), fleet.backend, keys=fleet.known_keys
        )
        outcomes = [
            plan.execute_shard(fleet.backend, shard) for shard in plan.shards
        ]
        answer = plan.merge(outcomes)
        assert [row["est"] for row in answer.rows] == [24, 23, 22]
        assert answer.projected() == [24, 23, 22]

    def test_unreachable_shard_becomes_partial_failure(self, fleet):
        query = parse_query("select sum(est) from counters")
        plan = plan_query(
            query, fleet.shard_map(), fleet.backend, keys=fleet.known_keys
        )
        assert len(plan.shards) > 1

        def broken_rows_for(source, shard, keys, policy, _orig=fleet.backend.rows_for):
            if shard.role == plan.shards[0].role:
                raise ShardUnavailable(shard.role, shard.node_id)
            return _orig(source, shard, keys, policy)

        fleet.backend.rows_for = broken_rows_for
        outcomes = [
            plan.execute_shard(fleet.backend, shard) for shard in plan.shards
        ]
        answer = plan.merge(outcomes)
        assert not answer.complete
        assert answer.shards_failed == 1
        missing = sum(
            i + 1
            for i in range(24)
            if fleet.backend.addressing.collector_of(f"flow-{i}")
            == plan.shards[0].role
        )
        assert answer.value == sum(i + 1 for i in range(24)) - missing
