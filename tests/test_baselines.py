"""Tests for the CPU-collector baselines (repro.baselines)."""

import pytest

from repro.baselines.cost_model import (
    CONFLUO_STORAGE_CYCLES_PER_REPORT,
    DART_MODEL,
    DPDK_CONFLUO_MODEL,
    DPDK_IO_CYCLES_PER_REPORT,
    KAFKA_STORAGE_CYCLES_PER_REPORT,
    SOCKET_IO_CYCLES_PER_REPORT,
    SOCKET_KAFKA_MODEL,
    dpdk_cores_required,
    dpdk_pps_per_core,
)
from repro.baselines.cpu_collector import (
    DpdkConfluoCollector,
    SocketKafkaCollector,
    decode_report,
    encode_report,
)


class TestPaperConstants:
    def test_socket_io_from_paper(self):
        """504e9 cycles / 100e6 reports."""
        assert SOCKET_IO_CYCLES_PER_REPORT * 100_000_000 == 504_000_000_000

    def test_kafka_multiplier(self):
        """'11.5x as many additional cycles required by Kafka'."""
        assert KAFKA_STORAGE_CYCLES_PER_REPORT == pytest.approx(
            11.5 * SOCKET_IO_CYCLES_PER_REPORT, rel=0.001
        )

    def test_dpdk_io_from_paper(self):
        """14e9 cycles / 100e6 reports; '2.7% as much work as sockets'."""
        assert DPDK_IO_CYCLES_PER_REPORT * 100_000_000 == 14_000_000_000
        ratio = DPDK_IO_CYCLES_PER_REPORT / SOCKET_IO_CYCLES_PER_REPORT
        assert ratio == pytest.approx(0.027, abs=0.002)

    def test_confluo_multiplier(self):
        """'114x as many CPU cycles as the costly packet I/O'."""
        assert CONFLUO_STORAGE_CYCLES_PER_REPORT == 114 * DPDK_IO_CYCLES_PER_REPORT

    def test_dart_costs_zero_collector_cycles(self):
        assert DART_MODEL.cycles_for(10**8) == 0


class TestFigure1a:
    def test_normal_datacenter_needs_hundreds_of_cores(self):
        """Paper: '10K switches would require a collection cluster
        containing thousands of CPU cores dedicated to simple packet I/O'
        (at a few million reports/s/switch)."""
        cores = dpdk_cores_required(
            10_000, report_bytes=64, reports_per_switch=2_000_000
        )
        assert cores >= 800

    def test_cores_scale_linearly_with_switches(self):
        small = dpdk_cores_required(10_000, 64)
        large = dpdk_cores_required(100_000, 64)
        assert large == pytest.approx(10 * small, rel=0.01)

    def test_larger_reports_cost_more_cores(self):
        assert dpdk_cores_required(50_000, 128) > dpdk_cores_required(50_000, 64)

    def test_pps_lookup(self):
        assert dpdk_pps_per_core(64) > dpdk_pps_per_core(128)
        with pytest.raises(ValueError):
            dpdk_pps_per_core(256)

    def test_validation(self):
        with pytest.raises(ValueError):
            dpdk_cores_required(-1)
        with pytest.raises(ValueError):
            dpdk_cores_required(1, reports_per_switch=-1)


class TestCostModel:
    def test_figure1b_breakdown(self):
        """Regenerate the Figure 1(b) cycle totals for 100M reports."""
        reports = 100_000_000
        assert SOCKET_KAFKA_MODEL.io_cycles_for(reports) == 504_000_000_000
        assert DPDK_CONFLUO_MODEL.io_cycles_for(reports) == 14_000_000_000
        # Storage dwarfs I/O in both stacks -- the paper's core point.
        assert SOCKET_KAFKA_MODEL.storage_cycles_for(reports) > (
            10 * SOCKET_KAFKA_MODEL.io_cycles_for(reports)
        )
        assert DPDK_CONFLUO_MODEL.storage_cycles_for(reports) > (
            100 * DPDK_CONFLUO_MODEL.io_cycles_for(reports)
        )

    def test_cores_for_rate(self):
        # 1M reports/s on DPDK+Confluo at 3 GHz: 1e6 * 16100 / 3e9 ~ 5.4 cores
        cores = DPDK_CONFLUO_MODEL.cores_for_rate(1_000_000)
        assert 4 < cores < 7

    def test_validation(self):
        with pytest.raises(ValueError):
            SOCKET_KAFKA_MODEL.cycles_for(-1)
        with pytest.raises(ValueError):
            SOCKET_KAFKA_MODEL.cores_for_rate(-1)
        with pytest.raises(ValueError):
            SOCKET_KAFKA_MODEL.cores_for_rate(1, cpu_ghz=0)


class TestReportCodec:
    def test_roundtrip(self):
        wire = encode_report(b"key", b"value-bytes")
        assert decode_report(wire) == (b"key", b"value-bytes")

    def test_truncation_detected(self):
        wire = encode_report(b"key", b"value")
        with pytest.raises(ValueError):
            decode_report(wire[:-2])
        with pytest.raises(ValueError):
            decode_report(b"\x00")

    def test_oversize_rejected(self):
        with pytest.raises(ValueError):
            encode_report(b"k" * 70000, b"")


class TestSocketKafkaCollector:
    def test_functional_ingest_and_query(self):
        collector = SocketKafkaCollector()
        collector.ingest(encode_report(b"flow-1", b"path-a"))
        collector.ingest(encode_report(b"flow-2", b"path-b"))
        assert collector.query(b"flow-1") == b"path-a"
        assert collector.query(b"missing") is None
        assert collector.reports_ingested == 2
        assert collector.log_size == 2

    def test_latest_value_wins(self):
        collector = SocketKafkaCollector()
        collector.ingest(encode_report(b"flow", b"old"))
        collector.ingest(encode_report(b"flow", b"new"))
        assert collector.query(b"flow") == b"new"

    def test_cycle_ledger_matches_model(self):
        collector = SocketKafkaCollector()
        collector.ingest_batch(
            [encode_report(b"k%d" % i, b"v") for i in range(100)]
        )
        assert collector.ledger.io_cycles == 100 * SOCKET_IO_CYCLES_PER_REPORT
        assert (
            collector.ledger.storage_cycles
            == 100 * KAFKA_STORAGE_CYCLES_PER_REPORT
        )

    def test_partitions_validated(self):
        with pytest.raises(ValueError):
            SocketKafkaCollector(partitions=0)


class TestDpdkConfluoCollector:
    def test_functional_ingest_and_query(self):
        collector = DpdkConfluoCollector()
        collector.ingest(encode_report(b"flow-1", b"v1"))
        collector.ingest(encode_report(b"flow-1", b"v2"))
        assert collector.query(b"flow-1") == b"v2"
        assert collector.history(b"flow-1") == [b"v1", b"v2"]
        assert collector.query(b"other") is None

    def test_cycle_ledger_matches_model(self):
        collector = DpdkConfluoCollector()
        collector.ingest_batch([encode_report(b"k", b"v")] * 50)
        assert collector.ledger.io_cycles == 50 * DPDK_IO_CYCLES_PER_REPORT
        assert (
            collector.ledger.storage_cycles
            == 50 * CONFLUO_STORAGE_CYCLES_PER_REPORT
        )

    def test_stack_comparison_matches_paper_ordering(self):
        """Per report: sockets+Kafka >> DPDK+Confluo >> DART (= 0)."""
        kafka = SocketKafkaCollector()
        confluo = DpdkConfluoCollector()
        report = encode_report(b"k", b"v")
        kafka.ingest(report)
        confluo.ingest(report)
        assert kafka.ledger.total > confluo.ledger.total > 0
