"""Tests for postcard-mode simulation (repro.network.postcard_sim)."""

from repro.core.config import DartConfig
from repro.network.flows import FlowGenerator
from repro.network.postcard_sim import PostcardSimulation, mode_comparison_rows
from repro.network.topology import FatTreeTopology


def make_sim(slots=1 << 14):
    tree = FatTreeTopology(k=4)
    config = DartConfig(slots_per_collector=slots, num_collectors=1)
    return PostcardSimulation(tree, config), tree


class TestPostcardSimulation:
    def test_every_hop_reports(self):
        sim, tree = make_sim()
        flows = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=0).uniform(20)
        total_hops = 0
        for flow in flows:
            path = sim.trace_flow(flow)
            total_hops += len(path)
        assert sim.reports_sent == total_hops

    def test_hop_queries_return_truth(self):
        sim, tree = make_sim()
        flow = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=1).uniform(1)[0]
        path = sim.trace_flow(flow)
        for hop_index, switch_id in enumerate(path):
            measurement = sim.hop_measurement(switch_id, flow)
            assert measurement is not None
            assert measurement.egress_port == hop_index

    def test_off_path_switch_empty(self):
        sim, tree = make_sim()
        flow = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=2).uniform(1)[0]
        path = sim.trace_flow(flow)
        off_path = next(
            s.switch_id for s in tree.switches if s.switch_id not in path
        )
        assert sim.hop_measurement(off_path, flow) is None

    def test_evaluation_partitions(self):
        sim, tree = make_sim(slots=1 << 10)
        flows = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=3).uniform(
            300
        )
        sim.trace_flows(flows)
        evaluation = sim.evaluate()
        assert (
            evaluation.hops_correct + evaluation.hops_empty + evaluation.hops_wrong
            == evaluation.hops_total
        )
        assert 0 < evaluation.hop_success_rate <= 1
        assert evaluation.full_path_rate <= evaluation.hop_success_rate + 1e-9

    def test_low_load_fully_traceable(self):
        sim, tree = make_sim(slots=1 << 15)
        flows = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=4).uniform(50)
        sim.trace_flows(flows)
        evaluation = sim.evaluate()
        assert evaluation.full_path_rate > 0.95
        assert evaluation.hops_wrong == 0


class TestModeComparison:
    def test_postcards_cost_more_for_more_visibility(self):
        rows = mode_comparison_rows(num_flows=2_000, memory_bytes=400_000, k=4)
        by = {r["mode"]: r for r in rows}
        inband, postcards = by["in-band INT"], by["INT postcards"]
        # Postcards multiply reports and live keys by the mean path length.
        assert postcards["reports"] > 2 * inband["reports"]
        assert postcards["load_factor"] > 2 * inband["load_factor"]
        # At equal memory, in-band is more queryable...
        assert inband["success_rate"] > postcards["success_rate"]
        # ...but postcards buy per-hop visibility.
        assert postcards["per_hop_visibility"] and not inband["per_hop_visibility"]
