"""Property tests: impaired delivery is absorbed by NIC validation.

:class:`~repro.fabric.ImpairedFabric` drops, duplicates and reorders real
RoCEv2 frames in front of the NIC model.  The properties enforced here are
the paper's resilience claims made mechanical:

- accounting is exact: every offered frame is either dropped by the
  impairment or handed to the inner fabric, whose delivery counters
  reconcile with the NICs' ``frames_received`` -- nothing vanishes
  silently between a sender and the endpoint;
- duplicates are idempotent: the NIC's PSN stale-window check drops the
  second copy, leaving memory bit-identical to an unimpaired run;
- reordered and lost frames are dropped *by the NIC or the impairment*,
  never half-applied: every nonzero slot holds a payload some report
  actually offered.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DartConfig
from repro.core.reporter import DartReporter
from repro.collector.store import DartStore
from repro.fabric import BufferedFabric, ImpairedFabric, InlineFabric


def make_store(impaired_fabric):
    config = DartConfig(slots_per_collector=1 << 10, num_collectors=2, seed=9)
    return DartStore(config, packet_level=True, fabric=impaired_fabric), config


def workload(n):
    return [(("flow", i % 12), (i % 97).to_bytes(20, "big")) for i in range(n)]


def offered_payloads(config, items):
    """Every slot payload any frame in the workload could have written."""
    reporter = DartReporter(config)
    return {
        write.payload
        for key, value in items
        for write in reporter.writes_for(key, value)
    }


def nonzero_slots(store, config):
    """All nonzero slot contents across the fleet, at slot granularity."""
    slot_bytes = config.slot_bytes
    empty = b"\x00" * slot_bytes
    slots = []
    for collector in store.cluster:
        snapshot = collector.region.snapshot()
        for offset in range(0, len(snapshot), slot_bytes):
            slot = snapshot[offset : offset + slot_bytes]
            if slot != empty:
                slots.append(slot)
    return slots


@settings(max_examples=25, deadline=None)
@given(
    loss=st.floats(min_value=0.0, max_value=0.6),
    duplication=st.floats(min_value=0.0, max_value=0.6),
    reordering=st.floats(min_value=0.0, max_value=0.6),
    seed=st.integers(min_value=0, max_value=2**16),
    reports=st.integers(min_value=1, max_value=60),
)
def test_accounting_reconciles(loss, duplication, reordering, seed, reports):
    """offered == lost + handed-on; inner delivery == NIC receipts."""
    inner = InlineFabric()
    impaired = ImpairedFabric(
        inner, loss=loss, duplication=duplication, reordering=reordering,
        seed=seed,
    )
    store, _config = make_store(impaired)
    for key, value in workload(reports):
        store.put(key, value)
    store.fabric.flush()  # release any held (reordered) frames

    offered = impaired.counters.frames_offered
    dropped = impaired.counters.frames_dropped_loss
    duplicated = impaired.counters.frames_duplicated
    # Conservation at the impairment layer: every offered frame was either
    # dropped or handed to the inner fabric, plus injected duplicates.
    assert inner.counters.frames_offered == offered - dropped + duplicated
    # Conservation at the delivery layer.
    assert inner.counters.frames_delivered == inner.counters.frames_offered
    assert (
        inner.counters.frames_delivered
        == inner.counters.frames_executed + inner.counters.frames_rejected
    )
    # Everything the inner fabric delivered, a NIC received.
    received = sum(c.nic.counters.frames_received for c in store.cluster)
    assert received == inner.counters.frames_delivered
    # NIC-level conservation: received == executed + dropped.
    executed = sum(
        c.nic.counters.writes_executed
        + c.nic.counters.atomics_executed
        + c.nic.counters.reads_executed
        for c in store.cluster
    )
    nic_dropped = sum(c.nic.counters.frames_dropped for c in store.cluster)
    assert received == executed + nic_dropped
    assert impaired.pending() == 0


@settings(max_examples=25, deadline=None)
@given(
    duplication=st.floats(min_value=0.1, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**16),
    reports=st.integers(min_value=1, max_value=50),
)
def test_duplicates_are_idempotent(duplication, seed, reports):
    """PSN checks drop duplicate WRITEs: memory equals an unimpaired run."""
    clean_store, _ = make_store(InlineFabric())
    inner = InlineFabric()
    impaired = ImpairedFabric(inner, duplication=duplication, seed=seed)
    dup_store, _config = make_store(impaired)

    for key, value in workload(reports):
        clean_store.put(key, value)
        dup_store.put(key, value)

    # Exact accounting: each duplication draw injects one extra inner
    # delivery (a probabilistic "at least one duplicate fired" assertion
    # is flaky at small counts -- all draws can legitimately miss).
    assert (
        impaired.delivered.frames_delivered
        == impaired.counters.frames_offered
        + impaired.counters.frames_duplicated
    )
    for clean, dup in zip(clean_store.cluster, dup_store.cluster):
        assert clean.region.snapshot() == dup.region.snapshot()
        # Every duplicate was dropped by the PSN stale-window check.
        assert (
            dup.nic.counters.writes_executed
            == clean.nic.counters.writes_executed
        )
    dropped_psn = sum(c.nic.counters.dropped_psn for c in dup_store.cluster)
    assert dropped_psn == impaired.counters.frames_duplicated


@settings(max_examples=25, deadline=None)
@given(
    loss=st.floats(min_value=0.0, max_value=0.5),
    reordering=st.floats(min_value=0.0, max_value=0.5),
    duplication=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2**16),
    reports=st.integers(min_value=1, max_value=60),
)
def test_slots_only_hold_offered_payloads(
    loss, reordering, duplication, seed, reports
):
    """Impairments never corrupt memory: slots hold real payloads or zeros."""
    impaired = ImpairedFabric(
        InlineFabric(), loss=loss, reordering=reordering,
        duplication=duplication, seed=seed,
    )
    store, config = make_store(impaired)
    items = workload(reports)
    for key, value in items:
        store.put(key, value)
    store.fabric.flush()
    allowed = offered_payloads(config, items)
    for slot in nonzero_slots(store, config):
        assert slot in allowed


@settings(max_examples=20, deadline=None)
@given(
    reordering=st.floats(min_value=0.2, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_reordered_frames_drop_via_psn_not_memory(reordering, seed):
    """An overtaken frame lands behind the expected PSN and is dropped.

    The default RESYNC_ON_GAP policy accepts the newer frame (forward gap)
    and then rejects the held, older one as stale -- so reordering costs
    redundancy copies, never consistency.
    """
    impaired = ImpairedFabric(InlineFabric(), reordering=reordering, seed=seed)
    store, config = make_store(impaired)
    items = workload(40)
    for key, value in items:
        store.put(key, value)
    store.fabric.flush()
    reordered = impaired.counters.frames_reordered
    if reordered == 0:
        return  # RNG never tripped; nothing to assert
    dropped_psn = sum(c.nic.counters.dropped_psn for c in store.cluster)
    # Every *overtaken* frame is PSN-stale.  A frame still held when the
    # workload ends is released by flush() in order and executes normally
    # -- at most one per endpoint.
    assert reordered - len(store.cluster) <= dropped_psn <= reordered
    # Memory stays consistent: only offered payloads present.
    allowed = offered_payloads(config, items)
    for slot in nonzero_slots(store, config):
        assert slot in allowed


def test_seeded_impairments_are_deterministic():
    """Same seed, same workload -> identical counters and memory."""

    def run():
        impaired = ImpairedFabric(
            InlineFabric(), loss=0.2, duplication=0.2, reordering=0.2, seed=7
        )
        store, _config = make_store(impaired)
        for key, value in workload(80):
            store.put(key, value)
        store.fabric.flush()
        snapshots = [c.region.snapshot() for c in store.cluster]
        return impaired.counters, snapshots

    counters_a, snaps_a = run()
    counters_b, snaps_b = run()
    assert counters_a == counters_b
    assert snaps_a == snaps_b


def test_impaired_over_buffered_inner():
    """Impairments compose with a deferring inner transport."""
    inner = BufferedFabric(flush_threshold=None)
    impaired = ImpairedFabric(inner, loss=0.3, seed=3)
    store, config = make_store(impaired)
    items = workload(50)
    for key, value in items:
        store.put(key, value)
    assert inner.pending() > 0
    impaired.flush()
    assert impaired.pending() == 0
    offered = impaired.counters.frames_offered
    lost = impaired.counters.frames_dropped_loss
    assert inner.counters.frames_delivered == offered - lost
    received = sum(c.nic.counters.frames_received for c in store.cluster)
    assert received == inner.counters.frames_delivered


def test_loss_model_object_replaces_bernoulli_draws():
    """A shared LossModel drives the impairment's loss decisions."""
    from repro.network.simulation import LossModel

    loss_model = LossModel(0.5, seed=1)
    impaired = ImpairedFabric(InlineFabric(), loss_model=loss_model)
    store, _config = make_store(impaired)
    for key, value in workload(40):
        store.put(key, value)
    assert loss_model.lost == impaired.counters.frames_dropped_loss
    assert (
        loss_model.delivered
        == impaired.counters.frames_offered
        - impaired.counters.frames_dropped_loss
    )
