"""Grand integration: every subsystem in one operator scenario.

A day in the life of a DART deployment, each stage feeding the next:

1. fat-tree traffic with per-packet INT, filtered by switch-side event
   detection;
2. change events reported through real switch-crafted RoCEv2 frames into
   collector NICs, with postcards and anomaly events alongside;
3. Fetch&Add counters rank flows by event volume;
4. an epoch boundary archives the region to disk;
5. the operator investigates: live queries, historical queries from the
   archive, and remote RDMA-READ queries -- all agreeing with ground
   truth.
"""

import pytest

from repro.core.client import DartQueryClient
from repro.core.config import DartConfig
from repro.collector.counters import CounterStore
from repro.collector.epochs import EpochArchive, EpochManager
from repro.collector.remote_query import RemoteQueryClient
from repro.collector.store import DartStore
from repro.network.flows import FlowGenerator
from repro.network.packet_sim import PacketLevelIntNetwork
from repro.network.simulation import decode_path
from repro.network.topology import FatTreeTopology
from repro.switch.event_detection import ChangeDetector
from repro.telemetry.anomalies import AnomalyEvent, AnomalyKind, FlowAnomalyBackend
from repro.telemetry.postcards import PostcardBackend, PostcardMeasurement


@pytest.fixture(scope="module")
def deployment():
    """One fully provisioned deployment shared by the scenario stages."""
    tree = FatTreeTopology(k=4)
    config = DartConfig(slots_per_collector=1 << 13, num_collectors=2, seed=11)
    net = PacketLevelIntNetwork(tree, config)
    flows = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=11).uniform(150)
    return tree, config, net, flows


class TestFullScenario:
    def test_stage1_packet_level_int_with_event_filtering(self, deployment):
        tree, config, net, flows = deployment
        detector = ChangeDetector(cache_lines=1 << 12, seed=11)
        truth = {}
        reports = 0
        for flow in flows:
            # Each flow sends 5 packets; the path (its state) is stable, so
            # the detector reports once per flow.
            for _ in range(5):
                path = tree.path(flow.src_host, flow.dst_host, flow.five_tuple)
                state = b"".join(s.to_bytes(4, "big") for s in path)
                if detector.observe(flow.five_tuple, state):
                    result = net.send(flow)
                    truth[flow.five_tuple] = result.recorded_path
                    reports += 1
        assert reports == len(flows)  # one report per flow, not per packet
        assert detector.stats.packets_observed == 5 * len(flows)
        deployment_truth = truth
        # Stash for later stages via the fixture object.
        net._scenario_truth = deployment_truth

    def test_stage2_sidecar_backends_share_the_store(self, deployment):
        tree, config, net, flows = deployment
        store = DartStore(config)
        store.cluster = net.cluster  # share the same collectors
        store.client = DartQueryClient(config, reader=net.cluster.read_slot)
        postcards = PostcardBackend(store)
        anomalies = FlowAnomalyBackend(store)
        victim = flows[0]
        path = tree.path(victim.src_host, victim.dst_host, victim.five_tuple)
        for hop, switch_id in enumerate(path):
            postcards.switch_report(
                switch_id,
                victim,
                PostcardMeasurement(1000 + hop, 10, hop, 700),
            )
        anomalies.report_event(
            victim.five_tuple,
            AnomalyEvent(2000, path[0], AnomalyKind.CONGESTION, 5),
        )
        assert postcards.hop_measurement(path[0], victim).timestamp_ns == 1000
        assert (
            anomalies.last_event(victim.five_tuple, AnomalyKind.CONGESTION)
            is not None
        )
        # INT paths written in stage 1 must still be queryable alongside.
        assert net.query_path(victim).answered

    def test_stage3_counters_rank_flows(self, deployment):
        tree, config, net, flows = deployment
        counters = CounterStore(cells_per_row=1 << 12, rows=2)
        for index, flow in enumerate(flows[:20]):
            counters.add(flow.five_tuple, amount=index + 1)
        hits = counters.heavy_hitters(
            [flow.five_tuple for flow in flows[:20]], threshold=15
        )
        assert hits[0][0] == flows[19].five_tuple
        assert len(hits) == 6  # amounts 15..20

    def test_stage4_epoch_archive_and_stage5_investigation(self, deployment, tmp_path):
        tree, config, net, flows = deployment
        truth = net._scenario_truth

        # Remote RDMA-READ queries agree with local ones before rotation.
        remote = RemoteQueryClient(config, net.cluster, operator_id=3)
        sample = flows[::10]
        for flow in sample:
            local = net.query_path(flow)
            over_the_wire = remote.query(flow.five_tuple)
            assert local.answered == over_the_wire.answered
            assert local.value == over_the_wire.value

        # Epoch boundary: archive to disk, clear DRAM.
        archive = EpochArchive(config, directory=tmp_path)
        manager = EpochManager(list(net.cluster), archive, reports_per_epoch=10)
        manager.rotate()
        assert not net.query_path(flows[0]).answered  # live region cleared

        # Historical investigation from the archive: ground-truth paths.
        correct = 0
        for flow in sample:
            result = archive.query(0, flow.five_tuple)
            if result.answered and decode_path(result.value) == truth[flow.five_tuple]:
                correct += 1
        assert correct >= len(sample) - 1  # allow one hash-collision loss
