"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestSimulate:
    def test_basic(self, capsys):
        assert main(["simulate", "--load", "0.5", "--slots", "16384"]) == 0
        out = capsys.readouterr().out
        assert "success_rate" in out
        assert "theory_success" in out

    def test_cas_strategy(self, capsys):
        assert main(["simulate", "--load", "0.5", "--slots", "8192", "--cas"]) == 0
        assert "write+cas" in capsys.readouterr().out

    def test_policy_choice(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--load",
                    "1.0",
                    "--slots",
                    "8192",
                    "--policy",
                    "consensus_2",
                ]
            )
            == 0
        )

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policy", "bogus"])


class TestPlan:
    def test_default(self, capsys):
        assert main(["plan"]) == 0
        out = capsys.readouterr().out
        assert "bytes_per_flow_needed" in out

    def test_with_flows_total(self, capsys):
        assert main(["plan", "--flows", "1000000", "--redundancy", "4"]) == 0
        assert "total_gb" in capsys.readouterr().out


class TestTheory:
    def test_table(self, capsys):
        assert main(["theory", "--loads", "0.1,1.0", "--redundancy", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "avg_n1" in out and "avg_n2" in out and "optimal_n" in out

    def test_values_sane(self, capsys):
        main(["theory", "--loads", "0.0", "--redundancy", "2"])
        assert "1" in capsys.readouterr().out  # perfect queryability at 0


class TestTrace:
    def test_small_run(self, capsys):
        assert (
            main(
                [
                    "trace",
                    "--k",
                    "4",
                    "--flows",
                    "200",
                    "--loss",
                    "0.1",
                    "--bytes-per-flow",
                    "600",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "success_rate" in out
        assert "fat_tree_k" in out


class TestObs:
    SMALL = ["obs", "--keys", "200", "--slots", "1024", "--seed", "1"]

    def test_dashboard(self, capsys):
        assert main(self.SMALL) == 0
        out = capsys.readouterr().out
        assert "== pipeline health ==" in out
        assert "frame loss rate" in out
        assert "== per-stage latency (seconds) ==" in out
        assert "== query success rate ==" in out
        assert "policy=PLURALITY" in out
        assert "policy=FIRST_MATCH" in out
        assert "slot overwrite rate" in out
        assert "queue depth high-water mark" in out

    def test_prometheus_format(self, capsys):
        assert main(self.SMALL + ["--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_fabric_frames_offered counter" in out
        assert "repro_nic_frames_received_total" in out
        assert 'repro_stage_seconds_bucket{stage="fabric_flush",le="+Inf"}' in out

    def test_json_format(self, capsys):
        import json

        assert main(self.SMALL + ["--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        names = {row["name"] for row in rows}
        assert "fabric_frames_offered" in names
        assert "mem_slot_overwrites" in names
        assert "queries_total" in names

    def test_trace_output(self, capsys):
        assert main(self.SMALL + ["--trace", "2"]) == 0
        out = capsys.readouterr().out
        assert "== first 2 report traces ==" in out
        assert "kind=switch_report" in out
        assert "switch.report" in out
        assert "fabric.deliver" in out

    def test_restores_process_defaults(self):
        from repro import obs

        registry_before = obs.get_registry()
        tracer_before = obs.get_tracer()
        profiler_before = obs.get_profiler()
        assert main(self.SMALL) == 0
        assert obs.get_registry() is registry_before
        assert obs.get_tracer() is tracer_before
        assert obs.get_profiler() is profiler_before

    def test_watch_mode_renders_per_tick_frames_with_sparklines(self, capsys):
        args = ["obs", "watch"] + self.SMALL[1:] + ["--rounds", "3"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert out.count("== pipeline health ==") == 3
        assert "--- tick 1/3 ---" in out
        assert "--- tick 3/3 ---" in out
        assert "== trends (per-tick deltas) ==" in out
        assert "nic_frames_received" in out
        # The sparkline blocks only appear once a delta window exists.
        assert any(block in out for block in "▁▂▃▄▅▆▇█")

    def test_alerts_mode_runs_the_slo_engine(self, capsys):
        args = ["obs", "alerts"] + self.SMALL[1:]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "== alerts (" in out
        assert "frame-loss-rate" in out
        assert "conformance-PLURALITY" in out
        assert "fabric-nic-reconciliation" in out

    def test_alerts_fire_with_heavy_impairment(self, capsys):
        args = [
            "obs", "alerts",
            "--keys", "300", "--slots", "4096", "--seed", "5",
            "--loss", "0.5", "--duplication", "0", "--reordering", "0",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "[  firing] conformance-PLURALITY" in out
        assert "[  firing] frame-loss-rate" in out

    def test_profile_mode_writes_chrome_trace(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "pipeline.json"
        args = (
            ["obs", "profile"]
            + self.SMALL[1:]
            + ["--chrome-trace", str(trace_path)]
        )
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "== stage profile (wall-clock) ==" in out
        for stage in ("fabric.deliver", "nic.ingest",
                      "store.put_many", "client.query"):
            assert stage in out
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert "client.query" in names

    def test_persist_writes_scrape_lines(self, tmp_path, capsys):
        from repro.obs.timeseries import load_jsonl

        path = tmp_path / "run.jsonl"
        args = self.SMALL + ["--persist", str(path), "--rounds", "2"]
        assert main(args) == 0
        capsys.readouterr()
        rows = load_jsonl(str(path))
        assert [row["tick"] for row in rows] == [1, 2]
        assert any(s["name"] == "store_puts" for s in rows[-1]["samples"])


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            "simulate",
            "plan",
            "theory",
            "trace",
            "experiments",
            "obs",
        ):
            args = parser.parse_args([command])
            assert callable(args.func)


class TestControl:
    def test_failover_demo(self, capsys):
        code = main(
            [
                "control",
                "--flows",
                "400",
                "--slots",
                "1024",
                "--collectors",
                "2",
                "--tick-interval",
                "25",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "crashed (silently)" in out
        assert "failed over" in out
        assert "success_rate" in out
        assert "theory_success" in out
        assert "== membership ==" in out
        assert "controller_failovers_total" in out

    def test_no_failover_is_an_error(self, capsys):
        # Interval longer than the run: the detector never gets to sweep
        # twice after the crash, so the command reports failure.
        code = main(
            [
                "control",
                "--flows",
                "60",
                "--slots",
                "1024",
                "--collectors",
                "2",
                "--tick-interval",
                "4000",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "no failover occurred" in out


class TestQueryCommand:
    def test_point_lookup_table(self, capsys):
        code = main(["query", 'select value from keys where key == "flow-3"'])
        out = capsys.readouterr().out
        assert code == 0
        assert "epoch:  0" in out
        assert "flow-3" in out
        assert "v3" in out

    def test_aggregate_prints_scalar(self, capsys):
        assert main(["query", "select sum(est) from counters"]) == 0
        out = capsys.readouterr().out
        assert "value:  528" in out  # sum of 1..32 over the demo fleet

    def test_topk_table_is_ordered(self, capsys):
        assert main(["query", "select est from sketch top 3 by est"]) == 0
        out = capsys.readouterr().out
        assert out.index("flow-31") < out.index("flow-30") < out.index("flow-29")

    def test_json_output(self, capsys):
        import json as json_module

        code = main(
            ["query", "--json", 'select value from keys where key contains "flow-1"']
        )
        payload = json_module.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["complete"] is True
        assert payload["shards_failed"] == 0
        keys = {row["key"] for row in payload["rows"]}
        assert "flow-1" in keys and "flow-12" in keys

    def test_explain_prints_plan_without_executing(self, capsys):
        code = main(
            ["query", "--explain", 'select value from keys where key == "flow-3"']
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "plan for:" in out
        assert "push-down: 31 candidate(s) pruned" in out
        assert "fan-out:   1 shard(s)" in out

    def test_runs_over_every_fabric(self, capsys):
        # Lossless fabrics serve the exact demo total; the impaired
        # fabric drops some *write* frames (reports are fire-and-forget
        # in DART), so its total is whatever actually landed -- the
        # query must still complete and report every shard.
        for fabric in ("inline", "buffered"):
            code = main(
                ["query", "--fabric", fabric, "select sum(est) from counters"]
            )
            assert code == 0
            assert "value:  528" in capsys.readouterr().out
        code = main(
            ["query", "--fabric", "impaired", "select sum(est) from counters"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "shards: 4 (0 failed)" in out
        value = int(out.split("value:")[1].strip())
        assert 0 < value <= 528

    def test_parse_error_surfaces(self, capsys):
        from repro.query import QueryParseError

        with pytest.raises(QueryParseError):
            main(["query", "select nope from nowhere"])

    def test_restores_process_registry(self):
        from repro import obs

        before = obs.get_registry()
        assert main(["query", "select count(*) from ring"]) == 0
        assert obs.get_registry() is before
