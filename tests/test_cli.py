"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestSimulate:
    def test_basic(self, capsys):
        assert main(["simulate", "--load", "0.5", "--slots", "16384"]) == 0
        out = capsys.readouterr().out
        assert "success_rate" in out
        assert "theory_success" in out

    def test_cas_strategy(self, capsys):
        assert main(["simulate", "--load", "0.5", "--slots", "8192", "--cas"]) == 0
        assert "write+cas" in capsys.readouterr().out

    def test_policy_choice(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--load",
                    "1.0",
                    "--slots",
                    "8192",
                    "--policy",
                    "consensus_2",
                ]
            )
            == 0
        )

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policy", "bogus"])


class TestPlan:
    def test_default(self, capsys):
        assert main(["plan"]) == 0
        out = capsys.readouterr().out
        assert "bytes_per_flow_needed" in out

    def test_with_flows_total(self, capsys):
        assert main(["plan", "--flows", "1000000", "--redundancy", "4"]) == 0
        assert "total_gb" in capsys.readouterr().out


class TestTheory:
    def test_table(self, capsys):
        assert main(["theory", "--loads", "0.1,1.0", "--redundancy", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "avg_n1" in out and "avg_n2" in out and "optimal_n" in out

    def test_values_sane(self, capsys):
        main(["theory", "--loads", "0.0", "--redundancy", "2"])
        assert "1" in capsys.readouterr().out  # perfect queryability at 0


class TestTrace:
    def test_small_run(self, capsys):
        assert (
            main(
                [
                    "trace",
                    "--k",
                    "4",
                    "--flows",
                    "200",
                    "--loss",
                    "0.1",
                    "--bytes-per-flow",
                    "600",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "success_rate" in out
        assert "fat_tree_k" in out


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("simulate", "plan", "theory", "trace", "experiments"):
            args = parser.parse_args(
                [command] if command != "experiments" else [command]
            )
            assert callable(args.func)
