"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestSimulate:
    def test_basic(self, capsys):
        assert main(["simulate", "--load", "0.5", "--slots", "16384"]) == 0
        out = capsys.readouterr().out
        assert "success_rate" in out
        assert "theory_success" in out

    def test_cas_strategy(self, capsys):
        assert main(["simulate", "--load", "0.5", "--slots", "8192", "--cas"]) == 0
        assert "write+cas" in capsys.readouterr().out

    def test_policy_choice(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--load",
                    "1.0",
                    "--slots",
                    "8192",
                    "--policy",
                    "consensus_2",
                ]
            )
            == 0
        )

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policy", "bogus"])


class TestPlan:
    def test_default(self, capsys):
        assert main(["plan"]) == 0
        out = capsys.readouterr().out
        assert "bytes_per_flow_needed" in out

    def test_with_flows_total(self, capsys):
        assert main(["plan", "--flows", "1000000", "--redundancy", "4"]) == 0
        assert "total_gb" in capsys.readouterr().out


class TestTheory:
    def test_table(self, capsys):
        assert main(["theory", "--loads", "0.1,1.0", "--redundancy", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "avg_n1" in out and "avg_n2" in out and "optimal_n" in out

    def test_values_sane(self, capsys):
        main(["theory", "--loads", "0.0", "--redundancy", "2"])
        assert "1" in capsys.readouterr().out  # perfect queryability at 0


class TestTrace:
    def test_small_run(self, capsys):
        assert (
            main(
                [
                    "trace",
                    "--k",
                    "4",
                    "--flows",
                    "200",
                    "--loss",
                    "0.1",
                    "--bytes-per-flow",
                    "600",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "success_rate" in out
        assert "fat_tree_k" in out


class TestObs:
    SMALL = ["obs", "--keys", "200", "--slots", "1024", "--seed", "1"]

    def test_dashboard(self, capsys):
        assert main(self.SMALL) == 0
        out = capsys.readouterr().out
        assert "== pipeline health ==" in out
        assert "frame loss rate" in out
        assert "== per-stage latency (seconds) ==" in out
        assert "== query success rate ==" in out
        assert "policy=PLURALITY" in out
        assert "policy=FIRST_MATCH" in out
        assert "slot overwrite rate" in out
        assert "queue depth high-water mark" in out

    def test_prometheus_format(self, capsys):
        assert main(self.SMALL + ["--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_fabric_frames_offered counter" in out
        assert "repro_nic_frames_received_total" in out
        assert 'repro_stage_seconds_bucket{stage="fabric_flush",le="+Inf"}' in out

    def test_json_format(self, capsys):
        import json

        assert main(self.SMALL + ["--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        names = {row["name"] for row in rows}
        assert "fabric_frames_offered" in names
        assert "mem_slot_overwrites" in names
        assert "queries_total" in names

    def test_trace_output(self, capsys):
        assert main(self.SMALL + ["--trace", "2"]) == 0
        out = capsys.readouterr().out
        assert "== first 2 report traces ==" in out
        assert "kind=switch_report" in out
        assert "switch.report" in out
        assert "fabric.deliver" in out

    def test_restores_process_defaults(self):
        from repro import obs

        registry_before = obs.get_registry()
        tracer_before = obs.get_tracer()
        assert main(self.SMALL) == 0
        assert obs.get_registry() is registry_before
        assert obs.get_tracer() is tracer_before


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            "simulate",
            "plan",
            "theory",
            "trace",
            "experiments",
            "obs",
        ):
            args = parser.parse_args([command])
            assert callable(args.func)
