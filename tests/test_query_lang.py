"""The declarative query language: parsing, typing, canonical form."""

import pytest

from repro.core.policies import ReturnPolicy
from repro.query.lang import (
    Aggregate,
    Predicate,
    QueryParseError,
    Source,
    parse_query,
)


class TestParseTargets:
    def test_projection(self):
        query = parse_query("select value from keys")
        assert query.source is Source.KEYS
        assert query.field == "value"
        assert query.aggregate is Aggregate.PROJECT
        assert query.predicates == ()
        assert query.top_k is None
        assert query.policy is None

    def test_every_aggregate(self):
        for name, aggregate in (
            ("sum", Aggregate.SUM),
            ("count", Aggregate.COUNT),
            ("avg", Aggregate.AVG),
            ("min", Aggregate.MIN),
            ("max", Aggregate.MAX),
        ):
            query = parse_query(f"select {name}(est) from counters")
            assert query.aggregate is aggregate
            assert query.field == "est"

    def test_count_star(self):
        query = parse_query("select count(*) from ring")
        assert query.aggregate is Aggregate.COUNT
        assert query.field == "*"

    def test_star_outside_count_rejected(self):
        with pytest.raises(QueryParseError, match="count"):
            parse_query("select sum(*) from counters")

    def test_keywords_case_insensitive(self):
        query = parse_query("SELECT Sum(EST) FROM Counters WHERE key == 'a'")
        assert query.aggregate is Aggregate.SUM
        assert query.source is Source.COUNTERS


class TestTypeChecking:
    def test_unknown_source(self):
        with pytest.raises(QueryParseError, match="unknown source"):
            parse_query("select value from flows")

    def test_field_not_on_source(self):
        with pytest.raises(QueryParseError, match="unknown field"):
            parse_query("select est from keys")

    def test_numeric_aggregate_over_text_field(self):
        with pytest.raises(QueryParseError, match="numeric"):
            parse_query("select sum(value) from keys")

    def test_policy_only_on_keys(self):
        with pytest.raises(QueryParseError, match="keys"):
            parse_query("select est from counters policy plurality")

    def test_top_only_on_projections(self):
        with pytest.raises(QueryParseError, match="projection"):
            parse_query("select sum(est) from counters top 3")

    def test_unknown_policy(self):
        with pytest.raises(QueryParseError, match="unknown policy"):
            parse_query("select value from keys policy always")

    def test_unknown_operator(self):
        with pytest.raises(QueryParseError, match="operator"):
            parse_query("select value from keys where key like 3")

    def test_unlexable_text(self):
        with pytest.raises(QueryParseError, match="lex"):
            parse_query("select value, key from keys")

    def test_truncated_query(self):
        with pytest.raises(QueryParseError, match="end of query"):
            parse_query("select value from")


class TestClauses:
    def test_where_chain(self):
        query = parse_query(
            'select est from counters where key contains "flow" and est >= 10'
        )
        assert len(query.predicates) == 2
        assert query.key_predicates == (
            Predicate(field="key", op="contains", literal="flow"),
        )
        assert query.row_predicates == (
            Predicate(field="est", op=">=", literal=10),
        )

    def test_top_with_explicit_order(self):
        query = parse_query("select est from sketch top 5 by est")
        assert query.top_k == 5
        assert query.order_field == "est"

    def test_top_default_order_is_source_specific(self):
        assert parse_query("select est from counters top 2").order_field == "est"
        assert parse_query("select record from ring top 2").order_field == "index"
        assert parse_query("select value from keys top 2").order_field == "answered"

    def test_top_rejects_non_positive(self):
        with pytest.raises(QueryParseError, match="top"):
            parse_query("select est from counters top 0")

    def test_policy_parsed(self):
        query = parse_query("select value from keys policy consensus_2")
        assert query.policy is ReturnPolicy.CONSENSUS_2


class TestPredicateMatching:
    def test_bytes_compared_as_stripped_text(self):
        predicate = Predicate(field="value", op="==", literal="v7")
        assert predicate.matches({"value": b"v7\x00\x00\x00"})
        assert not predicate.matches({"value": b"v8\x00"})

    def test_bool_compared_as_int(self):
        predicate = Predicate(field="answered", op="==", literal=1)
        assert predicate.matches({"answered": True})
        assert not predicate.matches({"answered": False})

    def test_absent_field_never_matches(self):
        assert not Predicate(field="est", op=">", literal=0).matches({})

    def test_numeric_literal_against_text_value(self):
        assert not Predicate(field="key", op=">", literal=3).matches(
            {"key": "flow"}
        )

    def test_contains(self):
        predicate = Predicate(field="key", op="contains", literal="ow-1")
        assert predicate.matches({"key": "flow-12"})
        assert not predicate.matches({"key": "flow-2"})


class TestCanonicalForm:
    def test_round_trips_through_parser(self):
        text = (
            'select est from counters where key contains "flow" '
            "and est >= 10 top 3 by est"
        )
        query = parse_query(text)
        assert parse_query(query.canonical()) == query

    def test_normalizes_spelling(self):
        spellings = [
            "select sum(est) from counters where key == 'a'",
            'SELECT   SUM(est)  FROM counters   WHERE key == "a"',
        ]
        canonicals = {parse_query(text).canonical() for text in spellings}
        assert len(canonicals) == 1

    def test_policy_in_canonical(self):
        query = parse_query("select value from keys policy first_match")
        assert "policy first_match" in query.canonical()
