"""Tests for the write path (DartReporter) and read path (DartQueryClient)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import DartQueryClient
from repro.core.config import DartConfig
from repro.core.policies import QueryOutcome, ReturnPolicy
from repro.core.reporter import DartReporter
from repro.collector.collector import CollectorCluster


def make_config(**kwargs):
    defaults = dict(
        slots_per_collector=1 << 10, num_collectors=2, redundancy=2, value_bytes=8
    )
    defaults.update(kwargs)
    return DartConfig(**defaults)


class TestReporter:
    def test_writes_for_structure(self):
        config = make_config(redundancy=3)
        reporter = DartReporter(config)
        writes = reporter.writes_for(b"key", b"value")
        assert len(writes) == 3
        assert {w.copy_index for w in writes} == {0, 1, 2}
        # All copies carry identical payload to the same collector.
        assert len({w.payload for w in writes}) == 1
        assert len({w.collector_id for w in writes}) == 1
        assert writes[0].payload_bytes == config.slot_bytes

    def test_payload_is_checksum_plus_value(self):
        config = make_config()
        reporter = DartReporter(config)
        writes = reporter.writes_for(b"key", b"val")
        checksum, value = config.slot_codec().decode(writes[0].payload)
        assert checksum == reporter.addressing.checksum_of(b"key")
        assert value == b"val".ljust(8, b"\x00")

    def test_write_for_copy_matches_writes_for(self):
        config = make_config()
        reporter = DartReporter(config)
        full = reporter.writes_for(b"key", b"val")
        single = reporter.write_for_copy(b"key", b"val", 1)
        assert single == full[1]

    def test_write_for_copy_bounds(self):
        reporter = DartReporter(make_config(redundancy=2))
        with pytest.raises(ValueError):
            reporter.write_for_copy(b"key", b"val", 2)

    def test_reduced_redundancy_override(self):
        config = make_config(redundancy=4)
        reporter = DartReporter(config, redundancy=2)
        assert len(reporter.writes_for(b"key", b"val")) == 2

    def test_redundancy_override_cannot_exceed_config(self):
        with pytest.raises(ValueError):
            DartReporter(make_config(redundancy=2), redundancy=3)
        with pytest.raises(ValueError):
            DartReporter(make_config(), redundancy=0)

    def test_counters(self):
        reporter = DartReporter(make_config(redundancy=2))
        reporter.writes_for(b"a", b"1")
        reporter.writes_for(b"b", b"2")
        assert reporter.reports_generated == 2
        assert reporter.writes_generated == 4

    def test_network_bytes_per_report(self):
        config = make_config(redundancy=2)  # slot = 4 + 8 = 12 bytes
        reporter = DartReporter(config)
        assert reporter.network_bytes_per_report() == 24
        assert reporter.network_bytes_per_report(overhead_per_packet=58) == 140
        with pytest.raises(ValueError):
            reporter.network_bytes_per_report(overhead_per_packet=-1)

    def test_oversize_value_rejected(self):
        reporter = DartReporter(make_config(value_bytes=4))
        with pytest.raises(ValueError):
            reporter.writes_for(b"key", b"too-long-value")


class TestWriteReadRoundtrip:
    def make_pair(self, **kwargs):
        config = make_config(**kwargs)
        cluster = CollectorCluster(config)
        reporter = DartReporter(config)
        client = DartQueryClient(config, reader=cluster.read_slot)
        return config, cluster, reporter, client

    def apply(self, cluster, writes):
        for write in writes:
            cluster[write.collector_id].write_slot(write.slot_index, write.payload)

    def test_written_key_is_queryable(self):
        """Invariant: with no intervening writes, a written key answers."""
        _, cluster, reporter, client = self.make_pair()
        self.apply(cluster, reporter.writes_for(b"flow-1", b"path-a"))
        result = client.query(b"flow-1")
        assert result.answered
        assert result.value == b"path-a\x00\x00"
        assert result.matches == 2

    def test_unwritten_key_is_empty(self):
        _, _, _, client = self.make_pair()
        result = client.query(b"never-written")
        assert result.outcome is QueryOutcome.EMPTY

    def test_latest_write_wins(self):
        _, cluster, reporter, client = self.make_pair()
        self.apply(cluster, reporter.writes_for(b"flow-1", b"old-path"))
        self.apply(cluster, reporter.writes_for(b"flow-1", b"new-path"))
        assert client.query(b"flow-1").value == b"new-path"

    def test_per_query_policy_override(self):
        _, cluster, reporter, client = self.make_pair()
        self.apply(cluster, reporter.writes_for(b"k", b"v"))
        strict = client.query(b"k", policy=ReturnPolicy.CONSENSUS_2)
        assert strict.answered  # both copies intact, count == 2

    def test_partial_overwrite_still_answers_with_plurality(self):
        config, cluster, reporter, client = self.make_pair()
        self.apply(cluster, reporter.writes_for(b"victim", b"truth"))
        # Manually stomp one of the victim's two slots with garbage.
        loc = reporter.addressing.locate(b"victim")[0]
        cluster[loc.collector_id].write_slot(
            loc.slot_index, b"\xff" * config.slot_bytes
        )
        result = client.query(b"victim")
        assert result.answered and result.value == b"truth\x00\x00\x00"
        assert result.matches == 1

    def test_full_overwrite_yields_empty(self):
        config, cluster, reporter, client = self.make_pair()
        self.apply(cluster, reporter.writes_for(b"victim", b"truth"))
        for loc in reporter.addressing.locate(b"victim"):
            cluster[loc.collector_id].write_slot(
                loc.slot_index, b"\x00" * config.slot_bytes
            )
        # Zeroed slots have checksum 0; victim's checksum is almost surely
        # not 0, so the query comes back empty (not an error).
        result = client.query(b"victim")
        assert result.outcome is QueryOutcome.EMPTY

    @settings(max_examples=25, deadline=None)
    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=2**32), min_size=1, max_size=30, unique=True
        )
    )
    def test_low_load_all_queryable(self, keys):
        """At load << 1 with N=2, every key should be retrievable."""
        _, cluster, reporter, client = self.make_pair(
            slots_per_collector=1 << 14, num_collectors=1
        )
        for key in keys:
            self.apply(
                cluster, reporter.writes_for(key, key.to_bytes(8, "big"))
            )
        for key in keys:
            result = client.query(key)
            assert result.answered
            assert result.value == key.to_bytes(8, "big")

    def test_queries_executed_counter(self):
        _, _, _, client = self.make_pair()
        client.query(b"a")
        client.query_value(b"b")
        assert client.queries_executed == 2


class TestBatchQueries:
    def make(self):
        config = make_config()
        cluster = CollectorCluster(config)
        reporter = DartReporter(config)
        client = DartQueryClient(config, reader=cluster.read_slot)
        for i in range(50):
            for write in reporter.writes_for(("f", i), i.to_bytes(8, "big")):
                cluster[write.collector_id].write_slot(
                    write.slot_index, write.payload
                )
        return client

    def test_query_many(self):
        client = self.make()
        keys = [("f", i) for i in range(50)] + [("missing", 1)]
        results = client.query_many(keys)
        assert len(results) == 51
        assert sum(r.answered for r in results.values()) == 50
        assert results[("f", 7)].value == (7).to_bytes(8, "big")

    def test_query_many_deduplicates(self):
        client = self.make()
        before = client.queries_executed
        client.query_many([("f", 1)] * 10)
        assert client.queries_executed == before + 1

    def test_success_fraction(self):
        client = self.make()
        keys = [("f", i) for i in range(25)] + [("nope", i) for i in range(25)]
        assert client.success_fraction(keys) == pytest.approx(0.5)

    def test_success_fraction_empty_rejected(self):
        client = self.make()
        with pytest.raises(ValueError):
            client.success_fraction([])


class TestEventDetectionIntegration:
    def test_detector_gates_dart_reports(self):
        """The full section-2 pipeline: per-packet observations pass the
        change detector; only changes reach the DART store."""
        from repro.collector.store import DartStore
        from repro.switch.event_detection import ChangeDetector

        config = make_config(slots_per_collector=1 << 12)
        store = DartStore(config)
        detector = ChangeDetector(cache_lines=1 << 12)

        reports = 0
        for packet in range(300):
            flow = ("flow", packet % 10)
            state = (packet // 100).to_bytes(4, "big")  # changes twice
            if detector.observe(flow, state):
                store.put(flow, state)
                reports += 1

        # 10 flows x 3 states = 30 reports from 300 packets.
        assert reports == 30
        # The store serves the final state of every flow.
        for i in range(10):
            assert store.get_value(("flow", i)) == (2).to_bytes(4, "big").ljust(
                8, b"\x00"
            )
