"""Tests for the repro.control fleet controller subsystem.

Covers membership bookkeeping, RDMA READ probing, failure detection with
registry corroboration, reconfiguration plans (including atomic rollback),
the reconciliation loop's failover / drain / rejoin lifecycle, PSN
wraparound on the failover resync path, and the end-to-end chaos
acceptance scenario: a collector killed mid-run on the packet-level
pipeline must be detected, failed over on every switch, and post-failover
queries must succeed at the section-4 predicted rate.
"""

import inspect

import pytest

from repro import obs
from repro.core import theory
from repro.core.config import DartConfig
from repro.collector.collector import Collector, CollectorCluster, CollectorEndpoint
from repro.collector.epochs import EpochArchive, EpochManager
from repro.control import (
    PROBE_ENDPOINT_BASE,
    FailureDetector,
    FleetController,
    FleetMembership,
    MemberState,
    NoStandbyAvailableError,
    ProbeStation,
    apply_plan,
    build_failover_plan,
    probe_endpoint,
    select_standby,
)
from repro.fabric.fabric import InlineFabric
from repro.network.flows import FlowGenerator
from repro.network.packet_sim import PacketLevelIntNetwork
from repro.network.simulation import encode_path
from repro.network.topology import FatTreeTopology
from repro.rdma.qp import PSN_MODULUS, PsnPolicy, QueuePair, QueuePairState
from repro.switch.control_plane import SwitchControlPlane
from repro.switch.dart_switch import DartSwitch


def small_config(**kwargs):
    defaults = dict(
        slots_per_collector=1 << 10, num_collectors=2, redundancy=2, value_bytes=8
    )
    defaults.update(kwargs)
    return DartConfig(**defaults)


@pytest.fixture
def registry():
    """A fresh enabled registry installed for the duration of one test."""
    fresh = obs.MetricsRegistry(enabled=True)
    previous = obs.set_registry(fresh)
    yield fresh
    obs.set_registry(previous)


def build_fleet(*, num_standbys=1, num_switches=2, config=None):
    """A provisioned deployment: cluster + fabric + control plane + switches."""
    config = config if config is not None else small_config()
    cluster = CollectorCluster(config, num_standbys=num_standbys)
    fabric = cluster.attach_to(InlineFabric())
    plane = SwitchControlPlane(config)
    switches = [
        DartSwitch(config, switch_id=i).bind_fabric(fabric)
        for i in range(num_switches)
    ]
    plane.connect_fleet(switches, cluster)
    return config, cluster, fabric, plane, switches


def key_for_role(config, role, switches):
    """A key whose first copy addresses ``role``."""
    addressing = switches[0].addressing
    for i in range(10_000):
        key = b"key-%d" % i
        if addressing.collector_of(key) == role:
            return key
    raise AssertionError(f"no key found for role {role}")


class TestFleetMembership:
    def test_initial_assignment(self, registry):
        _, cluster, _, _, _ = build_fleet(num_standbys=2)
        membership = FleetMembership(cluster)
        assert len(membership) == 4
        actives = membership.in_state(MemberState.ACTIVE)
        assert [m.node_id for m in actives] == [0, 1]
        assert [m.role for m in actives] == [0, 1]
        standbys = membership.in_state(MemberState.STANDBY)
        assert [m.node_id for m in standbys] == [2, 3]
        assert all(m.role is None for m in standbys)
        assert membership.count(MemberState.FAILED) == 0

    def test_member_unknown_raises(self, registry):
        _, cluster, _, _, _ = build_fleet()
        membership = FleetMembership(cluster)
        with pytest.raises(KeyError, match="no member with node ID 99"):
            membership.member(99)

    def test_note_probe_streaks(self, registry):
        _, cluster, _, _, _ = build_fleet()
        member = FleetMembership(cluster).member(0)
        member.note_probe(False, tick=3)
        member.note_probe(False, tick=4)
        assert member.missed_probes == 2
        assert member.suspected_at_tick == 3  # streak start, not latest miss
        member.note_probe(True, tick=5)
        assert member.missed_probes == 0
        assert member.suspected_at_tick is None

    def test_state_transitions(self, registry):
        _, cluster, _, _, _ = build_fleet()
        membership = FleetMembership(cluster)
        membership.mark_suspect(0)
        assert membership.member(0).state is MemberState.SUSPECT
        membership.mark_alive(0)
        assert membership.member(0).state is MemberState.ACTIVE
        # mark_suspect only escalates ACTIVE hosts; mark_alive only clears
        # SUSPECT ones -- a standby stays a standby through both.
        membership.mark_suspect(2)
        assert membership.member(2).state is MemberState.STANDBY
        membership.mark_failed(0)
        assert membership.member(0).state is MemberState.FAILED
        assert membership.member(0).failures == 1

    def test_record_promotion_and_readmission(self, registry):
        _, cluster, _, _, _ = build_fleet()
        membership = FleetMembership(cluster)
        membership.mark_failed(0)
        membership.record_promotion(0, standby_id=2, displaced_id=0)
        promoted = membership.member(2)
        assert promoted.state is MemberState.ACTIVE
        assert promoted.role == 0
        displaced = membership.member(0)
        assert displaced.state is MemberState.FAILED
        assert displaced.role is None
        membership.record_readmission(0)
        assert membership.member(0).state is MemberState.STANDBY

    def test_record_drain_keeps_host_drained(self, registry):
        _, cluster, _, _, _ = build_fleet()
        membership = FleetMembership(cluster)
        membership.record_promotion(1, standby_id=2, displaced_id=1, drained=True)
        assert membership.member(1).state is MemberState.DRAINED

    def test_attach_probes_is_idempotent(self, registry):
        _, cluster, fabric, _, _ = build_fleet(num_standbys=1)
        membership = FleetMembership(cluster)
        membership.attach_probes(fabric)
        membership.attach_probes(fabric)  # rebind, not attach: no raise
        for node in cluster.all_nodes:
            port = fabric.port(probe_endpoint(node.collector_id))
            assert port is node
        # Probe ports live far above keyspace roles.
        assert probe_endpoint(0) == PROBE_ENDPOINT_BASE


class TestProbeStation:
    def test_probe_live_host(self, registry):
        _, cluster, fabric, _, _ = build_fleet()
        station = ProbeStation(FleetMembership(cluster), fabric)
        assert station.probe(0) is True
        assert station.probes_sent == 1
        assert station.probes_failed == 0
        assert registry.total("controller_probes_sent") == 1

    def test_probe_standby_host(self, registry):
        """Standbys hold no role but must be probeable by node address."""
        _, cluster, fabric, _, _ = build_fleet(num_standbys=1)
        station = ProbeStation(FleetMembership(cluster), fabric)
        assert station.probe(2) is True

    def test_probe_dead_host_fails(self, registry):
        _, cluster, fabric, _, _ = build_fleet()
        station = ProbeStation(FleetMembership(cluster), fabric)
        cluster.node(0).fail()
        assert station.probe(0) is False
        assert station.probes_failed == 1
        assert registry.total("controller_probes_failed") == 1

    def test_probe_resyncs_after_recovery(self, registry):
        """Probes lost to a dead host must not wedge the PSN stream."""
        _, cluster, fabric, _, _ = build_fleet()
        station = ProbeStation(FleetMembership(cluster), fabric)
        cluster.node(0).fail()
        assert station.probe(0) is False
        assert station.probe(0) is False
        cluster.node(0).recover()
        # The responder QP resynchronises across the gap (RESYNC_ON_GAP).
        assert station.probe(0) is True

    def test_negative_station_id_rejected(self, registry):
        _, cluster, fabric, _, _ = build_fleet()
        with pytest.raises(ValueError, match="non-negative"):
            ProbeStation(FleetMembership(cluster), fabric, station_id=-1)


class TestFailureDetector:
    def make_detector(self, cluster, fabric, fail_after=2):
        membership = FleetMembership(cluster)
        station = ProbeStation(membership, fabric)
        return FailureDetector(station, membership, fail_after=fail_after)

    def test_fail_after_validation(self, registry):
        _, cluster, fabric, _, _ = build_fleet()
        membership = FleetMembership(cluster)
        station = ProbeStation(membership, fabric)
        with pytest.raises(ValueError, match="fail_after"):
            FailureDetector(station, membership, fail_after=0)

    def test_healthy_fleet_never_fails(self, registry):
        _, cluster, fabric, _, _ = build_fleet(num_standbys=1)
        detector = self.make_detector(cluster, fabric)
        for tick in range(3):
            assert detector.sweep(tick) == []
        assert detector.membership.count(MemberState.ACTIVE) == 2
        assert detector.membership.count(MemberState.STANDBY) == 1

    def test_suspect_then_failed(self, registry):
        _, cluster, fabric, _, _ = build_fleet()
        detector = self.make_detector(cluster, fabric, fail_after=2)
        cluster.node(0).fail()
        assert detector.sweep(1) == []
        assert detector.membership.member(0).state is MemberState.SUSPECT
        failed = detector.sweep(2)
        assert [m.node_id for m in failed] == [0]
        assert failed[0].role == 0
        assert failed[0].suspected_at_tick == 1
        assert detector.membership.member(0).state is MemberState.FAILED
        # Already-failed hosts are not probed again.
        sent_before = detector.probes.probes_sent
        detector.sweep(3)
        # Only node 1 and the standby get probed; the corpse is skipped.
        assert detector.probes.probes_sent == sent_before + 2

    def test_recovery_clears_suspicion(self, registry):
        _, cluster, fabric, _, _ = build_fleet()
        detector = self.make_detector(cluster, fabric, fail_after=2)
        cluster.node(0).fail()
        detector.sweep(1)
        cluster.node(0).recover()
        assert detector.sweep(2) == []
        member = detector.membership.member(0)
        assert member.state is MemberState.ACTIVE
        assert member.missed_probes == 0

    def test_alert_corroboration_shaves_a_sweep(self, registry):
        _, cluster, fabric, _, _ = build_fleet()
        detector = self.make_detector(cluster, fabric, fail_after=2)
        registry.gauge("alerts_firing").set(1)
        assert detector.corroboration() is True
        assert detector.effective_threshold(True) == 1
        cluster.node(0).fail()
        failed = detector.sweep(1)  # one miss suffices when corroborated
        assert [m.node_id for m in failed] == [0]

    def test_rejection_growth_corroborates(self, registry):
        _, cluster, fabric, _, _ = build_fleet()
        detector = self.make_detector(cluster, fabric)
        assert detector.corroboration() is False  # baseline sample
        fabric.counters.c_rejected.inc(3)
        assert detector.corroboration() is True
        assert detector.corroboration() is False  # no further growth

    def test_effective_threshold_floor(self, registry):
        _, cluster, fabric, _, _ = build_fleet()
        detector = self.make_detector(cluster, fabric, fail_after=1)
        # Corroboration never pushes the threshold below one probe.
        assert detector.effective_threshold(True) == 1

    def test_drained_host_never_fails(self, registry):
        _, cluster, fabric, _, _ = build_fleet(num_standbys=1)
        detector = self.make_detector(cluster, fabric, fail_after=1)
        membership = detector.membership
        membership.record_promotion(0, standby_id=2, displaced_id=0, drained=True)
        cluster.promote(0, 2)
        cluster.node(0).fail()
        assert detector.sweep(1) == []
        assert membership.member(0).state is MemberState.DRAINED


class TestReconfigurationPlan:
    def test_select_standby_order_and_health(self, registry):
        _, cluster, fabric, _, _ = build_fleet(num_standbys=2)
        assert select_standby(cluster).collector_id == 2
        membership = FleetMembership(cluster)
        membership.mark_failed(2)  # detector distrusts the first spare
        assert select_standby(cluster, membership).collector_id == 3
        membership.mark_failed(3)
        assert select_standby(cluster, membership) is None

    def test_select_standby_empty_pool(self, registry):
        _, cluster, _, _, _ = build_fleet(num_standbys=0)
        assert select_standby(cluster) is None

    def test_build_plan_validates_role(self, registry):
        _, cluster, _, _, switches = build_fleet()
        with pytest.raises(ValueError, match="role 7 outside"):
            build_failover_plan(7, cluster, switches, epoch=1)

    def test_no_standby_error_names_the_role(self, registry):
        _, cluster, _, _, switches = build_fleet(num_standbys=0)
        with pytest.raises(NoStandbyAvailableError) as excinfo:
            build_failover_plan(0, cluster, switches, epoch=1)
        error = excinfo.value
        assert error.role == 0
        assert error.failed_node_id == 0
        assert "role 0" in str(error) and "node 0" in str(error)

    def test_plan_resyncs_psn_per_switch(self, registry):
        _, cluster, _, _, switches = build_fleet(num_switches=3)
        standby = cluster.node(2)
        # Pre-advance one per-switch responder QP so expected PSNs differ.
        standby.create_reporter_qp(switches[1].switch_id).expected_psn = 77
        plan = build_failover_plan(0, cluster, switches, epoch=5)
        assert plan.role == 0
        assert plan.failed_node_id == 0
        assert plan.target_node_id == 2
        assert len(plan.updates) == 3
        by_switch = {u.switch_id: u for u in plan.updates}
        assert by_switch[1].initial_psn == 77
        assert by_switch[0].initial_psn == 0
        for update in plan.updates:
            assert update.epoch == 5
            assert update.endpoint.mac == standby.nic.mac
            # Per-switch QP, not the standby's default responder QP.
            assert update.endpoint.qp_number == 0x10000 + update.switch_id
        assert "epoch 5" in plan.describe()

    def test_apply_plan_updates_every_switch(self, registry):
        _, cluster, _, plane, switches = build_fleet(num_switches=3)
        standby = cluster.node(2)
        plan = build_failover_plan(0, cluster, switches, epoch=1)
        assert apply_plan(plan, plane, switches) == 3
        for switch in switches:
            entry = switch.collector_endpoint(0)
            assert entry["mac"] == standby.nic.mac
            assert entry["rkey"] == standby.region.rkey
            assert switch.endpoint_epochs[0] == 1
        # Role 1's row is untouched.
        assert switches[0].collector_endpoint(1)["mac"] == cluster.node(1).nic.mac

    def test_apply_plan_rolls_back_on_partial_failure(self, registry):
        config, cluster, _, plane, switches = build_fleet(num_switches=2)
        good = switches[0]
        before = dict(good.collector_endpoint(0))
        before_psn = good.psn_registers.read(0)
        # A switch built for a different config: apply_update rejects it
        # after the first switch has already been rewritten.
        other = DartSwitch(small_config(slots_per_collector=1 << 9), switch_id=9)
        plan = build_failover_plan(0, cluster, [good, other], epoch=1)
        with pytest.raises(ValueError, match="different DartConfig"):
            apply_plan(plan, plane, [good, other])
        # The good switch is back on its snapshotted row: no mixed epochs.
        assert good.collector_endpoint(0) == before
        assert good.psn_registers.read(0) == before_psn
        assert good.endpoint_epochs[0] == 0


class TestFleetController:
    def make_controller(self, cluster, plane, fabric, **kwargs):
        kwargs.setdefault("fail_after", 2)
        kwargs.setdefault("tick_interval", 10)
        return FleetController(cluster, plane, fabric, **kwargs)

    def test_tick_interval_validation(self, registry):
        _, cluster, fabric, plane, _ = build_fleet()
        with pytest.raises(ValueError, match="tick_interval"):
            FleetController(cluster, plane, fabric, tick_interval=0)

    def test_failover_end_to_end(self, registry):
        _, cluster, fabric, plane, switches = build_fleet(num_standbys=1)
        controller = self.make_controller(cluster, plane, fabric)
        cluster.node(0).fail()
        assert controller.tick() == []  # first miss: suspect only
        events = controller.tick()
        assert len(events) == 1
        event = events[0]
        assert event.role == 0
        assert event.failed_node_id == 0
        assert event.target_node_id == 2
        assert event.epoch == 1
        assert event.convergence_ticks == 2
        assert not event.drained
        assert "failed over" in event.describe()
        standby = cluster.node(2)
        # Routing converged everywhere: role map, switch tables, fabric.
        assert cluster.node_for(0) is standby
        for switch in switches:
            assert switch.collector_endpoint(0)["ip"] == standby.nic.ip
            assert switch.endpoint_epochs[0] == 1
        assert fabric.port(0) is standby
        assert controller.current_epoch == 1
        assert controller.membership.member(2).role == 0
        assert controller.membership.member(0).state is MemberState.FAILED
        assert registry.total("controller_failovers_total") == 1
        assert registry.total("controller_members", state="active") == 2
        assert registry.total("controller_members", state="failed") == 1
        assert registry.total("controller_epoch") == 1

    def test_post_failover_reports_land_on_standby(self, registry):
        config, cluster, fabric, plane, switches = build_fleet(num_standbys=1)
        controller = self.make_controller(cluster, plane, fabric)
        cluster.node(0).fail()
        controller.tick()
        controller.tick()
        standby = cluster.node(2)
        key = key_for_role(config, 0, switches)
        executed_before = standby.nic.counters.writes_executed
        assert switches[0].report_into(key, b"\x01" * config.value_bytes) > 0
        assert standby.nic.counters.writes_executed > executed_before

    def test_maybe_tick_cadence(self, registry):
        _, cluster, fabric, plane, _ = build_fleet()
        controller = self.make_controller(cluster, plane, fabric, tick_interval=10)
        controller.maybe_tick(1)
        assert controller.ticks == 1  # first observation always ticks
        controller.maybe_tick(5)
        assert controller.ticks == 1  # clock has not advanced an interval
        controller.maybe_tick(11)
        assert controller.ticks == 2

    def test_unserved_role_heals_when_capacity_returns(self, registry):
        _, cluster, fabric, plane, _ = build_fleet(num_standbys=1)
        controller = self.make_controller(cluster, plane, fabric, fail_after=1)
        cluster.node(0).fail()
        cluster.node(1).fail()
        events = controller.tick()
        # One standby covers role 0; role 1 stays unserved but remembered.
        assert [e.role for e in events] == [0]
        assert controller.unserved_roles == [1]
        assert registry.total("controller_failovers_unplaced_total") == 1
        # Node 0 (displaced, roleless) recovers and rejoins the pool ...
        cluster.node(0).recover()
        controller.rejoin(0)
        assert controller.membership.member(0).state is MemberState.STANDBY
        # ... and the retry path heals role 1 on the next tick.
        events = controller.tick()
        assert [(e.role, e.target_node_id) for e in events] == [(1, 0)]
        assert controller.unserved_roles == []
        assert cluster.node_for(1) is cluster.node(0)

    def test_dead_standby_is_withdrawn(self, registry):
        _, cluster, fabric, plane, _ = build_fleet(num_standbys=1)
        controller = self.make_controller(cluster, plane, fabric, fail_after=1)
        cluster.node(2).fail()
        assert controller.tick() == []  # a dead spare is no failover
        assert cluster.standbys == []
        assert controller.membership.member(2).state is MemberState.FAILED
        # With the pool now empty, a real failure defers.
        cluster.node(0).fail()
        controller.tick()
        assert controller.unserved_roles == [0]

    def test_drain_and_rejoin(self, registry):
        config, cluster, fabric, plane, switches = build_fleet(num_standbys=1)
        controller = self.make_controller(cluster, plane, fabric)
        event = controller.drain(0)
        assert event.drained
        assert "drained" in event.describe()
        assert controller.membership.member(0).state is MemberState.DRAINED
        assert cluster.node_for(0) is cluster.node(2)
        # The drained host is healthy; it can rejoin the pool immediately.
        controller.rejoin(0)
        assert cluster.standbys == [cluster.node(0)]
        assert registry.total("controller_members", state="standby") == 1

    def test_epoch_manager_rotation_archives_pre_failover_data(self, registry):
        config, cluster, fabric, plane, switches = build_fleet(num_standbys=1)
        archive = EpochArchive(config)
        manager = EpochManager(
            cluster.collectors, archive, reports_per_epoch=10_000
        )
        controller = self.make_controller(
            cluster, plane, fabric, epoch_manager=manager
        )
        marker = b"\x7f" * config.slot_bytes
        cluster.node(0).write_slot(3, marker)
        cluster.node(0).fail()
        controller.tick()
        events = controller.tick()
        assert events[0].epoch == 1
        assert controller.current_epoch == 1
        assert manager.current_epoch == 1
        # The failed host's region was archived under its *role* before
        # the standby took over, so pre-failover data stays queryable.
        image = archive.load(0, 0)
        offset = 3 * config.slot_bytes
        assert image[offset : offset + config.slot_bytes] == marker
        # The standby starts the new epoch clean.
        assert cluster.node_for(0).read_slot(3) == b"\x00" * config.slot_bytes


def find_cached_endpoints(root):
    """Recursively scan an object graph for held CollectorEndpoint instances.

    The failover design requires that nothing between the control plane and
    the data plane caches an endpoint row: switches must resolve through
    their live match-action table on every send.  Returns the attribute
    paths of any cached endpoints found (empty = the invariant holds).
    """
    seen = set()
    found = []
    stack = [(root, type(root).__name__)]
    while stack:
        obj, path = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, CollectorEndpoint):
            found.append(path)
            continue
        if inspect.ismodule(obj) or inspect.isclass(obj) or callable(obj):
            continue
        if isinstance(obj, dict):
            for key, value in obj.items():
                stack.append((value, f"{path}[{key!r}]"))
        elif isinstance(obj, (list, tuple, set, frozenset)):
            for index, value in enumerate(obj):
                stack.append((value, f"{path}[{index}]"))
        elif hasattr(obj, "__dict__"):
            for name, value in vars(obj).items():
                stack.append((value, f"{path}.{name}"))
    return found


class TestNoStaleEndpointCaching:
    """Meta-tests: every send resolves endpoints through the live table."""

    def test_no_component_holds_an_endpoint_object(self, registry):
        """No switch, sink, plane or controller may cache a CollectorEndpoint.

        Table rows are stored as unpacked parameter dicts that a failover
        rewrites in place; a held :class:`CollectorEndpoint` would be the
        one thing a failover could leave stale, so none may survive
        provisioning anywhere in the deployment's object graph.
        """
        tree = FatTreeTopology(k=4)
        config = DartConfig(
            slots_per_collector=256, redundancy=2, num_collectors=2, seed=0
        )
        net = PacketLevelIntNetwork(tree, config, num_standbys=1)
        net.enable_control(fail_after=2, tick_interval=10)
        assert find_cached_endpoints(net) == []

    def test_reports_follow_the_table_after_failover(self, registry):
        """Frames crafted after a failover carry the standby's parameters."""
        config, cluster, fabric, plane, switches = build_fleet(
            num_standbys=1, num_switches=3
        )
        key = key_for_role(config, 0, switches)
        value = b"\x01" * config.value_bytes
        controller = FleetController(
            cluster, plane, fabric, fail_after=1, tick_interval=10
        )
        old = cluster.node(0)
        before = {s.switch_id: s.report(key, value) for s in switches}
        for frames in before.values():
            assert all(cid == 0 for cid, _ in frames)
        old.fail()
        controller.tick()
        standby = cluster.node(2)
        from repro.rdma.packets import RoceV2Packet

        for switch in switches:
            for _collector_id, frame in switch.report(key, value):
                packet = RoceV2Packet.unpack(frame)
                assert packet.ipv4.dst_ip == standby.nic.ip
                assert packet.eth.dst_mac == standby.nic.mac
                assert packet.reth.rkey == standby.region.rkey
                assert packet.bth.dest_qp == 0x10000 + switch.switch_id
                assert packet.ipv4.dst_ip != old.nic.ip
            # The live-table read agrees with what the frames carry.
            assert switch.collector_endpoint(0)["ip"] == standby.nic.ip


class TestPsnWraparoundResync:
    """Regression tests for 24-bit PSN arithmetic at the wrap boundary."""

    def test_accept_at_modulus_edge_wraps_to_zero(self):
        qp = QueuePair(qp_number=1, expected_psn=PSN_MODULUS - 1)
        assert qp.accept(PSN_MODULUS - 1) is True
        assert qp.expected_psn == 0  # (psn + 1) % 2**24
        assert qp.accept(0) is True
        assert qp.expected_psn == 1

    def test_duplicate_detected_across_the_wrap(self):
        qp = QueuePair(qp_number=1, expected_psn=PSN_MODULUS - 1)
        assert qp.accept(PSN_MODULUS - 1) is True
        # Replaying the pre-wrap PSN is one step behind: a duplicate.
        assert qp.accept(PSN_MODULUS - 1) is False
        assert qp.duplicates_dropped == 1
        assert qp.expected_psn == 0

    def test_stale_window_boundary(self):
        stale_window = PSN_MODULUS // 2
        qp = QueuePair(qp_number=1, expected_psn=0)
        # Exactly at the window: treated as stale, not a forward gap.
        assert qp.accept(stale_window) is False
        assert qp.duplicates_dropped == 1
        # One before the window: the largest tolerated forward gap.
        qp = QueuePair(qp_number=1, expected_psn=0)
        assert qp.accept(stale_window - 1) is True
        assert qp.gaps_observed == 1
        assert qp.expected_psn == stale_window

    def test_strict_policy_errors_on_gap_at_wrap(self):
        qp = QueuePair(
            qp_number=1, expected_psn=PSN_MODULUS - 1, policy=PsnPolicy.STRICT
        )
        assert qp.accept(1) is False  # gap of 2 across the wrap
        assert qp.state is QueuePairState.ERROR

    def test_reset_validates_range(self):
        qp = QueuePair(qp_number=1)
        with pytest.raises(ValueError, match="out of range"):
            qp.reset(PSN_MODULUS)
        qp.reset(PSN_MODULUS - 1)
        assert qp.expected_psn == PSN_MODULUS - 1
        assert qp.state is QueuePairState.READY

    def test_failover_resync_near_wrap(self, registry):
        """A standby advertising a near-wrap PSN stays in sequence.

        The plan seeds the switch's PSN register from the standby's
        expected PSN; reports crafted after failover must be accepted both
        at ``2**24 - 1`` and across the wrap to 0.
        """
        config, cluster, fabric, plane, switches = build_fleet(
            num_standbys=1, num_switches=1
        )
        switch = switches[0]
        standby = cluster.node(2)
        qp = standby.create_reporter_qp(switch.switch_id)
        qp.reset(PSN_MODULUS - 1)
        controller = FleetController(
            cluster, plane, fabric, fail_after=1, tick_interval=10
        )
        cluster.node(0).fail()
        events = controller.tick()
        assert len(events) == 1
        assert switch.psn_registers.read(0) == PSN_MODULUS - 1
        key = key_for_role(config, 0, switches)
        value = b"\x01" * config.value_bytes
        accepted_before = qp.accepted
        # Two reports: PSNs 2**24 - 1 and (wrapped) 0, both in sequence.
        for _ in range(2):
            switch.report_into(key, value)
        assert qp.accepted == accepted_before + 2 * config.redundancy
        assert qp.gaps_observed == 0
        assert qp.expected_psn == config.redundancy * 2 - 1


class TestEndToEndChaosFailover:
    """The ISSUE acceptance scenario on the packet-level pipeline."""

    def test_kill_collector_mid_run_converges_and_queries(self, registry):
        tree = FatTreeTopology(k=4)
        config = DartConfig(
            slots_per_collector=2048, redundancy=2, num_collectors=4, seed=0
        )
        net = PacketLevelIntNetwork(tree, config, num_standbys=1)
        controller = net.enable_control(fail_after=2, tick_interval=25)
        flows = FlowGenerator(
            tree.num_hosts, host_ip=tree.host_ip, seed=1
        ).uniform(800)
        kill_at = len(flows) // 2
        converged_at = None
        for index, flow in enumerate(flows):
            if index == kill_at:
                net.kill_collector(0)
            net.send(flow)
            if converged_at is None and controller.events:
                converged_at = index
        # The detector fired and the controller converged mid-run.
        assert converged_at is not None
        assert converged_at < len(flows) - 100
        event = controller.events[0]
        assert event.failed_node_id == 0
        assert event.target_node_id == config.num_collectors  # the standby
        # Every switch in the fleet was re-provisioned to the new epoch.
        standby = net.cluster.node(config.num_collectors)
        assert len(net.plane.switches) == len(tree.switches)
        for switch in net.plane.switches:
            assert switch.collector_endpoint(0)["ip"] == standby.nic.ip
            assert switch.endpoint_epochs[0] == event.epoch
        # Queries for flows sent after convergence succeed at the
        # section-4 predicted rate.
        answered = checked = 0
        for flow in flows[converged_at + 1 :]:
            path = tree.path(flow.src_host, flow.dst_host, flow.five_tuple)
            result = net.query_path(flow)
            checked += 1
            if result.value == encode_path(path):
                answered += 1
        load = len(flows) * config.redundancy / (
            config.num_collectors * config.slots_per_collector
        )
        predicted = float(theory.average_queryability(load, config.redundancy))
        assert checked > 100
        assert answered / checked >= predicted - 0.03
        # The controller published its own telemetry.
        assert registry.total("controller_failovers_total") == 1
        histograms = registry.histogram_family("controller_convergence_ticks")
        assert histograms and sum(h.count for h in histograms) == 1
