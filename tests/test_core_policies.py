"""Tests for query return policies (repro.core.policies)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.policies import QueryOutcome, ReturnPolicy, resolve

A, B, C = b"value-a", b"value-b", b"value-c"


def outcomes(matching, policy):
    return resolve(matching, policy, slots_read=4)


class TestNoMatches:
    @pytest.mark.parametrize("policy", list(ReturnPolicy))
    def test_empty_when_nothing_matches(self, policy):
        result = outcomes([], policy)
        assert result.outcome is QueryOutcome.EMPTY
        assert result.value is None
        assert result.matches == 0
        assert result.slots_read == 4
        assert not result.answered


class TestSingleValue:
    def test_unique_value_returned(self):
        result = outcomes([A, A], ReturnPolicy.SINGLE_VALUE)
        assert result.answered and result.value == A

    def test_one_match_returned(self):
        result = outcomes([A], ReturnPolicy.SINGLE_VALUE)
        assert result.answered and result.value == A

    def test_two_distinct_values_empty(self):
        """Paper: empty return when N cells hold two distinct matching values."""
        result = outcomes([A, B], ReturnPolicy.SINGLE_VALUE)
        assert result.outcome is QueryOutcome.EMPTY

    def test_majority_does_not_help(self):
        result = outcomes([A, A, B], ReturnPolicy.SINGLE_VALUE)
        assert result.outcome is QueryOutcome.EMPTY


class TestPlurality:
    def test_majority_wins(self):
        result = outcomes([A, A, B], ReturnPolicy.PLURALITY)
        assert result.answered and result.value == A

    def test_tie_is_empty(self):
        result = outcomes([A, B], ReturnPolicy.PLURALITY)
        assert result.outcome is QueryOutcome.EMPTY

    def test_single_match_answers(self):
        result = outcomes([B], ReturnPolicy.PLURALITY)
        assert result.answered and result.value == B

    def test_three_way_tie_empty(self):
        result = outcomes([A, B, C], ReturnPolicy.PLURALITY)
        assert result.outcome is QueryOutcome.EMPTY


class TestConsensus2:
    def test_requires_two_occurrences(self):
        assert outcomes([A], ReturnPolicy.CONSENSUS_2).outcome is QueryOutcome.EMPTY
        result = outcomes([A, A], ReturnPolicy.CONSENSUS_2)
        assert result.answered and result.value == A

    def test_minority_singleton_ignored(self):
        result = outcomes([A, A, B], ReturnPolicy.CONSENSUS_2)
        assert result.answered and result.value == A

    def test_two_qualified_values_resolves_by_plurality(self):
        result = outcomes([A, A, A, B, B], ReturnPolicy.CONSENSUS_2)
        assert result.answered and result.value == A

    def test_two_qualified_values_tied_empty(self):
        result = outcomes([A, A, B, B], ReturnPolicy.CONSENSUS_2)
        assert result.outcome is QueryOutcome.EMPTY


class TestFirstMatch:
    def test_returns_first(self):
        result = outcomes([B, A], ReturnPolicy.FIRST_MATCH)
        assert result.answered and result.value == B


class TestInvariants:
    @given(
        matching=st.lists(st.sampled_from([A, B, C]), max_size=8),
        policy=st.sampled_from(list(ReturnPolicy)),
    )
    def test_returned_value_always_among_matches(self, matching, policy):
        """A query never invents a value: any answer came from a slot."""
        result = resolve(matching, policy, slots_read=len(matching))
        if result.answered:
            assert result.value in matching
        else:
            assert result.value is None

    @given(matching=st.lists(st.sampled_from([A, B]), min_size=1, max_size=8))
    def test_unanimous_slots_always_answer(self, matching):
        """If all matching slots agree, every policy except consensus-2
        with a single match answers with that value."""
        if len(set(matching)) != 1:
            return
        for policy in (
            ReturnPolicy.SINGLE_VALUE,
            ReturnPolicy.PLURALITY,
            ReturnPolicy.FIRST_MATCH,
        ):
            result = resolve(matching, policy, slots_read=len(matching))
            assert result.answered and result.value == matching[0]

    @given(
        matching=st.lists(st.sampled_from([A, B, C]), max_size=8),
    )
    def test_consensus_stricter_than_plurality(self, matching):
        """Consensus-2 answering implies plurality would answer the same."""
        consensus = resolve(matching, ReturnPolicy.CONSENSUS_2, slots_read=8)
        plurality = resolve(matching, ReturnPolicy.PLURALITY, slots_read=8)
        if consensus.answered and plurality.answered:
            assert consensus.value == plurality.value
