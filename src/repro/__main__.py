"""``python -m repro`` -- the DART reproduction CLI."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
