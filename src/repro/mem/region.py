"""Registered memory regions: the landing zone for direct telemetry access.

An RDMA memory region (MR) is a pinned, registered range of host memory that
the NIC may access without CPU involvement.  One-sided verbs carry the
region's *remote key* (rkey) and a virtual address; the NIC validates both
and performs the DMA.  This module models that contract: out-of-bounds or
wrong-rkey accesses raise :class:`RegionAccessError`, which the NIC layer
translates into silently dropping the offending packet (the collector CPU
never sees it -- exactly the zero-CPU property DART relies on).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import obs


class RegionAccessError(Exception):
    """A remote access fell outside the region or used a bad rkey."""


class MemoryRegion:
    """A registered memory region backed by a ``bytearray``.

    Parameters
    ----------
    size:
        Region length in bytes.
    base_address:
        Virtual address of the first byte, as advertised to remote peers.
        RDMA requests address the region by virtual address, not offset.
    rkey:
        Remote key that one-sided operations must present.
    """

    def __init__(self, size: int, base_address: int = 0x10000, rkey: int = 0x1) -> None:
        if size <= 0:
            raise ValueError(f"region size must be positive, got {size}")
        if base_address < 0:
            raise ValueError("base_address must be non-negative")
        self.size = size
        self.base_address = base_address
        self.rkey = rkey
        self._buffer = bytearray(size)
        registry = obs.get_registry()
        labels = registry.instance_labels("MemoryRegion")
        #: Writes applied (remote DMA plus local offset writes).
        self.c_writes = registry.counter("mem_writes", labels=labels)
        #: Bytes written into the region.
        self.c_bytes_written = registry.counter(
            "mem_bytes_written", labels=labels
        )
        #: Atomics applied (FETCH_ADD and CMP_SWAP).
        self.c_atomics = registry.counter("mem_atomics", labels=labels)
        #: Writes that landed on a live (non-zero) slot -- the observable
        #: collision pressure behind the paper's query-success model.
        self.c_slot_overwrites = registry.counter(
            "mem_slot_overwrites", labels=labels
        )
        self._track_overwrites = self.c_slot_overwrites.enabled

    @property
    def write_count(self) -> int:
        """Writes applied to the region (remote DMA plus local writes)."""
        return self.c_writes.value

    @property
    def atomic_count(self) -> int:
        """Atomic operations applied to the region."""
        return self.c_atomics.value

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"MemoryRegion(size={self.size}, "
            f"base_address={self.base_address:#x}, rkey={self.rkey:#x})"
        )

    # ------------------------------------------------------------------
    # Address translation and validation
    # ------------------------------------------------------------------

    def contains(self, address: int, length: int) -> bool:
        """Whether ``[address, address + length)`` lies inside the region."""
        return (
            length >= 0
            and address >= self.base_address
            and address + length <= self.base_address + self.size
        )

    def _offset(self, address: int, length: int, rkey: Optional[int]) -> int:
        if rkey is not None and rkey != self.rkey:
            raise RegionAccessError(
                f"rkey {rkey:#x} does not match region rkey {self.rkey:#x}"
            )
        if not self.contains(address, length):
            raise RegionAccessError(
                f"access [{address:#x}, +{length}) outside region "
                f"[{self.base_address:#x}, +{self.size})"
            )
        return address - self.base_address

    # ------------------------------------------------------------------
    # DMA operations (performed by the NIC model)
    # ------------------------------------------------------------------

    def dma_write(self, address: int, payload: bytes, rkey: Optional[int] = None) -> None:
        """Write ``payload`` at virtual ``address`` (RDMA WRITE semantics)."""
        offset = self._offset(address, len(payload), rkey)
        end = offset + len(payload)
        if self._track_overwrites and any(self._buffer[offset:end]):
            self.c_slot_overwrites.inc()
        self._buffer[offset:end] = payload
        self.c_writes.inc()
        self.c_bytes_written.inc(len(payload))

    def dma_read(self, address: int, length: int, rkey: Optional[int] = None) -> bytes:
        """Read ``length`` bytes at virtual ``address`` (RDMA READ semantics)."""
        offset = self._offset(address, length, rkey)
        return bytes(self._buffer[offset : offset + length])

    def dma_fetch_add(
        self, address: int, addend: int, rkey: Optional[int] = None
    ) -> int:
        """64-bit atomic fetch-and-add; returns the *original* value.

        RDMA atomics operate on 8-byte, naturally aligned words in network
        byte order, wrapping modulo 2**64.
        """
        offset = self._offset(address, 8, rkey)
        if address % 8 != 0:
            raise RegionAccessError(f"atomic address {address:#x} not 8-byte aligned")
        original = int.from_bytes(self._buffer[offset : offset + 8], "big")
        updated = (original + addend) & 0xFFFFFFFFFFFFFFFF
        self._buffer[offset : offset + 8] = updated.to_bytes(8, "big")
        self.c_atomics.inc()
        return original

    def dma_fetch_add_many(
        self,
        addresses: np.ndarray,
        addends: np.ndarray,
        rkey: Optional[int] = None,
    ) -> int:
        """Batched 64-bit atomic fetch-and-adds in one columnar pass.

        ``addresses`` are virtual addresses (like :meth:`dma_fetch_add`)
        and ``addends`` the matching add operands; both are interpreted as
        ``uint64``.  The memory image and atomic counter are identical to
        calling :meth:`dma_fetch_add` per element in order -- adds commute,
        duplicate addresses accumulate, and sums wrap modulo 2**64.  The
        whole batch is validated before any cell is touched (the NIC's
        vectorised ingest pre-filters, so a raise here means a caller bug).
        Returns the number of atomics applied.
        """
        addresses = np.asarray(addresses, dtype=np.uint64)
        addends = np.asarray(addends, dtype=np.uint64)
        count = len(addresses)
        if count == 0:
            return 0
        if rkey is not None and rkey != self.rkey:
            raise RegionAccessError(
                f"rkey {rkey:#x} does not match region rkey {self.rkey:#x}"
            )
        offsets = addresses.astype(np.int64) - self.base_address
        bad = (offsets < 0) | (offsets + 8 > self.size) | (offsets % 8 != 0)
        if bool(bad.any()):
            address = int(addresses[int(np.argmax(bad))])
            raise RegionAccessError(
                f"atomic access at {address:#x} outside region or unaligned"
            )
        unique, inverse = np.unique(offsets, return_inverse=True)
        sums = np.zeros(len(unique), dtype=np.uint64)
        np.add.at(sums, inverse, addends)
        buffer = np.frombuffer(self._buffer, dtype=np.uint8)
        windows = unique[:, None] + np.arange(8)
        cells = np.ascontiguousarray(buffer[windows]).view(">u8").ravel()
        with np.errstate(over="ignore"):
            updated = cells.astype(np.uint64) + sums
        buffer[windows] = updated.astype(">u8").view(np.uint8).reshape(-1, 8)
        self.c_atomics.inc(count)
        return count

    def dma_compare_swap(
        self,
        address: int,
        compare: int,
        swap: int,
        rkey: Optional[int] = None,
    ) -> int:
        """64-bit atomic compare-and-swap; returns the *original* value.

        The swap value is stored only if the original equals ``compare``.
        """
        offset = self._offset(address, 8, rkey)
        if address % 8 != 0:
            raise RegionAccessError(f"atomic address {address:#x} not 8-byte aligned")
        original = int.from_bytes(self._buffer[offset : offset + 8], "big")
        if original == compare:
            self._buffer[offset : offset + 8] = (
                swap & 0xFFFFFFFFFFFFFFFF
            ).to_bytes(8, "big")
        self.c_atomics.inc()
        return original

    # ------------------------------------------------------------------
    # Local (collector-side) access for queries and snapshots
    # ------------------------------------------------------------------

    def read_offset(self, offset: int, length: int) -> bytes:
        """Local read by offset; used by the collector's own query engine."""
        if offset < 0 or offset + length > self.size:
            raise RegionAccessError(
                f"local read [{offset}, +{length}) outside region of size {self.size}"
            )
        return bytes(self._buffer[offset : offset + length])

    def write_offset(self, offset: int, payload: bytes) -> None:
        """Local write by offset; used by tests and epoch restores."""
        if offset < 0 or offset + len(payload) > self.size:
            raise RegionAccessError(
                f"local write [{offset}, +{len(payload)}) outside region "
                f"of size {self.size}"
            )
        end = offset + len(payload)
        if self._track_overwrites and any(self._buffer[offset:end]):
            self.c_slot_overwrites.inc()
        self._buffer[offset:end] = payload
        self.c_writes.inc()
        self.c_bytes_written.inc(len(payload))

    def write_offset_many(self, items) -> int:
        """Batched local writes: ``(offset, payload)`` pairs in one call.

        The multi-slot fast path behind :meth:`Collector.write_slots
        <repro.collector.collector.Collector.write_slots>`: bounds are
        still validated per item (a bad item raises before it is applied),
        but buffer and size lookups are hoisted out of the loop.  Returns
        the number of writes applied.
        """
        buffer = self._buffer
        size = self.size
        track = self._track_overwrites
        count = 0
        overwrites = 0
        written = 0
        for offset, payload in items:
            end = offset + len(payload)
            if offset < 0 or end > size:
                raise RegionAccessError(
                    f"local write [{offset}, +{len(payload)}) outside region "
                    f"of size {size}"
                )
            if track and any(buffer[offset:end]):
                overwrites += 1
            buffer[offset:end] = payload
            written += len(payload)
            count += 1
        self.c_writes.inc(count)
        self.c_bytes_written.inc(written)
        if overwrites:
            self.c_slot_overwrites.inc(overwrites)
        return count

    def write_offset_columnar(
        self, offsets: np.ndarray, payloads: np.ndarray
    ) -> int:
        """Columnar batched writes: all payloads share one width.

        ``offsets`` is an integer array and ``payloads`` a matching
        ``uint8[count, width]`` matrix; row ``i`` lands at ``offsets[i]``.
        Results (memory image, write/overwrite counters) are identical to
        calling :meth:`write_offset` per row in order, provided target
        ranges are pairwise disjoint-or-identical -- true by construction
        for slot-aligned telemetry writes, which is the only caller.
        Bounds are validated for the whole batch before any byte lands.
        Returns the number of writes applied.
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        count = len(offsets)
        if count == 0:
            return 0
        width = payloads.shape[1]
        if ((offsets < 0) | (offsets + width > self.size)).any():
            bad = int(
                offsets[
                    np.argmax((offsets < 0) | (offsets + width > self.size))
                ]
            )
            raise RegionAccessError(
                f"local write [{bad}, +{width}) outside region "
                f"of size {self.size}"
            )
        buffer = np.frombuffer(self._buffer, dtype=np.uint8)
        # Group rows by offset, stable, so "previous write to this slot"
        # is well defined for both overwrite accounting and last-wins.
        order = np.argsort(offsets, kind="stable")
        sorted_offsets = offsets[order]
        is_first = np.empty(count, dtype=bool)
        is_first[0] = True
        is_first[1:] = sorted_offsets[1:] != sorted_offsets[:-1]
        if self._track_overwrites:
            # First write per slot overwrites iff the slot was live before
            # the batch; each repeat overwrites iff the preceding write to
            # the same slot carried non-zero bytes.
            first_offsets = sorted_offsets[is_first]
            windows = first_offsets[:, None] + np.arange(width)
            overwrites = int(buffer[windows].any(axis=1).sum())
            repeat_positions = np.flatnonzero(~is_first)
            if len(repeat_positions):
                previous_rows = order[repeat_positions - 1]
                overwrites += int(payloads[previous_rows].any(axis=1).sum())
            if overwrites:
                self.c_slot_overwrites.inc(overwrites)
        # Last-wins scatter: numpy fancy assignment with duplicate indexes
        # is unordered, so only the final write per slot is applied.
        is_last = np.empty(count, dtype=bool)
        is_last[-1] = True
        is_last[:-1] = sorted_offsets[1:] != sorted_offsets[:-1]
        final_rows = order[is_last]
        buffer[offsets[final_rows][:, None] + np.arange(width)] = payloads[
            final_rows
        ]
        self.c_writes.inc(count)
        self.c_bytes_written.inc(count * width)
        return count

    def snapshot(self) -> bytes:
        """An immutable copy of the whole region (epoch persistence, tests)."""
        return bytes(self._buffer)

    def restore(self, image: bytes) -> None:
        """Overwrite the region with a previous :meth:`snapshot`."""
        if len(image) != self.size:
            raise ValueError(
                f"snapshot length {len(image)} does not match region size {self.size}"
            )
        self._buffer[:] = image

    def clear(self) -> None:
        """Zero the region (a fresh epoch)."""
        self._buffer[:] = bytes(self.size)
