"""Slot layout: how one telemetry record is laid out in collector memory.

DART organises the registered region as a flat array of fixed-size slots.
Each slot stores the ``b``-bit key checksum followed by the telemetry value
(paper section 3.1); the key itself is *not* stored, which is what makes the
probabilistic analysis of section 4 necessary.

Figure 4's configuration -- "160-bit values with 32-bit checksums" -- is a
24-byte slot; with N=2 redundancy plus headroom that is where the paper's
"300 bytes per flow" headline budget comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class SlotLayout:
    """Geometry of a slot: checksum width and value size.

    Parameters
    ----------
    checksum_bits:
        Width ``b`` of the key checksum (paper default: 32).
    value_bytes:
        Size of the telemetry value (e.g. 20 bytes for 5 hops x 32-bit
        switch IDs in INT path tracing).
    """

    checksum_bits: int = 32
    value_bytes: int = 20

    def __post_init__(self) -> None:
        if not 1 <= self.checksum_bits <= 64:
            raise ValueError(
                f"checksum_bits must be in [1, 64], got {self.checksum_bits}"
            )
        if self.value_bytes <= 0:
            raise ValueError(f"value_bytes must be positive, got {self.value_bytes}")

    @property
    def checksum_bytes(self) -> int:
        """Bytes the checksum occupies in a slot."""
        return (self.checksum_bits + 7) // 8

    @property
    def slot_bytes(self) -> int:
        """Total slot size: checksum then value, unpadded."""
        return self.checksum_bytes + self.value_bytes

    def slots_in(self, memory_bytes: int) -> int:
        """How many slots fit in ``memory_bytes`` of collector memory."""
        if memory_bytes < self.slot_bytes:
            return 0
        return memory_bytes // self.slot_bytes


class SlotCodec:
    """Encode and decode slots for a given :class:`SlotLayout`."""

    def __init__(self, layout: SlotLayout) -> None:
        self.layout = layout
        self._checksum_mask = (1 << layout.checksum_bits) - 1

    def __repr__(self) -> str:
        return f"SlotCodec({self.layout!r})"

    def encode(self, checksum: int, value: bytes) -> bytes:
        """Pack a checksum and value into slot bytes.

        The value is right-padded with zeros if shorter than the layout's
        value size; longer values are rejected (the switch pipeline truncates
        reports before this point, so an oversize value is a logic error).
        """
        layout = self.layout
        if checksum < 0 or checksum > self._checksum_mask:
            raise ValueError(
                f"checksum {checksum:#x} does not fit in {layout.checksum_bits} bits"
            )
        if len(value) > layout.value_bytes:
            raise ValueError(
                f"value of {len(value)} bytes exceeds layout value size "
                f"{layout.value_bytes}"
            )
        padded = value.ljust(layout.value_bytes, b"\x00")
        return checksum.to_bytes(layout.checksum_bytes, "big") + padded

    def decode(self, slot: bytes) -> Tuple[int, bytes]:
        """Unpack slot bytes into ``(checksum, value)``."""
        layout = self.layout
        if len(slot) != layout.slot_bytes:
            raise ValueError(
                f"slot of {len(slot)} bytes does not match layout size "
                f"{layout.slot_bytes}"
            )
        checksum = int.from_bytes(slot[: layout.checksum_bytes], "big")
        value = slot[layout.checksum_bytes :]
        return checksum & self._checksum_mask, value

    def slot_address(self, base_address: int, slot_index: int) -> int:
        """Virtual address of slot ``slot_index`` in a region at ``base_address``."""
        if slot_index < 0:
            raise ValueError("slot index must be non-negative")
        return base_address + slot_index * self.layout.slot_bytes
