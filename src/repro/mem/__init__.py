"""Collector memory substrate.

A DART collector registers a large contiguous memory region with its RDMA
NIC; switches write telemetry slots into it at hashed offsets and the query
engine reads them back.  This package models that region byte-exactly:

- :mod:`repro.mem.region` -- a registered memory region with bounds-checked
  DMA reads/writes and remote-key protection, plus the atomic operations the
  RDMA verbs layer needs (64-bit fetch-add and compare-and-swap).
- :mod:`repro.mem.slots` -- the slot layout codec: each slot stores a b-bit
  key checksum followed by the telemetry value.
"""

from repro.mem.region import MemoryRegion, RegionAccessError
from repro.mem.slots import SlotCodec, SlotLayout

__all__ = ["MemoryRegion", "RegionAccessError", "SlotCodec", "SlotLayout"]
