"""Command-line interface: ``python -m repro <command>``.

Operator-facing entry points over the library:

- ``simulate`` -- run the slot-level simulator at a given load/config and
  print success/empty/error rates next to the closed-form prediction;
- ``plan`` -- size a deployment: memory per flow for a target success rate;
- ``theory`` -- tabulate the section-4 closed forms over load/N grids;
- ``trace`` -- run fat-tree INT path tracing end to end and evaluate it;
- ``experiments`` -- regenerate every paper exhibit (see
  :mod:`repro.experiments.__main__`);
- ``obs`` -- run an instrumented packet-level pipeline and inspect it:
  ``snapshot`` (one health dashboard / exposition, ``--node`` filters to
  one host), ``watch`` (per-tick dashboard re-renders with sparkline
  trends), ``alerts`` (the SLO engine incl. paper-model conformance
  rules), ``profile`` (wall-clock stage profile, optionally exported as
  a Chrome ``trace_event`` file), ``fleet`` (per-node fleet dashboard
  plus the self-telemetry exporter's one-sided read-back) and ``bundle``
  (dump a postmortem debug bundle: metrics, journal tail, alert states);
- ``control`` -- failover demo: run the packet-level pipeline with a
  standby collector, crash one collector mid-run and watch the fleet
  controller detect the failure, re-provision every switch and converge;
- ``primitives`` -- demo the full DTA primitive set (Append rings,
  Key-Increment counters, Sketch-Merge) over a chosen fabric flavour and
  print the cross-layer counter reconciliation;
- ``query`` -- run one declarative query (filter / aggregate / top-k over
  keys, counters, sketch estimates or append rings) against a populated
  demo fleet through the :mod:`repro.query` front end; ``--explain``
  prints the shard fan-out plan instead of executing it.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro.core import theory
from repro.core.policies import ReturnPolicy
from repro.core.simulator import SimulationSpec, simulate, simulate_cas_strategy
from repro.experiments.headline import memory_for_target_success
from repro.experiments.reporting import format_table


def _parse_floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part]


def _parse_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _cmd_simulate(args: argparse.Namespace) -> int:
    spec = SimulationSpec(
        num_keys=max(1, int(args.load * args.slots)),
        num_slots=args.slots,
        redundancy=args.redundancy,
        checksum_bits=args.checksum_bits,
        policy=ReturnPolicy(args.policy),
        seed=args.seed,
    )
    result = simulate_cas_strategy(spec) if args.cas else simulate(spec)
    rows = [
        {
            "strategy": "write+cas" if args.cas else f"{args.redundancy}x write",
            "load_factor": spec.load_factor,
            "keys": spec.num_keys,
            "success_rate": result.success_rate,
            "empty_rate": result.empty_rate,
            "error_rate": result.error_rate,
            "theory_success": float(
                theory.average_queryability(spec.load_factor, spec.redundancy)
            ),
        }
    ]
    print(format_table(rows))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    rows = []
    for n in args.redundancy:
        sizing = memory_for_target_success(args.target, redundancy=n)
        row = dict(sizing)
        if args.flows:
            row["total_gb"] = sizing["bytes_per_flow_needed"] * args.flows / 1e9
        rows.append(row)
    print(format_table(rows))
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    rows = []
    for alpha in args.loads:
        row = {"load_factor": alpha}
        for n in args.redundancy:
            row[f"avg_n{n}"] = float(theory.average_queryability(alpha, n))
        row["optimal_n"] = theory.optimal_redundancy(alpha, args.redundancy)
        rows.append(row)
    print(format_table(rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.config import DartConfig
    from repro.network.flows import FlowGenerator
    from repro.network.simulation import IntSimulation, LossModel
    from repro.network.topology import FatTreeTopology

    tree = FatTreeTopology(k=args.k)
    config = DartConfig.for_memory_budget(
        args.bytes_per_flow * args.flows,
        redundancy=args.redundancy,
        value_bytes=20,
    )
    sim = IntSimulation(tree, config, loss=LossModel(args.loss, seed=args.seed))
    flows = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=args.seed)
    sim.trace_flows(flows.uniform(args.flows))
    evaluation = sim.evaluate()
    print(
        format_table(
            [
                {
                    "fat_tree_k": args.k,
                    "flows": evaluation.total,
                    "bytes_per_flow": args.bytes_per_flow,
                    "report_loss": args.loss,
                    "success_rate": evaluation.success_rate,
                    "empty_rate": evaluation.empty / evaluation.total,
                    "error_rate": evaluation.error_rate,
                }
            ]
        )
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as experiments_main

    return experiments_main(["--full"] if args.full else [])


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.core.config import DartConfig
    from repro.collector.store import DartStore
    from repro.fabric.fabric import BufferedFabric
    from repro.fabric.impaired import ImpairedFabric

    mode = args.mode
    # A fresh registry/tracer/profiler/journal so the run covers exactly
    # this pipeline; the previous defaults are restored before returning.
    registry = obs.MetricsRegistry(enabled=True)
    tracer = obs.Tracer(
        sample_rate=args.sample_rate, granularity=args.granularity
    )
    journal = obs.EventJournal()
    profiler = (
        obs.StageProfiler(registry) if mode == "profile" else obs.NULL_PROFILER
    )
    previous_registry = obs.set_registry(registry)
    previous_tracer = obs.set_tracer(tracer)
    previous_profiler = obs.set_profiler(profiler)
    previous_journal = obs.set_journal(journal)
    try:
        config = DartConfig(
            slots_per_collector=args.slots,
            redundancy=args.redundancy,
            seed=args.seed,
        )
        fabric = ImpairedFabric(
            BufferedFabric(flush_threshold=args.flush_threshold),
            loss=args.loss,
            duplication=args.duplication,
            reordering=args.reordering,
            seed=args.seed,
        )
        store = DartStore(config, packet_level=True, fabric=fabric)
        scraper = obs.MetricsScraper(registry, persist_path=args.persist)
        engine = obs.SloEngine(scraper, registry)
        engine.add_rules(obs.default_rules())
        engine.add_rules(obs.conformance_rules(config))
        exporter = None
        if mode == "fleet":
            # Dogfood: export this run's own counters/journal through the
            # DTA datapath and read them back one-sided at the end.
            exporter = obs.SelfTelemetryExporter(registry, journal).attach(
                scraper
            )
        bundler = None
        if mode == "bundle":
            bundler = obs.AutoBundler(
                args.bundle_dir, registry=registry, journal=journal,
                engine=engine,
            ).install(engine)

        def trends() -> str:
            """Sparkline per-tick deltas of the headline families."""
            lines = ["== trends (per-tick deltas) =="]
            for name in (
                "fabric_frames_delivered",
                "nic_frames_received",
                "mem_writes",
                "queries_answered",
            ):
                points = scraper.total_series(name)
                if len(points) < 2:
                    continue
                values = [value for _tick, value in points]
                steps = [
                    max(0.0, after - before)
                    for before, after in zip(values, values[1:])
                ]
                lines.append(
                    f"{name:<28} {obs.sparkline(steps)}  last={steps[-1]:g}"
                )
            return "\n".join(lines)

        keys = [("10.0.0.1", f"10.0.1.{i % 250}", 5000 + i, 80, 6)
                for i in range(args.keys)]
        rounds = max(1, args.rounds)
        for tick in range(1, rounds + 1):
            lo = (tick - 1) * len(keys) // rounds
            hi = tick * len(keys) // rounds
            chunk = keys[lo:hi]
            store.put_many(
                (key, f"v{lo + i}".encode()) for i, key in enumerate(chunk)
            )
            fabric.flush()
            for key in chunk:
                store.get(key)
                store.get(key, policy=ReturnPolicy.FIRST_MATCH)
            journal.advance(tick)
            scraper.scrape(tick)
            engine.evaluate(tick)
            if mode == "watch":
                print(f"--- tick {tick}/{rounds} ---")
                print(obs.render_dashboard(registry))
                print()
                print(trends())
                print()

        if mode == "alerts":
            print(engine.render())
        elif mode == "profile":
            print(profiler.render())
            if args.chrome_trace:
                profiler.write_chrome_trace(args.chrome_trace)
                print(f"chrome trace written to {args.chrome_trace}")
        elif mode == "fleet":
            exporter.flush(tick=rounds)
            snapshot = registry.snapshot()
            if args.node:
                snapshot = snapshot.filter_labels(node=args.node)
            print(obs.render_fleet(snapshot))
            print()
            print("== self-telemetry (read back one-sided) ==")
            rows = []
            for name in (
                "nic_frames_received",
                "mem_writes",
                "queries_total",
            ):
                pair = exporter.reconcile([name])[name]
                remote = (
                    "lost" if pair["remote"] is None else pair["remote"]
                )
                rows.append(
                    {"family": name, "local": pair["local"], "remote": remote}
                )
            print(format_table(rows))
            events = exporter.follow_events()
            print(
                f"journal: {len(events)} event(s) tailed from the "
                f"telemetry ring"
            )
        elif mode == "bundle":
            path = bundler.dump(reason="cli", tick=rounds)
            auto = [p for p in bundler.paths[:-1]]
            if auto:
                print(f"{len(auto)} alert-triggered bundle(s):")
                for p in auto:
                    print(f"  {p}")
            print(f"bundle written to {path}")
            print()
            print("== journal tail ==")
            print(journal.render())
        elif mode == "trace":
            analyzer = obs.TraceAnalyzer()
            records = tracer.kept()
            source = "tail-retained"
            if not records:
                records = tracer.traces()
                source = "live"
            records = sorted(
                records, key=lambda r: r.duration, reverse=True
            )
            limit = args.trace or 3
            shown = min(limit, len(records))
            print(
                f"== {shown} of {len(records)} {source} traces "
                f"(slowest first; sample_rate={tracer.sample_rate}, "
                f"{tracer.traces_sampled_out} sampled out) =="
            )
            for record in records[:limit]:
                print()
                print(analyzer.render_waterfall(record, node=args.node))
                if args.critical_path:
                    print(analyzer.render_critical_path(record))
        elif mode == "snapshot":
            snapshot = registry.snapshot()
            if args.node:
                snapshot = snapshot.filter_labels(node=args.node)
            if args.format == "prom":
                print(snapshot.to_prometheus(), end="")
            elif args.format == "json":
                print(snapshot.to_json(indent=2))
            elif args.node:
                print(obs.render_dashboard(registry, node=args.node))
            else:
                print(obs.render_dashboard(registry))
                nodes = snapshot.label_values(obs.NODE_LABEL)
                if nodes:
                    print()
                    print(obs.render_fleet(snapshot))
        if args.trace and mode != "trace":
            print()
            print(f"== first {args.trace} report traces ==")
            for record in tracer.traces(kind="switch_report")[: args.trace]:
                print(record.render())
        return 0
    finally:
        obs.set_registry(previous_registry)
        obs.set_tracer(previous_tracer)
        obs.set_profiler(previous_profiler)
        obs.set_journal(previous_journal)


def _cmd_control(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.core import theory
    from repro.core.config import DartConfig
    from repro.network.flows import FlowGenerator
    from repro.network.packet_sim import PacketLevelIntNetwork
    from repro.network.simulation import encode_path
    from repro.network.topology import FatTreeTopology

    # A fresh registry so the printed controller metrics cover exactly
    # this run; the previous default is restored before returning.
    registry = obs.MetricsRegistry(enabled=True)
    previous_registry = obs.set_registry(registry)
    try:
        tree = FatTreeTopology(k=args.k)
        config = DartConfig(
            slots_per_collector=args.slots,
            redundancy=args.redundancy,
            num_collectors=args.collectors,
            seed=args.seed,
        )
        net = PacketLevelIntNetwork(
            tree, config, num_standbys=args.standbys
        )
        controller = net.enable_control(
            fail_after=args.fail_after, tick_interval=args.tick_interval
        )
        flows = FlowGenerator(
            tree.num_hosts, host_ip=tree.host_ip, seed=args.seed
        ).uniform(args.flows)
        kill_at = args.flows // 2
        victim = args.victim % config.num_collectors
        print(
            f"packet-level run: {args.flows} flows, "
            f"{config.num_collectors} collectors + {args.standbys} standby, "
            f"killing node {victim} after {kill_at} packets"
        )
        printed = 0
        converged_at = None
        for index, flow in enumerate(flows):
            if index == kill_at:
                net.kill_collector(victim)
                print(f"[packet {index}] node {victim} crashed (silently)")
            net.send(flow)
            while printed < len(controller.events):
                print(f"[packet {index}] {controller.events[printed].describe()}")
                printed += 1
                if converged_at is None:
                    converged_at = index
        if not controller.events:
            print("no failover occurred (victim never confirmed dead)")
            return 1
        # Queryability for flows traced entirely after convergence.
        answered = 0
        checked = 0
        for flow in flows[converged_at + 1:]:
            path = tree.path(flow.src_host, flow.dst_host, flow.five_tuple)
            result = net.query_path(flow)
            checked += 1
            if result.value is not None and result.value == encode_path(path):
                answered += 1
        load = (
            args.flows * config.redundancy
            / (config.num_collectors * config.slots_per_collector)
        )
        print()
        print(
            format_table(
                [
                    {
                        "packets": net.packets_sent,
                        "failovers": int(
                            registry.total("controller_failovers_total")
                        ),
                        "post_failover_queries": checked,
                        "post_failover_answered": answered,
                        "success_rate": answered / max(1, checked),
                        "theory_success": float(
                            theory.average_queryability(
                                load, config.redundancy
                            )
                        ),
                    }
                ]
            )
        )
        print()
        print("== membership ==")
        for member in controller.membership.members:
            role = "-" if member.role is None else str(member.role)
            print(
                f"node {member.node_id}: {member.state.value:<8} role={role}"
            )
        print()
        print("== controller metrics ==")
        for name in (
            "controller_failovers_total",
            "controller_probes_sent",
            "controller_probes_failed",
        ):
            print(f"{name:<32} {registry.total(name):g}")
        return 0
    finally:
        obs.set_registry(previous_registry)


def _cmd_primitives(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.collector.counters import CounterStore
    from repro.fabric.fabric import BufferedFabric, InlineFabric
    from repro.fabric.impaired import ImpairedFabric
    from repro.obs.health import PipelineHealth
    from repro.primitives import AppendStore, SwitchSketch
    from repro.primitives.sketch import SketchStore
    from repro.primitives import theory as primitive_theory

    def make_fabric():
        """One transport of the requested flavour per primitive store."""
        if args.fabric == "inline":
            return InlineFabric()
        if args.fabric == "buffered":
            return BufferedFabric(flush_threshold=64)
        return ImpairedFabric(InlineFabric(), loss=args.loss, seed=args.seed)

    # A fresh registry so the reconciliation covers exactly this run; the
    # previous default is restored before returning.
    registry = obs.MetricsRegistry(enabled=True)
    previous_registry = obs.set_registry(registry)
    try:
        rows = []

        # Append: round-robin writers into one ring, then recover.
        ring = AppendStore(
            capacity=args.capacity, record_bytes=16, fabric=make_fabric()
        )
        writers = [ring.register_writer(i) for i in range(args.writers)]
        for index in range(args.events):
            writer = writers[index % len(writers)]
            writer.append(b"ev-%d" % index)
        snapshot = ring.recover()
        overwrites = sum(w.c_overwrites.value for w in writers)
        predicted_loss = primitive_theory.ring_loss_probability(
            snapshot.tail, args.capacity, args.loss if args.fabric == "impaired" else 0.0
        )
        rows.append(
            {
                "primitive": "append",
                "ops": args.events,
                "frames": sum(w.c_appends.value for w in writers)
                + sum(w.c_reserve_retries.value for w in writers),
                "result": f"recovered {len(snapshot)}/{snapshot.tail}",
                "detail": f"overwrites={overwrites} "
                f"predicted_unreadable={predicted_loss:.3f}",
            }
        )

        # Key-Increment: a skewed key stream through the columnar path.
        counters = CounterStore(
            cells_per_row=args.cells, rows=args.rows, fabric=make_fabric()
        )
        truth = {}
        items = []
        for index in range(args.events):
            key = ("flow", index % max(1, args.events // 8))
            items.append((key, 1))
            truth[key] = truth.get(key, 0) + 1
        frames = counters.add_many(items)
        epsilon, delta = counters.error_bound()
        worst = max(
            counters.estimate(key) - exact for key, exact in truth.items()
        )
        rows.append(
            {
                "primitive": "key_increment",
                "ops": len(truth),
                "frames": frames,
                "result": f"worst_overestimate={worst}",
                "detail": f"bound eps*total={epsilon * counters.total_count():.1f} "
                f"delta={delta:.3f}",
            }
        )

        # Sketch-Merge: two switch sketches folded into one bank.
        bank = SketchStore(
            cells_per_row=args.cells, rows=args.rows, fabric=make_fabric()
        )
        sketches = [
            SwitchSketch(cells_per_row=args.cells, rows=args.rows)
            for _switch in range(2)
        ]
        for index in range(args.events):
            sketches[index % 2].update(("flow", index % 16))
        merged_frames = sum(bank.merge_sketch(sketch) for sketch in sketches)
        rows.append(
            {
                "primitive": "sketch_merge",
                "ops": 2,
                "frames": merged_frames,
                "result": f"bank_total={bank.total_count()}",
                "detail": f"nic_atomics={bank.total_adds()}",
            }
        )

        print(format_table(rows))
        print()
        health = PipelineHealth.from_registry(registry)
        print("== reconciliation ==")
        print(f"fabric frames offered   {health.frames_offered}")
        print(f"nic frames received     {health.nic_frames_received}")
        print(f"nic atomics executed    {health.nic_atomics_executed}")
        print(f"memory atomics          {health.mem_atomics}")
        print(f"atomic bypass delta     {health.atomic_bypass_delta}")
        return 0
    finally:
        obs.set_registry(previous_registry)


def _query_demo_fleet(args: argparse.Namespace):
    """Build and populate the demo fleet ``repro query`` runs against."""
    from repro.query import QueryFleet, fabric_flavour

    fleet = QueryFleet(
        fabric_factory=fabric_flavour(
            args.fabric, loss=args.loss, seed=args.seed
        ),
        num_standbys=args.standbys,
    )
    keys = [f"flow-{index}" for index in range(args.keys)]
    fleet.put_many(
        (key, b"v%d" % index) for index, key in enumerate(keys)
    )
    fleet.count_many((key, index + 1) for index, key in enumerate(keys))
    fleet.sketch_many((key, 2 * index + 1) for index, key in enumerate(keys))
    for key in keys[: min(8, len(keys))]:
        fleet.append(key, key.encode())
    return fleet


def _cmd_query(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.query import QueryService

    registry = obs.MetricsRegistry(enabled=True)
    previous_registry = obs.set_registry(registry)
    try:
        fleet = _query_demo_fleet(args)
        service = QueryService(fleet)
        if args.explain:
            print(service.explain(args.query))
            return 0
        result = service.serve(args.query)
        answer = result.answer
        if args.json:
            rows = [
                {
                    key: (
                        value.decode("latin-1").rstrip("\x00")
                        if isinstance(value, bytes)
                        else value
                    )
                    for key, value in row.items()
                }
                for row in answer.rows
            ]
            print(
                json.dumps(
                    {
                        "query": answer.query.canonical(),
                        "epoch": answer.epoch,
                        "value": answer.value,
                        "rows": rows,
                        "shards_total": answer.shards_total,
                        "shards_failed": answer.shards_failed,
                        "complete": answer.complete,
                    },
                    indent=2,
                )
            )
            return 0
        print(f"query:  {answer.query.canonical()}")
        print(
            f"epoch:  {answer.epoch}  shards: {answer.shards_total} "
            f"({answer.shards_failed} failed)"
        )
        if answer.value is not None:
            print(f"value:  {answer.value:g}")
        if answer.rows:
            print(
                format_table(
                    [
                        {
                            key: (
                                value.decode("latin-1").rstrip("\x00")
                                if isinstance(value, bytes)
                                else value
                            )
                            for key, value in row.items()
                        }
                        for row in answer.rows
                    ]
                )
            )
        elif answer.value is None:
            print("(no rows)")
        return 0
    finally:
        obs.set_registry(previous_registry)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DART (HotNets 2021) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate_p = sub.add_parser("simulate", help="run the slot-level simulator")
    simulate_p.add_argument("--load", type=float, default=0.8)
    simulate_p.add_argument("--slots", type=int, default=1 << 18)
    simulate_p.add_argument("--redundancy", type=int, default=2)
    simulate_p.add_argument("--checksum-bits", type=int, default=32)
    simulate_p.add_argument(
        "--policy",
        choices=[policy.value for policy in ReturnPolicy],
        default=ReturnPolicy.PLURALITY.value,
    )
    simulate_p.add_argument("--cas", action="store_true", help="WRITE+CAS strategy")
    simulate_p.add_argument("--seed", type=int, default=0)
    simulate_p.set_defaults(func=_cmd_simulate)

    plan_p = sub.add_parser("plan", help="memory sizing for a success target")
    plan_p.add_argument("--target", type=float, default=0.999)
    plan_p.add_argument("--redundancy", type=_parse_ints, default=[2, 4])
    plan_p.add_argument("--flows", type=int, default=0)
    plan_p.set_defaults(func=_cmd_plan)

    theory_p = sub.add_parser("theory", help="tabulate section-4 closed forms")
    theory_p.add_argument("--loads", type=_parse_floats, default=[0.1, 0.5, 1.0, 2.0])
    theory_p.add_argument("--redundancy", type=_parse_ints, default=[1, 2, 4])
    theory_p.set_defaults(func=_cmd_theory)

    trace_p = sub.add_parser("trace", help="fat-tree INT path tracing, end to end")
    trace_p.add_argument("--k", type=int, default=8)
    trace_p.add_argument("--flows", type=int, default=10_000)
    trace_p.add_argument("--bytes-per-flow", type=int, default=300)
    trace_p.add_argument("--redundancy", type=int, default=2)
    trace_p.add_argument("--loss", type=float, default=0.0)
    trace_p.add_argument("--seed", type=int, default=0)
    trace_p.set_defaults(func=_cmd_trace)

    experiments_p = sub.add_parser(
        "experiments", help="regenerate every paper exhibit"
    )
    experiments_p.add_argument("--full", action="store_true")
    experiments_p.set_defaults(func=_cmd_experiments)

    obs_p = sub.add_parser(
        "obs",
        help="run an instrumented packet-level pipeline, print its health",
    )
    obs_p.add_argument(
        "mode", nargs="?",
        choices=[
            "snapshot", "watch", "alerts", "profile", "fleet", "bundle",
            "trace",
        ],
        default="snapshot",
        help="snapshot: one dashboard (+ per-node fleet table); watch: "
             "per-tick re-renders with sparklines; alerts: the "
             "SLO/conformance engine; profile: wall-clock stage profile; "
             "fleet: per-node fleet dashboard with self-telemetry "
             "read-back; bundle: dump a postmortem debug bundle; trace: "
             "span-tree waterfalls of the slowest kept traces",
    )
    obs_p.add_argument(
        "--node", default=None, metavar="NODE",
        help="restrict output to one node's samples, e.g. collector-0 "
             "or switch-0",
    )
    obs_p.add_argument(
        "--bundle-dir", default="bundles", metavar="DIR",
        help="bundle mode: directory postmortem bundles are written to",
    )
    obs_p.add_argument("--keys", type=int, default=2000)
    obs_p.add_argument("--slots", type=int, default=4096)
    obs_p.add_argument("--redundancy", type=int, default=2)
    obs_p.add_argument("--loss", type=float, default=0.02)
    obs_p.add_argument("--duplication", type=float, default=0.01)
    obs_p.add_argument("--reordering", type=float, default=0.01)
    obs_p.add_argument("--flush-threshold", type=int, default=64)
    obs_p.add_argument("--seed", type=int, default=0)
    obs_p.add_argument(
        "--format", choices=["table", "prom", "json"], default="table"
    )
    obs_p.add_argument(
        "--trace", type=int, default=0, metavar="K",
        help="also print the first K per-report traces (in trace mode: "
             "how many waterfalls to show, default 3)",
    )
    obs_p.add_argument(
        "--critical-path", action="store_true",
        help="trace mode: also print each trace's critical-path "
             "attribution (which stage bounded end-to-end latency)",
    )
    obs_p.add_argument(
        "--sample-rate", type=float, default=1.0,
        help="head-sampling probability for new traces (deterministic "
             "hash of the trace id)",
    )
    obs_p.add_argument(
        "--granularity", choices=["report", "batch"], default="report",
        help="trace each report's frames individually, or whole "
             "columnar batches (keeps the datapath vectorised)",
    )
    obs_p.add_argument(
        "--rounds", type=int, default=4,
        help="logical scrape ticks the workload is split across",
    )
    obs_p.add_argument(
        "--chrome-trace", metavar="PATH", default=None,
        help="profile mode: write a chrome://tracing trace_event file",
    )
    obs_p.add_argument(
        "--persist", metavar="PATH", default=None,
        help="append one JSON line per scrape for cross-run trend diffing",
    )
    obs_p.set_defaults(func=_cmd_obs)

    control_p = sub.add_parser(
        "control",
        help="failover demo: kill a collector mid-run, watch the fleet "
             "controller detect it and converge",
    )
    control_p.add_argument("--k", type=int, default=4, help="fat-tree k")
    control_p.add_argument("--flows", type=int, default=2000)
    control_p.add_argument("--slots", type=int, default=4096)
    control_p.add_argument("--redundancy", type=int, default=2)
    control_p.add_argument("--collectors", type=int, default=4)
    control_p.add_argument("--standbys", type=int, default=1)
    control_p.add_argument(
        "--victim", type=int, default=0,
        help="node ID of the collector to crash",
    )
    control_p.add_argument(
        "--fail-after", type=int, default=2,
        help="consecutive missed probes confirming death",
    )
    control_p.add_argument(
        "--tick-interval", type=int, default=50,
        help="packets between controller reconciliation ticks",
    )
    control_p.add_argument("--seed", type=int, default=0)
    control_p.set_defaults(func=_cmd_control)

    primitives_p = sub.add_parser(
        "primitives",
        help="demo the DTA primitive set (Append / Key-Increment / "
        "Sketch-Merge) and reconcile its counters",
    )
    primitives_p.add_argument(
        "--fabric",
        choices=("inline", "buffered", "impaired"),
        default="inline",
        help="transport flavour every primitive runs over",
    )
    primitives_p.add_argument(
        "--loss", type=float, default=0.1,
        help="request-leg loss rate for --fabric impaired",
    )
    primitives_p.add_argument(
        "--events", type=int, default=256, help="operations per primitive"
    )
    primitives_p.add_argument(
        "--writers", type=int, default=2, help="concurrent Append writers"
    )
    primitives_p.add_argument(
        "--capacity", type=int, default=64, help="Append ring slots"
    )
    primitives_p.add_argument(
        "--cells", type=int, default=1024, help="counter/sketch cells per row"
    )
    primitives_p.add_argument(
        "--rows", type=int, default=2, help="counter/sketch rows"
    )
    primitives_p.add_argument("--seed", type=int, default=0)
    primitives_p.set_defaults(func=_cmd_primitives)

    query_p = sub.add_parser(
        "query",
        help="run one declarative query against a populated demo fleet",
    )
    query_p.add_argument(
        "query",
        help='e.g. \'select sum(est) from counters where key contains "flow"\'',
    )
    query_p.add_argument(
        "--fabric",
        choices=("inline", "buffered", "impaired"),
        default="inline",
        help="transport flavour both fleet planes run over",
    )
    query_p.add_argument(
        "--loss", type=float, default=0.05,
        help="request-leg loss rate for --fabric impaired",
    )
    query_p.add_argument(
        "--keys", type=int, default=32, help="demo keys written before serving"
    )
    query_p.add_argument(
        "--standbys", type=int, default=0, help="warm standby collectors"
    )
    query_p.add_argument(
        "--explain", action="store_true",
        help="print the shard fan-out plan instead of executing",
    )
    query_p.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    query_p.add_argument("--seed", type=int, default=0)
    query_p.set_defaults(func=_cmd_query)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
