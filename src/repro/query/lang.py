"""The declarative query language: text -> typed :class:`Query` plan input.

Sonata (PAPERS.md, arXiv 1705.01049) showed that a small declarative
surface -- filter, aggregate, top-k -- is enough to express most
operator telemetry questions, *and* that keeping it declarative is what
lets a planner push work down toward the data.  This module is that
surface for the DART reproduction, sized to the four read substrates the
fleet actually serves:

========== =================================== =======================
source     rows                                fields
========== =================================== =======================
keys       one per candidate key (DART slots)  key, value, answered
counters   one per candidate key (count-min)   key, est
sketch     one per candidate key (sketch bank) key, est
ring       one per readable Append record      index, record
========== =================================== =======================

Grammar (case-insensitive keywords; see DESIGN.md for the worked form)::

    query   := "select" target "from" source
               [ "where" pred ( "and" pred )* ]
               [ "top" INT [ "by" field ] ]
               [ "policy" NAME ]
    target  := field | agg "(" field ")" | "count" "(" "*" ")"
    agg     := "sum" | "count" | "avg" | "min" | "max"
    pred    := field op literal
    op      := "==" | "!=" | ">=" | "<=" | ">" | "<" | "contains"
    literal := NUMBER | "quoted string" | bareword

Everything parses into an immutable :class:`Query`; malformed text
raises :class:`QueryParseError` with the offending token.  The parsed
form is *typed*: fields are checked against the source, aggregates
against field numericity, so planner and service never see a query that
cannot execute.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Tuple, Union

from repro.core.policies import ReturnPolicy

#: Literal value of one predicate comparison.
LiteralValue = Union[int, float, str]


class QueryParseError(ValueError):
    """Query text that does not parse (or does not type-check)."""


class Source(Enum):
    """The read substrate a query executes against."""

    KEYS = "keys"
    COUNTERS = "counters"
    SKETCH = "sketch"
    RING = "ring"


class Aggregate(Enum):
    """How matching rows are folded into the query's answer."""

    #: No fold: project the selected field of every matching row.
    PROJECT = "project"
    SUM = "sum"
    COUNT = "count"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


#: Fields each source's rows carry.
SOURCE_FIELDS: Dict[Source, Tuple[str, ...]] = {
    Source.KEYS: ("key", "value", "answered"),
    Source.COUNTERS: ("key", "est"),
    Source.SKETCH: ("key", "est"),
    Source.RING: ("index", "record"),
}

#: Fields with a numeric reading (valid for sum/avg/min/max and top-by).
NUMERIC_FIELDS = frozenset({"est", "index", "answered"})

#: Fields whose predicates can be evaluated from the key alone -- the
#: planner prunes these *before* any wire read (push-down to the top).
KEY_ONLY_FIELDS = frozenset({"key"})

_PREDICATE_OPS = ("==", "!=", ">=", "<=", ">", "<", "contains")

_TOKEN = re.compile(
    r"""\s*(?:
        (?P<string>"[^"]*"|'[^']*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<op>==|!=|>=|<=|>|<|\(|\)|\*)
      | (?P<word>[A-Za-z_][\w.\-]*)
    )""",
    re.VERBOSE,
)


def _tokenize(text: str) -> Tuple[str, ...]:
    """Split query text into tokens; rejects unlexable characters."""
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise QueryParseError(
                f"cannot lex query at {remainder[:20]!r}"
            )
        tokens.append(match.group().strip())
        position = match.end()
    return tuple(token for token in tokens if token)


@dataclass(frozen=True)
class Predicate:
    """One ``field op literal`` filter clause.

    ``matches`` evaluates the clause against a row dict; bytes-valued
    fields (``value``, ``record``) are compared through their
    NUL-stripped latin-1 text so operators can write readable literals.
    """

    field: str
    op: str
    literal: LiteralValue

    def describe(self) -> str:
        """The clause in canonical query-text form."""
        literal = self.literal
        if isinstance(literal, str):
            literal = f'"{literal}"'
        return f"{self.field} {self.op} {literal}"

    def _coerce(self, value: object) -> object:
        """A row field value in comparable form (bytes -> text, bool -> int)."""
        if isinstance(value, bytes):
            return value.rstrip(b"\x00").decode("latin-1")
        if isinstance(value, bool):
            return int(value)
        return value

    def matches(self, row: Dict[str, object]) -> bool:
        """Whether ``row`` satisfies this clause (absent fields never do)."""
        value = self._coerce(row.get(self.field))
        if value is None:
            return False
        literal = self.literal
        if self.op == "contains":
            return str(literal) in str(value)
        if isinstance(literal, (int, float)) and not isinstance(
            value, (int, float)
        ):
            return False
        if isinstance(literal, str):
            value = str(value)
        if self.op == "==":
            return value == literal
        if self.op == "!=":
            return value != literal
        if self.op == ">=":
            return value >= literal
        if self.op == "<=":
            return value <= literal
        if self.op == ">":
            return value > literal
        return value < literal


@dataclass(frozen=True)
class Query:
    """A fully parsed, type-checked query (the planner's input).

    ``canonical()`` is the normalized text form -- the result cache keys
    on it, so two spellings of the same query share one cache entry.
    """

    source: Source
    field: str
    aggregate: Aggregate
    predicates: Tuple[Predicate, ...] = ()
    top_k: Optional[int] = None
    order_field: Optional[str] = None
    policy: Optional[ReturnPolicy] = None

    def canonical(self) -> str:
        """Normalized query text (whitespace/case-insensitive identity)."""
        if self.aggregate is Aggregate.PROJECT:
            target = self.field
        else:
            target = f"{self.aggregate.value}({self.field})"
        parts = [f"select {target} from {self.source.value}"]
        if self.predicates:
            clauses = " and ".join(p.describe() for p in self.predicates)
            parts.append(f"where {clauses}")
        if self.top_k is not None:
            parts.append(f"top {self.top_k} by {self.order_field}")
        if self.policy is not None:
            parts.append(f"policy {self.policy.value}")
        return " ".join(parts)

    @property
    def key_predicates(self) -> Tuple[Predicate, ...]:
        """Clauses decidable from the key alone (pruned before any read)."""
        return tuple(
            p for p in self.predicates if p.field in KEY_ONLY_FIELDS
        )

    @property
    def row_predicates(self) -> Tuple[Predicate, ...]:
        """Clauses needing read data (evaluated per shard, post-read)."""
        return tuple(
            p for p in self.predicates if p.field not in KEY_ONLY_FIELDS
        )


class _TokenStream:
    """Cursor over the token tuple with one-token lookahead."""

    def __init__(self, tokens: Tuple[str, ...]) -> None:
        self.tokens = tokens
        self.position = 0

    def peek(self) -> Optional[str]:
        """The next token, or None at end of input."""
        if self.position >= len(self.tokens):
            return None
        return self.tokens[self.position]

    def next(self, expected: Optional[str] = None) -> str:
        """Consume one token, optionally requiring an exact keyword."""
        token = self.peek()
        if token is None:
            raise QueryParseError(
                f"unexpected end of query (expected {expected or 'a token'})"
            )
        if expected is not None and token.lower() != expected:
            raise QueryParseError(
                f"expected {expected!r}, got {token!r}"
            )
        self.position += 1
        return token


def _parse_literal(token: str) -> LiteralValue:
    """A predicate literal from one token (number / quoted / bareword)."""
    if token and token[0] in "\"'":
        return token[1:-1]
    try:
        if re.fullmatch(r"-?\d+", token):
            return int(token)
        return float(token)
    except ValueError:
        return token


def _check_field(source: Source, field: str) -> str:
    """Validate ``field`` against the source's row shape."""
    fields = SOURCE_FIELDS[source]
    if field not in fields:
        raise QueryParseError(
            f"unknown field {field!r} for source {source.value!r} "
            f"(fields: {', '.join(fields)})"
        )
    return field


def parse_query(text: str) -> Query:
    """Parse and type-check one query string; raises :class:`QueryParseError`.

    >>> parse_query("select count(*) from keys where value contains 'v'")
    ... # doctest: +ELLIPSIS
    Query(...)
    """
    stream = _TokenStream(_tokenize(text))
    stream.next("select")

    # Target: field, agg(field) or count(*).
    head = stream.next().lower()
    aggregate = Aggregate.PROJECT
    if head in ("sum", "count", "avg", "min", "max") and stream.peek() == "(":
        aggregate = Aggregate(head)
        stream.next("(")
        field = stream.next().lower()
        stream.next(")")
    else:
        field = head
    if field == "*" and aggregate is not Aggregate.COUNT:
        raise QueryParseError("'*' is only valid inside count(*)")

    stream.next("from")
    source_token = stream.next().lower()
    try:
        source = Source(source_token)
    except ValueError:
        raise QueryParseError(
            f"unknown source {source_token!r} "
            f"(sources: {', '.join(s.value for s in Source)})"
        ) from None
    if field != "*":
        _check_field(source, field)
    if aggregate in (Aggregate.SUM, Aggregate.AVG, Aggregate.MIN, Aggregate.MAX):
        if field not in NUMERIC_FIELDS:
            raise QueryParseError(
                f"{aggregate.value}() needs a numeric field, got {field!r} "
                f"(numeric: {', '.join(sorted(NUMERIC_FIELDS))})"
            )

    predicates = []
    top_k: Optional[int] = None
    order_field: Optional[str] = None
    policy: Optional[ReturnPolicy] = None
    while stream.peek() is not None:
        clause = stream.next().lower()
        if clause == "where":
            while True:
                pred_field = _check_field(source, stream.next().lower())
                op = stream.next().lower()
                if op not in _PREDICATE_OPS:
                    raise QueryParseError(
                        f"unknown operator {op!r} "
                        f"(operators: {', '.join(_PREDICATE_OPS)})"
                    )
                literal = _parse_literal(stream.next())
                predicates.append(
                    Predicate(field=pred_field, op=op, literal=literal)
                )
                if (stream.peek() or "").lower() != "and":
                    break
                stream.next("and")
        elif clause == "top":
            count_token = stream.next()
            try:
                top_k = int(count_token)
            except ValueError:
                raise QueryParseError(
                    f"top expects an integer, got {count_token!r}"
                ) from None
            if top_k < 1:
                raise QueryParseError(f"top must be >= 1, got {top_k}")
            if (stream.peek() or "").lower() == "by":
                stream.next("by")
                order_field = _check_field(source, stream.next().lower())
            else:
                # Default order: the source's natural magnitude field.
                order_field = "est" if source in (
                    Source.COUNTERS, Source.SKETCH
                ) else "index" if source is Source.RING else "answered"
            if order_field not in NUMERIC_FIELDS:
                raise QueryParseError(
                    f"top ... by needs a numeric field, got {order_field!r}"
                )
        elif clause == "policy":
            if source is not Source.KEYS:
                raise QueryParseError(
                    "policy applies only to the keys source"
                )
            policy_token = stream.next().lower()
            try:
                policy = ReturnPolicy(policy_token)
            except ValueError:
                raise QueryParseError(
                    f"unknown policy {policy_token!r} (policies: "
                    f"{', '.join(p.value for p in ReturnPolicy)})"
                ) from None
        else:
            raise QueryParseError(f"unexpected clause {clause!r}")

    if top_k is not None and aggregate is not Aggregate.PROJECT:
        raise QueryParseError("top-k applies to projections, not aggregates")
    return Query(
        source=source,
        field=field,
        aggregate=aggregate,
        predicates=tuple(predicates),
        top_k=top_k,
        order_field=order_field,
        policy=policy,
    )
