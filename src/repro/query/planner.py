"""The query planner: typed query + epoch-current shard map -> fan-out plan.

Sonata's core lesson is *push-down*: move filtering and partial
aggregation as close to the data as possible so the merge step handles
partials, not raw rows.  This planner applies it at two levels:

1. **Key push-down.**  Predicates decidable from the key alone
   (``key == ...``, ``key contains ...``) prune the candidate set
   *before* any shard is contacted -- a fully pruned shard is not read
   at all.
2. **Shard push-down.**  Row predicates and partial aggregation run
   per shard inside :meth:`QueryPlan.execute_shard`; the merge combines
   :class:`PartialAggregate` records (sum/count/min/max commute across
   shards) or pre-filtered rows, never unfiltered data.

A plan is bound to one :class:`~repro.control.shards.ShardMap` epoch.
The service re-plans when the epoch moves; :meth:`QueryPlan.explain`
renders the binding for operators (`repro query --explain`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.control.shards import ShardMap
from repro.core.policies import ReturnPolicy
from repro.hashing.hash_family import Key
from repro.query.backend import FanoutBackend, ShardUnavailable, key_text
from repro.query.lang import Aggregate, Predicate, Query, Source


@dataclass(frozen=True)
class ShardPlan:
    """The slice of a query one shard executes."""

    role: int
    node_id: int
    #: Candidate keys this shard stores (empty for key-less sources).
    keys: Tuple[Key, ...]

    def describe(self) -> str:
        """One-line operator rendering of the shard slice."""
        return (
            f"shard role={self.role} node={self.node_id} "
            f"keys={len(self.keys)}"
        )


@dataclass
class PartialAggregate:
    """One shard's commutative aggregation state (the merge's input).

    ``sum``/``count``/``min``/``max`` all merge associatively, and
    ``avg`` merges as ``sum / count`` -- which is exactly why partial
    aggregation can be pushed down to the shard level.
    """

    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        """Fold one row's numeric field into the partial."""
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    def merge(self, other: "PartialAggregate") -> None:
        """Fold another shard's partial into this one."""
        self.count += other.count
        self.total += other.total
        if other.minimum is not None:
            self.minimum = (
                other.minimum
                if self.minimum is None
                else min(self.minimum, other.minimum)
            )
        if other.maximum is not None:
            self.maximum = (
                other.maximum
                if self.maximum is None
                else max(self.maximum, other.maximum)
            )

    def final(self, aggregate: Aggregate) -> Optional[float]:
        """The merged answer for one aggregate (None on an empty window)."""
        if aggregate is Aggregate.COUNT:
            return float(self.count)
        if not self.count:
            return None
        if aggregate is Aggregate.SUM:
            return self.total
        if aggregate is Aggregate.AVG:
            return self.total / self.count
        if aggregate is Aggregate.MIN:
            return self.minimum
        if aggregate is Aggregate.MAX:
            return self.maximum
        raise ValueError(f"not a foldable aggregate: {aggregate!r}")


@dataclass
class ShardOutcome:
    """What one shard contributed to a query (or why it could not)."""

    plan: ShardPlan
    #: Filtered rows (projections) -- empty when aggregating.
    rows: List[Dict[str, object]] = field(default_factory=list)
    #: Shard-local aggregation state (None when projecting).
    partial: Optional[PartialAggregate] = None
    #: Set when the shard was unreachable; its data is missing from the
    #: merged answer (a *partial-shard failure*, surfaced in health).
    failed: bool = False


@dataclass
class QueryAnswer:
    """The merged result of one fan-out."""

    query: Query
    epoch: int
    #: Projected rows (post top-k) for PROJECT queries, else empty.
    rows: List[Dict[str, object]]
    #: The folded scalar for aggregate queries, else None.
    value: Optional[float]
    shards_total: int = 0
    shards_failed: int = 0

    @property
    def complete(self) -> bool:
        """Whether every planned shard contributed."""
        return self.shards_failed == 0

    def projected(self) -> List[object]:
        """Just the selected field of each merged row, in merge order."""
        return [row.get(self.query.field) for row in self.rows]


class QueryPlan:
    """One query bound to one shard-map epoch, ready to execute.

    Built by :func:`plan_query`; executed by the service (or directly in
    tests) against a :class:`~repro.query.backend.FanoutBackend`.
    """

    def __init__(
        self,
        query: Query,
        shard_map: ShardMap,
        shards: List[ShardPlan],
        pruned_keys: int,
        policy: ReturnPolicy,
    ) -> None:
        self.query = query
        self.shard_map = shard_map
        self.shards = shards
        #: Candidate keys eliminated by key push-down (never read).
        self.pruned_keys = pruned_keys
        self.policy = policy

    @property
    def epoch(self) -> int:
        """The shard-map epoch this plan is bound to."""
        return self.shard_map.epoch

    def explain(self) -> str:
        """Operator rendering: binding, push-down effect, shard fan-out."""
        query = self.query
        lines = [
            f"plan for: {query.canonical()}",
            f"  epoch:     {self.epoch}",
            f"  policy:    {self.policy.name}",
            f"  push-down: {self.pruned_keys} candidate(s) pruned by key "
            f"predicates, {len(query.row_predicates)} row predicate(s) "
            f"evaluated per shard",
            f"  fan-out:   {len(self.shards)} shard(s)",
        ]
        lines.extend(f"    {shard.describe()}" for shard in self.shards)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute_shard(
        self, backend: FanoutBackend, shard: ShardPlan
    ) -> ShardOutcome:
        """Run one shard's slice: read, filter, partially aggregate."""
        query = self.query
        outcome = ShardOutcome(plan=shard)
        try:
            rows = backend.rows_for(
                query.source.value,
                self.shard_map.assignment(shard.role),
                list(shard.keys),
                self.policy,
            )
        except ShardUnavailable:
            outcome.failed = True
            return outcome
        # Shard-level push-down: row predicates filter here, not centrally.
        for predicate in query.row_predicates:
            rows = [row for row in rows if predicate.matches(row)]
        if query.aggregate is Aggregate.PROJECT:
            outcome.rows = rows
            return outcome
        partial = PartialAggregate()
        if query.aggregate is Aggregate.COUNT:
            partial.count = len(rows)
        else:
            for row in rows:
                value = row.get(query.field)
                if isinstance(value, bool):
                    value = int(value)
                if isinstance(value, (int, float)):
                    partial.observe(float(value))
        outcome.partial = partial
        return outcome

    def merge(self, outcomes: List[ShardOutcome]) -> QueryAnswer:
        """Fold every shard's contribution into the final answer."""
        query = self.query
        answer = QueryAnswer(
            query=query,
            epoch=self.epoch,
            rows=[],
            value=None,
            shards_total=len(outcomes),
            shards_failed=sum(1 for o in outcomes if o.failed),
        )
        if query.aggregate is Aggregate.PROJECT:
            rows: List[Dict[str, object]] = []
            for outcome in outcomes:
                rows.extend(outcome.rows)
            if query.top_k is not None:
                order = query.order_field or query.field
                rows.sort(
                    key=lambda row: (
                        row.get(order) is not None,
                        row.get(order) or 0,
                    ),
                    reverse=True,
                )
                rows = rows[: query.top_k]
            answer.rows = rows
            return answer
        merged = PartialAggregate()
        for outcome in outcomes:
            if outcome.partial is not None:
                merged.merge(outcome.partial)
        answer.value = merged.final(query.aggregate)
        return answer


def plan_query(
    query: Query,
    shard_map: ShardMap,
    backend: FanoutBackend,
    keys: Optional[List[Key]] = None,
    default_policy: ReturnPolicy = ReturnPolicy.PLURALITY,
) -> QueryPlan:
    """Bind ``query`` to the epoch-current shard map.

    ``keys`` is the candidate key set (DART stores cannot enumerate
    keys; the operator or service supplies candidates).  Key predicates
    prune it *here* -- before any shard is contacted -- and the
    survivors are grouped by :meth:`DartAddressing.collector_of
    <repro.core.addressing.DartAddressing.collector_of>` so each shard
    receives exactly the keys it stores.  Shards with no candidates are
    dropped from the fan-out entirely (except for key-less sources,
    which always cover the fleet).
    """
    pruned = 0
    if keys is not None and query.key_predicates:
        survivors = []
        for key in keys:
            row = {"key": key_text(key)}
            if all(p.matches(row) for p in query.key_predicates):
                survivors.append(key)
        pruned = len(keys) - len(survivors)
        keys = survivors
    keyed_source = query.source is not Source.RING
    grouped = backend.shards_for(shard_map, keys if keyed_source else None)
    shards = []
    for role in sorted(grouped):
        shard_keys = tuple(grouped[role])
        if keyed_source and not shard_keys:
            continue
        shards.append(
            ShardPlan(
                role=role,
                node_id=shard_map.node_for(role),
                keys=shard_keys,
            )
        )
    policy = query.policy if query.policy is not None else default_policy
    return QueryPlan(
        query=query,
        shard_map=shard_map,
        shards=shards,
        pruned_keys=pruned,
        policy=policy,
    )


#: Re-exported for callers that match on predicate behaviour.
__all__ = [
    "PartialAggregate",
    "Predicate",
    "QueryAnswer",
    "QueryPlan",
    "ShardOutcome",
    "ShardPlan",
    "plan_query",
]
