"""repro.query: an async, multi-tenant query front end over the fleet.

DART (HotNets '21) moves telemetry *collection* off the CPU; this
package is the serving side the paper gestures at -- "millions of
users" reading the collected state back.  It layers, bottom-up:

- :mod:`~repro.query.lang` -- a small declarative language (filter /
  aggregate / top-k over keyspaces, count-min estimates and append
  rings), parsed into a typed :class:`~repro.query.lang.Query`;
- :mod:`~repro.query.backend` -- per-shard one-sided read execution
  (pipelined, flushed, retry-bounded) behind the shared response demux;
- :mod:`~repro.query.planner` -- binds a query to the epoch-current
  shard map from :mod:`repro.control`, pushes predicates and partial
  aggregation down to the shard level, merges partials;
- :mod:`~repro.query.service` -- the async front door: admission
  control, per-tenant token-bucket quotas, and a TTL result cache keyed
  on (query, epoch) so a failover's epoch bump invalidates exactly the
  answers it stales;
- :mod:`~repro.query.fleet` -- a servable demo deployment (collector
  cluster + per-shard primitive stores + optional controller);
- :mod:`~repro.query.loadgen` -- a closed-loop generator driving >=10k
  concurrent simulated users on the packet clock.
"""

from repro.query.backend import (
    DEFAULT_READ_ATTEMPTS,
    QUERY_KEYS_QP_BASE,
    QUERY_STORE_QP_BASE,
    FanoutBackend,
    ShardUnavailable,
    key_text,
)
from repro.query.fleet import QueryFleet, fabric_flavour
from repro.query.lang import (
    Aggregate,
    Predicate,
    Query,
    QueryParseError,
    Source,
    parse_query,
)
from repro.query.loadgen import (
    LoadGenerator,
    LoadReport,
    UserScript,
    hot_keyset_scripts,
    quantile,
)
from repro.query.planner import (
    PartialAggregate,
    QueryAnswer,
    QueryPlan,
    ShardOutcome,
    ShardPlan,
    plan_query,
)
from repro.query.service import (
    AdmissionRejected,
    QueryService,
    QuotaExceeded,
    ResultCache,
    ServiceResult,
    TokenBucket,
)

__all__ = [
    "DEFAULT_READ_ATTEMPTS",
    "QUERY_KEYS_QP_BASE",
    "QUERY_STORE_QP_BASE",
    "AdmissionRejected",
    "Aggregate",
    "FanoutBackend",
    "LoadGenerator",
    "LoadReport",
    "PartialAggregate",
    "Predicate",
    "Query",
    "QueryAnswer",
    "QueryFleet",
    "QueryParseError",
    "QueryPlan",
    "QueryService",
    "QuotaExceeded",
    "ResultCache",
    "ServiceResult",
    "ShardOutcome",
    "ShardPlan",
    "ShardUnavailable",
    "Source",
    "TokenBucket",
    "UserScript",
    "fabric_flavour",
    "hot_keyset_scripts",
    "key_text",
    "parse_query",
    "plan_query",
    "quantile",
]
