"""The async, multi-tenant query front end over the collector fleet.

Nothing in DART stands between "millions of users" and the one-sided
RDMA clients -- reading data back is a library call per key.  This
module is that missing front end:

- **Admission control**: a bounded concurrency gate (semaphore) plus a
  hard pending-queue cap; load beyond the cap is rejected immediately
  (``query_admission_rejections_total``) instead of queueing without
  bound.
- **Per-tenant token-bucket quotas**: each tenant's bucket refills on the
  *logical packet clock*, so quota behaviour is deterministic in tests
  and simulations; over-quota requests fail fast with
  :class:`QuotaExceeded` (``query_quota_rejections_total{tenant=...}``)
  and never touch the fabric -- an abusive tenant cannot degrade
  in-quota tenants' latency.
- **TTL result cache keyed on (query, candidates, epoch)**: a failover
  bumps the shard-map epoch, so every cached answer bound to the old
  table version misses (and is purged) on its next lookup --
  reconfiguration invalidates correctly by construction.
- **Observability**: per-tenant latency histograms
  (``query_service_seconds{tenant=...}``), cache hit/miss/eviction
  counters, quota/admission rejection counters, per-policy
  ``queries_total`` / ``queries_answered`` (the same families
  :class:`~repro.obs.health.PipelineHealth` reconciles, so the fan-out
  path shows up in the health dashboard like any other query plane) and
  fan-out shard counters (``query_fanout_shards_total`` /
  ``query_fanout_shard_failures_total``) that make partial-shard
  failures visible.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.core.policies import ReturnPolicy
from repro.hashing.hash_family import Key
from repro.obs.metrics import LATENCY_BUCKETS
from repro.query.backend import FanoutBackend, key_text
from repro.query.lang import Query, Source, parse_query
from repro.query.planner import QueryAnswer, plan_query


class QuotaExceeded(RuntimeError):
    """A tenant's token bucket is empty; the request was rejected."""

    def __init__(self, tenant: str) -> None:
        super().__init__(f"tenant {tenant!r} is over quota")
        self.tenant = tenant


class AdmissionRejected(RuntimeError):
    """The service's pending queue is full; the request was shed."""

    def __init__(self, pending: int) -> None:
        super().__init__(f"admission queue full ({pending} pending)")
        self.pending = pending


class TokenBucket:
    """A token bucket refilled on the logical clock (deterministic).

    ``rate`` tokens accrue per clock tick up to ``burst``; each admitted
    query spends one token.  Buckets refill lazily at check time, so no
    background task is needed.
    """

    def __init__(self, rate: float, burst: float, clock: int = 0) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last_clock = clock

    def refill(self, clock: int) -> None:
        """Accrue tokens for the ticks elapsed since the last refill."""
        elapsed = clock - self._last_clock
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self._last_clock = max(self._last_clock, clock)

    def take(self, clock: int) -> bool:
        """Spend one token if available; False means over quota."""
        self.refill(clock)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class CacheEntry:
    """One cached answer, bound to a TTL deadline and a shard-map epoch."""

    answer: QueryAnswer
    expires_at: int
    epoch: int


class ResultCache:
    """A TTL + LRU result cache keyed on (query, candidates, epoch).

    Entries expire on the logical clock (``ttl_ticks``) and are
    invalidated by epoch mismatch -- a reconfigured fleet serves a new
    table version, so answers computed against the old shard map are
    purged the moment they are looked up.  Capacity is enforced LRU.
    """

    def __init__(self, capacity: int = 1024, ttl_ticks: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl_ticks < 1:
            raise ValueError(f"ttl_ticks must be >= 1, got {ttl_ticks}")
        self.capacity = capacity
        self.ttl_ticks = ttl_ticks
        self._entries: "OrderedDict[Tuple, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple, clock: int, epoch: int) -> Optional[QueryAnswer]:
        """The live answer for ``key``, or None (expired/stale evicted)."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.epoch != epoch or clock >= entry.expires_at:
            del self._entries[key]
            return None
        self._entries.move_to_end(key)
        return entry.answer

    def put(self, key: Tuple, answer: QueryAnswer, clock: int, epoch: int) -> int:
        """Store one answer; returns the number of LRU evictions it forced."""
        evicted = 0
        if key in self._entries:
            del self._entries[key]
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            evicted += 1
        self._entries[key] = CacheEntry(
            answer=answer, expires_at=clock + self.ttl_ticks, epoch=epoch
        )
        return evicted

    def sweep(self, clock: int, epoch: int) -> int:
        """Drop every expired or stale-epoch entry; returns drops."""
        stale = [
            key
            for key, entry in self._entries.items()
            if entry.epoch != epoch or clock >= entry.expires_at
        ]
        for key in stale:
            del self._entries[key]
        return len(stale)


@dataclass
class ServiceResult:
    """What one admitted query returns to its tenant."""

    answer: QueryAnswer
    tenant: str
    cached: bool
    epoch: int
    elapsed_seconds: float


class QueryService:
    """The multi-tenant query-serving front end.

    Parameters
    ----------
    fleet:
        A :class:`~repro.query.fleet.QueryFleet` supplying the backend,
        shard map, candidate keys and logical clock.  (Pass ``backend``
        / ``shard_map_provider`` / ``candidates`` explicitly to serve a
        custom deployment instead.)
    policy:
        Default return policy for ``keys`` queries without a ``policy``
        clause.
    cache_capacity / cache_ttl_ticks:
        Result-cache geometry (logical-clock TTL).
    tenant_rate / tenant_burst:
        Token-bucket quota per tenant: ``rate`` tokens per clock tick,
        ``burst`` bucket depth.
    max_concurrency:
        Queries allowed to execute simultaneously (the admission gate).
    max_pending:
        Queries allowed to *wait* at the gate; beyond this, requests are
        shed with :class:`AdmissionRejected`.
    """

    def __init__(
        self,
        fleet=None,
        *,
        backend: Optional[FanoutBackend] = None,
        shard_map_provider: Optional[Callable[[], object]] = None,
        candidates: Optional[Callable[[], List[Key]]] = None,
        policy: ReturnPolicy = ReturnPolicy.PLURALITY,
        cache_capacity: int = 1024,
        cache_ttl_ticks: int = 64,
        tenant_rate: float = 4.0,
        tenant_burst: float = 64.0,
        max_concurrency: int = 64,
        max_pending: int = 1 << 16,
    ) -> None:
        if fleet is None and (backend is None or shard_map_provider is None):
            raise ValueError(
                "pass a QueryFleet, or both backend= and shard_map_provider="
            )
        self.fleet = fleet
        self.backend = backend if backend is not None else fleet.backend
        self._shard_map = (
            shard_map_provider
            if shard_map_provider is not None
            else fleet.shard_map
        )
        self._candidates = (
            candidates
            if candidates is not None
            else (lambda: fleet.known_keys) if fleet is not None else (lambda: [])
        )
        self.policy = policy
        self.cache = ResultCache(
            capacity=cache_capacity, ttl_ticks=cache_ttl_ticks
        )
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self.max_concurrency = max_concurrency
        self.max_pending = max_pending
        self._buckets: Dict[str, TokenBucket] = {}
        self._parsed: Dict[str, Query] = {}
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._pending = 0
        #: Internal clock used when no fleet supplies one.
        self._clock = 0

        registry = obs.get_registry()
        self._registry = registry
        self._labels = registry.instance_labels("QueryService")
        self.c_requests = registry.counter(
            "query_requests_total", labels=self._labels,
            help="queries admitted to the front end",
        )
        self.c_cache_evictions = registry.counter(
            "query_cache_evictions_total", labels=self._labels,
            help="result-cache entries evicted (LRU or staleness sweep)",
        )
        self.g_cache_entries = registry.gauge(
            "query_cache_entries", labels=self._labels,
            help="live result-cache entries",
        )
        self.c_admission_rejections = registry.counter(
            "query_admission_rejections_total", labels=self._labels,
            help="queries shed because the pending queue was full",
        )
        self.c_fanout_shards = registry.counter(
            "query_fanout_shards_total", labels=self._labels,
            help="per-shard sub-queries issued by the fan-out path",
        )
        self.c_fanout_failures = registry.counter(
            "query_fanout_shard_failures_total", labels=self._labels,
            help="per-shard sub-queries that failed (unreachable shard)",
        )
        self._tenant_counters: Dict[Tuple[str, str], object] = {}
        self._tenant_histograms: Dict[str, object] = {}
        self._policy_counters: Dict[str, Tuple[object, object]] = {}

    def __repr__(self) -> str:
        return (
            f"QueryService(requests={int(self.c_requests.value)}, "
            f"cache_entries={len(self.cache)})"
        )

    # ------------------------------------------------------------------
    # Clock and metric plumbing
    # ------------------------------------------------------------------

    def now(self) -> int:
        """The logical clock quotas and TTLs run on (fleet packet clock)."""
        if self.fleet is not None:
            return self.fleet.clock
        return self._clock

    def tick(self, amount: int = 1) -> None:
        """Advance the logical clock (refills quotas, expires cache).

        With a fleet attached this advances the *fleet's* packet clock
        (so the controller reconciles on the same timeline); stand-alone
        services keep an internal counter.
        """
        if self.fleet is not None:
            self.fleet.settle(amount)
        else:
            self._clock += amount
        swept = self.cache.sweep(self.now(), self.current_epoch)
        if swept:
            self.c_cache_evictions.inc(swept)
        self.g_cache_entries.set(float(len(self.cache)))

    @property
    def current_epoch(self) -> int:
        """The epoch of the current shard map."""
        return self._shard_map().epoch

    def _tenant_counter(self, family: str, tenant: str):
        counter = self._tenant_counters.get((family, tenant))
        if counter is None:
            counter = self._registry.counter(
                family, labels=self._labels + (("tenant", tenant),)
            )
            self._tenant_counters[(family, tenant)] = counter
        return counter

    def _tenant_histogram(self, tenant: str):
        histogram = self._tenant_histograms.get(tenant)
        if histogram is None:
            histogram = self._registry.histogram(
                "query_service_seconds",
                LATENCY_BUCKETS,
                labels=self._labels + (("tenant", tenant),),
                help="wall-clock seconds per served query, by tenant",
            )
            self._tenant_histograms[tenant] = histogram
        return histogram

    def _policy_pair(self, policy: ReturnPolicy):
        pair = self._policy_counters.get(policy.name)
        if pair is None:
            labels = self._labels + (("policy", policy.name),)
            pair = (
                self._registry.counter("queries_total", labels=labels),
                self._registry.counter("queries_answered", labels=labels),
            )
            self._policy_counters[policy.name] = pair
        return pair

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.tenant_rate, self.tenant_burst, clock=self.now()
            )
            self._buckets[tenant] = bucket
        return bucket

    # ------------------------------------------------------------------
    # The serving core (sync; the async wrapper adds admission)
    # ------------------------------------------------------------------

    def parse(self, text: str) -> Query:
        """Parse (and memoise) one query string."""
        query = self._parsed.get(text)
        if query is None:
            query = parse_query(text)
            self._parsed[text] = query
        return query

    def _cache_key(
        self, query: Query, keys: Optional[List[Key]]
    ) -> Tuple:
        """The cache identity of one request.

        Explicit candidate lists key on their full textual form; the
        service-default candidate set keys on its length (it is
        append-only, so length captures every change).
        """
        if keys is None:
            return (query.canonical(), "default", len(self._candidates()))
        return (query.canonical(), tuple(key_text(key) for key in keys))

    def serve(
        self,
        text: str,
        tenant: str = "default",
        keys: Optional[List[Key]] = None,
        use_cache: bool = True,
    ) -> ServiceResult:
        """Serve one query synchronously (quota + cache + fan-out).

        The async :meth:`query` adds the admission gate on top; tests
        and the CLI call this directly.
        """
        started = perf_counter()
        clock = self.now()
        query = self.parse(text)
        if not self._bucket(tenant).take(clock):
            self._tenant_counter("query_quota_rejections_total", tenant).inc()
            raise QuotaExceeded(tenant)
        self.c_requests.inc()
        self._tenant_counter("query_tenant_requests_total", tenant).inc()
        epoch = self.current_epoch
        cache_key = self._cache_key(query, keys)
        if use_cache:
            cached = self.cache.get(cache_key, clock, epoch)
            self.g_cache_entries.set(float(len(self.cache)))
            if cached is not None:
                self._tenant_counter("query_cache_hits_total", tenant).inc()
                elapsed = perf_counter() - started
                self._tenant_histogram(tenant).observe(elapsed)
                return ServiceResult(
                    answer=cached, tenant=tenant, cached=True,
                    epoch=epoch, elapsed_seconds=elapsed,
                )
            self._tenant_counter("query_cache_misses_total", tenant).inc()
        answer = self._execute(query, keys)
        if use_cache and answer.complete:
            evicted = self.cache.put(cache_key, answer, clock, epoch)
            if evicted:
                self.c_cache_evictions.inc(evicted)
            self.g_cache_entries.set(float(len(self.cache)))
        elapsed = perf_counter() - started
        self._tenant_histogram(tenant).observe(elapsed)
        return ServiceResult(
            answer=answer, tenant=tenant, cached=False,
            epoch=epoch, elapsed_seconds=elapsed,
        )

    def _execute(self, query: Query, keys: Optional[List[Key]]) -> QueryAnswer:
        """Plan against the epoch-current shard map and fan out."""
        shard_map = self._shard_map()
        candidate_keys = keys
        if candidate_keys is None and query.source is not Source.RING:
            candidate_keys = list(self._candidates())
        plan = plan_query(
            query,
            shard_map,
            self.backend,
            keys=candidate_keys,
            default_policy=self.policy,
        )
        outcomes = [
            plan.execute_shard(self.backend, shard) for shard in plan.shards
        ]
        self.c_fanout_shards.inc(len(outcomes))
        failures = sum(1 for outcome in outcomes if outcome.failed)
        if failures:
            self.c_fanout_failures.inc(failures)
        answer = plan.merge(outcomes)
        if query.source is Source.KEYS:
            # Thread per-policy success into the same families
            # PipelineHealth reconciles -- the fan-out path is a query
            # plane like any other, and partial answers must be visible.
            total, answered = self._policy_pair(plan.policy)
            for outcome in outcomes:
                for row in outcome.rows:
                    total.inc()
                    if row.get("answered"):
                        answered.inc()
                if outcome.partial is not None:
                    # Aggregate queries fold rows before they reach the
                    # merge; count the reads themselves.
                    total.inc(len(outcome.plan.keys))
        return answer

    def explain(self, text: str, keys: Optional[List[Key]] = None) -> str:
        """The plan (without executing it) for one query string."""
        query = self.parse(text)
        candidate_keys = keys
        if candidate_keys is None and query.source is not Source.RING:
            candidate_keys = list(self._candidates())
        plan = plan_query(
            query,
            self._shard_map(),
            self.backend,
            keys=candidate_keys,
            default_policy=self.policy,
        )
        return plan.explain()

    # ------------------------------------------------------------------
    # The async front door
    # ------------------------------------------------------------------

    def _gate(self) -> asyncio.Semaphore:
        if self._semaphore is None:
            self._semaphore = asyncio.Semaphore(self.max_concurrency)
        return self._semaphore

    async def query(
        self,
        text: str,
        tenant: str = "default",
        keys: Optional[List[Key]] = None,
        use_cache: bool = True,
    ) -> ServiceResult:
        """Serve one query through admission control (the tenant API)."""
        if self._pending >= self.max_pending:
            self.c_admission_rejections.inc()
            raise AdmissionRejected(self._pending)
        self._pending += 1
        try:
            async with self._gate():
                # Yield once so concurrent tenants interleave at the
                # gate even though each fan-out runs synchronously.
                await asyncio.sleep(0)
                return self.serve(text, tenant=tenant, keys=keys, use_cache=use_cache)
        finally:
            self._pending -= 1
