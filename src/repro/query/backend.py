"""Per-shard one-sided read execution behind the shared response demux.

The planner decides *what* to read from *which* shard; this module does
the reading.  For every keyspace shard it keeps one
:class:`~repro.primitives.clients.OneSidedReader` per read substrate,
built against the shard's *serving node* (its NIC, rkey, base address)
and rebuilt automatically when a failover moves the role to a standby --
the reader cache is keyed on ``(role, node_id)``, so a stale binding can
never survive a shard-map change.

Two properties the query front end depends on:

- **Pipelined, flushed reads.**  Everything goes through
  :meth:`OneSidedReader.read_run` (requests, flush, drain), so the same
  backend works over Inline, Buffered *and* Impaired fabrics -- an
  unflushed single READ would deadlock a deferring fabric.
- **Bounded retry against request-leg loss.**  The impaired fabric drops
  request frames; the response leg is modelled lossless, so a missing
  payload means the request never executed and re-issuing is safe
  (reads are idempotent).  :meth:`FanoutBackend.read_reliable` retries
  only the missing addresses; a shard whose reads *never* complete
  (a dead node drops every frame) raises :class:`ShardUnavailable`,
  which the service surfaces as a partial-shard failure.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.collector.collector import CollectorCluster
from repro.control.shards import ShardAssignment, ShardMap
from repro.core.addressing import DartAddressing
from repro.core.config import DartConfig
from repro.core.policies import QueryResult, ReturnPolicy, resolve
from repro.hashing.hash_family import Key
from repro.primitives.clients import OneSidedReader
from repro.primitives.translator import ResponseDemux

#: Requester QP of the query front end's keys-plane reader for role 0.
QUERY_KEYS_QP_BASE = 0xC00

#: Requester QP of the front end's counter/sketch/ring readers.
QUERY_STORE_QP_BASE = 0xD00

#: Default bounded-retry rounds against request-leg loss.
DEFAULT_READ_ATTEMPTS = 16


class ShardUnavailable(RuntimeError):
    """A shard's reads never completed -- its serving node is unreachable."""

    def __init__(self, role: int, node_id: int) -> None:
        super().__init__(
            f"shard role={role} (node {node_id}) is unreachable: "
            f"no READ completed within the retry budget"
        )
        self.role = role
        self.node_id = node_id


def key_text(key: Key) -> str:
    """The textual form of a key, as query predicates see the ``key`` field."""
    if isinstance(key, str):
        return key
    if isinstance(key, bytes):
        return key.decode("latin-1")
    return repr(key)


class FanoutBackend:
    """Executes one shard's worth of reads for every query source.

    Parameters
    ----------
    config:
        The deployment config (addressing, slot geometry).
    cluster:
        The collector fleet the keys plane reads from.
    keys_fabric:
        The fabric collectors are attached to by role (endpoint = role).
    counter_stores / sketch_stores / ring_stores:
        Per-role primitive stores (may be empty dicts for keys-only
        deployments); each store carries its own fabric/NIC/demux.
    read_attempts:
        Bounded retry rounds per read batch before a shard is declared
        unavailable.
    """

    def __init__(
        self,
        config: DartConfig,
        cluster: CollectorCluster,
        keys_fabric,
        counter_stores: Optional[Dict[int, object]] = None,
        sketch_stores: Optional[Dict[int, object]] = None,
        ring_stores: Optional[Dict[int, object]] = None,
        read_attempts: int = DEFAULT_READ_ATTEMPTS,
    ) -> None:
        if read_attempts < 1:
            raise ValueError(f"read_attempts must be >= 1, got {read_attempts}")
        self.config = config
        self.cluster = cluster
        self.keys_fabric = keys_fabric
        self.counter_stores = counter_stores or {}
        self.sketch_stores = sketch_stores or {}
        self.ring_stores = ring_stores or {}
        self.read_attempts = read_attempts
        self.addressing = DartAddressing(config)
        self._codec = config.slot_codec()
        #: (role, node_id) -> keys-plane reader; rebuilt on failover.
        self._keys_readers: Dict[Tuple[int, int], OneSidedReader] = {}
        #: Serial QP allocator for keys-plane readers: a role that moves
        #: away and back again needs a fresh QP number (the old one is
        #: still registered on the node's NIC).
        self._next_keys_qp = QUERY_KEYS_QP_BASE
        #: (source, role) -> store reader (store identity never moves).
        self._store_readers: Dict[Tuple[str, int], OneSidedReader] = {}

    # ------------------------------------------------------------------
    # Reader plumbing
    # ------------------------------------------------------------------

    def _keys_reader(self, shard: ShardAssignment) -> OneSidedReader:
        """The keys-plane reader for one shard, bound to its serving node."""
        cache_key = (shard.role, shard.node_id)
        reader = self._keys_readers.get(cache_key)
        if reader is None:
            # A failover changed the node behind this role: drop any
            # reader bound to the displaced node so responses can't be
            # misattributed, then bind to the new node's NIC and rkey.
            for stale in [
                k for k in self._keys_readers if k[0] == shard.role
            ]:
                del self._keys_readers[stale]
            node = self.cluster.node(shard.node_id)
            qp_number = self._next_keys_qp
            self._next_keys_qp += 1
            reader = OneSidedReader(
                self.keys_fabric,
                shard.role,
                node.nic,
                qp_number,
                ResponseDemux(),
                node.region.rkey,
            )
            self._keys_readers[cache_key] = reader
        return reader

    def _store_reader(self, source: str, role: int, store) -> OneSidedReader:
        """The reader for one primitive store shard (shares its demux)."""
        cache_key = (source, role)
        reader = self._store_readers.get(cache_key)
        if reader is None:
            reader = OneSidedReader(
                store.fabric,
                store.endpoint_id,
                store.nic,
                QUERY_STORE_QP_BASE + role,
                store.demux,
                store.region.rkey,
            )
            self._store_readers[cache_key] = reader
        return reader

    def read_reliable(
        self,
        reader: OneSidedReader,
        addresses: List[int],
        length: int,
        shard: ShardAssignment,
    ) -> List[bytes]:
        """Pipelined READs with bounded retry of the lost request legs.

        Returns one payload per address, complete or not at all: if any
        address is still unanswered after the retry budget the shard is
        declared :class:`ShardUnavailable` (the dead-node signature is
        *every* frame vanishing, and partial results would break the
        byte-identity contract with direct reads).
        """
        if not addresses:
            return []
        results: List[Optional[bytes]] = [None] * len(addresses)
        pending = list(range(len(addresses)))
        for _attempt in range(self.read_attempts):
            batch = [addresses[i] for i in pending]
            payloads = reader.read_run(batch, length)
            still_pending = []
            for index, payload in zip(pending, payloads):
                if payload is None:
                    still_pending.append(index)
                else:
                    results[index] = payload
            pending = still_pending
            if not pending:
                return [payload for payload in results if payload is not None]
        raise ShardUnavailable(shard.role, shard.node_id)

    # ------------------------------------------------------------------
    # Source row readers (one shard each)
    # ------------------------------------------------------------------

    def keys_rows(
        self,
        shard: ShardAssignment,
        keys: List[Key],
        policy: ReturnPolicy,
    ) -> List[Dict[str, object]]:
        """Key-query rows for one shard: DART slot reads + return policy.

        Value-identical to :class:`~repro.core.client.DartQueryClient`
        on the same keys: the N slot addresses come from the shared
        addressing, checksum-mismatched slots are discarded, and the
        same :func:`~repro.core.policies.resolve` folds the survivors.
        """
        if not keys:
            return []
        reader = self._keys_reader(shard)
        redundancy = self.config.redundancy
        addresses = []
        checksums = []
        for key in keys:
            resolved = self.addressing.resolve(key)
            checksums.append(resolved.checksum)
            for slot_index in resolved.slot_indexes:
                addresses.append(
                    self.addressing.slot_address(shard.base_address, slot_index)
                )
        payloads = self.read_reliable(
            reader, addresses, self.config.slot_bytes, shard
        )
        rows = []
        for index, key in enumerate(keys):
            matching: List[bytes] = []
            for copy in range(redundancy):
                raw = payloads[index * redundancy + copy]
                stored_checksum, value = self._codec.decode(raw)
                if stored_checksum == checksums[index]:
                    matching.append(value)
            result: QueryResult = resolve(
                matching, policy, slots_read=redundancy
            )
            rows.append(
                {
                    "key": key_text(key),
                    "value": result.value,
                    "answered": result.answered,
                }
            )
        return rows

    def _estimate_rows(
        self,
        source: str,
        stores: Dict[int, object],
        shard: ShardAssignment,
        keys: List[Key],
    ) -> List[Dict[str, object]]:
        """Count-min estimate rows for one counter/sketch shard."""
        if not keys:
            return []
        store = stores.get(shard.role)
        if store is None:
            raise ShardUnavailable(shard.role, shard.node_id)
        reader = self._store_reader(source, shard.role, store)
        addresses = []
        for key in keys:
            for row in range(store.rows):
                addresses.append(store.translator.cell_address(key, row))
        payloads = self.read_reliable(reader, addresses, 8, shard)
        rows = []
        for index, key in enumerate(keys):
            cells = [
                int.from_bytes(
                    payloads[index * store.rows + row], "big"
                )
                for row in range(store.rows)
            ]
            rows.append({"key": key_text(key), "est": min(cells)})
        return rows

    def counter_rows(
        self, shard: ShardAssignment, keys: List[Key]
    ) -> List[Dict[str, object]]:
        """Counter-bank estimate rows for one shard (min across rows)."""
        return self._estimate_rows("counters", self.counter_stores, shard, keys)

    def sketch_rows(
        self, shard: ShardAssignment, keys: List[Key]
    ) -> List[Dict[str, object]]:
        """Sketch-bank estimate rows for one shard (min across rows)."""
        return self._estimate_rows("sketch", self.sketch_stores, shard, keys)

    def ring_rows(self, shard: ShardAssignment) -> List[Dict[str, object]]:
        """Append-ring rows for one shard: remote tail + readable window.

        Mirrors :meth:`~repro.primitives.clients.AppendQueryClient.snapshot`
        but with flushed, retried reads, so the window is complete (not
        best-effort) and the same records come back over any fabric.
        """
        store = self.ring_stores.get(shard.role)
        if store is None:
            raise ShardUnavailable(shard.role, shard.node_id)
        reader = self._store_reader("ring", shard.role, store)
        tail_raw = self.read_reliable(reader, [store.tail_address], 8, shard)
        tail = int.from_bytes(tail_raw[0], "big")
        head = max(0, tail - store.capacity)
        indexes = list(range(head, tail))
        addresses = [
            store.data_address + (i % store.capacity) * store.record_bytes
            for i in indexes
        ]
        payloads = self.read_reliable(reader, addresses, store.record_bytes, shard)
        return [
            {"index": index, "record": payload}
            for index, payload in zip(indexes, payloads)
        ]

    # ------------------------------------------------------------------
    # Entry point the planner's executor calls
    # ------------------------------------------------------------------

    def rows_for(
        self,
        source: str,
        shard: ShardAssignment,
        keys: List[Key],
        policy: ReturnPolicy,
    ) -> List[Dict[str, object]]:
        """Dispatch one shard read by source name (the planner's seam)."""
        if source == "keys":
            return self.keys_rows(shard, keys, policy)
        if source == "counters":
            return self.counter_rows(shard, keys)
        if source == "sketch":
            return self.sketch_rows(shard, keys)
        if source == "ring":
            return self.ring_rows(shard)
        raise ValueError(f"unknown source {source!r}")

    def shards_for(
        self, shard_map: ShardMap, keys: Optional[List[Key]]
    ) -> Dict[int, List[Key]]:
        """Group candidate keys by the shard (role) that stores them.

        ``None`` keys (key-less sources like ``ring``) map every shard to
        an empty candidate list -- the fan-out still covers the fleet.
        """
        grouped: Dict[int, List[Key]] = {}
        if keys is None:
            return {role: [] for role in shard_map.roles()}
        for key in keys:
            role = self.addressing.collector_of(key)
            grouped.setdefault(role, []).append(key)
        return grouped


#: A provider the planner polls for the epoch-current shard map.
ShardMapProvider = Callable[[], ShardMap]
