"""A servable demo deployment: collector fleet + per-shard primitive stores.

The query front end needs something to serve.  :class:`QueryFleet` wires
the full read surface behind one object:

- a **keys plane**: a :class:`~repro.collector.collector.CollectorCluster`
  (optionally with standbys) attached to a fabric by role, written
  through a real :class:`~repro.switch.dart_switch.DartSwitch`, provisioned
  by a :class:`~repro.switch.control_plane.SwitchControlPlane`;
- a **store plane**: per-role Key-Increment counter banks, Sketch-Merge
  banks and Append rings on a second fabric of the same flavour, routed
  by the shared addressing (``collector_of``), so every substrate is
  sharded exactly like the keyspace;
- an optional **fleet controller** (:meth:`enable_control`) ticked on the
  fleet's logical clock, which is what makes the shard map *move*:
  :meth:`kill_node` crashes a host, probes miss, the controller bumps the
  epoch and promotes a standby, and :meth:`shard_map` reflects it.

Writes advance :attr:`clock` (the packet clock queries, quotas and cache
TTLs run on), and written keys are remembered in :attr:`known_keys` --
the candidate set DART queries need, since the store itself cannot
enumerate keys.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.collector.collector import CollectorCluster
from repro.collector.counters import CounterStore
from repro.control.shards import ShardMap, shard_map_of
from repro.core.config import DartConfig
from repro.fabric.fabric import BufferedFabric, Fabric, InlineFabric
from repro.fabric.impaired import ImpairedFabric
from repro.hashing.hash_family import Key
from repro.primitives.append import AppendStore
from repro.primitives.sketch import SketchStore
from repro.query.backend import FanoutBackend
from repro.switch.control_plane import SwitchControlPlane
from repro.switch.dart_switch import DartSwitch

#: Store-plane endpoint bases (per-role offsets keep NICs distinct).
COUNTER_SHARD_ENDPOINT_BASE = 2000
SKETCH_SHARD_ENDPOINT_BASE = 3000
RING_SHARD_ENDPOINT_BASE = 4000


def fabric_flavour(
    flavour: str, *, loss: float = 0.05, seed: int = 0,
    flush_threshold: int = 64,
) -> Callable[[], Fabric]:
    """A factory for one of the three canonical fabric flavours.

    ``inline`` delivers synchronously, ``buffered`` defers until flush,
    ``impaired`` wraps inline delivery with seeded request-leg loss --
    the three regimes the e2e identity tests sweep.
    """
    if flavour == "inline":
        return InlineFabric
    if flavour == "buffered":
        return lambda: BufferedFabric(flush_threshold=flush_threshold)
    if flavour == "impaired":
        return lambda: ImpairedFabric(InlineFabric(), loss=loss, seed=seed)
    raise ValueError(
        f"unknown fabric flavour {flavour!r} "
        f"(flavours: inline, buffered, impaired)"
    )


class QueryFleet:
    """Everything the query service fans out to, in one deployment.

    Parameters
    ----------
    config:
        Deployment config; ``num_collectors`` is the shard count.
    fabric_factory:
        Zero-arg callable building one fabric per plane (keys plane and
        store plane get separate instances of the same flavour); defaults
        to :class:`~repro.fabric.InlineFabric`.
    num_standbys:
        Warm spares for failover (0 disables).
    counter_cells / counter_rows:
        Shape of each per-role counter/sketch bank.
    ring_capacity / ring_record_bytes:
        Geometry of each per-role Append ring.
    """

    def __init__(
        self,
        config: Optional[DartConfig] = None,
        *,
        fabric_factory: Optional[Callable[[], Fabric]] = None,
        num_standbys: int = 0,
        counter_cells: int = 1 << 10,
        counter_rows: int = 2,
        ring_capacity: int = 128,
        ring_record_bytes: int = 16,
    ) -> None:
        if config is None:
            config = DartConfig(
                slots_per_collector=1 << 12, num_collectors=4, redundancy=2
            )
        factory = fabric_factory if fabric_factory is not None else InlineFabric
        self.config = config
        self.cluster = CollectorCluster(config, num_standbys=num_standbys)
        #: The keys-plane transport (reports, probes, key READs).
        self.fabric = self.cluster.attach_to(factory())
        #: The store-plane transport (counters, sketches, rings).
        self.store_fabric = factory()
        self.switch = DartSwitch(config, switch_id=0, fabric=self.fabric)
        self.plane = SwitchControlPlane(config)
        self.plane.connect_switch(self.switch, self.cluster)

        self.counter_stores: Dict[int, CounterStore] = {}
        self.sketch_stores: Dict[int, SketchStore] = {}
        self.ring_stores: Dict[int, AppendStore] = {}
        self._ring_writers: Dict[int, object] = {}
        for role in range(config.num_collectors):
            self.counter_stores[role] = CounterStore(
                cells_per_row=counter_cells,
                rows=counter_rows,
                config=config,
                base_address=0x200000 + role * 0x100000,
                fabric=self.store_fabric,
                endpoint_id=COUNTER_SHARD_ENDPOINT_BASE + role,
            )
            self.sketch_stores[role] = SketchStore(
                cells_per_row=counter_cells,
                rows=counter_rows,
                config=config,
                base_address=0x1200000 + role * 0x100000,
                fabric=self.store_fabric,
                endpoint_id=SKETCH_SHARD_ENDPOINT_BASE + role,
            )
            ring = AppendStore(
                capacity=ring_capacity,
                record_bytes=ring_record_bytes,
                base_address=0x2200000 + role * 0x100000,
                fabric=self.store_fabric,
                endpoint_id=RING_SHARD_ENDPOINT_BASE + role,
            )
            self.ring_stores[role] = ring
            self._ring_writers[role] = ring.register_writer(0)

        self.backend = FanoutBackend(
            config,
            self.cluster,
            self.fabric,
            counter_stores=self.counter_stores,
            sketch_stores=self.sketch_stores,
            ring_stores=self.ring_stores,
        )
        #: Optional FleetController (see :meth:`enable_control`).
        self.controller = None
        #: The fleet's logical packet clock (writes advance it).
        self.clock = 0
        #: Candidate keys, in first-write order (queries need candidates;
        #: a DART store cannot enumerate its keys).
        self.known_keys: List[Key] = []
        self._known = set()

    def __repr__(self) -> str:
        return (
            f"QueryFleet(shards={self.config.num_collectors}, "
            f"keys={len(self.known_keys)}, clock={self.clock})"
        )

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def enable_control(self, *, fail_after: int = 2, tick_interval: int = 25):
        """Attach a fleet controller ticked on the fleet's logical clock."""
        from repro.control.controller import FleetController

        self.controller = FleetController(
            self.cluster,
            self.plane,
            self.fabric,
            fail_after=fail_after,
            tick_interval=tick_interval,
        )
        return self.controller

    @property
    def current_epoch(self) -> int:
        """The fleet's table-version epoch (0 without a controller)."""
        if self.controller is not None:
            return self.controller.current_epoch
        return 0

    def shard_map(self) -> ShardMap:
        """The epoch-current shard map (live controller state when enabled)."""
        if self.controller is not None:
            return self.controller.shard_map()
        return shard_map_of(self.cluster, epoch=0)

    def kill_node(self, node_id: int) -> None:
        """Chaos hook: crash one keys-plane collector host."""
        self.cluster.node(node_id).fail()

    def _advance(self, amount: int = 1) -> None:
        """Advance the logical clock; drives controller reconciliation."""
        self.clock += amount
        if self.controller is not None:
            self.controller.maybe_tick(self.clock)

    def settle(self, ticks: int = 1) -> None:
        """Advance the clock without traffic (lets the controller converge)."""
        for _tick in range(ticks):
            self._advance()

    # ------------------------------------------------------------------
    # Write surface (advances the packet clock)
    # ------------------------------------------------------------------

    def _remember(self, key: Key) -> None:
        if key not in self._known:
            self._known.add(key)
            self.known_keys.append(key)

    def put(self, key: Key, value: bytes) -> None:
        """Store one key report through the switch datapath."""
        self.put_many([(key, value)])

    def put_many(self, items: Iterable[Tuple[Key, bytes]]) -> int:
        """Batched key reports: switch -> fabric -> NIC, one flush."""
        count = 0
        for key, value in items:
            self._remember(key)
            self.switch.report_into(key, value)
            count += 1
        self.fabric.flush()
        self._advance(count)
        return count

    def count(self, key: Key, amount: int = 1) -> None:
        """Count one key in its shard's counter bank (Key-Increment)."""
        self.count_many([(key, amount)])

    def count_many(self, items: Iterable[Tuple[Key, int]]) -> int:
        """Batched counting, routed to each key's shard bank."""
        grouped: Dict[int, List[Tuple[Key, int]]] = {}
        count = 0
        for key, amount in items:
            self._remember(key)
            role = self.backend.addressing.collector_of(key)
            grouped.setdefault(role, []).append((key, amount))
            count += 1
        for role, shard_items in grouped.items():
            self.counter_stores[role].add_many(shard_items)
        self._advance(count)
        return count

    def sketch_many(self, items: Iterable[Tuple[Key, int]]) -> int:
        """Batched sketch updates, routed to each key's shard bank."""
        grouped: Dict[int, List[Tuple[Key, int]]] = {}
        count = 0
        for key, amount in items:
            self._remember(key)
            role = self.backend.addressing.collector_of(key)
            grouped.setdefault(role, []).append((key, amount))
            count += 1
        for role, shard_items in grouped.items():
            self.sketch_stores[role].add_many(shard_items)
        self._advance(count)
        return count

    def append(self, key: Key, record: bytes) -> None:
        """Append one record to the ring of the shard storing ``key``."""
        role = self.backend.addressing.collector_of(key)
        self._ring_writers[role].append(record)
        self.store_fabric.flush()
        self._advance()

    # ------------------------------------------------------------------
    # Direct read surface (ground truth for the identity tests)
    # ------------------------------------------------------------------

    def direct_estimate(self, key: Key, source: str = "counters") -> int:
        """The local (collector-CPU) count-min estimate for one key."""
        role = self.backend.addressing.collector_of(key)
        stores = (
            self.counter_stores if source == "counters" else self.sketch_stores
        )
        return stores[role].estimate(key)
