"""A closed-loop load generator for the query front end.

Drives N simulated users (tens of thousands of concurrent asyncio
tasks) against one :class:`~repro.query.service.QueryService`.  The
loop is *closed*: each user issues its next query only after the
previous one resolves -- completes, is rejected over quota, or is shed
at admission -- so offered load self-regulates to the service's
capacity the way real interactive tenants do, instead of open-loop
flooding.

The generator also owns the packet clock: every ``tick_stride``
completed requests it advances the service's logical clock by one tick,
which is what refills the tenants' token buckets and ages the result
cache.  Run outcomes fold into a :class:`LoadReport` (throughput,
latency quantiles, cache and rejection accounting).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple

from repro.hashing.hash_family import Key
from repro.query.backend import key_text
from repro.query.service import (
    AdmissionRejected,
    QueryService,
    QuotaExceeded,
)


def quantile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``samples`` (nearest-rank; 0.0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


@dataclass
class UserScript:
    """What one simulated user repeatedly asks.

    ``keys`` narrows the candidate set (None means the service default);
    ``tenant`` is the quota identity the user runs under.
    """

    text: str
    tenant: str = "default"
    keys: Optional[List[Key]] = None


@dataclass
class LoadReport:
    """The outcome of one closed-loop run."""

    users: int = 0
    issued: int = 0
    #: Completed queries whose every planned shard contributed.
    answered: int = 0
    #: Completed queries missing at least one shard.
    incomplete: int = 0
    cache_hits: int = 0
    rejected_quota: int = 0
    rejected_admission: int = 0
    duration_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)

    @property
    def completed(self) -> int:
        """Queries that produced an answer (cache hit or fan-out)."""
        return self.answered + self.incomplete

    @property
    def p50_seconds(self) -> float:
        """Median served-query latency."""
        return quantile(self.latencies, 0.50)

    @property
    def p99_seconds(self) -> float:
        """Tail served-query latency."""
        return quantile(self.latencies, 0.99)

    @property
    def qps(self) -> float:
        """Completed queries per wall-clock second."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.completed / self.duration_seconds

    def to_dict(self) -> dict:
        """JSON-ready summary (the bench artifact embeds this)."""
        return {
            "users": self.users,
            "issued": self.issued,
            "answered": self.answered,
            "incomplete": self.incomplete,
            "cache_hits": self.cache_hits,
            "rejected_quota": self.rejected_quota,
            "rejected_admission": self.rejected_admission,
            "completed": self.completed,
            "duration_seconds": self.duration_seconds,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
            "qps": self.qps,
        }


class LoadGenerator:
    """Closed-loop driver: ``users`` concurrent tasks, one script each.

    Parameters
    ----------
    service:
        The query front end under load.
    scripts:
        The scripts users cycle through (user ``i`` runs script
        ``i % len(scripts)``).
    users:
        Concurrent simulated users (asyncio tasks).
    requests_per_user:
        Closed-loop iterations per user.
    tick_stride:
        Completed requests between logical-clock ticks (the packet
        clock the quotas and cache TTLs run on).
    """

    def __init__(
        self,
        service: QueryService,
        scripts: Sequence[UserScript],
        *,
        users: int = 10_000,
        requests_per_user: int = 1,
        tick_stride: int = 64,
    ) -> None:
        if not scripts:
            raise ValueError("need at least one user script")
        if users < 1:
            raise ValueError(f"users must be >= 1, got {users}")
        if tick_stride < 1:
            raise ValueError(f"tick_stride must be >= 1, got {tick_stride}")
        self.service = service
        self.scripts = list(scripts)
        self.users = users
        self.requests_per_user = requests_per_user
        self.tick_stride = tick_stride
        self._resolved = 0

    async def _user(self, user_index: int, report: LoadReport) -> None:
        """One simulated user's closed loop."""
        script = self.scripts[user_index % len(self.scripts)]
        for _request in range(self.requests_per_user):
            report.issued += 1
            try:
                result = await self.service.query(
                    script.text, tenant=script.tenant, keys=script.keys
                )
            except QuotaExceeded:
                report.rejected_quota += 1
            except AdmissionRejected:
                report.rejected_admission += 1
            else:
                if result.answer.complete:
                    report.answered += 1
                else:
                    report.incomplete += 1
                if result.cached:
                    report.cache_hits += 1
                report.latencies.append(result.elapsed_seconds)
            self._resolved += 1
            if self._resolved % self.tick_stride == 0:
                self.service.tick()

    async def _run(self) -> LoadReport:
        report = LoadReport(users=self.users)
        started = perf_counter()
        tasks = [
            asyncio.ensure_future(self._user(index, report))
            for index in range(self.users)
        ]
        await asyncio.gather(*tasks)
        report.duration_seconds = perf_counter() - started
        return report

    def run(self) -> LoadReport:
        """Run the whole fleet of users to completion and report."""
        return asyncio.run(self._run())


def hot_keyset_scripts(
    keys: Sequence[Key],
    *,
    tenants: Sequence[str] = ("default",),
    policy: Optional[str] = None,
) -> List[UserScript]:
    """Scripts for a hot-keyset workload: point lookups over ``keys``.

    One script per (key, tenant) pair; with many users cycling a small
    keyset this produces the cache-friendly load the bench gate uses to
    separate the cached and uncached serving paths.
    """
    suffix = f" policy {policy}" if policy else ""
    scripts = []
    for index, key in enumerate(keys):
        tenant = tenants[index % len(tenants)]
        scripts.append(
            UserScript(
                text=f'select value from keys where key == "{key_text(key)}"'
                + suffix,
                tenant=tenant,
                keys=list(keys),
            )
        )
    return scripts


#: A factory signature tests use to parameterise workloads.
ScriptFactory = Callable[[Sequence[Key]], List[UserScript]]

#: Convenience alias for callers composing mixed workloads.
Workload = Tuple[QueryService, List[UserScript]]
