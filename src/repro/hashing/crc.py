"""Table-driven CRC implementations.

Two parts of the reproduced system are CRC-based:

1. The Tofino switch ASIC exposes CRC polynomials as its hashing extern; the
   DART prototype (paper section 6) uses "the CRC extern" to map ``(n, key)``
   to a collector ID and memory address.
2. RoCEv2 packets end with a 32-bit *invariant CRC* (iCRC) computed over the
   packet with volatile fields masked out; the DART switch must generate it
   and the RDMA NIC validates it.

The implementations below are classic reflected table-driven CRCs.  They are
deliberately dependency-free and byte-exact so that tests can pin known
check values ("123456789" vectors from the CRC catalogue).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Tuple

import numpy as np


def _reflect(value: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``value``."""
    reflected = 0
    for _ in range(width):
        reflected = (reflected << 1) | (value & 1)
        value >>= 1
    return reflected


def _build_table(poly: int, width: int, reflected: bool) -> Tuple[int, ...]:
    """Precompute the 256-entry CRC table for one byte of input."""
    mask = (1 << width) - 1
    top_bit = 1 << (width - 1)
    table = []
    for byte in range(256):
        if reflected:
            crc = _reflect(byte, 8) << (width - 8)
        else:
            crc = byte << (width - 8)
        for _ in range(8):
            if crc & top_bit:
                crc = ((crc << 1) ^ poly) & mask
            else:
                crc = (crc << 1) & mask
        if reflected:
            crc = _reflect(crc, width)
        table.append(crc)
    return tuple(table)


@dataclass(frozen=True)
class CrcAlgorithm:
    """A parameterised CRC algorithm in the Rocksoft model.

    Attributes mirror the standard CRC catalogue fields so that any
    polynomial a Tofino hash extern can be configured with is expressible.
    """

    name: str
    width: int
    poly: int
    init: int
    reflect_in: bool
    reflect_out: bool
    xor_out: int
    check: int  # CRC of b"123456789", for self-tests

    def __post_init__(self) -> None:
        if self.width < 8 or self.width > 64:
            raise ValueError(f"unsupported CRC width {self.width}")
        object.__setattr__(
            self, "_table", _build_table(self.poly, self.width, self.reflect_in)
        )

    @property
    def mask(self) -> int:
        """Bit mask of the CRC width."""
        return (1 << self.width) - 1

    def compute(self, data: bytes, initial: int | None = None) -> int:
        """CRC of ``data``; ``initial`` allows incremental computation.

        When ``initial`` is given it must be a previous :meth:`compute`
        result; the final XOR is undone/redone so that
        ``compute(a + b) == compute(b, initial=compute(a))``.
        """
        table = self._table  # type: ignore[attr-defined]
        if initial is None:
            crc = self.init
        else:
            crc = (initial ^ self.xor_out) & self.mask
            if self.reflect_in != self.reflect_out:
                crc = _reflect(crc, self.width)
        if self.reflect_in:
            for byte in data:
                crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
        else:
            shift = self.width - 8
            for byte in data:
                crc = (table[((crc >> shift) ^ byte) & 0xFF] ^ (crc << 8)) & self.mask
        if self.reflect_in != self.reflect_out:
            crc = _reflect(crc, self.width)
        return (crc ^ self.xor_out) & self.mask

    def compute_rows(self, rows: np.ndarray) -> np.ndarray:
        """CRC of every row of a ``uint8`` matrix at once (vectorised).

        ``rows`` has shape ``(n, width)``; the result is a ``uint32`` array
        of ``n`` CRCs, bit-identical to calling :meth:`compute` on each
        row's bytes.  The trick is to iterate over byte *positions* (the
        row width, e.g. ~88 for a masked RoCEv2 report frame) while the
        table lookup and xor/shift run as numpy vector operations over all
        rows -- this is what makes whole-batch iCRC generation and
        validation cheap.

        Only reflected 32-bit algorithms are supported (the iCRC family);
        anything else falls back to a per-row scalar loop.
        """
        rows = np.asarray(rows, dtype=np.uint8)
        if rows.ndim != 2:
            raise ValueError(f"expected a 2-D byte matrix, got shape {rows.shape}")
        if not (self.width == 32 and self.reflect_in and self.reflect_out):
            return np.fromiter(
                (self.compute(row.tobytes()) for row in rows),
                dtype=np.uint32,
                count=len(rows),
            )
        if (
            self.poly == 0x04C11DB7
            and self.init == 0xFFFFFFFF
            and self.xor_out == 0xFFFFFFFF
        ):
            # This parameterisation *is* zlib's CRC-32; one C call per row
            # beats the position-wise numpy loop at every batch size (the
            # loop's cost is ~width numpy dispatches regardless of rows).
            data = np.ascontiguousarray(rows).tobytes()
            width = rows.shape[1]
            crc32_c = zlib.crc32
            return np.fromiter(
                (
                    crc32_c(data[start:start + width])
                    for start in range(0, len(data), width)
                ),
                dtype=np.uint32,
                count=len(rows),
            )
        table = self._np_table
        crc = np.full(len(rows), self.init, dtype=np.uint32)
        eight = np.uint32(8)
        for position in range(rows.shape[1]):
            crc = table[(crc ^ rows[:, position]) & np.uint32(0xFF)] ^ (
                crc >> eight
            )
        return crc ^ np.uint32(self.xor_out)

    @property
    def _np_table(self) -> np.ndarray:
        """The lookup table as a ``uint32`` array (built once, cached)."""
        cached = getattr(self, "_np_table_cache", None)
        if cached is None:
            cached = np.array(self._table, dtype=np.uint32)  # type: ignore[attr-defined]
            object.__setattr__(self, "_np_table_cache", cached)
        return cached

    def verify(self) -> bool:
        """Check the algorithm against its catalogue check value."""
        return self.compute(b"123456789") == self.check


# Catalogue entries used throughout the system.
CRC8 = CrcAlgorithm(
    name="CRC-8",
    width=8,
    poly=0x07,
    init=0x00,
    reflect_in=False,
    reflect_out=False,
    xor_out=0x00,
    check=0xF4,
)

CRC16_CCITT = CrcAlgorithm(
    name="CRC-16/CCITT-FALSE",
    width=16,
    poly=0x1021,
    init=0xFFFF,
    reflect_in=False,
    reflect_out=False,
    xor_out=0x0000,
    check=0x29B1,
)

#: The Ethernet / RoCEv2 iCRC polynomial (reflected CRC-32).
CRC32 = CrcAlgorithm(
    name="CRC-32",
    width=32,
    poly=0x04C11DB7,
    init=0xFFFFFFFF,
    reflect_in=True,
    reflect_out=True,
    xor_out=0xFFFFFFFF,
    check=0xCBF43926,
)

#: CRC-32C (Castagnoli), the other polynomial Tofino commonly exposes.
CRC32C = CrcAlgorithm(
    name="CRC-32C",
    width=32,
    poly=0x1EDC6F41,
    init=0xFFFFFFFF,
    reflect_in=True,
    reflect_out=True,
    xor_out=0xFFFFFFFF,
    check=0xE3069283,
)


def crc8(data: bytes) -> int:
    """CRC-8 of ``data`` (plain 0x07 polynomial)."""
    return CRC8.compute(data)


def crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE of ``data``."""
    return CRC16_CCITT.compute(data)


def crc32(data: bytes) -> int:
    """Standard reflected CRC-32 of ``data`` (Ethernet / RoCEv2 iCRC)."""
    return CRC32.compute(data)


def crc32c(data: bytes) -> int:
    """CRC-32C (Castagnoli) of ``data``."""
    return CRC32C.compute(data)
