"""Indexed family of independent global hash functions.

DART (paper section 3.1) requires a *stateless* mapping from telemetry keys
to memory addresses that every switch and every query client computes
identically: ``h_n(key)`` for ``n in [0, N)`` selects the N redundant slot
addresses, and a separate function selects the collector.

We realise the family with strong 64-bit integer mixers (splitmix64 /
xxhash-style avalanche) over a canonical byte encoding of the key, seeded per
function index.  Mixers of this form are well-distributed and pass avalanche
tests, which the property-based test-suite checks directly.

Vectorised variants (numpy ``uint64`` arrays in, arrays out) power the
statistical simulator, which needs to hash tens of millions of keys.
"""

from __future__ import annotations

import struct
from typing import Iterable, Union

import numpy as np

Key = Union[bytes, str, int, tuple]

_U64 = 0xFFFFFFFFFFFFFFFF


def stable_key_bytes(key: Key) -> bytes:
    """Canonical byte encoding of a telemetry key.

    Keys in DART deployments are things like flow 5-tuples, (switch ID,
    5-tuple) pairs, or query IDs (Table 1 of the paper).  All parties must
    encode a key the same way, so this function is the single source of
    truth: ints become 8-byte big-endian (wider ints use as many bytes as
    needed), strings become UTF-8, tuples are length-prefixed
    concatenations of their encoded elements.
    """
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, bool):
        raise TypeError("bool is not a valid telemetry key")
    if isinstance(key, int):
        if key < 0:
            raise ValueError(f"telemetry keys must be non-negative, got {key}")
        length = max(8, (key.bit_length() + 7) // 8)
        return key.to_bytes(length, "big")
    if isinstance(key, tuple):
        parts = []
        for element in key:
            encoded = stable_key_bytes(element)
            parts.append(struct.pack(">I", len(encoded)))
            parts.append(encoded)
        return b"".join(parts)
    raise TypeError(f"unsupported key type: {type(key).__name__}")


def splitmix64(value: int) -> int:
    """One round of the splitmix64 generator/mixer (scalar)."""
    value = (value + 0x9E3779B97F4A7C15) & _U64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _U64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _U64
    return value ^ (value >> 31)


def mix64(value: int, seed: int = 0) -> int:
    """Strong 64-bit avalanche mix of ``value`` under ``seed``."""
    return splitmix64((value ^ splitmix64(seed)) & _U64)


def fold_key(key: Key) -> int:
    """Fold a key into its seed-independent 64-bit lane.

    This is the expensive, per-key part of every family hash (byte
    encoding plus chunk mixing) and it does not depend on the function
    index, so batch paths compute it once per key and finish each family
    member with the cheap :meth:`HashFamily.hash_folded` mix.  By
    construction ``hash_folded(fold_key(k), i) == hash_key(k, i)``.
    """
    return _fold_bytes(stable_key_bytes(key))


def _fold_bytes(data: bytes) -> int:
    """Fold arbitrary-length bytes into a 64-bit lane with mixing per word."""
    acc = 0xCBF29CE484222325  # FNV offset basis, an arbitrary non-zero start
    for offset in range(0, len(data), 8):
        chunk = data[offset : offset + 8]
        word = int.from_bytes(chunk, "big")
        acc = splitmix64((acc ^ word) & _U64)
    # Mix in the length so prefixes don't collide with padded keys.
    return splitmix64((acc ^ len(data)) & _U64)


def fold_keys(keys: Iterable[Key]) -> np.ndarray:
    """Fold many keys into a ``uint64`` lane array (one :func:`fold_key` each).

    The per-key fold is irreducibly scalar (arbitrary Python keys, chunked
    byte mixing), but it is the *only* scalar work the columnar batch path
    performs; every downstream family hash finishes vectorised via
    :meth:`HashFamily.hash_folded_array`.
    """
    keys = list(keys) if not isinstance(keys, (list, tuple)) else keys
    return np.fromiter(
        (fold_key(key) for key in keys), dtype=np.uint64, count=len(keys)
    )


def _splitmix64_np(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 over a ``uint64`` array."""
    with np.errstate(over="ignore"):
        values = values + np.uint64(0x9E3779B97F4A7C15)
        values = (values ^ (values >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        values = (values ^ (values >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return values ^ (values >> np.uint64(31))


class HashFamily:
    """A family of independent hash functions ``h_0, h_1, ...``.

    Every party constructing a ``HashFamily`` with the same ``seed`` obtains
    the same functions; this is what makes DART's addressing *global* and
    coordination-free.

    Parameters
    ----------
    seed:
        Network-wide configuration constant distributed to switches by the
        control plane and known to query clients.
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.seed = seed
        self._base = splitmix64(seed & _U64)
        self._seed_cache: dict = {}

    def __repr__(self) -> str:
        return f"HashFamily(seed={self.seed})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashFamily) and other.seed == self.seed

    def __hash__(self) -> int:
        return hash(("HashFamily", self.seed))

    def _function_seed(self, index: int) -> int:
        seed = self._seed_cache.get(index)
        if seed is None:
            if index < 0:
                raise ValueError("hash function index must be non-negative")
            seed = splitmix64((self._base ^ (index * 0xA24BAED4963EE407)) & _U64)
            self._seed_cache[index] = seed
        return seed

    def hash_key(self, key: Key, index: int = 0) -> int:
        """64-bit hash of ``key`` under family member ``index``."""
        folded = _fold_bytes(stable_key_bytes(key))
        return mix64(folded, self._function_seed(index))

    def hash_folded(self, folded: int, index: int = 0) -> int:
        """Finish a :func:`fold_key` lane under family member ``index``.

        Equals ``hash_key(key, index)`` when ``folded == fold_key(key)``;
        the batch addressing path folds each key once and calls this per
        family member.
        """
        return mix64(folded, self._function_seed(index))

    def hash_folded_array(self, folded: np.ndarray, index: int = 0) -> np.ndarray:
        """Vectorised :meth:`hash_folded` over a ``uint64`` lane array.

        Bit-identical to the scalar method element-wise (unlike
        :meth:`hash_array`, which hashes integer identities): this is the
        mixer the columnar batch path uses so that columnar addressing
        matches scalar addressing exactly.
        """
        folded = np.asarray(folded, dtype=np.uint64)
        seed = np.uint64(splitmix64(self._function_seed(index)))
        with np.errstate(over="ignore"):
            return _splitmix64_np(folded ^ seed)

    def hash_key_mod(self, key: Key, index: int, modulus: int) -> int:
        """``hash_key`` reduced to ``[0, modulus)``."""
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        return self.hash_key(key, index) % modulus

    def hash_many(self, key: Key, count: int) -> list:
        """The first ``count`` family hashes of ``key``."""
        return [self.hash_key(key, index) for index in range(count)]

    # ------------------------------------------------------------------
    # Vectorised interface (statistical simulator path)
    # ------------------------------------------------------------------

    def hash_array(self, keys: np.ndarray, index: int = 0) -> np.ndarray:
        """Vectorised 64-bit hash of integer keys under member ``index``.

        ``keys`` is interpreted as identities (e.g. flow numbers); the result
        matches what a scalar path hashing the same integer identity would
        produce only in distribution, not bit-for-bit -- the simulator cares
        about uniformity and independence, not wire-format equality.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        seed = np.uint64(self._function_seed(index))
        return _splitmix64_np(keys ^ seed)

    def hash_array_mod(
        self, keys: np.ndarray, index: int, modulus: int
    ) -> np.ndarray:
        """Vectorised ``hash_array`` reduced to ``[0, modulus)``."""
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        return self.hash_array(keys, index) % np.uint64(modulus)


def hash_distribution_chi2(samples: Iterable[int], buckets: int) -> float:
    """Chi-squared statistic of hash samples bucketed uniformly.

    A helper for tests and for operators validating that a configured hash
    family spreads their real key population evenly.  The expected value for
    a uniform hash is approximately ``buckets - 1``.
    """
    counts = np.zeros(buckets, dtype=np.int64)
    total = 0
    for sample in samples:
        counts[sample % buckets] += 1
        total += 1
    if total == 0:
        raise ValueError("no samples supplied")
    expected = total / buckets
    return float(((counts - expected) ** 2 / expected).sum())
