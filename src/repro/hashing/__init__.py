"""Hashing substrate for the DART reproduction.

DART's correctness hinges on *global* hash functions: every switch and every
query client must map a telemetry key to exactly the same collector and the
same N slot addresses, with no coordination.  This package provides the
building blocks:

- :mod:`repro.hashing.crc` -- table-driven CRC variants.  Tofino exposes CRC
  polynomials as its hashing extern, and RoCEv2 frames carry a CRC-32
  invariant checksum (iCRC), so CRCs appear twice in the system.
- :mod:`repro.hashing.hash_family` -- an indexed family of independent 64-bit
  hash functions built from strong integer mixers, used for the
  (key, n) -> slot-address mapping and the key -> collector mapping.
- :mod:`repro.hashing.checksum` -- the b-bit key checksum stored alongside
  each value so that overwritten slots can be detected at query time.
"""

from repro.hashing.crc import (
    CRC8,
    CRC16_CCITT,
    CRC32,
    CRC32C,
    CrcAlgorithm,
    crc8,
    crc16,
    crc32,
    crc32c,
)
from repro.hashing.hash_family import (
    HashFamily,
    fold_key,
    mix64,
    splitmix64,
    stable_key_bytes,
)
from repro.hashing.checksum import KeyChecksum

__all__ = [
    "CRC8",
    "CRC16_CCITT",
    "CRC32",
    "CRC32C",
    "CrcAlgorithm",
    "crc8",
    "crc16",
    "crc32",
    "crc32c",
    "HashFamily",
    "KeyChecksum",
    "fold_key",
    "mix64",
    "splitmix64",
    "stable_key_bytes",
]
