"""b-bit key checksums stored alongside telemetry values.

To keep slots small, DART does not store the key itself: each slot holds a
``b``-bit checksum of the key plus the value (paper section 3.1).  At query
time, slots whose stored checksum does not match the queried key's checksum
are known to have been overwritten by a different key and are discarded.

The paper's analysis (section 4) assumes the checksum is uniformly
distributed over ``2**b`` values for any key; we derive it from the same
global hash family so the assumption holds by construction, and the
test-suite verifies uniformity empirically.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.hash_family import HashFamily, Key

#: Hash-family member index reserved for checksums.  Slot addressing uses
#: indexes [0, N) and collector selection uses its own reserved index, so the
#: checksum must live far away from both to stay independent of them.
CHECKSUM_FUNCTION_INDEX = 0x7FFFFFFF


class KeyChecksum:
    """Computes the ``b``-bit checksum of telemetry keys.

    Parameters
    ----------
    bits:
        Checksum width ``b``.  The paper evaluates 8, 16 and 32 bits
        (Figure 5) and recommends 32 as the default.
    family:
        The global hash family; defaults to seed 0.
    """

    def __init__(self, bits: int = 32, family: HashFamily | None = None) -> None:
        if not 1 <= bits <= 64:
            raise ValueError(f"checksum width must be in [1, 64], got {bits}")
        self.bits = bits
        self.family = family if family is not None else HashFamily()
        self._mask = (1 << bits) - 1

    def __repr__(self) -> str:
        return f"KeyChecksum(bits={self.bits}, family={self.family!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, KeyChecksum)
            and other.bits == self.bits
            and other.family == self.family
        )

    def __hash__(self) -> int:
        return hash(("KeyChecksum", self.bits, self.family))

    @property
    def nbytes(self) -> int:
        """Bytes needed to store one checksum in a slot."""
        return (self.bits + 7) // 8

    def compute(self, key: Key) -> int:
        """The ``b``-bit checksum of ``key``."""
        return self.family.hash_key(key, CHECKSUM_FUNCTION_INDEX) & self._mask

    def compute_folded(self, folded: int) -> int:
        """The checksum from a pre-folded key lane (see
        :func:`~repro.hashing.hash_family.fold_key`); equals
        :meth:`compute` on the original key."""
        return (
            self.family.hash_folded(folded, CHECKSUM_FUNCTION_INDEX)
            & self._mask
        )

    def compute_folded_array(self, folded: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`compute_folded` over a lane array.

        Bit-identical to the scalar method element-wise; the columnar
        batch path derives every report's stored checksum this way.
        """
        hashes = self.family.hash_folded_array(folded, CHECKSUM_FUNCTION_INDEX)
        return hashes & np.uint64(self._mask)

    def compute_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised checksum of integer key identities."""
        hashes = self.family.hash_array(keys, CHECKSUM_FUNCTION_INDEX)
        return hashes & np.uint64(self._mask)

    def matches(self, key: Key, stored: int) -> bool:
        """Whether a stored checksum is consistent with ``key``."""
        return self.compute(key) == (stored & self._mask)

    def collision_probability(self) -> float:
        """Probability a *different* key produces the same checksum (2^-b)."""
        return 2.0 ** -self.bits
