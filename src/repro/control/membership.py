"""Fleet membership: who serves which keyspace role, and in what health.

DART's keyspace is a function of the config (``hash(key) % num_collectors``),
so the unit of membership is the *role*, not the host: a role must always
be served by exactly one live collector, while hosts move between serving,
standby and failed states.  :class:`FleetMembership` is the controller's
authoritative view of that assignment -- it mirrors the
:class:`~repro.collector.collector.CollectorCluster` role map and layers
health state (probe misses, suspicion, confirmed failure) on top.

Probe traffic gets its own fabric address space
(:data:`PROBE_ENDPOINT_BASE`): role endpoints say "whoever serves role r",
but a failure detector must ask "is *host n* alive" -- including standbys
and displaced hosts that no role points at -- so every host is attached at
a node-addressed probe port disjoint from the role endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.collector.collector import Collector, CollectorCluster
from repro.fabric.fabric import Fabric

#: Fabric endpoint IDs for node-addressed probe ports: probe traffic for
#: host ``n`` goes to endpoint ``PROBE_ENDPOINT_BASE + n``.  Far above any
#: keyspace role, so role rebinds never collide with probe routes.
PROBE_ENDPOINT_BASE = 1 << 20


def probe_endpoint(node_id: int) -> int:
    """The fabric endpoint ID of host ``node_id``'s probe port."""
    return PROBE_ENDPOINT_BASE + node_id


class MemberState(Enum):
    """Lifecycle of one collector host, as the controller sees it."""

    #: Serving a keyspace role and answering probes.
    ACTIVE = "active"
    #: Warm spare: provisioned, probed, holding no role.
    STANDBY = "standby"
    #: Missed probes, below the failure threshold; still serving.
    SUSPECT = "suspect"
    #: Confirmed dead by the detector; displaced (or awaiting failover).
    FAILED = "failed"
    #: Gracefully displaced by a drain, alive but roleless.
    DRAINED = "drained"


@dataclass
class Member:
    """One host's control-plane record."""

    node_id: int
    state: MemberState
    #: The keyspace role the host serves, or None (standby/failed/drained).
    role: Optional[int] = None
    #: Consecutive probe sweeps the host has failed to answer.
    missed_probes: int = 0
    #: Controller tick at which the current miss streak started.
    suspected_at_tick: Optional[int] = None
    #: Times this host has been failed over away from.
    failures: int = field(default=0)

    def note_probe(self, ok: bool, tick: int) -> None:
        """Fold one probe result into the miss streak."""
        if ok:
            self.missed_probes = 0
            self.suspected_at_tick = None
        else:
            if self.missed_probes == 0:
                self.suspected_at_tick = tick
            self.missed_probes += 1


class FleetMembership:
    """The controller's live host table, kept in step with the cluster.

    Construction snapshots the cluster's bring-up assignment (role ``i``
    served by node ``i``, spares standby); the controller mutates records
    through the transition methods as the detector and failover paths
    fire, and the cluster's role map stays the single source of truth for
    *routing* while this table is the source of truth for *health*.
    """

    def __init__(self, cluster: CollectorCluster) -> None:
        self.cluster = cluster
        self._members: Dict[int, Member] = {}
        for role in range(len(cluster)):
            node = cluster.node_for(role)
            self._members[node.collector_id] = Member(
                node_id=node.collector_id, state=MemberState.ACTIVE, role=role
            )
        for node in cluster.standbys:
            self._members[node.collector_id] = Member(
                node_id=node.collector_id, state=MemberState.STANDBY
            )

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self):
        return iter(self.members)

    def __repr__(self) -> str:
        counts = {}
        for member in self._members.values():
            counts[member.state.value] = counts.get(member.state.value, 0) + 1
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        return f"FleetMembership({rendered})"

    @property
    def members(self) -> List[Member]:
        """Every record, in node-ID order."""
        return [self._members[nid] for nid in sorted(self._members)]

    def member(self, node_id: int) -> Member:
        """The record for one host (KeyError if unknown)."""
        try:
            return self._members[node_id]
        except KeyError:
            raise KeyError(
                f"no member with node ID {node_id}; known: "
                f"{sorted(self._members)}"
            ) from None

    def in_state(self, *states: MemberState) -> List[Member]:
        """Records currently in any of ``states``, node-ID order."""
        return [m for m in self.members if m.state in states]

    def count(self, state: MemberState) -> int:
        """How many hosts are in ``state``."""
        return sum(1 for m in self._members.values() if m.state is state)

    # ------------------------------------------------------------------
    # Probe plumbing
    # ------------------------------------------------------------------

    def attach_probes(self, fabric: Fabric) -> None:
        """Give every host a node-addressed probe port on the fabric.

        Role endpoints answer "where do reports for role r go"; probe
        ports answer "is host n alive" -- they must exist for standbys and
        survive failovers unchanged, hence the disjoint address space.
        Idempotent: re-attaching rebinds the same ports.
        """
        for node in self.cluster.all_nodes:
            fabric.rebind(probe_endpoint(node.collector_id), node)

    def node(self, node_id: int) -> Collector:
        """The host object behind a record."""
        return self.cluster.node(node_id)

    # ------------------------------------------------------------------
    # State transitions (called by the detector / controller)
    # ------------------------------------------------------------------

    def mark_suspect(self, node_id: int) -> None:
        """An ACTIVE host missed probes but is not yet confirmed dead."""
        member = self.member(node_id)
        if member.state is MemberState.ACTIVE:
            member.state = MemberState.SUSPECT

    def mark_alive(self, node_id: int) -> None:
        """A SUSPECT host answered again; clear the suspicion."""
        member = self.member(node_id)
        if member.state is MemberState.SUSPECT:
            member.state = MemberState.ACTIVE

    def mark_failed(self, node_id: int) -> None:
        """The detector confirmed this host dead."""
        member = self.member(node_id)
        member.state = MemberState.FAILED
        member.failures += 1

    def record_promotion(self, role: int, standby_id: int, displaced_id: int,
                         *, drained: bool = False) -> None:
        """Reflect a completed failover/drain in the member records."""
        standby = self.member(standby_id)
        standby.state = MemberState.ACTIVE
        standby.role = role
        standby.missed_probes = 0
        standby.suspected_at_tick = None
        displaced = self.member(displaced_id)
        displaced.role = None
        displaced.state = (
            MemberState.DRAINED if drained else MemberState.FAILED
        )

    def record_readmission(self, node_id: int) -> None:
        """A recovered host rejoined the spare pool."""
        member = self.member(node_id)
        member.state = MemberState.STANDBY
        member.role = None
        member.missed_probes = 0
        member.suspected_at_tick = None
