"""Failure detection: RDMA READ probes corroborated by registry signals.

A dead collector is invisible to the data plane by design -- switches
fire-and-forget RDMA WRITEs, so nothing upstream notices the blackhole.
The detector therefore asks the question the data plane cannot: each
sweep, a :class:`ProbeStation` issues a one-sided RDMA READ of slot 0 to
every host's NIC over the same fabric reports traverse (a probe exercises
the NIC, the QP and the registered region end to end -- exactly the
machinery reports need).  A host that fails enough consecutive probes is
confirmed dead.

Probes alone can be slow under loss, so :class:`FailureDetector` also
reads cluster-level signals from the metrics registry -- SLO rules in the
firing state (``alerts_firing``) and growth in endpoint-rejected frames
(``fabric_frames_rejected``, which a dead host's port inflates) -- and
counts corroboration as one extra missed probe, shaving a sweep off
detection when the observability layer already sees trouble.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import obs
from repro.control.membership import (
    FleetMembership,
    Member,
    MemberState,
    probe_endpoint,
)
from repro.fabric.fabric import Fabric
from repro.rdma.packets import (
    Bth,
    EthernetHeader,
    Ipv4Header,
    Opcode,
    PacketDecodeError,
    Reth,
    RoceV2Packet,
    UdpHeader,
)
from repro.rdma.qp import PSN_MODULUS

#: Reporter-ID namespace for probe stations, disjoint from switch IDs
#: (small integers) and operator stations (``0x8000 + id``), so probe QPs
#: never collide with reporting or query QPs on a collector NIC.
PROBE_REPORTER_BASE = 0xA000


class ProbeStation:
    """Issues liveness probes as one-sided RDMA READs of slot 0.

    Each host gets a dedicated probe responder QP at construction (PSNs
    are per-QP in RoCEv2, so probe traffic cannot disturb report or query
    sequencing).  Probes address hosts by *node* through the probe port
    address space, so standbys and displaced hosts are probeable even
    though no keyspace role routes to them.
    """

    def __init__(
        self,
        membership: FleetMembership,
        fabric: Fabric,
        station_id: int = 0,
    ) -> None:
        if station_id < 0:
            raise ValueError("station_id must be non-negative")
        self.membership = membership
        self.fabric = fabric
        self.station_id = station_id
        cluster = membership.cluster
        self.config = cluster.config
        self.mac = f"02:9b:{(station_id >> 8) & 0xFF:02x}:{station_id & 0xFF:02x}:00:01"
        self.ip = f"192.168.{128 | ((station_id >> 8) & 0x7F)}.{station_id & 0xFF}"
        membership.attach_probes(fabric)
        self._qps: Dict[int, int] = {}  # node -> our QP number there
        self._psns: Dict[int, int] = {}  # node -> next request PSN
        for node in cluster.all_nodes:
            qp = node.create_reporter_qp(PROBE_REPORTER_BASE + station_id)
            self._qps[node.collector_id] = qp.qp_number
            self._psns[node.collector_id] = qp.expected_psn
        registry = obs.get_registry()
        labels = registry.instance_labels("ProbeStation")
        #: Probe READs issued.
        self.c_sent = registry.counter("controller_probes_sent", labels=labels)
        #: Probes with no (or an invalid) response.
        self.c_failed = registry.counter(
            "controller_probes_failed", labels=labels
        )

    def __repr__(self) -> str:
        return (
            f"ProbeStation(id={self.station_id}, "
            f"nodes={len(self._qps)})"
        )

    @property
    def probes_sent(self) -> int:
        """Probe READs issued (registry-backed)."""
        return self.c_sent.value

    @property
    def probes_failed(self) -> int:
        """Probes with no or an invalid response (registry-backed)."""
        return self.c_failed.value

    def probe(self, node_id: int) -> bool:
        """One liveness READ round trip to host ``node_id``.

        True iff the host's NIC executed the READ and returned a valid
        response for our PSN.  A dead host loses the request outright; a
        live one that lost earlier probes resyncs via the QP's
        ``RESYNC_ON_GAP`` policy, so recovery is observed without any
        probe-side bookkeeping.
        """
        node = self.membership.node(node_id)
        endpoint_id = probe_endpoint(node_id)
        psn = self._psns[node_id]
        self._psns[node_id] = (psn + 1) % PSN_MODULUS
        request = RoceV2Packet(
            eth=EthernetHeader(dst_mac=node.nic.mac, src_mac=self.mac),
            ipv4=Ipv4Header(src_ip=self.ip, dst_ip=node.nic.ip),
            udp=UdpHeader(src_port=0xD100),
            bth=Bth(
                opcode=int(Opcode.RC_RDMA_READ_REQUEST),
                dest_qp=self._qps[node_id],
                psn=psn,
            ),
            reth=Reth(
                virtual_address=node.region.base_address,
                rkey=node.region.rkey,
                dma_length=self.config.slot_bytes,
            ),
        )
        self.c_sent.inc()
        if self.fabric.send(endpoint_id, request.pack()) is False:
            self.c_failed.inc()
            return False
        responses = self.fabric.poll(endpoint_id)
        if not responses:
            self.c_failed.inc()
            return False
        try:
            response = RoceV2Packet.unpack(responses[-1])
        except PacketDecodeError:
            self.c_failed.inc()
            return False
        if response.bth.opcode != Opcode.RC_RDMA_READ_RESPONSE_ONLY:
            self.c_failed.inc()
            return False
        if response.bth.psn != psn:
            self.c_failed.inc()
            return False
        return True


class FailureDetector:
    """Turns probe results + registry corroboration into failure verdicts.

    Parameters
    ----------
    probes:
        The probe station doing the asking.
    membership:
        The host table whose records accumulate miss streaks.
    fail_after:
        Consecutive missed probes that confirm a host dead.  With
        corroboration (a firing SLO alert or endpoint-rejection growth),
        the effective threshold drops by one -- the registry already
        vouches that something is wrong, so the detector need not wait
        for the full streak.
    """

    def __init__(
        self,
        probes: ProbeStation,
        membership: FleetMembership,
        *,
        fail_after: int = 2,
    ) -> None:
        if fail_after < 1:
            raise ValueError(f"fail_after must be >= 1, got {fail_after}")
        self.probes = probes
        self.membership = membership
        self.fail_after = fail_after
        self._registry = obs.get_registry()
        self._last_rejected: Optional[float] = None
        self.sweeps = 0

    def __repr__(self) -> str:
        return (
            f"FailureDetector(fail_after={self.fail_after}, "
            f"sweeps={self.sweeps})"
        )

    def corroboration(self) -> bool:
        """Whether registry signals independently suggest a sick fleet.

        True when any SLO alert is firing (``alerts_firing`` > 0) or when
        endpoint-rejected frames (``fabric_frames_rejected``) grew since
        the previous sweep -- a dead host's port rejects every frame, so
        growth there is the data plane's own evidence of a blackhole.
        """
        if self._registry.total("alerts_firing") > 0:
            return True
        rejected = self._registry.total("fabric_frames_rejected")
        previous, self._last_rejected = self._last_rejected, rejected
        return previous is not None and rejected > previous

    def effective_threshold(self, corroborated: bool) -> int:
        """The miss streak that confirms failure this sweep (>= 1)."""
        if corroborated and self.fail_after > 1:
            return self.fail_after - 1
        return self.fail_after

    def sweep(self, tick: int) -> List[Member]:
        """Probe every non-failed host once; returns newly failed members.

        Updates each member's miss streak and ACTIVE/SUSPECT state.
        DRAINED hosts are still probed (they should stay alive to be
        readmitted) but never "fail" -- they hold no role, so there is
        nothing to fail over.
        """
        self.sweeps += 1
        corroborated = self.corroboration()
        threshold = self.effective_threshold(corroborated)
        newly_failed: List[Member] = []
        journal = obs.get_journal()
        for member in self.membership.members:
            if member.state is MemberState.FAILED:
                continue
            ok = self.probes.probe(member.node_id)
            member.note_probe(ok, tick)
            if ok:
                self.membership.mark_alive(member.node_id)
                continue
            if member.missed_probes == 1:
                # Journal the *start* of a miss streak, not every miss --
                # the postmortem wants the first symptom, not N repeats.
                journal.record(
                    "probe_failure",
                    f"node {member.node_id} missed its liveness probe",
                    tick=tick,
                    node=member.node_id,
                )
            if member.missed_probes >= threshold:
                if member.state is not MemberState.DRAINED:
                    self.membership.mark_failed(member.node_id)
                    newly_failed.append(member)
                    journal.record(
                        "member_failed",
                        f"node {member.node_id} confirmed dead after "
                        f"{member.missed_probes} missed probe(s)",
                        tick=tick,
                        node=member.node_id,
                        corroborated=corroborated,
                    )
            else:
                self.membership.mark_suspect(member.node_id)
        return newly_failed
