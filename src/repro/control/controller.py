"""The fleet controller: detector verdicts -> plans -> applied failovers.

This is the reconciliation loop the ROADMAP's production north star was
missing.  Each :meth:`FleetController.tick`:

1. sweeps the :class:`~repro.control.detector.FailureDetector` (RDMA READ
   probes + registry corroboration);
2. for every newly confirmed-dead host serving a role, computes a
   :class:`~repro.control.plan.ReconfigurationPlan` (epoch bump, keyspace
   remap to a standby, per-switch PSN resync) and applies it atomically to
   every registered switch via the
   :class:`~repro.switch.control_plane.SwitchControlPlane`;
3. rebinds the role's fabric endpoint to the promoted host, so in-flight
   addressing and future reports converge on the same node;
4. publishes its own state to the metrics registry
   (``controller_failovers_total``, ``controller_convergence_ticks``,
   per-state member gauges) -- the control loop is observable through the
   same pipeline it consumes.

Roles that cannot be placed (empty spare pool) stay on a retry list and
are re-attempted every tick, so adding capacity heals the fleet without
operator choreography.  The drain -> rejoin lifecycle reuses the same
plan/apply path for graceful maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import obs
from repro.collector.collector import CollectorCluster
from repro.collector.epochs import EpochManager
from repro.control.detector import FailureDetector, ProbeStation
from repro.control.membership import FleetMembership, MemberState
from repro.control.plan import (
    NoStandbyAvailableError,
    ReconfigurationPlan,
    apply_plan,
    build_failover_plan,
)
from repro.fabric.fabric import Fabric
from repro.obs.metrics import DEPTH_BUCKETS
from repro.switch.control_plane import SwitchControlPlane


@dataclass(frozen=True)
class FailoverEvent:
    """One completed role handover, for logs, tests and experiments."""

    tick: int
    role: int
    failed_node_id: int
    target_node_id: int
    epoch: int
    #: Controller ticks from first missed probe to applied plan.
    convergence_ticks: int
    #: True for operator-initiated drains (the displaced host is healthy).
    drained: bool = False

    def describe(self) -> str:
        """One-line operator rendering of the event."""
        verb = "drained" if self.drained else "failed over"
        return (
            f"tick {self.tick}: role {self.role} {verb} "
            f"node {self.failed_node_id} -> node {self.target_node_id} "
            f"(epoch {self.epoch}, converged in {self.convergence_ticks} "
            f"ticks)"
        )


class FleetController:
    """Maintains live collector membership and heals role assignments.

    Parameters
    ----------
    cluster:
        The fleet, including standbys (``CollectorCluster(num_standbys=...)``).
    control_plane:
        The plane that provisioned the switches; its registry of switches
        is the fleet a plan must cover.
    fabric:
        The transport probes ride and whose role endpoints failovers
        rebind.
    epoch_manager:
        Optional. When given, every failover bumps the epoch by rotating
        (archive + clear), so pre-failover data stays queryable from the
        archive and post-failover slots start clean; otherwise the
        controller keeps a plain epoch counter for table version tags.
    fail_after:
        Consecutive missed probes confirming death (see
        :class:`~repro.control.detector.FailureDetector`).
    tick_interval:
        Logical-clock units (e.g. packets sent) between controller ticks
        when driven through :meth:`maybe_tick`.
    """

    def __init__(
        self,
        cluster: CollectorCluster,
        control_plane: SwitchControlPlane,
        fabric: Fabric,
        *,
        epoch_manager: Optional[EpochManager] = None,
        fail_after: int = 2,
        tick_interval: int = 50,
        station_id: int = 0,
    ) -> None:
        if tick_interval < 1:
            raise ValueError(f"tick_interval must be >= 1, got {tick_interval}")
        self.cluster = cluster
        self.control_plane = control_plane
        self.fabric = fabric
        self.epoch_manager = epoch_manager
        self.tick_interval = tick_interval
        self.membership = FleetMembership(cluster)
        self.probes = ProbeStation(self.membership, fabric, station_id=station_id)
        self.detector = FailureDetector(
            self.probes, self.membership, fail_after=fail_after
        )
        self.ticks = 0
        self._last_clock: Optional[int] = None
        #: Table version tag when no epoch manager drives real rotations.
        self.epoch = 0
        #: Roles confirmed failed but unplaced (spare pool was empty);
        #: retried every tick.
        self.unserved_roles: List[int] = []
        self.events: List[FailoverEvent] = []

        registry = obs.get_registry()
        labels = registry.instance_labels("FleetController")
        self.c_failovers = registry.counter(
            "controller_failovers_total",
            labels=labels,
            help="role handovers applied to the switch fleet",
        )
        self.c_unplaced = registry.counter(
            "controller_failovers_unplaced_total",
            labels=labels,
            help="failovers deferred because the spare pool was empty",
        )
        self.h_convergence = registry.histogram(
            "controller_convergence_ticks",
            DEPTH_BUCKETS,
            labels=labels,
            help="controller ticks from first missed probe to applied plan",
        )
        self.g_epoch = registry.gauge(
            "controller_epoch", labels=labels,
            help="current table-version epoch",
        )
        self._state_gauges = {
            state: registry.gauge(
                "controller_members",
                labels=labels + (("state", state.value),),
                help="collector hosts per membership state",
            )
            for state in MemberState
        }
        self._publish_state()

    def __repr__(self) -> str:
        return (
            f"FleetController(ticks={self.ticks}, "
            f"failovers={int(self.c_failovers.value)}, "
            f"epoch={self.current_epoch})"
        )

    @property
    def current_epoch(self) -> int:
        """The table-version epoch switches are (being) moved to."""
        if self.epoch_manager is not None:
            return self.epoch_manager.current_epoch
        return self.epoch

    def shard_map(self):
        """The epoch-current keyspace shard map (the query-plane lookup API).

        Freezes the cluster's live role assignments under this
        controller's table-version epoch into an immutable
        :class:`~repro.control.shards.ShardMap`.  Consumers (the
        :mod:`repro.query` planner, result caches) compare a plan's or
        cache entry's epoch against a fresh map's to detect that a
        failover has remapped shards underneath them.
        """
        from repro.control.shards import shard_map_of

        return shard_map_of(self.cluster, epoch=self.current_epoch)

    def _publish_state(self) -> None:
        """Refresh the per-state member gauges and epoch gauge."""
        for state, gauge in self._state_gauges.items():
            gauge.set(self.membership.count(state))
        self.g_epoch.set(self.current_epoch)

    # ------------------------------------------------------------------
    # The reconciliation loop
    # ------------------------------------------------------------------

    def maybe_tick(self, clock: int) -> List[FailoverEvent]:
        """Tick when the logical clock has advanced a full interval.

        Deployments call this from their event loop (the packet-level
        simulation passes its packet count), giving the controller a
        deterministic cadence without wall-clock time.
        """
        if self._last_clock is not None and (
            clock - self._last_clock < self.tick_interval
        ):
            return []
        self._last_clock = clock
        return self.tick()

    def tick(self) -> List[FailoverEvent]:
        """One reconciliation round; returns the failovers it applied."""
        self.ticks += 1
        newly_failed = self.detector.sweep(self.ticks)
        events: List[FailoverEvent] = []
        for member in newly_failed:
            if member.role is not None:
                events.extend(self._try_failover(member.role, member))
            else:
                # A dead spare is no failover target; pull it from the pool.
                try:
                    self.cluster.withdraw(member.node_id)
                except ValueError:
                    pass  # already withdrawn (e.g. failed while unserved)
        # Retry roles that could not be placed earlier.
        for role in list(self.unserved_roles):
            member = self.membership.member(
                self.cluster.node_for(role).collector_id
            )
            events.extend(self._try_failover(role, member, retry=True))
        self._publish_state()
        return events

    def _try_failover(self, role, member, retry: bool = False) -> List[FailoverEvent]:
        """Attempt one role handover; defers (and counts) unplaced roles."""
        try:
            event = self._handover(role, member.suspected_at_tick, drained=False)
        except NoStandbyAvailableError:
            if not retry:
                self.c_unplaced.inc()
                self.unserved_roles.append(role)
            return []
        if role in self.unserved_roles:
            self.unserved_roles.remove(role)
        return [event]

    def _bump_epoch(self) -> int:
        """Advance the table version (rotating real epochs when managed)."""
        if self.epoch_manager is not None:
            self.epoch_manager.rotate()
            epoch = self.epoch_manager.current_epoch
        else:
            self.epoch += 1
            epoch = self.epoch
        obs.get_journal().record(
            "epoch_bump",
            f"table version advanced to epoch {epoch}",
            tick=self.ticks,
            epoch=epoch,
        )
        return epoch

    def _handover(
        self, role: int, suspected_at: Optional[int], drained: bool
    ) -> FailoverEvent:
        """Plan + apply one role move; the shared failover/drain core."""
        epoch = self._bump_epoch()
        plan: ReconfigurationPlan = build_failover_plan(
            role,
            self.cluster,
            self.control_plane.switches,
            epoch,
            membership=self.membership,
        )
        apply_plan(plan, self.control_plane, self.control_plane.switches)
        obs.get_journal().record(
            "plan_apply",
            f"role {role}: node {plan.failed_node_id} -> "
            f"node {plan.target_node_id} at epoch {epoch}",
            tick=self.ticks,
            role=role,
            failed=plan.failed_node_id,
            target=plan.target_node_id,
            epoch=epoch,
        )
        # Only after every switch accepted the plan does routing move: the
        # cluster's role map, then the fabric endpoint.
        target = self.cluster.node(plan.target_node_id)
        self.cluster.promote(role, plan.target_node_id)
        self.fabric.rebind(role, target)
        self.membership.record_promotion(
            role, plan.target_node_id, plan.failed_node_id, drained=drained
        )
        started = suspected_at if suspected_at is not None else self.ticks
        convergence = max(1, self.ticks - started + 1)
        self.c_failovers.inc()
        self.h_convergence.observe(convergence)
        event = FailoverEvent(
            tick=self.ticks,
            role=role,
            failed_node_id=plan.failed_node_id,
            target_node_id=plan.target_node_id,
            epoch=epoch,
            convergence_ticks=convergence,
            drained=drained,
        )
        self.events.append(event)
        obs.get_journal().record(
            "drain" if drained else "failover",
            event.describe(),
            tick=self.ticks,
            role=role,
            target=plan.target_node_id,
            epoch=epoch,
        )
        self._publish_state()
        return event

    # ------------------------------------------------------------------
    # Operator lifecycle: drain and rejoin
    # ------------------------------------------------------------------

    def drain(self, role: int) -> FailoverEvent:
        """Gracefully move ``role`` off its (healthy) host.

        Queued frames are flushed to the outgoing host first, so a drain
        loses nothing; the displaced host ends up DRAINED and can be
        readmitted immediately via :meth:`rejoin`.
        """
        self.fabric.flush()
        event = self._handover(role, None, drained=True)
        return event

    def rejoin(self, node_id: int) -> None:
        """Re-admit a recovered (or drained) host as a standby.

        The host must be alive again (:meth:`Collector.recover` for a
        crashed one); its region is zeroed on readmission -- the epochs it
        missed are lost, exactly the paper's epoch semantics.
        """
        self.cluster.readmit(node_id)
        self.membership.record_readmission(node_id)
        obs.get_journal().record(
            "rejoin",
            f"node {node_id} readmitted as standby",
            tick=self.ticks,
            node=node_id,
        )
        self._publish_state()
