"""repro.control: collector failure detection, failover and re-provisioning.

The control loop DART's data plane cannot provide for itself: because
switches write collector memory with fire-and-forget RDMA and the
collector CPU is idle by design, a dead collector silently blackholes its
share of the keyspace.  This package closes the loop --

- :mod:`~repro.control.membership` tracks which host serves which
  keyspace role and each host's health state;
- :mod:`~repro.control.detector` confirms failures with one-sided RDMA
  READ probes, corroborated by metrics-registry signals;
- :mod:`~repro.control.plan` computes the immutable switch-table diff a
  failover needs (keyspace remap, PSN resync, epoch tag);
- :mod:`~repro.control.controller` reconciles: it applies plans
  atomically through the switch control plane, rebinds fabric routing,
  and runs the drain -> rejoin lifecycle.
"""

from repro.control.controller import FailoverEvent, FleetController
from repro.control.detector import (
    PROBE_REPORTER_BASE,
    FailureDetector,
    ProbeStation,
)
from repro.control.membership import (
    PROBE_ENDPOINT_BASE,
    FleetMembership,
    Member,
    MemberState,
    probe_endpoint,
)
from repro.control.plan import (
    NoStandbyAvailableError,
    ReconfigurationPlan,
    SwitchUpdate,
    apply_plan,
    build_failover_plan,
    select_standby,
)
from repro.control.shards import ShardAssignment, ShardMap, shard_map_of

__all__ = [
    "PROBE_ENDPOINT_BASE",
    "PROBE_REPORTER_BASE",
    "FailoverEvent",
    "FailureDetector",
    "FleetController",
    "FleetMembership",
    "Member",
    "MemberState",
    "NoStandbyAvailableError",
    "ProbeStation",
    "ReconfigurationPlan",
    "ShardAssignment",
    "ShardMap",
    "SwitchUpdate",
    "apply_plan",
    "build_failover_plan",
    "probe_endpoint",
    "select_standby",
    "shard_map_of",
]
