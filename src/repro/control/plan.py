"""Reconfiguration plans: the computed diff a failover applies to switches.

Separating *planning* from *execution* keeps the failover auditable: the
detector's verdict produces an immutable :class:`ReconfigurationPlan`
naming the role, the dead host, the chosen standby and the exact row each
switch will get (endpoint parameters + the initial PSN resynced from the
standby's per-switch responder QP + the new epoch tag).  :func:`apply_plan`
then executes it atomically across the fleet: if any switch update raises,
every switch already updated is rolled back to its snapshotted previous
row, so the fleet never runs a mix of epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.collector.collector import Collector, CollectorCluster, CollectorEndpoint
from repro.control.membership import FleetMembership, MemberState
from repro.switch.control_plane import SwitchControlPlane
from repro.switch.dart_switch import DartSwitch


class NoStandbyAvailableError(RuntimeError):
    """A failover was needed but the spare pool is empty.

    The fleet keeps running degraded -- the failed role blackholes until
    an operator adds capacity -- which is precisely the alert-worthy
    condition, so the error message names the role left unserved.
    """

    def __init__(self, role: int, failed_node_id: int) -> None:
        self.role = role
        self.failed_node_id = failed_node_id
        super().__init__(
            f"no standby available to take over role {role} from failed "
            f"node {failed_node_id}; the role is unserved until capacity "
            f"is added"
        )


@dataclass(frozen=True)
class SwitchUpdate:
    """One switch's row rewrite: re-point ``role`` at ``endpoint``."""

    switch_id: int
    role: int
    endpoint: CollectorEndpoint
    #: PSN register seed: the standby's per-switch responder QP's expected
    #: PSN, so the first post-failover report is in sequence.
    initial_psn: int
    #: The table version this update belongs to.
    epoch: int


@dataclass(frozen=True)
class ReconfigurationPlan:
    """The full, immutable diff one failover applies to the fleet."""

    epoch: int
    role: int
    failed_node_id: int
    target_node_id: int
    updates: Tuple[SwitchUpdate, ...]

    def describe(self) -> str:
        """One-line operator rendering of the plan."""
        return (
            f"plan[epoch {self.epoch}]: role {self.role} "
            f"node {self.failed_node_id} -> node {self.target_node_id} "
            f"({len(self.updates)} switch updates)"
        )


def select_standby(
    cluster: CollectorCluster, membership: Optional[FleetMembership] = None
) -> Optional[Collector]:
    """The first healthy spare, honouring the pool's promotion order.

    With a membership table, hosts the detector currently distrusts
    (anything not in the STANDBY state) are skipped -- promoting a suspect
    spare would just schedule the next failover.
    """
    for node in cluster.standbys:
        if membership is not None:
            member = membership.member(node.collector_id)
            if member.state is not MemberState.STANDBY:
                continue
        return node
    return None


def build_failover_plan(
    role: int,
    cluster: CollectorCluster,
    switches: Sequence[DartSwitch],
    epoch: int,
    membership: Optional[FleetMembership] = None,
) -> ReconfigurationPlan:
    """Compute the diff that moves ``role`` onto a healthy standby.

    For every switch the standby gets (idempotently) a dedicated responder
    QP -- RoCEv2 PSNs sequence per QP, so each switch's PSN register must
    seed from *its own* QP's expected PSN, not a shared value.  Raises
    :class:`NoStandbyAvailableError` when the spare pool has no healthy
    host.
    """
    if not 0 <= role < len(cluster):
        raise ValueError(f"role {role} outside [0, {len(cluster)})")
    failed_node = cluster.node_for(role)
    target = select_standby(cluster, membership)
    if target is None:
        raise NoStandbyAvailableError(role, failed_node.collector_id)
    updates: List[SwitchUpdate] = []
    for switch in switches:
        qp = target.create_reporter_qp(switch.switch_id)
        updates.append(
            SwitchUpdate(
                switch_id=switch.switch_id,
                role=role,
                endpoint=replace(target.endpoint, qp_number=qp.qp_number),
                initial_psn=qp.expected_psn,
                epoch=epoch,
            )
        )
    return ReconfigurationPlan(
        epoch=epoch,
        role=role,
        failed_node_id=failed_node.collector_id,
        target_node_id=target.collector_id,
        updates=tuple(updates),
    )


def apply_plan(
    plan: ReconfigurationPlan,
    control_plane: SwitchControlPlane,
    switches: Sequence[DartSwitch],
) -> int:
    """Execute a plan on every switch, atomically; returns switches updated.

    Each update snapshots the switch's previous row before rewriting it.
    If any update raises, all switches already rewritten are restored to
    their snapshots and the original exception propagates: either the
    whole fleet moves to ``plan.epoch`` or none of it does.
    """
    by_id: Dict[int, DartSwitch] = {s.switch_id: s for s in switches}
    applied: List[Tuple[DartSwitch, Optional[dict]]] = []
    try:
        for update in plan.updates:
            switch = by_id[update.switch_id]
            previous = control_plane.apply_update(
                switch,
                update.role,
                update.endpoint,
                initial_psn=update.initial_psn,
                epoch=update.epoch,
            )
            applied.append((switch, previous))
    except Exception as error:
        obs.get_journal().record(
            "plan_rollback",
            f"{plan.describe()} rolled back after {len(applied)} "
            f"update(s): {error}",
            role=plan.role,
            epoch=plan.epoch,
            applied=len(applied),
        )
        for switch, previous in reversed(applied):
            switch.collector_table.remove_entry((plan.role,))
            if previous is not None:
                rollback = dict(previous)
                initial_psn = rollback.pop("initial_psn", 0)
                epoch = rollback.pop("epoch", 0)
                switch.install_collector(
                    collector_id=plan.role,
                    initial_psn=initial_psn,
                    epoch=epoch,
                    **rollback,
                )
        raise
    return len(applied)
