"""The epoch-versioned shard map: the control plane's answer to "who
serves which keyspace shard *right now*?".

The query front end (:mod:`repro.query`) plans fan-out against keyspace
roles, but a role's serving *node* moves on failover and the epoch bumps
with it.  :class:`ShardMap` freezes one consistent reading of that state
-- ``(epoch, role -> node)`` plus each serving node's region coordinates
-- so a planner can bind a whole multi-shard query to a single table
version and detect staleness (a cached result or an in-flight plan whose
``epoch`` no longer matches the current map must be re-planned).

:func:`shard_map_of` derives a map from any
:class:`~repro.collector.collector.CollectorCluster`;
:meth:`~repro.control.controller.FleetController.shard_map` is the live
lookup API deployments use, tagging the map with the controller's
current table-version epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.collector.collector import CollectorCluster


@dataclass(frozen=True)
class ShardAssignment:
    """One keyspace shard binding: role -> serving node, frozen at read.

    Carries the node's region coordinates (rkey, base address, liveness)
    so a query backend can build one-sided readers without re-deriving
    them from mutable cluster state mid-plan.
    """

    role: int
    node_id: int
    rkey: int
    base_address: int
    alive: bool

    def describe(self) -> str:
        """One-line operator rendering of the assignment."""
        state = "up" if self.alive else "down"
        return (
            f"role {self.role} -> node {self.node_id} "
            f"(rkey={self.rkey:#x}, base={self.base_address:#x}, {state})"
        )


@dataclass(frozen=True)
class ShardMap:
    """An immutable epoch-consistent view of role -> node assignments."""

    epoch: int
    assignments: Tuple[ShardAssignment, ...]

    def __len__(self) -> int:
        return len(self.assignments)

    def __iter__(self):
        return iter(self.assignments)

    def assignment(self, role: int) -> ShardAssignment:
        """The assignment serving keyspace ``role`` (KeyError if unknown)."""
        if not 0 <= role < len(self.assignments):
            raise KeyError(
                f"no shard for role {role}; roles: 0..{len(self.assignments) - 1}"
            )
        return self.assignments[role]

    def node_for(self, role: int) -> int:
        """The node ID currently serving keyspace ``role``."""
        return self.assignment(role).node_id

    def roles(self) -> Tuple[int, ...]:
        """All keyspace roles, in role order."""
        return tuple(a.role for a in self.assignments)

    def as_dict(self) -> Dict[int, int]:
        """The plain ``{role: node_id}`` routing table."""
        return {a.role: a.node_id for a in self.assignments}

    def describe(self) -> str:
        """Multi-line operator rendering (epoch header + one row per shard)."""
        lines = [f"shard map @ epoch {self.epoch} ({len(self)} shards)"]
        lines.extend(f"  {a.describe()}" for a in self.assignments)
        return "\n".join(lines)


def shard_map_of(cluster: CollectorCluster, epoch: int = 0) -> ShardMap:
    """Freeze the cluster's live role map into a :class:`ShardMap`.

    Deployments without a fleet controller (fixed fleets, unit tests) can
    still hand the query planner an epoch-tagged map; ``epoch`` defaults
    to 0, matching the controller's pre-failover table version.
    """
    assignments = []
    for role in range(len(cluster)):
        node = cluster.node_for(role)
        assignments.append(
            ShardAssignment(
                role=role,
                node_id=node.collector_id,
                rkey=node.region.rkey,
                base_address=node.region.base_address,
                alive=node.alive,
            )
        )
    return ShardMap(epoch=epoch, assignments=tuple(assignments))
