"""Closed-form analysis of DART (paper section 4).

The collector memory is a hash table of M slots where only b-bit key
checksums are stored next to values, and writes overwrite silently.  With
K = alpha * M distinct keys written *after* a query key's last write, the
Poisson approximation gives, per the paper:

- any one of the key's N slots is overwritten w.p. ``1 - e^(-K N / M)
  = 1 - e^(-alpha N)`` (each of the K keys issues N uniformly random
  writes over M slots);
- all N slots overwritten: ``(1 - e^(-alpha N))^N``;
- *empty return* (no answer), simple single-match reader:
  ``(1 - e^(-alpha N))^N * (1 - 2^-b)^N`` plus a multi-match ambiguity
  term bounded above and below;
- *return error* (wrong answer): bounded between the single- and
  any-overwriting-checksum-collision events.

All functions accept scalars or numpy arrays in ``alpha`` and broadcast.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


def _validate(alpha: ArrayLike, redundancy: int, checksum_bits: int = 32) -> np.ndarray:
    alpha = np.asarray(alpha, dtype=np.float64)
    if np.any(alpha < 0):
        raise ValueError("load factor alpha must be non-negative")
    if redundancy < 1:
        raise ValueError(f"redundancy must be >= 1, got {redundancy}")
    if not 1 <= checksum_bits <= 64:
        raise ValueError(f"checksum_bits must be in [1, 64], got {checksum_bits}")
    return alpha


def p_slot_overwritten(alpha: ArrayLike, redundancy: int) -> ArrayLike:
    """Probability one specific slot was overwritten: ``1 - e^(-alpha N)``."""
    alpha = _validate(alpha, redundancy)
    return 1.0 - np.exp(-alpha * redundancy)


def p_all_copies_overwritten(alpha: ArrayLike, redundancy: int) -> ArrayLike:
    """Probability all N copies were overwritten: ``(1 - e^(-alpha N))^N``."""
    return p_slot_overwritten(alpha, redundancy) ** redundancy


def queryability(alpha: ArrayLike, redundancy: int) -> ArrayLike:
    """Probability at least one copy survives: ``1 - (1 - e^(-alpha N))^N``.

    This is the b -> infinity success probability: with long checksums,
    a query succeeds exactly when some copy survived (fake matches and
    ambiguity are negligible).  The paper quotes 38.7% for the oldest
    reports in Figure 4's 3 GB configuration from this expression.
    """
    return 1.0 - p_all_copies_overwritten(alpha, redundancy)


def empty_return_probability(
    alpha: ArrayLike, redundancy: int, checksum_bits: int
) -> ArrayLike:
    """Empty-return probability, no-checksum-found case (paper, section 4).

    All N copies overwritten and none of the overwriting keys share the
    query key's checksum: ``(1-e^(-aN))^N * (1 - 2^-b)^N``.
    """
    alpha = _validate(alpha, redundancy, checksum_bits)
    collision = 2.0 ** -checksum_bits
    return p_all_copies_overwritten(alpha, redundancy) * (1.0 - collision) ** redundancy


def empty_return_ambiguity_bounds(
    alpha: ArrayLike, redundancy: int, checksum_bits: int
) -> Tuple[ArrayLike, ArrayLike]:
    """Bounds on the empty return from *ambiguity* (two matching values).

    Lower bound (paper):

        sum_{j=1}^{N-1} C(N,j) (1-e^(-aN))^j e^(-aN(N-j)) (1-(1-2^-b)^j)

    -- at least one original copy survives but an overwritten slot also
    matches the checksum (pessimistically with a different value).  The
    upper bound adds the all-overwritten, two-or-more-collisions term:

        (1-e^(-aN))^N (1 - (1-2^-b)^N - N 2^-b (1-2^-b)^(N-1)).
    """
    alpha = _validate(alpha, redundancy, checksum_bits)
    n = redundancy
    p_over = 1.0 - np.exp(-alpha * n)
    p_live = np.exp(-alpha * n)
    collision = 2.0 ** -checksum_bits

    lower = np.zeros_like(np.asarray(alpha, dtype=np.float64))
    for j in range(1, n):
        lower = lower + (
            math.comb(n, j)
            * p_over**j
            * p_live ** (n - j)
            * (1.0 - (1.0 - collision) ** j)
        )
    extra = p_over**n * (
        1.0
        - (1.0 - collision) ** n
        - n * collision * (1.0 - collision) ** (n - 1)
    )
    upper = lower + extra
    return lower, upper


def return_error_bounds(
    alpha: ArrayLike, redundancy: int, checksum_bits: int
) -> Tuple[ArrayLike, ArrayLike]:
    """Bounds on the return-error probability (wrong answer).

    Lower: all N copies overwritten and exactly one overwriting key gets
    the checksum -- ``(1-e^(-aN))^N * N 2^-b (1-2^-b)^(N-1)``.
    Upper: all overwritten and at least one collision --
    ``(1-e^(-aN))^N * (1-(1-2^-b)^N)``.
    """
    alpha = _validate(alpha, redundancy, checksum_bits)
    n = redundancy
    all_over = p_all_copies_overwritten(alpha, n)
    collision = 2.0 ** -checksum_bits
    lower = all_over * n * collision * (1.0 - collision) ** (n - 1)
    upper = all_over * (1.0 - (1.0 - collision) ** n)
    return lower, upper


def average_queryability(alpha_total: ArrayLike, redundancy: int) -> ArrayLike:
    """Average success over all K inserted keys at total load ``alpha_total``.

    A uniformly random key has a fraction t ~ U[0,1] of the K keys written
    after it, so its effective load is ``alpha_total * t``.  Integrating the
    queryability closed form and expanding ``(1-e^(-x))^N`` binomially:

        E[success] = 1 - sum_{j=0}^{N} C(N,j) (-1)^j I_j,
        I_0 = 1,  I_j = (1 - e^(-aNj)) / (aNj)  for j >= 1.

    This is the quantity Figure 3 plots against the load factor, and the
    "average queryability across all 100 million flows" of Figure 4.
    """
    alpha = _validate(alpha_total, redundancy)
    n = redundancy
    scalar = alpha.ndim == 0
    alpha = np.atleast_1d(alpha)
    total = np.zeros_like(alpha)
    for j in range(0, n + 1):
        coeff = math.comb(n, j) * (-1.0) ** j
        if j == 0:
            term = np.ones_like(alpha)
        else:
            x = alpha * n * j
            term = np.where(x > 0, -np.expm1(-x) / np.where(x > 0, x, 1.0), 1.0)
        total = total + coeff * term
    result = 1.0 - total
    # Clamp tiny negative values from floating-point cancellation.
    result = np.clip(result, 0.0, 1.0)
    return float(result[0]) if scalar else result


def optimal_redundancy(
    alpha: float, candidates: Sequence[int] = (1, 2, 3, 4, 8)
) -> int:
    """The N maximising average queryability at total load ``alpha``.

    This regenerates Figure 3's background bands: at light load more
    redundancy always helps; as the load grows, extra copies pollute the
    table faster than they protect, and smaller N wins.
    """
    if not candidates:
        raise ValueError("no redundancy candidates supplied")
    best_n, best_value = None, -1.0
    for n in candidates:
        value = float(average_queryability(alpha, n))
        if value > best_value:
            best_n, best_value = n, value
    return best_n


def optimal_redundancy_bands(
    alphas: Iterable[float], candidates: Sequence[int] = (1, 2, 3, 4, 8)
) -> list:
    """``[(alpha, optimal N)]`` across a load sweep (Figure 3 background)."""
    return [(float(a), optimal_redundancy(float(a), candidates)) for a in alphas]


def age_to_alpha(keys_written_after: int, total_slots: int) -> float:
    """Effective load alpha for a key with ``keys_written_after`` newer keys."""
    if total_slots < 1:
        raise ValueError("total_slots must be >= 1")
    if keys_written_after < 0:
        raise ValueError("keys_written_after must be non-negative")
    return keys_written_after / total_slots


def success_probability(
    alpha: ArrayLike, redundancy: int, checksum_bits: int
) -> ArrayLike:
    """Approximate correct-answer probability for a single key.

    Success requires some copy to survive and the survivors not to be
    drowned out by fake matches; for the checksum widths DART targets the
    ambiguity correction is tiny, so we subtract the ambiguity lower bound
    from the queryability.
    """
    base = queryability(alpha, redundancy)
    ambiguity_lower, _ = empty_return_ambiguity_bounds(
        alpha, redundancy, checksum_bits
    )
    return np.clip(base - ambiguity_lower, 0.0, 1.0)
