"""Network-wide DART configuration.

A DART deployment is defined by a handful of constants that the control
plane distributes to every switch and that operators use when querying:
the hash-family seed, the redundancy factor N, the slot layout (checksum
width + value size) and the collector fleet geometry.  Any two components
constructed from equal configs are guaranteed to agree on every address
and checksum -- the coordination-free property at the heart of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hashing.checksum import KeyChecksum
from repro.hashing.hash_family import HashFamily
from repro.mem.slots import SlotCodec, SlotLayout


@dataclass(frozen=True)
class DartConfig:
    """The shared configuration of a DART deployment.

    Parameters
    ----------
    redundancy:
        N -- number of slot copies per key (paper default suggestion: 2).
    checksum_bits:
        b -- key-checksum width in bits (paper default suggestion: 32).
    value_bytes:
        Telemetry value size per slot (20 bytes = 160 bits in Figure 4).
    slots_per_collector:
        Number of slots in each collector's registered region.
    num_collectors:
        Size of the collector fleet; keys are spread over collectors by an
        independent hash, but all N copies of one key live on one collector
        (paper section 3.1).
    seed:
        Hash-family seed; the single global constant behind all mappings.
    """

    redundancy: int = 2
    checksum_bits: int = 32
    value_bytes: int = 20
    slots_per_collector: int = 1 << 16
    num_collectors: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.redundancy < 1:
            raise ValueError(f"redundancy must be >= 1, got {self.redundancy}")
        if not 1 <= self.checksum_bits <= 64:
            raise ValueError(
                f"checksum_bits must be in [1, 64], got {self.checksum_bits}"
            )
        if self.value_bytes < 1:
            raise ValueError(f"value_bytes must be >= 1, got {self.value_bytes}")
        if self.slots_per_collector < 1:
            raise ValueError(
                f"slots_per_collector must be >= 1, got {self.slots_per_collector}"
            )
        if self.num_collectors < 1:
            raise ValueError(
                f"num_collectors must be >= 1, got {self.num_collectors}"
            )
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")

    # ------------------------------------------------------------------
    # Derived components (constructed on demand; all pure functions of
    # the frozen fields, so equal configs yield equal components).
    # ------------------------------------------------------------------

    @property
    def layout(self) -> SlotLayout:
        """The slot layout implied by the checksum and value sizes."""
        return SlotLayout(
            checksum_bits=self.checksum_bits, value_bytes=self.value_bytes
        )

    @property
    def slot_bytes(self) -> int:
        """Size of one slot in bytes (checksum + value)."""
        return self.layout.slot_bytes

    @property
    def region_bytes(self) -> int:
        """Registered-region size each collector must provide."""
        return self.slots_per_collector * self.slot_bytes

    @property
    def total_slots(self) -> int:
        """Fleet-wide slot count M."""
        return self.slots_per_collector * self.num_collectors

    def hash_family(self) -> HashFamily:
        """The global hash family all components share."""
        return HashFamily(seed=self.seed)

    def key_checksum(self) -> KeyChecksum:
        """The b-bit key checksum function."""
        return KeyChecksum(bits=self.checksum_bits, family=self.hash_family())

    def slot_codec(self) -> SlotCodec:
        """Encoder/decoder for this deployment's slot layout."""
        return SlotCodec(self.layout)

    def load_factor(self, live_keys: int) -> float:
        """α -- live telemetry keys per available slot (paper section 4)."""
        if live_keys < 0:
            raise ValueError("live_keys must be non-negative")
        return live_keys / self.total_slots

    def bytes_per_key(self) -> float:
        """Average storage a key consumes when written with N redundancy."""
        return self.redundancy * self.slot_bytes

    @classmethod
    def for_memory_budget(
        cls,
        memory_bytes: int,
        *,
        redundancy: int = 2,
        checksum_bits: int = 32,
        value_bytes: int = 20,
        num_collectors: int = 1,
        seed: int = 0,
    ) -> "DartConfig":
        """Build a config from a total collector-memory budget in bytes.

        This mirrors how the paper presents experiments ("100 million flows
        sharing 3 GB"): the operator provisions memory, and the slot count
        follows from the layout.
        """
        layout = SlotLayout(checksum_bits=checksum_bits, value_bytes=value_bytes)
        per_collector = memory_bytes // num_collectors
        slots = layout.slots_in(per_collector)
        if slots < 1:
            raise ValueError(
                f"memory budget {memory_bytes} too small for even one slot "
                f"of {layout.slot_bytes} bytes per collector"
            )
        return cls(
            redundancy=redundancy,
            checksum_bits=checksum_bits,
            value_bytes=value_bytes,
            slots_per_collector=slots,
            num_collectors=num_collectors,
            seed=seed,
        )
