"""DART core: the paper's primary contribution.

This package implements the direct-telemetry-access algorithm itself,
independent of any particular wire format or switch model:

- :mod:`repro.core.config` -- :class:`DartConfig`, the network-wide
  configuration every switch and query client shares.
- :mod:`repro.core.addressing` -- the stateless global mapping from
  telemetry keys to (collector, slot) locations.
- :mod:`repro.core.policies` -- query return policies (single-value,
  plurality vote, consensus-of-two) from paper section 4.
- :mod:`repro.core.reporter` -- the write path: key/value to slot writes.
- :mod:`repro.core.client` -- the read path: key to query result.
- :mod:`repro.core.theory` -- closed-form success/error probabilities
  (paper section 4).
- :mod:`repro.core.simulator` -- vectorised slot-level simulator used for
  the paper's statistical experiments (Figures 3-5).
- :mod:`repro.core.cas_store` -- the Compare&Swap write strategy sketched
  in paper section 7.
- :mod:`repro.core.dynamic_n` -- a dynamic-redundancy controller (the
  future work suggested in section 5.1).
"""

from repro.core.config import DartConfig
from repro.core.addressing import DartAddressing, SlotLocation
from repro.core.batch import ReportBatch
from repro.core.policies import QueryOutcome, QueryResult, ReturnPolicy
from repro.core.reporter import DartReporter, SlotWrite
from repro.core.client import DartQueryClient

__all__ = [
    "DartAddressing",
    "DartConfig",
    "DartQueryClient",
    "DartReporter",
    "QueryOutcome",
    "QueryResult",
    "ReportBatch",
    "ReturnPolicy",
    "SlotLocation",
    "SlotWrite",
]
