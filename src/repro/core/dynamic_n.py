"""Dynamic redundancy control (paper section 5.1 future work).

"We conclude that dynamically adjusting N as the load fluctuates could
improve queryability and efficiency, and leave finding a good mechanism as
future work."  This module supplies such a mechanism:

- a load estimator smoothing the observed distinct-key arrival rate into a
  load factor (EWMA, so transient bursts don't thrash N);
- a controller picking the redundancy that maximises the closed-form
  average queryability (:func:`repro.core.theory.average_queryability`) at
  the estimated load, with hysteresis so N changes only when the predicted
  gain clears a margin.

Reports written under different N values remain queryable because queries
always read ``config.redundancy`` (the maximum) slots: writing fewer
copies only leaves stale data in the unwritten slots, which checksums
filter exactly like any other overwrite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core import theory
from repro.core.config import DartConfig


@dataclass
class LoadEstimator:
    """EWMA estimate of the live load factor alpha.

    Feed it distinct-key counts per control interval; it tracks
    keys-per-slot smoothed with weight ``alpha_weight``.
    """

    total_slots: int
    alpha_weight: float = 0.3
    estimate: float = 0.0
    intervals_observed: int = 0

    def __post_init__(self) -> None:
        if self.total_slots < 1:
            raise ValueError("total_slots must be >= 1")
        if not 0 < self.alpha_weight <= 1:
            raise ValueError("alpha_weight must be in (0, 1]")

    def observe(self, distinct_keys: int) -> float:
        """Record one interval's distinct-key count; returns the estimate."""
        if distinct_keys < 0:
            raise ValueError("distinct_keys must be non-negative")
        sample = distinct_keys / self.total_slots
        if self.intervals_observed == 0:
            self.estimate = sample
        else:
            self.estimate = (
                self.alpha_weight * sample
                + (1 - self.alpha_weight) * self.estimate
            )
        self.intervals_observed += 1
        return self.estimate


class DynamicRedundancyController:
    """Chooses the write redundancy as load fluctuates.

    Parameters
    ----------
    config:
        The deployment config; ``config.redundancy`` caps the candidates
        because queries always read that many slots.
    candidates:
        Redundancy values the controller may select.
    hysteresis:
        Minimum predicted queryability gain (absolute) required to switch
        away from the current N.
    """

    def __init__(
        self,
        config: DartConfig,
        candidates: Optional[Sequence[int]] = None,
        hysteresis: float = 0.005,
    ) -> None:
        if candidates is None:
            candidates = tuple(range(1, config.redundancy + 1))
        candidates = tuple(sorted(set(candidates)))
        if not candidates:
            raise ValueError("no redundancy candidates supplied")
        if candidates[0] < 1 or candidates[-1] > config.redundancy:
            raise ValueError(
                f"candidates must lie in [1, {config.redundancy}]"
            )
        if hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        self.config = config
        self.candidates = candidates
        self.hysteresis = hysteresis
        self.estimator = LoadEstimator(total_slots=config.total_slots)
        self.current = candidates[-1]  # start with maximum protection
        self.switches = 0

    def __repr__(self) -> str:
        return (
            f"DynamicRedundancyController(current={self.current}, "
            f"alpha={self.estimator.estimate:.3f})"
        )

    def recommend(self, load_factor: float) -> int:
        """The queryability-maximising N at a known load (stateless)."""
        return theory.optimal_redundancy(load_factor, self.candidates)

    def observe_interval(self, distinct_keys: int) -> int:
        """Feed one interval's key count; returns the N to use next.

        Switches only when the candidate's predicted average queryability
        beats the incumbent's by at least the hysteresis margin.
        """
        alpha = self.estimator.observe(distinct_keys)
        best = self.recommend(alpha)
        if best != self.current:
            gain = theory.average_queryability(alpha, best) - (
                theory.average_queryability(alpha, self.current)
            )
            if gain >= self.hysteresis:
                self.current = best
                self.switches += 1
        return self.current

    def predicted_queryability(self, load_factor: Optional[float] = None) -> float:
        """Predicted average queryability under the current N."""
        if load_factor is None:
            load_factor = self.estimator.estimate
        return float(theory.average_queryability(load_factor, self.current))
