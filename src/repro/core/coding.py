"""Coding-theory hardening of the DART slot format (paper section 4).

"Additional ideas from coding theory, including using different checksums
for each location or XORing each value with a pseudorandom value, could
also be applied."  This module implements both ideas and quantifies what
they buy:

**Per-location checksums.**  With a single checksum function, a colliding
key k' whose checksum equals the query key's fakes a match *consistently*:
every slot k' overwrote presents the same checksum and the same (wrong)
value, so even a plurality vote can be outvoted.  Giving each copy index
its own checksum function makes collisions independent per slot: k' must
win ``b`` fresh bits at every location, which collapses the consistent-
wrong-answer mode.

**XOR value masking.**  Each writer XORs its value with a pseudorandom
pad derived from the key; readers unmask with the *query* key's pad.  A
slot occupied by a different key then decodes to key-dependent garbage --
two slots holding the same wrong key no longer agree, so plurality cannot
be fooled by duplicated wrong values, at the cost of those errors becoming
single-slot garbage answers (caught by consensus or downstream sanity
checks, not by the vote).

Both variants cost nothing at the switch beyond selecting a hash index,
and nothing in slot space.  The ablation benchmark measures their error
rates against the baseline at adversarially small checksums.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policies import ReturnPolicy
from repro.core.simulator import (
    SimulationResult,
    SimulationSpec,
    _resolve_vectorised,
    _SENTINEL,
    _slot_addresses,
)
from repro.hashing.checksum import CHECKSUM_FUNCTION_INDEX
from repro.hashing.hash_family import HashFamily

#: Hash indexes for per-location checksum functions start here; they must
#: not collide with slot addressing [0, N), the collector index, or the
#: shared checksum index.
_PER_LOCATION_CHECKSUM_BASE = CHECKSUM_FUNCTION_INDEX + 1


@dataclass(frozen=True)
class CodedSpec:
    """A simulation spec plus the coding options of section 4."""

    base: SimulationSpec
    per_location_checksums: bool = False
    xor_masking: bool = False

    @property
    def label(self) -> str:
        """Human-readable name of the enabled coding options."""
        parts = []
        if self.per_location_checksums:
            parts.append("per-location checksums")
        if self.xor_masking:
            parts.append("XOR masking")
        return " + ".join(parts) if parts else "baseline"


def _checksum_matrix(spec: SimulationSpec, keys: np.ndarray, per_location: bool) -> np.ndarray:
    """(K, N) checksums: column n is copy n's checksum of each key."""
    family = HashFamily(seed=spec.seed)
    mask = np.uint64((1 << spec.checksum_bits) - 1)
    columns = []
    for copy in range(spec.redundancy):
        index = (
            _PER_LOCATION_CHECKSUM_BASE + copy
            if per_location
            else CHECKSUM_FUNCTION_INDEX
        )
        columns.append((family.hash_array(keys, index) & mask).astype(np.int64))
    return np.stack(columns, axis=1)


def simulate_coded(coded: CodedSpec) -> SimulationResult:
    """Slot-level simulation with the chosen coding options.

    Mechanics mirror :func:`repro.core.simulator.simulate`, with two
    twists: the stored checksum of a slot is computed under the *owner's*
    copy index (relevant when per-location checksums are on), and under
    XOR masking a checksum-matching slot owned by a different key yields a
    slot-unique garbage value rather than the owner's identity.
    """
    spec = coded.base
    keys = np.arange(spec.num_keys, dtype=np.uint64)
    addresses = _slot_addresses(spec, keys)
    checksums = _checksum_matrix(spec, keys, coded.per_location_checksums)

    # Track (owner, owner's copy index) per slot: writes happen in key
    # order and, within a key, in copy order, so the maximum of
    # key * N + copy is the final writer.
    redundancy = spec.redundancy
    combined = np.full(spec.num_slots, -1, dtype=np.int64)
    key_ids = np.repeat(np.arange(spec.num_keys, dtype=np.int64), redundancy)
    copy_ids = np.tile(np.arange(redundancy, dtype=np.int64), spec.num_keys)
    np.maximum.at(combined, addresses.ravel(), key_ids * redundancy + copy_ids)

    owner = np.where(combined >= 0, combined // redundancy, -1)
    owner_copy = np.where(combined >= 0, combined % redundancy, 0)

    owners_read = owner[addresses]  # (K, N)
    owner_copies_read = owner_copy[addresses]
    written = owners_read >= 0

    safe_owner = np.clip(owners_read, 0, None)
    stored_checksums = np.where(
        written,
        checksums[safe_owner, owner_copies_read],
        -1,
    )
    # The reader compares against its own copy-n checksum of the key.
    reader_checksums = checksums  # (K, N), column n read at copy n
    match = written & (stored_checksums == reader_checksums)

    matched_values = np.where(match, owners_read, _SENTINEL)

    if coded.xor_masking:
        # A matching slot whose owner differs decodes to garbage unique to
        # that (row, column) cell -- wrong values can never agree.
        rows, cols = np.indices(matched_values.shape)
        key_column = np.arange(spec.num_keys, dtype=np.int64)[:, None]
        garbage = spec.num_keys + rows * spec.redundancy + cols
        wrong_owner = match & (matched_values != key_column)
        matched_values = np.where(wrong_owner, garbage, matched_values)

    answered, value = _resolve_vectorised(matched_values, spec.policy)
    correct = answered & (value == np.arange(spec.num_keys, dtype=np.int64))
    return SimulationResult(spec=spec, correct=correct, answered=answered)


def coding_comparison_rows(
    *,
    load: float = 2.0,
    checksum_bits: int = 8,
    num_slots: int = 1 << 17,
    redundancy: int = 2,
    policy: ReturnPolicy = ReturnPolicy.PLURALITY,
    seed: int = 0,
) -> list:
    """Error/success rates for all four coding combinations."""
    base = SimulationSpec(
        num_keys=max(1, int(load * num_slots)),
        num_slots=num_slots,
        redundancy=redundancy,
        checksum_bits=checksum_bits,
        policy=policy,
        seed=seed,
    )
    rows = []
    for per_location in (False, True):
        for masking in (False, True):
            coded = CodedSpec(
                base=base,
                per_location_checksums=per_location,
                xor_masking=masking,
            )
            result = simulate_coded(coded)
            rows.append(
                {
                    "variant": coded.label,
                    "load_factor": load,
                    "checksum_bits": checksum_bits,
                    "success_rate": result.success_rate,
                    "empty_rate": result.empty_rate,
                    "error_rate": result.error_rate,
                }
            )
    return rows
