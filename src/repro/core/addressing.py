"""Stateless global addressing: key -> collector and key -> N slots.

This module is the heart of DART (paper section 3.1).  Every switch and
every query client evaluates the same pure functions of (config, key):

- ``collector_of(key)``  -- which collector holds *all* N copies of the key
  (an independent hash-family member reserved for collector selection);
- ``slot_index(key, n)`` -- the n-th redundant slot inside that collector's
  region, for n in [0, N).

No state, no coordination, no per-switch regions: collisions between keys
are expected and handled probabilistically by redundancy plus checksums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.config import DartConfig
from repro.hashing.hash_family import Key, fold_key

#: Hash-family member reserved for the key -> collector mapping.  Slot
#: addressing uses members [0, N) and the checksum uses its own reserved
#: index, so collector selection gets a distinct constant.
COLLECTOR_FUNCTION_INDEX = 0x40000000


@dataclass(frozen=True)
class SlotLocation:
    """A fully resolved storage location for one copy of a key."""

    collector_id: int
    slot_index: int
    copy_index: int  # n in [0, N)


@dataclass(frozen=True)
class ResolvedKey:
    """Everything addressing derives from one key, computed in one pass.

    The batched write path resolves each key once -- one byte encoding and
    one fold instead of one per hash-family member -- and reads the
    collector, checksum and all N slot indexes off this record.  Values are
    bit-identical to the scalar ``collector_of`` / ``checksum_of`` /
    ``slot_index`` calls (property-tested).
    """

    collector_id: int
    checksum: int
    slot_indexes: Tuple[int, ...]  # indexed by copy n in [0, N)


class DartAddressing:
    """Pure key-to-location mapping for a :class:`DartConfig`."""

    def __init__(self, config: DartConfig) -> None:
        self.config = config
        self._family = config.hash_family()
        self._checksum = config.key_checksum()

    def __repr__(self) -> str:
        return f"DartAddressing({self.config!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DartAddressing) and other.config == self.config

    def __hash__(self) -> int:
        return hash(("DartAddressing", self.config))

    # ------------------------------------------------------------------
    # Scalar interface (switches, query clients)
    # ------------------------------------------------------------------

    def collector_of(self, key: Key) -> int:
        """Collector ID in [0, num_collectors) holding all copies of ``key``."""
        return self._family.hash_key_mod(
            key, COLLECTOR_FUNCTION_INDEX, self.config.num_collectors
        )

    def slot_index(self, key: Key, copy_index: int) -> int:
        """Slot index of copy ``copy_index`` within the collector's region."""
        if not 0 <= copy_index < self.config.redundancy:
            raise ValueError(
                f"copy_index {copy_index} outside [0, {self.config.redundancy})"
            )
        return self._family.hash_key_mod(
            key, copy_index, self.config.slots_per_collector
        )

    def checksum_of(self, key: Key) -> int:
        """The b-bit key checksum stored in each slot."""
        return self._checksum.compute(key)

    def resolve(self, key: Key) -> ResolvedKey:
        """Resolve collector, checksum and all N slots with one key fold.

        The amortised core of :meth:`DartReporter.report_batch
        <repro.core.reporter.DartReporter.report_batch>`: the scalar
        methods each re-encode and re-fold the key, so a full report costs
        N+2 folds; this costs exactly one.
        """
        folded = fold_key(key)
        family = self._family
        config = self.config
        return ResolvedKey(
            collector_id=family.hash_folded(folded, COLLECTOR_FUNCTION_INDEX)
            % config.num_collectors,
            checksum=self._checksum.compute_folded(folded),
            slot_indexes=tuple(
                family.hash_folded(folded, n) % config.slots_per_collector
                for n in range(config.redundancy)
            ),
        )

    def locate(self, key: Key) -> List[SlotLocation]:
        """All N storage locations of ``key`` (same collector by design)."""
        collector = self.collector_of(key)
        return [
            SlotLocation(
                collector_id=collector,
                slot_index=self.slot_index(key, n),
                copy_index=n,
            )
            for n in range(self.config.redundancy)
        ]

    def slot_address(self, base_address: int, slot_index: int) -> int:
        """Virtual memory address of ``slot_index`` in a region at ``base_address``."""
        if not 0 <= slot_index < self.config.slots_per_collector:
            raise ValueError(
                f"slot_index {slot_index} outside "
                f"[0, {self.config.slots_per_collector})"
            )
        return base_address + slot_index * self.config.slot_bytes

    # ------------------------------------------------------------------
    # Vectorised interface (statistical simulator)
    # ------------------------------------------------------------------

    def collectors_of_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised collector selection for integer key identities."""
        return self._family.hash_array_mod(
            keys, COLLECTOR_FUNCTION_INDEX, self.config.num_collectors
        )

    def slot_indexes_array(self, keys: np.ndarray, copy_index: int) -> np.ndarray:
        """Vectorised slot indexes of copy ``copy_index`` for integer keys."""
        if not 0 <= copy_index < self.config.redundancy:
            raise ValueError(
                f"copy_index {copy_index} outside [0, {self.config.redundancy})"
            )
        return self._family.hash_array_mod(
            keys, copy_index, self.config.slots_per_collector
        )

    def checksums_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised checksums for integer key identities."""
        return self._checksum.compute_array(keys)

    # ------------------------------------------------------------------
    # Columnar interface (bit-exact batch resolution)
    # ------------------------------------------------------------------

    def resolve_folded(
        self, folded: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Resolve a whole batch of pre-folded key lanes at once.

        ``folded`` is a ``uint64`` array of :func:`~repro.hashing.hash_family.fold_key`
        lanes.  Returns ``(collector_ids, checksums, slot_indexes)`` where
        ``slot_indexes`` has shape ``(redundancy, n)`` -- row ``n`` holds
        copy ``n``'s slot index for every key.  Unlike the simulator-only
        ``*_array`` methods above, every value is bit-identical to the
        scalar :meth:`resolve` on the original keys (property-tested);
        this is what lets the columnar datapath keep the wire-format
        equality contract.
        """
        folded = np.asarray(folded, dtype=np.uint64)
        family = self._family
        config = self.config
        collector_ids = family.hash_folded_array(
            folded, COLLECTOR_FUNCTION_INDEX
        ) % np.uint64(config.num_collectors)
        checksums = self._checksum.compute_folded_array(folded)
        slots = np.empty((config.redundancy, len(folded)), dtype=np.uint64)
        modulus = np.uint64(config.slots_per_collector)
        for copy_index in range(config.redundancy):
            slots[copy_index] = (
                family.hash_folded_array(folded, copy_index) % modulus
            )
        return collector_ids, checksums, slots
