"""Packet-level WRITE + Compare&Swap storage strategy (paper section 7).

"For N = 2 hashes and an initially empty table, we can use an RDMA write
with one hash and Compare & Swap with another (writing to a second slot
only if it is empty), which simulations show can potentially improve
queryability."

RDMA atomics operate on a single 8-byte word, so this strategy applies to
*compact* slots: checksum and value packed into 64 bits (e.g. a 24-bit
checksum plus a 40-bit value -- enough for counters, event codes or record
pointers).  The class below runs the real packet path: copy 0 is an
RDMA WRITE, copy 1 an RDMA CMP_SWAP with compare=0, both crafted as
RoCEv2 frames and executed by the NIC model.  The statistical twin for
arbitrary slot sizes is :func:`repro.core.simulator.simulate_cas_strategy`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, Optional, Tuple

from repro import obs
from repro.core.addressing import DartAddressing
from repro.obs.metrics import LATENCY_BUCKETS
from repro.core.config import DartConfig
from repro.fabric.fabric import Fabric, InlineFabric
from repro.mem.region import MemoryRegion
from repro.rdma.nic import RdmaNic
from repro.rdma.packets import (
    AtomicEth,
    Bth,
    Opcode,
    Reth,
    RoceV2Packet,
)
from repro.rdma.qp import PsnPolicy, QueuePair
from repro.hashing.hash_family import Key

#: Fabric endpoint ID the CAS store's NIC is attached at.
CAS_ENDPOINT_ID = 0

#: Compact-slot geometry: 24-bit checksum, 40-bit value, one 8-byte word.
CHECKSUM_BITS = 24
VALUE_BITS = 40
_CHECKSUM_MASK = (1 << CHECKSUM_BITS) - 1
_VALUE_MASK = (1 << VALUE_BITS) - 1


def pack_compact_slot(checksum: int, value: int) -> int:
    """Pack (24-bit checksum, 40-bit value) into one atomic word."""
    if not 0 <= checksum <= _CHECKSUM_MASK:
        raise ValueError(f"checksum {checksum:#x} exceeds {CHECKSUM_BITS} bits")
    if not 0 <= value <= _VALUE_MASK:
        raise ValueError(f"value {value:#x} exceeds {VALUE_BITS} bits")
    return (checksum << VALUE_BITS) | value


def unpack_compact_slot(word: int) -> Tuple[int, int]:
    """Inverse of :func:`pack_compact_slot`."""
    return (word >> VALUE_BITS) & _CHECKSUM_MASK, word & _VALUE_MASK


class CasDartStore:
    """A compact-slot DART store using the WRITE+CAS strategy.

    Slots are single 8-byte words; a stored word of 0 means "empty" (a
    real key whose packed word is 0 is remapped to 1 -- a one-in-2^64
    perturbation the checksum machinery absorbs).

    Parameters
    ----------
    num_slots:
        Region size in 8-byte slots.
    seed:
        Global hash-family seed shared with queriers.
    fabric:
        The transport WRITE/CMP_SWAP frames traverse; defaults to a
        private :class:`~repro.fabric.InlineFabric`.  The store NIC is
        attached at endpoint :data:`CAS_ENDPOINT_ID`.
    """

    def __init__(
        self,
        num_slots: int = 1 << 16,
        seed: int = 0,
        fabric: Optional[Fabric] = None,
    ) -> None:
        if num_slots < 1:
            raise ValueError(f"num_slots must be >= 1, got {num_slots}")
        self.num_slots = num_slots
        # Reuse the standard addressing with a 2-copy compact config.
        self.config = DartConfig(
            redundancy=2,
            checksum_bits=CHECKSUM_BITS,
            value_bytes=5,  # 40 bits, packed into the atomic word
            slots_per_collector=num_slots,
            num_collectors=1,
            seed=seed,
        )
        self.addressing = DartAddressing(self.config)
        self.region = MemoryRegion(
            size=num_slots * 8, base_address=0x400000, rkey=0xCA5
        )
        self.nic = RdmaNic(self.region)
        self.qp = self.nic.create_queue_pair(
            QueuePair(qp_number=0x300, policy=PsnPolicy.IGNORE)
        )
        self.fabric = fabric if fabric is not None else InlineFabric()
        self.fabric.attach(CAS_ENDPOINT_ID, self.nic)
        registry = obs.get_registry()
        labels = registry.instance_labels("CasDartStore")
        #: WRITE+CAS puts issued.
        self.c_puts = registry.counter("cas_store_puts", labels=labels)
        #: Queries served (with and without a value).
        self.c_gets = registry.counter("cas_store_gets", labels=labels)
        #: Queries that returned a value.
        self.c_gets_answered = registry.counter(
            "cas_store_gets_answered", labels=labels
        )
        self._h_put_many_seconds = registry.histogram(
            "stage_seconds",
            LATENCY_BUCKETS,
            labels={"stage": "cas_put_many"},
            help="wall-clock seconds per batched WRITE+CAS put",
        )

    @property
    def puts(self) -> int:
        """WRITE+CAS puts issued (registry-backed)."""
        return self.c_puts.value

    def __repr__(self) -> str:
        return f"CasDartStore(num_slots={self.num_slots}, puts={self.puts})"

    def _slot_address(self, key: Key, copy_index: int) -> int:
        slot = self.addressing.slot_index(key, copy_index)
        return self.region.base_address + slot * 8

    def _packed_word(self, key: Key, value: int) -> int:
        word = pack_compact_slot(self.addressing.checksum_of(key), value)
        return word if word != 0 else 1

    # ------------------------------------------------------------------
    # Write path: one WRITE frame + one CMP_SWAP frame
    # ------------------------------------------------------------------

    def put(self, key: Key, value: int) -> None:
        """Store a 40-bit value under ``key`` via WRITE + CAS frames."""
        write, cas = self._craft_put_frames(key, value)
        self.fabric.send(CAS_ENDPOINT_ID, write)
        self.fabric.send(CAS_ENDPOINT_ID, cas)
        self.c_puts.inc()

    def put_many(self, items: Iterable[Tuple[Key, int]]) -> int:
        """Batched puts: craft all frames, then one fabric pass + flush.

        Frame order is preserved per link, so each key's WRITE lands before
        its CAS -- the ordering the strategy depends on.  Returns the
        number of frames offered.
        """
        timed = self._h_put_many_seconds.enabled
        if timed:
            started = perf_counter()
        frames = []
        count = 0
        for key, value in items:
            frames.extend(self._craft_put_frames(key, value))
            count += 1
        self.fabric.send_many(CAS_ENDPOINT_ID, frames)
        self.fabric.flush()
        self.c_puts.inc(count)
        if timed:
            self._h_put_many_seconds.observe(perf_counter() - started)
        return len(frames)

    def _craft_put_frames(self, key: Key, value: int) -> Tuple[bytes, bytes]:
        """The (WRITE, CMP_SWAP) wire frames for one put."""
        word = self._packed_word(key, value)
        payload = word.to_bytes(8, "big")

        write = RoceV2Packet(
            bth=Bth(opcode=int(Opcode.RC_RDMA_WRITE_ONLY), dest_qp=0x300),
            reth=Reth(
                virtual_address=self._slot_address(key, 0),
                rkey=self.region.rkey,
                dma_length=8,
            ),
            payload=payload,
        )
        cas = RoceV2Packet(
            bth=Bth(opcode=int(Opcode.RC_CMP_SWAP), dest_qp=0x300),
            atomic_eth=AtomicEth(
                virtual_address=self._slot_address(key, 1),
                rkey=self.region.rkey,
                swap_add=word,
                compare=0,  # fill only if the slot is still empty
            ),
        )
        return write.pack(), cas.pack()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def get(self, key: Key) -> Optional[int]:
        """The stored 40-bit value, or None on an empty return.

        Reads both slots, keeps checksum matches, and prefers the WRITE
        slot (it holds the freshest data when both match but disagree).
        """
        expected = self.addressing.checksum_of(key)
        matches = []
        for copy_index in (0, 1):
            raw = self.region.dma_read(self._slot_address(key, copy_index), 8)
            word = int.from_bytes(raw, "big")
            if word == 0:
                continue
            checksum, value = unpack_compact_slot(word)
            if checksum == expected:
                matches.append(value)
        self.c_gets.inc()
        if not matches:
            return None
        self.c_gets_answered.inc()
        return matches[0]
