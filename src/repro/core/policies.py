"""Query return policies.

Paper section 4 discusses several methods for turning the contents of a
key's N slots into a query answer, trading *empty returns* (no answer)
against *return errors* (a wrong answer):

- ``SINGLE_VALUE``: answer only if exactly one distinct value appears among
  the checksum-matching slots (the paper's introductory example).
- ``PLURALITY``: answer with the most frequent matching value; ties yield
  an empty return (the paper's suggested default, with 32-bit checksums).
- ``CONSENSUS_2``: answer only if some matching value appears at least
  twice -- more conservative, fewer errors, more empties; the paper notes
  this can be chosen per query without changing anything else.
- ``FIRST_MATCH``: answer with the first matching slot -- the cheapest and
  most error-prone; included as the ablation baseline.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Tuple


class ReturnPolicy(Enum):
    """How the N slot reads are resolved into a query answer."""

    SINGLE_VALUE = "single_value"
    PLURALITY = "plurality"
    CONSENSUS_2 = "consensus_2"
    FIRST_MATCH = "first_match"


class QueryOutcome(Enum):
    """Result classes from paper section 4."""

    #: A value was returned (may still be a *return error* -- the store
    #: cannot tell; only evaluation harnesses with ground truth can).
    ANSWERED = "answered"
    #: No answer could be returned (all copies overwritten, or ambiguity).
    EMPTY = "empty"


@dataclass
class QueryResult:
    """What a DART query returns to the operator."""

    outcome: QueryOutcome
    value: Optional[bytes] = None
    #: Slot values whose stored checksum matched the queried key.
    matching_values: List[bytes] = field(default_factory=list)
    #: How many of the N slots were read (always N in the current design).
    slots_read: int = 0
    #: Number of slots whose checksum matched.
    matches: int = 0

    @property
    def answered(self) -> bool:
        """Whether a value was returned."""
        return self.outcome is QueryOutcome.ANSWERED


def resolve(
    matching_values: Sequence[bytes],
    policy: ReturnPolicy,
    slots_read: int,
) -> QueryResult:
    """Apply a return policy to the checksum-matching slot values.

    ``matching_values`` are the raw value fields of the slots whose stored
    checksum equals the queried key's checksum, in slot order.
    """
    base = QueryResult(
        outcome=QueryOutcome.EMPTY,
        matching_values=list(matching_values),
        slots_read=slots_read,
        matches=len(matching_values),
    )
    if not matching_values:
        return base

    if policy is ReturnPolicy.FIRST_MATCH:
        base.outcome = QueryOutcome.ANSWERED
        base.value = matching_values[0]
        return base

    counts = Counter(matching_values)

    if policy is ReturnPolicy.SINGLE_VALUE:
        if len(counts) == 1:
            base.outcome = QueryOutcome.ANSWERED
            base.value = matching_values[0]
        return base

    ranked: List[Tuple[bytes, int]] = counts.most_common()

    if policy is ReturnPolicy.PLURALITY:
        if len(ranked) == 1 or ranked[0][1] > ranked[1][1]:
            base.outcome = QueryOutcome.ANSWERED
            base.value = ranked[0][0]
        return base

    if policy is ReturnPolicy.CONSENSUS_2:
        qualified = [value for value, count in ranked if count >= 2]
        if len(qualified) == 1:
            base.outcome = QueryOutcome.ANSWERED
            base.value = qualified[0]
        elif len(qualified) > 1 and ranked[0][1] > ranked[1][1]:
            # Multiple values reached the threshold; answer only on a
            # strict plurality among them.
            base.outcome = QueryOutcome.ANSWERED
            base.value = ranked[0][0]
        return base

    raise ValueError(f"unknown return policy: {policy!r}")
