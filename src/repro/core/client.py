"""The DART read path: operator queries against collector memory.

Queries follow the four steps of paper section 3.2:

1. hash the key to find the collector ID;
2. look the collector up (a read callback supplied by the deployment);
3. hash the key into its N slot indexes and read those slots;
4. discard slots whose stored checksum mismatches the key's, then apply a
   return policy to what remains.

The client is deliberately decoupled from how slots are read: it receives a
``SlotReader`` callable, so the same logic serves in-process stores, the
packet-level collector model and historical epoch archives.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.core.addressing import DartAddressing
from repro.obs.metrics import LATENCY_BUCKETS
from repro.core.config import DartConfig
from repro.core.policies import QueryResult, ReturnPolicy, resolve
from repro.hashing.hash_family import Key

#: Reads one slot: (collector_id, slot_index) -> raw slot bytes.
SlotReader = Callable[[int, int], bytes]


class DartQueryClient:
    """Executes key-based queries against a DART deployment.

    Parameters
    ----------
    config:
        The shared deployment configuration.
    reader:
        Callback that fetches raw slot bytes from a collector's region.
    policy:
        Default return policy; individual queries may override it -- the
        paper notes the policy "can be decided on a per query basis without
        changing anything else" (section 4).
    """

    def __init__(
        self,
        config: DartConfig,
        reader: SlotReader,
        policy: ReturnPolicy = ReturnPolicy.PLURALITY,
    ) -> None:
        self.config = config
        self.addressing = DartAddressing(config)
        self._codec = config.slot_codec()
        self._reader = reader
        self.policy = policy
        registry = obs.get_registry()
        self._registry = registry
        self._tracer = obs.get_tracer()
        self._profiler = obs.get_profiler()
        self._labels = registry.instance_labels("DartQueryClient")
        #: Queries executed, across all policies.
        self.c_queries = registry.counter(
            "client_queries_executed", labels=self._labels
        )
        #: Per-policy (total, answered) counters, created on first use.
        self._policy_counters: Dict[str, Tuple[object, object]] = {}
        self._h_query_seconds = registry.histogram(
            "stage_seconds",
            LATENCY_BUCKETS,
            labels={"stage": "query"},
            help="wall-clock seconds per key query",
        )

    @property
    def queries_executed(self) -> int:
        """Queries executed across all policies (registry-backed)."""
        return self.c_queries.value

    def _counters_for(self, policy: ReturnPolicy):
        """The (total, answered) counter pair for one return policy."""
        pair = self._policy_counters.get(policy.name)
        if pair is None:
            labels = self._labels + (("policy", policy.name),)
            pair = (
                self._registry.counter("queries_total", labels=labels),
                self._registry.counter("queries_answered", labels=labels),
            )
            self._policy_counters[policy.name] = pair
        return pair

    def __repr__(self) -> str:
        return f"DartQueryClient(config={self.config!r}, policy={self.policy})"

    def query(
        self, key: Key, policy: Optional[ReturnPolicy] = None
    ) -> QueryResult:
        """Run a key query and return the resolved result."""
        if policy is None:
            policy = self.policy
        profiler = self._profiler
        timed = self._h_query_seconds.enabled or profiler.enabled
        if timed:
            started = perf_counter()
        collector = self.addressing.collector_of(key)
        expected_checksum = self.addressing.checksum_of(key)

        matching: List[bytes] = []
        slots_read = 0
        for n in range(self.config.redundancy):
            slot_index = self.addressing.slot_index(key, n)
            raw = self._reader(collector, slot_index)
            slots_read += 1
            stored_checksum, value = self._codec.decode(raw)
            if stored_checksum == expected_checksum:
                matching.append(value)

        self.c_queries.inc()
        result = resolve(matching, policy, slots_read=slots_read)
        total, answered = self._counters_for(policy)
        total.inc()
        if result.answered:
            answered.inc()
        tracer = self._tracer
        trace_id = 0
        if tracer.enabled:
            # Join the operation in flight (one tree across planes) or
            # start a fresh query trace.
            active = tracer.active_trace_id
            trace_id = (
                tracer.begin("query", key=repr(key)) if active is None
                else active
            )
            tracer.span(
                trace_id,
                "client.query",
                f"policy={policy.name} outcome={result.outcome.name}",
                status="ok" if result.answered else "miss",
            )
            if active is None:
                tracer.end(trace_id)
        if timed:
            ended = perf_counter()
            if self._h_query_seconds.enabled:
                if trace_id:
                    # Exemplar: a p99 bucket links back to this trace.
                    self._h_query_seconds.observe_exemplar(
                        ended - started, trace_id
                    )
                else:
                    self._h_query_seconds.observe(ended - started)
            if profiler.enabled:
                profiler.record("client.query", started, ended)
        return result

    def query_value(
        self, key: Key, policy: Optional[ReturnPolicy] = None
    ) -> Optional[bytes]:
        """Convenience: the returned value, or ``None`` on an empty return."""
        return self.query(key, policy=policy).value

    def query_many(
        self, keys, policy: Optional[ReturnPolicy] = None
    ) -> "dict[Key, QueryResult]":
        """Batch query: ``{key: QueryResult}`` for each distinct key.

        Operators typically sweep whole key populations (every flow seen
        by the anomaly backend, every path in an audit); this wraps the
        per-key path and deduplicates repeated keys.
        """
        results: dict = {}
        for key in keys:
            if key not in results:
                results[key] = self.query(key, policy=policy)
        return results

    def success_fraction(
        self, keys, policy: Optional[ReturnPolicy] = None
    ) -> float:
        """Fraction of ``keys`` whose query answered (operator dashboard
        number; ground-truth correctness needs the evaluation harnesses)."""
        results = self.query_many(keys, policy=policy)
        if not results:
            raise ValueError("no keys supplied")
        return sum(r.answered for r in results.values()) / len(results)
