"""The DART read path: operator queries against collector memory.

Queries follow the four steps of paper section 3.2:

1. hash the key to find the collector ID;
2. look the collector up (a read callback supplied by the deployment);
3. hash the key into its N slot indexes and read those slots;
4. discard slots whose stored checksum mismatches the key's, then apply a
   return policy to what remains.

The client is deliberately decoupled from how slots are read: it receives a
``SlotReader`` callable, so the same logic serves in-process stores, the
packet-level collector model and historical epoch archives.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.addressing import DartAddressing
from repro.core.config import DartConfig
from repro.core.policies import QueryResult, ReturnPolicy, resolve
from repro.hashing.hash_family import Key

#: Reads one slot: (collector_id, slot_index) -> raw slot bytes.
SlotReader = Callable[[int, int], bytes]


class DartQueryClient:
    """Executes key-based queries against a DART deployment.

    Parameters
    ----------
    config:
        The shared deployment configuration.
    reader:
        Callback that fetches raw slot bytes from a collector's region.
    policy:
        Default return policy; individual queries may override it -- the
        paper notes the policy "can be decided on a per query basis without
        changing anything else" (section 4).
    """

    def __init__(
        self,
        config: DartConfig,
        reader: SlotReader,
        policy: ReturnPolicy = ReturnPolicy.PLURALITY,
    ) -> None:
        self.config = config
        self.addressing = DartAddressing(config)
        self._codec = config.slot_codec()
        self._reader = reader
        self.policy = policy
        self.queries_executed = 0

    def __repr__(self) -> str:
        return f"DartQueryClient(config={self.config!r}, policy={self.policy})"

    def query(
        self, key: Key, policy: Optional[ReturnPolicy] = None
    ) -> QueryResult:
        """Run a key query and return the resolved result."""
        if policy is None:
            policy = self.policy
        collector = self.addressing.collector_of(key)
        expected_checksum = self.addressing.checksum_of(key)

        matching: List[bytes] = []
        slots_read = 0
        for n in range(self.config.redundancy):
            slot_index = self.addressing.slot_index(key, n)
            raw = self._reader(collector, slot_index)
            slots_read += 1
            stored_checksum, value = self._codec.decode(raw)
            if stored_checksum == expected_checksum:
                matching.append(value)

        self.queries_executed += 1
        return resolve(matching, policy, slots_read=slots_read)

    def query_value(
        self, key: Key, policy: Optional[ReturnPolicy] = None
    ) -> Optional[bytes]:
        """Convenience: the returned value, or ``None`` on an empty return."""
        return self.query(key, policy=policy).value

    def query_many(
        self, keys, policy: Optional[ReturnPolicy] = None
    ) -> "dict[Key, QueryResult]":
        """Batch query: ``{key: QueryResult}`` for each distinct key.

        Operators typically sweep whole key populations (every flow seen
        by the anomaly backend, every path in an audit); this wraps the
        per-key path and deduplicates repeated keys.
        """
        results: dict = {}
        for key in keys:
            if key not in results:
                results[key] = self.query(key, policy=policy)
        return results

    def success_fraction(
        self, keys, policy: Optional[ReturnPolicy] = None
    ) -> float:
        """Fraction of ``keys`` whose query answered (operator dashboard
        number; ground-truth correctness needs the evaluation harnesses)."""
        results = self.query_many(keys, policy=policy)
        if not results:
            raise ValueError("no keys supplied")
        return sum(r.answered for r in results.values()) / len(results)
