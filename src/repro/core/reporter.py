"""The DART write path: telemetry (key, value) -> N redundant slot writes.

A reporter is *stateless* with respect to keys: given the shared config it
deterministically expands one telemetry report into N slot writes, each a
(collector, slot index, encoded slot bytes) triple.  The switch model turns
each write into one RoCEv2 packet (the RDMA standard allows only one memory
instruction per packet -- paper sections 3.1 and 5.1); in-process stores
apply them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.addressing import DartAddressing
from repro.obs.metrics import DEPTH_BUCKETS, LATENCY_BUCKETS
from repro.core.config import DartConfig
from repro.hashing.hash_family import Key


@dataclass(frozen=True)
class SlotWrite:
    """One redundant copy of a telemetry report, ready to be stored."""

    collector_id: int
    slot_index: int
    copy_index: int
    payload: bytes  # encoded slot: checksum || value

    @property
    def payload_bytes(self) -> int:
        """Encoded slot size in bytes."""
        return len(self.payload)


class DartReporter:
    """Expands telemetry reports into redundant slot writes.

    Parameters
    ----------
    config:
        The shared deployment configuration.
    redundancy:
        Optional override of ``config.redundancy`` -- used by the dynamic-N
        controller (paper section 5.1 future work) to shrink or grow the
        number of copies without changing addressing for existing data.
        Must not exceed ``config.redundancy`` because queries read exactly
        ``config.redundancy`` slots.
    """

    def __init__(self, config: DartConfig, redundancy: Optional[int] = None) -> None:
        self.config = config
        self.addressing = DartAddressing(config)
        self._codec = config.slot_codec()
        if redundancy is None:
            redundancy = config.redundancy
        if not 1 <= redundancy <= config.redundancy:
            raise ValueError(
                f"effective redundancy {redundancy} must be in "
                f"[1, {config.redundancy}]"
            )
        self.redundancy = redundancy
        registry = obs.get_registry()
        self._tracer = obs.get_tracer()
        labels = registry.instance_labels("DartReporter")
        #: Telemetry reports expanded into slot writes.
        self.c_reports = registry.counter("reporter_reports", labels=labels)
        #: Redundant slot writes generated.
        self.c_writes = registry.counter("reporter_writes", labels=labels)
        self._h_batch_reports = registry.histogram(
            "reporter_batch_reports",
            DEPTH_BUCKETS,
            help="reports per report_batch call",
        )
        self._h_batch_seconds = registry.histogram(
            "stage_seconds",
            LATENCY_BUCKETS,
            labels={"stage": "report_batch"},
            help="wall-clock seconds per report_batch call",
        )

    @property
    def reports_generated(self) -> int:
        """Telemetry reports expanded into slot writes (registry-backed)."""
        return self.c_reports.value

    @property
    def writes_generated(self) -> int:
        """Redundant slot writes generated (registry-backed)."""
        return self.c_writes.value

    def __repr__(self) -> str:
        return (
            f"DartReporter(config={self.config!r}, redundancy={self.redundancy})"
        )

    def encode_slot(self, key: Key, value: bytes) -> bytes:
        """The slot bytes stored for ``key``: checksum || padded value."""
        checksum = self.addressing.checksum_of(key)
        return self._codec.encode(checksum, value)

    def writes_for(self, key: Key, value: bytes) -> List[SlotWrite]:
        """All redundant slot writes for one telemetry report.

        Every copy carries identical payload; only the slot index differs.
        All copies target the same collector (paper section 3.1: queries
        then run locally on one collector without inter-collector traffic).
        """
        payload = self.encode_slot(key, value)
        collector = self.addressing.collector_of(key)
        writes = [
            SlotWrite(
                collector_id=collector,
                slot_index=self.addressing.slot_index(key, n),
                copy_index=n,
                payload=payload,
            )
            for n in range(self.redundancy)
        ]
        self.c_reports.inc()
        self.c_writes.inc(len(writes))
        tracer = self._tracer
        if tracer.enabled:
            trace_id = tracer.begin("report", key=repr(key))
            tracer.span(
                trace_id, "reporter.writes_for", f"copies={len(writes)}"
            )
            tracer.end(trace_id)
        return writes

    def report_batch(
        self, items: Iterable[Tuple[Key, bytes]]
    ) -> List[SlotWrite]:
        """Expand many ``(key, value)`` reports in one amortised pass.

        Produces exactly the writes that per-report :meth:`writes_for`
        calls would (same order, bit-identical payloads -- tested), but
        resolves each key's collector, checksum and slot indexes from a
        single key fold instead of re-hashing the key for every family
        member, and hoists the per-report attribute lookups out of the
        loop.  This is the switch-side half of the batched datapath; pair
        it with :meth:`CollectorCluster.write_slots
        <repro.collector.collector.CollectorCluster.write_slots>` or a
        :class:`~repro.fabric.BufferedFabric` flush on the delivery side.
        """
        resolve = self.addressing.resolve
        encode = self._codec.encode
        redundancy = self.redundancy
        tracer = self._tracer
        # Batch granularity records one trace for the whole expansion
        # below instead of one per report.
        trace = tracer.enabled and tracer.granularity != "batch"
        timed = self._h_batch_seconds.enabled
        if timed:
            started = perf_counter()
        writes: List[SlotWrite] = []
        append = writes.append
        reports = 0
        for key, value in items:
            resolved = resolve(key)
            payload = encode(resolved.checksum, value)
            collector_id = resolved.collector_id
            slot_indexes = resolved.slot_indexes
            for n in range(redundancy):
                append(
                    SlotWrite(
                        collector_id=collector_id,
                        slot_index=slot_indexes[n],
                        copy_index=n,
                        payload=payload,
                    )
                )
            reports += 1
            if trace:
                trace_id = tracer.begin("report", key=repr(key))
                tracer.span(
                    trace_id, "reporter.report_batch", f"copies={redundancy}"
                )
                tracer.end(trace_id)
        if tracer.enabled and not trace and reports:
            active = tracer.active_trace_id
            trace_id = (
                tracer.begin("report_batch", key=f"reports={reports}")
                if active is None
                else active
            )
            tracer.span(
                trace_id,
                "reporter.report_batch",
                f"reports={reports} copies={redundancy}",
            )
            if active is None:
                tracer.end(trace_id)
        self.c_reports.inc(reports)
        self.c_writes.inc(len(writes))
        if timed:
            self._h_batch_seconds.observe(perf_counter() - started)
            self._h_batch_reports.observe(reports)
        return writes

    def write_for_copy(self, key: Key, value: bytes, copy_index: int) -> SlotWrite:
        """A single copy's write -- what one switch-crafted packet carries.

        The Tofino prototype picks ``copy_index`` with the native RNG per
        mirrored report packet (paper section 6); this method is that path.
        """
        if not 0 <= copy_index < self.config.redundancy:
            raise ValueError(
                f"copy_index {copy_index} outside [0, {self.config.redundancy})"
            )
        self.c_writes.inc()
        return SlotWrite(
            collector_id=self.addressing.collector_of(key),
            slot_index=self.addressing.slot_index(key, copy_index),
            copy_index=copy_index,
            payload=self.encode_slot(key, value),
        )

    def network_bytes_per_report(self, overhead_per_packet: int = 0) -> int:
        """Bytes put on the wire per telemetry report.

        N packets, each carrying one slot payload plus per-packet overhead
        (headers + iCRC).  This is the cost the paper's section 7 hopes to
        reduce with multi-address SmartNIC primitives.
        """
        if overhead_per_packet < 0:
            raise ValueError("overhead_per_packet must be non-negative")
        return self.redundancy * (self.config.slot_bytes + overhead_per_packet)


def apply_writes(writes: Sequence[SlotWrite], regions, codec=None) -> None:
    """Apply slot writes directly to a list of memory regions.

    ``regions[collector_id]`` must be a :class:`~repro.mem.region.MemoryRegion`.
    This is the in-process fast path used by stores and tests; the packet
    path goes through the switch and NIC models instead.
    """
    for write in writes:
        region = regions[write.collector_id]
        region.write_offset(
            write.slot_index * len(write.payload), write.payload
        )
