"""Vectorised slot-level simulator for DART's statistical experiments.

The paper's evaluation (section 5) is driven by "in-depth simulations" of
the DART data structure with up to 100 million keys.  A per-key Python loop
cannot reach those scales, so this module simulates exactly what the paper
simulates -- slot overwrites plus checksum collisions -- with numpy:

1. keys 0..K-1 are written in order, each placing N copies at its hashed
   slot addresses (last write wins per slot);
2. each key is then queried: its N slots are read, slots whose stored
   checksum mismatches are discarded, and a return policy resolves the
   remainder;
3. per-key outcomes (correct / empty / error) are reported, bucketed by
   insertion age on demand.

Success probabilities depend only on the load factor ``K/M`` and N, not on
absolute scale, so benches default to a few million keys and remain
shape-faithful to the paper's 100 M runs (EXPERIMENTS.md quantifies this).

The module also simulates the WRITE+Compare&Swap strategy of paper
section 7 for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import DartConfig
from repro.core.policies import ReturnPolicy
from repro.hashing.checksum import KeyChecksum
from repro.hashing.hash_family import HashFamily

#: Marks "no matching value" in tally matrices.
_SENTINEL = np.int64(2**62)
#: Marks "slot never written" in owner arrays.
_NO_OWNER = np.int64(-1)


@dataclass(frozen=True)
class SimulationSpec:
    """Parameters of one slot-level simulation run."""

    num_keys: int
    num_slots: int
    redundancy: int = 2
    checksum_bits: int = 32
    seed: int = 0
    policy: ReturnPolicy = ReturnPolicy.PLURALITY

    def __post_init__(self) -> None:
        if self.num_keys < 1:
            raise ValueError(f"num_keys must be >= 1, got {self.num_keys}")
        if self.num_slots < 1:
            raise ValueError(f"num_slots must be >= 1, got {self.num_slots}")
        if self.redundancy < 1:
            raise ValueError(f"redundancy must be >= 1, got {self.redundancy}")
        if not 1 <= self.checksum_bits <= 62:
            raise ValueError(
                f"checksum_bits must be in [1, 62], got {self.checksum_bits}"
            )

    @property
    def load_factor(self) -> float:
        """alpha -- distinct keys per slot."""
        return self.num_keys / self.num_slots

    @classmethod
    def from_config(
        cls, config: DartConfig, num_keys: int, **overrides
    ) -> "SimulationSpec":
        """Derive a spec from a deployment config."""
        params = dict(
            num_keys=num_keys,
            num_slots=config.total_slots,
            redundancy=config.redundancy,
            checksum_bits=config.checksum_bits,
            seed=config.seed,
        )
        params.update(overrides)
        return cls(**params)


@dataclass
class SimulationResult:
    """Per-key query outcomes of one simulation run.

    Keys are indexed by insertion order: index 0 is the *oldest* report
    (most keys written after it), index K-1 the freshest.
    """

    spec: SimulationSpec
    correct: np.ndarray  # bool[K] -- answered with the key's own value
    answered: np.ndarray  # bool[K] -- any value returned

    @property
    def num_keys(self) -> int:
        """Number of keys simulated."""
        return self.spec.num_keys

    @property
    def error(self) -> np.ndarray:
        """Answered, but with a wrong value (the paper's *return error*)."""
        return self.answered & ~self.correct

    @property
    def empty(self) -> np.ndarray:
        """No value returned (the paper's *empty return*)."""
        return ~self.answered

    @property
    def success_rate(self) -> float:
        """Fraction of keys whose query returned the correct value."""
        return float(self.correct.mean())

    @property
    def empty_rate(self) -> float:
        """Fraction of keys whose query returned nothing."""
        return float(self.empty.mean())

    @property
    def error_rate(self) -> float:
        """Fraction of keys whose query returned a wrong value."""
        return float(self.error.mean())

    def success_by_age(self, buckets: int = 10) -> np.ndarray:
        """Success rate per age bucket, oldest bucket first (Figure 4).

        Bucket 0 holds the oldest ``K/buckets`` reports.
        """
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        edges = np.linspace(0, self.num_keys, buckets + 1).astype(np.int64)
        rates = []
        for start, end in zip(edges[:-1], edges[1:]):
            if end > start:
                rates.append(float(self.correct[start:end].mean()))
            else:
                rates.append(float("nan"))
        return np.asarray(rates)

    def oldest_fraction_success(self, fraction: float = 0.01) -> float:
        """Success rate among the oldest ``fraction`` of reports."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        count = max(1, int(self.num_keys * fraction))
        return float(self.correct[:count].mean())


def _slot_addresses(spec: SimulationSpec, keys: np.ndarray) -> np.ndarray:
    """(K, N) matrix of slot indexes, one column per copy index."""
    family = HashFamily(seed=spec.seed)
    columns = [
        family.hash_array_mod(keys, n, spec.num_slots).astype(np.int64)
        for n in range(spec.redundancy)
    ]
    return np.stack(columns, axis=1)


def _checksums(spec: SimulationSpec, keys: np.ndarray) -> np.ndarray:
    checksum = KeyChecksum(bits=spec.checksum_bits, family=HashFamily(seed=spec.seed))
    return checksum.compute_array(keys).astype(np.int64)


def _tally_top_two(values: np.ndarray) -> tuple:
    """Top-2 value counts per row of a small-width matrix.

    ``values`` is (K, N) with ``_SENTINEL`` marking non-matches.  Returns
    ``(top_value, top_count, second_count, distinct)`` arrays where
    ``second_count`` is the count of the best value distinct from the top.
    Complexity O(K * N^2); N is at most ~8 in practice.
    """
    rows, width = values.shape
    valid = values != _SENTINEL
    counts = np.zeros((rows, width), dtype=np.int64)
    for i in range(width):
        for j in range(width):
            counts[:, i] += (values[:, i] == values[:, j]).astype(np.int64)
        counts[:, i] *= valid[:, i].astype(np.int64)

    top_idx = counts.argmax(axis=1)
    row_index = np.arange(rows)
    top_count = counts[row_index, top_idx]
    top_value = values[row_index, top_idx]

    not_top = values != top_value[:, None]
    second_count = np.where(not_top, counts, 0).max(axis=1)

    with np.errstate(divide="ignore", invalid="ignore"):
        contributions = np.where(valid & (counts > 0), 1.0 / counts, 0.0)
    distinct = np.rint(contributions.sum(axis=1)).astype(np.int64)
    return top_value, top_count, second_count, distinct


def _resolve_vectorised(
    matched_values: np.ndarray, policy: ReturnPolicy
) -> tuple:
    """Vectorised twin of :func:`repro.core.policies.resolve`.

    ``matched_values`` is (K, N) of candidate values with ``_SENTINEL``
    for checksum mismatches.  Returns ``(answered, value)`` arrays.
    """
    if policy is ReturnPolicy.FIRST_MATCH:
        valid = matched_values != _SENTINEL
        answered = valid.any(axis=1)
        first = valid.argmax(axis=1)
        value = matched_values[np.arange(matched_values.shape[0]), first]
        return answered, value

    top_value, top_count, second_count, distinct = _tally_top_two(matched_values)

    if policy is ReturnPolicy.SINGLE_VALUE:
        answered = distinct == 1
    elif policy is ReturnPolicy.PLURALITY:
        answered = (top_count > 0) & (top_count > second_count)
    elif policy is ReturnPolicy.CONSENSUS_2:
        answered = (top_count >= 2) & (
            (second_count < 2) | (top_count > second_count)
        )
    else:
        raise ValueError(f"unknown return policy: {policy!r}")
    return answered, top_value


def simulate(spec: SimulationSpec, chunk_size: Optional[int] = None) -> SimulationResult:
    """Run one slot-level simulation and evaluate every key's query.

    ``chunk_size`` bounds peak memory for paper-scale runs (10^8 keys):
    writes and queries are streamed in chunks of that many keys.  Chunking
    is exact, not approximate -- the final owner of a slot is the maximum
    key id that targeted it, which commutes with chunking -- so results
    are identical for any chunk size (tested).
    """
    if chunk_size is None or chunk_size >= spec.num_keys:
        keys = np.arange(spec.num_keys, dtype=np.uint64)
        addresses = _slot_addresses(spec, keys)
        checksums = _checksums(spec, keys)

        # Last write wins: the slot's final owner is the largest key id
        # that targeted it (keys are written in id order).
        owner = np.full(spec.num_slots, _NO_OWNER, dtype=np.int64)
        key_ids = np.repeat(
            np.arange(spec.num_keys, dtype=np.int64), spec.redundancy
        )
        np.maximum.at(owner, addresses.ravel(), key_ids)
        return _evaluate(spec, addresses, checksums, owner)
    return _simulate_chunked(spec, chunk_size)


def _simulate_chunked(spec: SimulationSpec, chunk_size: int) -> SimulationResult:
    """Memory-bounded twin of :func:`simulate` (identical results)."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    owner = np.full(spec.num_slots, _NO_OWNER, dtype=np.int64)
    # Pass 1: stream the writes to build the final owner array.
    for start in range(0, spec.num_keys, chunk_size):
        end = min(start + chunk_size, spec.num_keys)
        keys = np.arange(start, end, dtype=np.uint64)
        addresses = _slot_addresses(spec, keys)
        key_ids = np.repeat(np.arange(start, end, dtype=np.int64), spec.redundancy)
        np.maximum.at(owner, addresses.ravel(), key_ids)

    # All checksums are needed to decode arbitrary owners; at 10^8 keys
    # this is one int64 column (~0.8 GB) -- the binding constraint, noted
    # in EXPERIMENTS.md.
    all_checksums = _checksums(spec, np.arange(spec.num_keys, dtype=np.uint64))

    # Pass 2: stream the queries.
    correct = np.empty(spec.num_keys, dtype=bool)
    answered = np.empty(spec.num_keys, dtype=bool)
    for start in range(0, spec.num_keys, chunk_size):
        end = min(start + chunk_size, spec.num_keys)
        keys = np.arange(start, end, dtype=np.uint64)
        addresses = _slot_addresses(spec, keys)
        owners_read = owner[addresses]
        written = owners_read >= 0
        owner_checksums = np.where(
            written, all_checksums[np.clip(owners_read, 0, None)], -1
        )
        match = written & (owner_checksums == all_checksums[start:end, None])
        matched_values = np.where(match, owners_read, _SENTINEL)
        chunk_answered, value = _resolve_vectorised(matched_values, spec.policy)
        answered[start:end] = chunk_answered
        correct[start:end] = chunk_answered & (
            value == np.arange(start, end, dtype=np.int64)
        )
    return SimulationResult(spec=spec, correct=correct, answered=answered)


def _evaluate(
    spec: SimulationSpec,
    addresses: np.ndarray,
    checksums: np.ndarray,
    owner: np.ndarray,
) -> SimulationResult:
    """Query every key against the final slot owners."""
    owners_read = owner[addresses]  # (K, N) key id stored in each read slot
    written = owners_read >= 0
    owner_checksums = np.where(written, checksums[np.clip(owners_read, 0, None)], -1)
    match = written & (owner_checksums == checksums[:, None])

    matched_values = np.where(match, owners_read, _SENTINEL)
    answered, value = _resolve_vectorised(matched_values, spec.policy)
    key_ids = np.arange(spec.num_keys, dtype=np.int64)
    correct = answered & (value == key_ids)
    return SimulationResult(spec=spec, correct=correct, answered=answered)


def simulate_cas_strategy(spec: SimulationSpec) -> SimulationResult:
    """Simulate the WRITE + Compare&Swap strategy of paper section 7.

    With N=2: copy 0 is a plain RDMA WRITE (last writer wins); copy 1 is a
    Compare&Swap against an empty slot (first writer wins, and any plain
    WRITE landing on the same slot overwrites it).  The final content of a
    slot is therefore the last WRITE that targeted it, or -- if no WRITE
    ever did -- the first CAS.
    """
    if spec.redundancy != 2:
        raise ValueError("the CAS strategy is defined for redundancy == 2")
    keys = np.arange(spec.num_keys, dtype=np.uint64)
    addresses = _slot_addresses(spec, keys)
    checksums = _checksums(spec, keys)
    key_ids = np.arange(spec.num_keys, dtype=np.int64)

    last_write = np.full(spec.num_slots, _NO_OWNER, dtype=np.int64)
    np.maximum.at(last_write, addresses[:, 0], key_ids)

    first_cas = np.full(spec.num_slots, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(first_cas, addresses[:, 1], key_ids)

    owner = np.where(
        last_write >= 0,
        last_write,
        np.where(first_cas != np.iinfo(np.int64).max, first_cas, _NO_OWNER),
    )
    return _evaluate(spec, addresses, checksums, owner)


def sweep_load_factors(
    load_factors,
    redundancy: int,
    *,
    num_slots: int = 1 << 20,
    checksum_bits: int = 32,
    policy: ReturnPolicy = ReturnPolicy.PLURALITY,
    seed: int = 0,
    strategy: str = "write",
) -> list:
    """Average success rate at each load factor (Figure 3 series).

    ``strategy`` is ``"write"`` (N plain writes) or ``"cas"`` (section 7).
    Returns ``[(alpha, success_rate)]``.
    """
    if strategy not in ("write", "cas"):
        raise ValueError(f"unknown strategy {strategy!r}")
    results = []
    for alpha in load_factors:
        num_keys = max(1, int(round(alpha * num_slots)))
        spec = SimulationSpec(
            num_keys=num_keys,
            num_slots=num_slots,
            redundancy=redundancy,
            checksum_bits=checksum_bits,
            seed=seed,
            policy=policy,
        )
        run = simulate(spec) if strategy == "write" else simulate_cas_strategy(spec)
        results.append((float(alpha), run.success_rate))
    return results


def error_rate_experiment(
    *,
    num_keys: int,
    num_slots: int,
    checksum_bits: int,
    redundancy: int = 2,
    policy: ReturnPolicy = ReturnPolicy.PLURALITY,
    seed: int = 0,
) -> SimulationResult:
    """One run configured for measuring return errors (Figure 5)."""
    spec = SimulationSpec(
        num_keys=num_keys,
        num_slots=num_slots,
        redundancy=redundancy,
        checksum_bits=checksum_bits,
        seed=seed,
        policy=policy,
    )
    return simulate(spec)
