"""ReportBatch: a whole batch of telemetry reports as one columnar object.

The scalar datapath moves one Python object per report (and one dataclass
per frame) through switch -> fabric -> NIC -> region; at DART's target
rates that object churn dominates everything else.  The columnar datapath
instead resolves a batch of ``(key, value)`` items into parallel numpy
columns once -- collector IDs, checksums, per-copy slot indexes and the
encoded slot payload matrix -- and hands that single object down the
stack.  Every column is bit-identical to what the scalar path derives for
the same items (the byte-equivalence tests pin this), so the wire-format
contract survives the representation change.

The only scalar work left is the per-key fold (arbitrary Python keys must
be byte-encoded and chunk-mixed one at a time); everything derived from
the folded lanes is vectorised via
:meth:`~repro.core.addressing.DartAddressing.resolve_folded`.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.core.addressing import DartAddressing
from repro.core.config import DartConfig
from repro.hashing.hash_family import Key, fold_keys


class ReportBatch:
    """Columnar representation of ``n`` resolved telemetry reports.

    Attributes
    ----------
    collector_ids:
        ``uint64[n]`` -- the collector role holding all copies of report i.
    checksums:
        ``uint64[n]`` -- the b-bit key checksum stored in each slot.
    slot_indexes:
        ``uint64[redundancy, n]`` -- row ``c`` holds copy ``c``'s slot
        index for every report.
    payloads:
        ``uint8[n, slot_bytes]`` -- the encoded slot payload (big-endian
        checksum bytes followed by the zero-padded value), byte-identical
        to ``SlotCodec.encode`` per row.
    """

    __slots__ = ("config", "collector_ids", "checksums", "slot_indexes", "payloads")

    def __init__(
        self,
        config: DartConfig,
        collector_ids: np.ndarray,
        checksums: np.ndarray,
        slot_indexes: np.ndarray,
        payloads: np.ndarray,
    ) -> None:
        self.config = config
        self.collector_ids = collector_ids
        self.checksums = checksums
        self.slot_indexes = slot_indexes
        self.payloads = payloads

    def __len__(self) -> int:
        return len(self.collector_ids)

    @property
    def count(self) -> int:
        """Number of reports in the batch."""
        return len(self.collector_ids)

    def __repr__(self) -> str:
        return (
            f"ReportBatch(count={self.count}, "
            f"redundancy={self.slot_indexes.shape[0]}, "
            f"slot_bytes={self.payloads.shape[1]})"
        )

    @classmethod
    def from_items(
        cls,
        addressing: DartAddressing,
        items: Iterable[Tuple[Key, bytes]],
    ) -> "ReportBatch":
        """Resolve ``(key, value)`` items into one columnar batch.

        Validation matches the scalar path: oversize values raise the same
        ``ValueError`` the slot codec raises, before anything is emitted.
        """
        items = list(items) if not isinstance(items, (list, tuple)) else items
        config = addressing.config
        layout = config.layout
        value_bytes = layout.value_bytes
        checksum_bytes = layout.checksum_bytes
        n = len(items)

        parts: List[bytes] = []
        for _key, value in items:
            if len(value) > value_bytes:
                raise ValueError(
                    f"value of {len(value)} bytes exceeds layout value size "
                    f"{value_bytes}"
                )
            parts.append(value.ljust(value_bytes, b"\x00"))

        folded = fold_keys([key for key, _value in items])
        collector_ids, checksums, slot_indexes = addressing.resolve_folded(folded)

        payloads = np.empty((n, checksum_bytes + value_bytes), dtype=np.uint8)
        # Big-endian checksum bytes: view the u64 column as 8 bytes per row
        # and keep the low `checksum_bytes` of them.
        checksum_matrix = (
            checksums.astype(">u8").view(np.uint8).reshape(n, 8)
        )
        payloads[:, :checksum_bytes] = checksum_matrix[:, 8 - checksum_bytes :]
        if n:
            payloads[:, checksum_bytes:] = np.frombuffer(
                b"".join(parts), dtype=np.uint8
            ).reshape(n, value_bytes)
        return cls(config, collector_ids, checksums, slot_indexes, payloads)
