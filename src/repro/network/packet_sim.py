"""Fully packet-level INT path tracing: data packets carry the telemetry.

The highest-fidelity pipeline in the reproduction.  A source host emits a
real UDP datagram whose payload is an INT shim + metadata stack
(:mod:`repro.telemetry.int_headers`); every switch on the ECMP path pushes
its 32-bit switch ID onto the stack *inside the packet bytes*; the
last-hop switch plays INT sink -- it strips the stack, restores the user
payload for delivery, and hands <5-tuple> -> <path> to its
:class:`~repro.switch.dart_switch.DartSwitch` logic, which crafts the
RoCEv2 report frames the collector NICs execute.

Every arrow in the paper's Figure 2 is therefore exercised with real
bytes: data packet -> INT accumulation -> mirror -> RDMA write -> query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.client import DartQueryClient
from repro.core.config import DartConfig
from repro.collector.collector import CollectorCluster
from repro.fabric.fabric import Fabric, InlineFabric
from repro.network.flows import Flow
from repro.network.simulation import encode_path
from repro.network.topology import FatTreeTopology
from repro.switch.control_plane import SwitchControlPlane
from repro.switch.dart_switch import DartSwitch
from repro.telemetry.int_headers import IntStack, new_probe


@dataclass
class DataPacket:
    """A simplified data packet: 5-tuple addressing + raw L4 payload."""

    flow: Flow
    payload: bytes

    @property
    def five_tuple(self):
        """The flow 5-tuple this packet belongs to."""
        return self.flow.five_tuple


@dataclass
class DeliveryResult:
    """What came out the far end of one packet's journey."""

    delivered_payload: bytes
    recorded_path: List[int]
    report_frames: int


class IntTransitSwitch:
    """Transit behaviour: push our switch ID into the packet's INT stack."""

    def __init__(self, switch_id: int) -> None:
        self.switch_id = switch_id
        self.packets_seen = 0
        self.hops_recorded = 0

    def process(self, payload: bytes) -> bytes:
        """Rewrite the INT payload in place (bytes in, bytes out)."""
        self.packets_seen += 1
        stack = IntStack.unpack(payload)
        if stack.push_hop(self.switch_id):
            self.hops_recorded += 1
        return stack.pack()


class IntSinkSwitch(IntTransitSwitch):
    """Sink behaviour: record our hop, strip INT, report through DART."""

    def __init__(self, switch_id: int, dart: DartSwitch) -> None:
        super().__init__(switch_id)
        self.dart = dart
        self.reports_emitted = 0

    def finish(self, flow: Flow, payload: bytes) -> Tuple[bytes, List[int], List]:
        """Process the final hop: returns (user payload, path, frames)."""
        rewritten = self.process(payload)
        stack = IntStack.unpack(rewritten)
        path, user_payload = stack.strip()
        frames = self.dart.report(flow.five_tuple, encode_path(path))
        self.reports_emitted += 1
        return user_payload, path, frames


class PacketLevelIntNetwork:
    """The full fabric: hosts, INT switches, DART switches, collectors."""

    def __init__(
        self,
        topology: FatTreeTopology,
        config: DartConfig,
        max_int_hops: int = 8,
        fabric: Optional[Fabric] = None,
        scraper=None,
        num_standbys: int = 0,
    ) -> None:
        self.topology = topology
        self.config = config
        self.max_int_hops = max_int_hops
        self.cluster = CollectorCluster(config, num_standbys=num_standbys)
        self.fabric = fabric if fabric is not None else InlineFabric()
        self.cluster.attach_to(self.fabric)
        self.client = DartQueryClient(config, reader=self.cluster.read_slot)
        self.plane = SwitchControlPlane(config)
        plane = self.plane

        self.transits: Dict[int, IntTransitSwitch] = {}
        self.sinks: Dict[int, IntSinkSwitch] = {}
        for node in topology.switches:
            dart = DartSwitch(config, switch_id=node.switch_id)
            plane.connect_switch(dart, self.cluster)
            self.transits[node.switch_id] = IntTransitSwitch(node.switch_id)
            self.sinks[node.switch_id] = IntSinkSwitch(node.switch_id, dart)
        #: Optional MetricsScraper driven by the packet count (one logical
        #: tick per :meth:`send`), keeping series cadence deterministic.
        self.scraper = scraper
        #: Optional FleetController, ticked on the same logical clock
        #: (see :meth:`enable_control`).
        self.controller = None
        self.packets_sent = 0

    def enable_control(self, *, fail_after: int = 2, tick_interval: int = 50):
        """Attach a fleet controller, ticked on the packet clock.

        Every :meth:`send` advances the logical clock the controller's
        :meth:`~repro.control.controller.FleetController.maybe_tick`
        watches, so failure detection and failover run *inside* the
        simulation timeline -- convergence is measured in packets, not
        wall-clock.  Returns the controller for direct driving in tests.
        """
        from repro.control.controller import FleetController

        self.controller = FleetController(
            self.cluster,
            self.plane,
            self.fabric,
            fail_after=fail_after,
            tick_interval=tick_interval,
        )
        return self.controller

    def kill_collector(self, node_id: int) -> None:
        """Chaos hook: crash one collector host mid-run."""
        self.cluster.node(node_id).fail()

    def recover_collector(self, node_id: int) -> None:
        """Chaos hook: revive a crashed host and rejoin it as a standby."""
        self.cluster.node(node_id).recover()
        if self.controller is not None:
            self.controller.rejoin(node_id)

    def send(self, flow: Flow, user_payload: bytes = b"app-data") -> DeliveryResult:
        """Send one INT-enabled datagram from src to dst host."""
        self.packets_sent += 1
        path = self.topology.path(flow.src_host, flow.dst_host, flow.five_tuple)
        payload = new_probe(user_payload, max_hops=self.max_int_hops).pack()

        # Transit hops rewrite the packet bytes; the last hop is the sink.
        for switch_id in path[:-1]:
            payload = self.transits[switch_id].process(payload)
        delivered, recorded, frames = self.sinks[path[-1]].finish(flow, payload)

        executed = 0
        for collector_id, frame in frames:
            result = self.fabric.send(collector_id, frame)
            if result or result is None:
                # None = deferred by a buffered fabric; count the frame as
                # in flight, it executes at the next flush.
                executed += 1
        obs.get_journal().advance(self.packets_sent)
        if self.scraper is not None:
            self.scraper.maybe_scrape(self.packets_sent)
        if self.controller is not None:
            self.controller.maybe_tick(self.packets_sent)
        return DeliveryResult(
            delivered_payload=delivered,
            recorded_path=recorded,
            report_frames=executed,
        )

    def query_path(self, flow: Flow):
        """Operator query for a flow's recorded path."""
        return self.client.query(flow.five_tuple)
