"""Postcard-mode INT over the fat tree.

In postcard mode every switch on a flow's path reports its own local
measurement under (switchID, flow 5-tuple) -- Table 1's second row.  Where
in-band INT produces one report per flow, postcards produce one per hop,
multiplying both the report rate and the number of live keys by the mean
path length.  This simulation quantifies that trade against in-band mode
at equal memory, which is the capacity-planning decision the two Table-1
rows imply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import DartConfig
from repro.collector.store import DartStore
from repro.network.flows import Flow
from repro.network.topology import FatTreeTopology
from repro.telemetry.postcards import PostcardBackend, PostcardMeasurement


@dataclass
class PostcardEvaluation:
    """Hop-level ground-truth comparison."""

    flows: int
    hops_total: int
    hops_correct: int
    hops_empty: int
    hops_wrong: int
    flows_fully_traceable: int

    @property
    def hop_success_rate(self) -> float:
        """Fraction of (hop, flow) postcards retrieved correctly."""
        return self.hops_correct / self.hops_total if self.hops_total else float("nan")

    @property
    def full_path_rate(self) -> float:
        """Fraction of flows with *every* hop's postcard retrievable."""
        return self.flows_fully_traceable / self.flows if self.flows else float("nan")


class PostcardSimulation:
    """Per-hop postcard reporting for every traced flow."""

    def __init__(self, topology: FatTreeTopology, config: DartConfig) -> None:
        self.topology = topology
        self.config = config
        self.store = DartStore(config)
        self.backend = PostcardBackend(self.store)
        self._truth: Dict[tuple, PostcardMeasurement] = {}
        self._paths: Dict[tuple, List[int]] = {}
        self.reports_sent = 0

    def trace_flow(self, flow: Flow) -> List[int]:
        """Route one flow; every hop emits a postcard."""
        path = self.topology.path(flow.src_host, flow.dst_host, flow.five_tuple)
        self._paths[flow.five_tuple] = path
        for hop_index, switch_id in enumerate(path):
            measurement = PostcardMeasurement(
                timestamp_ns=1_000_000 * hop_index + switch_id,
                queue_depth=switch_id % 64,
                egress_port=hop_index,
                hop_latency_ns=500 + 13 * switch_id,
            )
            self.backend.switch_report(switch_id, flow, measurement)
            self._truth[(switch_id, flow.five_tuple)] = measurement
            self.reports_sent += 1
        return path

    def trace_flows(self, flows: Sequence[Flow]) -> None:
        """Trace a batch of flows (one postcard per hop each)."""
        for flow in flows:
            self.trace_flow(flow)

    def hop_measurement(
        self, switch_id: int, flow: Flow
    ) -> Optional[PostcardMeasurement]:
        """Query one hop's postcard for a flow."""
        return self.backend.hop_measurement(switch_id, flow)

    def evaluate(self) -> PostcardEvaluation:
        """Query every (hop, flow) postcard against ground truth."""
        flows_seen = list(self._paths)
        hops_correct = hops_empty = hops_wrong = 0
        fully = 0
        for five_tuple in flows_seen:
            all_hops_good = True
            for switch_id in self._paths[five_tuple]:
                key = (switch_id, five_tuple)
                stored = self.backend.query(key)
                if stored is None:
                    hops_empty += 1
                    all_hops_good = False
                elif stored == self._truth[key]:
                    hops_correct += 1
                else:
                    hops_wrong += 1
                    all_hops_good = False
            if all_hops_good:
                fully += 1
        return PostcardEvaluation(
            flows=len(flows_seen),
            hops_total=hops_correct + hops_empty + hops_wrong,
            hops_correct=hops_correct,
            hops_empty=hops_empty,
            hops_wrong=hops_wrong,
            flows_fully_traceable=fully,
        )


def mode_comparison_rows(
    *,
    num_flows: int = 5_000,
    memory_bytes: int = 1_200_000,
    k: int = 8,
    seed: int = 0,
) -> List[dict]:
    """In-band vs postcard INT at equal collector memory.

    In-band stores one key per flow; postcards store one per hop.  At the
    same memory budget the postcard load factor is ~path-length times
    higher, so queryability drops -- the structural cost of per-hop
    visibility the two Table-1 rows trade.
    """
    from repro.network.flows import FlowGenerator
    from repro.network.simulation import IntSimulation

    tree = FatTreeTopology(k=k)
    flows = FlowGenerator(tree.num_hosts, host_ip=tree.host_ip, seed=seed).uniform(
        num_flows
    )
    rows = []

    inband_config = DartConfig.for_memory_budget(memory_bytes, value_bytes=20, seed=seed)
    inband = IntSimulation(tree, inband_config)
    inband.trace_flows(flows)
    inband_eval = inband.evaluate()
    rows.append(
        {
            "mode": "in-band INT",
            "reports": inband.reports_sent,
            "live_keys": inband_eval.total,
            "load_factor": inband_config.load_factor(inband_eval.total),
            "success_rate": inband_eval.success_rate,
            "per_hop_visibility": False,
        }
    )

    postcard_config = DartConfig.for_memory_budget(
        memory_bytes, value_bytes=20, seed=seed
    )
    postcards = PostcardSimulation(tree, postcard_config)
    postcards.trace_flows(flows)
    postcard_eval = postcards.evaluate()
    rows.append(
        {
            "mode": "INT postcards",
            "reports": postcards.reports_sent,
            "live_keys": postcard_eval.hops_total,
            "load_factor": postcard_config.load_factor(postcard_eval.hops_total),
            "success_rate": postcard_eval.hop_success_rate,
            "per_hop_visibility": True,
        }
    )
    return rows
