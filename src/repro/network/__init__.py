"""Network substrate: topology, workloads and the INT simulation driver.

The paper's running example is INT path tracing on a 5-hop fat-tree
(sections 1 and 5): every flow's packets accumulate the switch IDs they
traverse, and the last hop reports <flow 5-tuple> -> <path> to DART.  This
package provides the pieces:

- :mod:`repro.network.topology` -- k-ary fat-tree construction with ECMP
  path selection (up to 5 switch hops between hosts in different pods).
- :mod:`repro.network.flows` -- 5-tuple flow workload generators with
  uniform and Zipf popularity.
- :mod:`repro.network.simulation` -- drives flows across the topology,
  accumulates INT metadata hop by hop, and reports through DART at the
  sink, with optional report loss injection.
- :mod:`repro.network.postcard_sim` -- the postcard-mode twin: one report
  per hop, keyed by (switchID, 5-tuple).
- :mod:`repro.network.capacity` -- collection-capacity models and the
  telemetry-storm queue simulation (section 2's argument, quantified).
"""

from repro.network.topology import FatTreeTopology, SwitchNode
from repro.network.flows import Flow, FlowGenerator
from repro.network.simulation import IntSimulation, LossModel, PathRecord
from repro.network.postcard_sim import PostcardSimulation
from repro.network.capacity import simulate_ingestion

__all__ = [
    "FatTreeTopology",
    "Flow",
    "FlowGenerator",
    "IntSimulation",
    "LossModel",
    "PathRecord",
    "PostcardSimulation",
    "SwitchNode",
    "simulate_ingestion",
]
