"""End-to-end INT path-tracing simulation over a fat tree.

This driver reproduces the paper's running example: each flow's packets
cross the fabric accumulating one 32-bit switch ID per hop (in-band INT);
the final hop acts as the INT *sink* and pushes <5-tuple> -> <path> into
DART.  Two fidelity levels share the same addressing:

- ``packet_level=True``: the sink is a full :class:`DartSwitch` whose
  RoCEv2 frames traverse a loss model before reaching collector NICs --
  used by integration tests and the prototype benchmark;
- ``packet_level=False``: reports use the reporter fast path -- used to
  push flow counts into the tens of thousands in examples.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.client import DartQueryClient
from repro.core.config import DartConfig
from repro.core.policies import QueryResult, ReturnPolicy
from repro.core.reporter import DartReporter
from repro.collector.collector import CollectorCluster
from repro.fabric.fabric import Fabric, InlineFabric
from repro.network.flows import Flow
from repro.network.topology import FatTreeTopology
from repro.switch.control_plane import SwitchControlPlane
from repro.switch.dart_switch import DartSwitch

#: INT path values are fixed-width: 5 hops x 32-bit switch IDs = 160 bits,
#: the value size of the paper's Figure 4.
MAX_HOPS = 5


def encode_path(switch_ids: Sequence[int]) -> bytes:
    """Pack up to 5 switch IDs into the 20-byte INT value.

    Unused trailing hops are encoded as ``0xFFFFFFFF`` so that a 1-hop
    path is distinguishable from a path through switch 0.
    """
    if not 1 <= len(switch_ids) <= MAX_HOPS:
        raise ValueError(f"paths must have 1..{MAX_HOPS} hops, got {len(switch_ids)}")
    padded = list(switch_ids) + [0xFFFFFFFF] * (MAX_HOPS - len(switch_ids))
    return struct.pack(">5I", *padded)


def decode_path(value: bytes) -> List[int]:
    """Inverse of :func:`encode_path`."""
    if len(value) != 20:
        raise ValueError(f"INT path values are 20 bytes, got {len(value)}")
    hops = struct.unpack(">5I", value)
    return [hop for hop in hops if hop != 0xFFFFFFFF]


class LossModel:
    """Bernoulli report-packet loss, seeded for reproducibility."""

    def __init__(self, loss_probability: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1], got {loss_probability}"
            )
        self.loss_probability = loss_probability
        self._rng = random.Random(seed)
        self.delivered = 0
        self.lost = 0

    def deliver(self) -> bool:
        """Whether the next packet survives the network."""
        if self.loss_probability and self._rng.random() < self.loss_probability:
            self.lost += 1
            return False
        self.delivered += 1
        return True


@dataclass
class PathRecord:
    """Ground truth for one simulated flow."""

    flow: Flow
    path: List[int]

    @property
    def key(self):
        """The DART telemetry key (flow 5-tuple)."""
        return self.flow.five_tuple

    @property
    def value(self) -> bytes:
        """The encoded 20-byte path value."""
        return encode_path(self.path)


class IntSimulation:
    """Drives INT path tracing over a fat tree into a DART deployment.

    Parameters
    ----------
    topology:
        The fabric; paths come from its ECMP routing.
    config:
        DART deployment config (value_bytes must fit the 20-byte paths).
    packet_level:
        Craft real RoCEv2 frames at sink switches (slow, byte-exact) or
        use the reporter fast path (default).
    loss:
        Optional report-loss model applied on the switch-to-collector hop.
    fabric:
        The transport report frames traverse in packet-level mode; defaults
        to an :class:`~repro.fabric.InlineFabric`.  Loss drawn by ``loss``
        is applied *before* the fabric, preserving seeded RNG sequences.
    scraper:
        Optional :class:`~repro.obs.timeseries.MetricsScraper` driven by
        the simulation's logical clock: after every report the simulation
        calls ``scraper.maybe_scrape(reports_sent)``, so time-series
        cadence is deterministic in report counts, not wall-clock.
    """

    def __init__(
        self,
        topology: FatTreeTopology,
        config: DartConfig,
        *,
        packet_level: bool = False,
        loss: Optional[LossModel] = None,
        fabric: Optional[Fabric] = None,
        scraper=None,
    ) -> None:
        if config.value_bytes < 20:
            raise ValueError(
                "INT path tracing needs value_bytes >= 20 (5 hops x 32 bits)"
            )
        self.topology = topology
        self.config = config
        self.cluster = CollectorCluster(config)
        self.reporter = DartReporter(config)
        self.client = DartQueryClient(config, reader=self.cluster.read_slot)
        self.loss = loss if loss is not None else LossModel(0.0)
        self.packet_level = packet_level
        self.scraper = scraper
        self.records: List[PathRecord] = []
        self.reports_sent = 0

        self._sinks: Dict[int, DartSwitch] = {}
        self.fabric: Optional[Fabric] = None
        if packet_level:
            self.fabric = fabric if fabric is not None else InlineFabric()
            self.cluster.attach_to(self.fabric)
            plane = SwitchControlPlane(config)
            for node in topology.switches:
                switch = DartSwitch(
                    config, switch_id=node.switch_id, fabric=self.fabric
                )
                plane.connect_switch(switch, self.cluster)
                self._sinks[node.switch_id] = switch
        elif fabric is not None:
            raise ValueError(
                "a fabric only carries RoCEv2 frames; pass packet_level=True"
            )

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------

    def trace_flow(self, flow: Flow) -> PathRecord:
        """Route one flow, accumulate INT metadata, report at the sink."""
        path = self.topology.path(flow.src_host, flow.dst_host, flow.five_tuple)
        record = PathRecord(flow=flow, path=path)
        self.records.append(record)
        self._report(record)
        return record

    def trace_flows(self, flows: Sequence[Flow]) -> List[PathRecord]:
        """Trace a batch of flows."""
        return [self.trace_flow(flow) for flow in flows]

    def _report(self, record: PathRecord) -> None:
        self.reports_sent += 1
        if self.packet_level:
            sink = self._sinks[record.path[-1]]
            for collector_id, frame in sink.report(record.key, record.value):
                if self.loss.deliver():
                    self.fabric.send(collector_id, frame)
        else:
            for write in self.reporter.writes_for(record.key, record.value):
                if self.loss.deliver():
                    self.cluster[write.collector_id].write_slot(
                        write.slot_index, write.payload
                    )
        if self.scraper is not None:
            self.scraper.maybe_scrape(self.reports_sent)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def query_path(
        self, flow: Flow, policy: Optional[ReturnPolicy] = None
    ) -> QueryResult:
        """Query the stored path of one flow."""
        return self.client.query(flow.five_tuple, policy=policy)

    def evaluate(self, policy: Optional[ReturnPolicy] = None) -> "IntEvaluation":
        """Query every traced flow and compare against ground truth.

        A flow counts as *correct* only if the returned bytes decode to the
        exact switch path the flow actually took -- the end-to-end success
        criterion behind the paper's headline claim.
        """
        truth: Dict[tuple, bytes] = {r.key: r.value for r in self.records}
        evaluation = IntEvaluation(total=len(truth))
        for key, value in truth.items():
            result = self.client.query(key, policy=policy)
            if not result.answered:
                evaluation.empty += 1
            elif result.value == value:
                evaluation.correct += 1
            else:
                evaluation.wrong += 1
        return evaluation


@dataclass
class IntEvaluation:
    """Ground-truth comparison over all traced flows."""

    total: int
    correct: int = 0
    empty: int = 0
    wrong: int = 0

    @property
    def success_rate(self) -> float:
        """Correct paths / total flows."""
        return self.correct / self.total if self.total else float("nan")

    @property
    def error_rate(self) -> float:
        """Wrong paths / total flows."""
        return self.wrong / self.total if self.total else float("nan")
