"""k-ary fat-tree topology with ECMP path selection.

A k-ary fat tree has k pods, each with k/2 edge and k/2 aggregation
switches, plus (k/2)^2 core switches; every edge switch serves k/2 hosts.
Host-to-host paths are 1 hop (same edge switch), 3 hops (same pod) or
5 hops (via core) -- the "5-hop fat-tree" of the paper's INT example.

ECMP is modelled faithfully: when several equal-cost next hops exist, the
choice is a deterministic hash of the flow 5-tuple, so all packets of a
flow follow one path while flows spread across the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

import networkx as nx

from repro.hashing.hash_family import HashFamily


class SwitchRole(Enum):
    """Layer of a fat-tree switch."""

    EDGE = "edge"
    AGGREGATION = "aggregation"
    CORE = "core"


@dataclass(frozen=True)
class SwitchNode:
    """One switch in the fabric."""

    switch_id: int
    role: SwitchRole
    pod: int  # -1 for core switches


class FatTreeTopology:
    """A k-ary fat tree with deterministic ECMP routing.

    Parameters
    ----------
    k:
        Fat-tree arity; must be even and >= 2.  Hosts = k^3/4,
        switches = 5k^2/4.
    ecmp_seed:
        Seed of the hash used for ECMP next-hop selection.
    """

    def __init__(self, k: int = 4, ecmp_seed: int = 0) -> None:
        if k < 2 or k % 2:
            raise ValueError(f"fat-tree arity k must be even and >= 2, got {k}")
        self.k = k
        self._ecmp = HashFamily(seed=ecmp_seed)
        self.graph = nx.Graph()
        self.switches: List[SwitchNode] = []
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _add_switch(self, role: SwitchRole, pod: int) -> int:
        switch_id = len(self.switches)
        node = SwitchNode(switch_id=switch_id, role=role, pod=pod)
        self.switches.append(node)
        self.graph.add_node(("switch", switch_id), node=node)
        return switch_id

    def _build(self) -> None:
        k = self.k
        half = k // 2
        self._edge: List[List[int]] = []
        self._agg: List[List[int]] = []
        self._core: List[int] = []

        for pod in range(k):
            self._edge.append(
                [self._add_switch(SwitchRole.EDGE, pod) for _ in range(half)]
            )
            self._agg.append(
                [self._add_switch(SwitchRole.AGGREGATION, pod) for _ in range(half)]
            )
        for _ in range(half * half):
            self._core.append(self._add_switch(SwitchRole.CORE, -1))

        # Pod wiring: full bipartite edge <-> aggregation inside each pod.
        for pod in range(k):
            for edge in self._edge[pod]:
                for agg in self._agg[pod]:
                    self.graph.add_edge(("switch", edge), ("switch", agg))

        # Core wiring: aggregation switch j in every pod connects to core
        # group j (cores j*half .. j*half+half-1).
        for pod in range(k):
            for j, agg in enumerate(self._agg[pod]):
                for c in range(half):
                    core = self._core[j * half + c]
                    self.graph.add_edge(("switch", agg), ("switch", core))

        # Hosts: half hosts per edge switch, numbered consecutively.
        self.num_hosts = k * half * half
        for host in range(self.num_hosts):
            edge = self.edge_switch_of(host)
            self.graph.add_edge(("host", host), ("switch", edge))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_switches(self) -> int:
        """Total switches in the fabric (5k^2/4)."""
        return len(self.switches)

    def edge_switch_of(self, host: int) -> int:
        """The edge switch serving ``host``."""
        if not 0 <= host < self.num_hosts:
            raise ValueError(f"host {host} outside [0, {self.num_hosts})")
        half = self.k // 2
        pod, rest = divmod(host, half * half)
        edge_index = rest // half
        return self._edge[pod][edge_index]

    def pod_of_host(self, host: int) -> int:
        """Pod index of ``host``."""
        half = self.k // 2
        return host // (half * half)

    def host_ip(self, host: int) -> str:
        """Address plan: 10.pod.edge.host-index (fat-tree convention)."""
        half = self.k // 2
        pod, rest = divmod(host, half * half)
        edge_index, host_index = divmod(rest, half)
        return f"10.{pod}.{edge_index}.{host_index + 2}"

    def host_of_ip(self, ip: str) -> int:
        """Inverse of :meth:`host_ip`; raises ``ValueError`` off-plan."""
        parts = ip.split(".")
        if len(parts) != 4 or parts[0] != "10":
            raise ValueError(f"not a fat-tree host address: {ip!r}")
        half = self.k // 2
        pod, edge_index, host_index = int(parts[1]), int(parts[2]), int(parts[3]) - 2
        host = pod * half * half + edge_index * half + host_index
        if not 0 <= host < self.num_hosts:
            raise ValueError(f"address {ip!r} outside this fat tree")
        return host

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _ecmp_pick(self, flow_key: tuple, stage: int, choices: List[int]) -> int:
        """Deterministic ECMP: hash the 5-tuple and the decision stage."""
        index = self._ecmp.hash_key_mod((flow_key, stage), 0, len(choices))
        return choices[index]

    def path(self, src_host: int, dst_host: int, flow_key: tuple) -> List[int]:
        """Switch IDs traversed from ``src_host`` to ``dst_host``.

        The same (src, dst, flow_key) always yields the same path; distinct
        flows hash across the equal-cost choices.  Lengths are 1, 3 or 5
        switches.
        """
        if src_host == dst_host:
            raise ValueError("source and destination host coincide")
        src_edge = self.edge_switch_of(src_host)
        dst_edge = self.edge_switch_of(dst_host)
        if src_edge == dst_edge:
            return [src_edge]

        src_pod = self.pod_of_host(src_host)
        dst_pod = self.pod_of_host(dst_host)
        if src_pod == dst_pod:
            agg = self._ecmp_pick(flow_key, 0, self._agg[src_pod])
            return [src_edge, agg, dst_edge]

        half = self.k // 2
        agg_up = self._ecmp_pick(flow_key, 0, self._agg[src_pod])
        # The chosen aggregation switch constrains the reachable core group.
        agg_index = self._agg[src_pod].index(agg_up)
        core_group = [
            self._core[agg_index * half + c] for c in range(half)
        ]
        core = self._ecmp_pick(flow_key, 1, core_group)
        # Down path is forced: the core's group index names the agg switch.
        agg_down = self._agg[dst_pod][agg_index]
        return [src_edge, agg_up, core, agg_down, dst_edge]

    def all_pairs_reachable(self) -> bool:
        """Connectivity self-check used by tests."""
        return nx.is_connected(self.graph)
