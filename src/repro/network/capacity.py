"""Collection-capacity model: how much ingest one collector sustains.

Section 2 of the paper argues CPU collectors cannot keep up; section 2's
closing note gives the other side: "current RDMA-capable network cards are
capable of processing more than 200 million messages per second, which is
significantly faster than CPU-based telemetry collectors".  This module
makes that comparison quantitative and runnable:

- analytic capacity per collector for each stack (RNIC message rate vs
  cycles-per-report on a core budget);
- a slotted-time queue simulation that offers a report load to a collector
  with finite per-second capacity and a bounded ingress queue, measuring
  delivered fraction and queue occupancy -- the behaviour an operator sees
  when a telemetry storm hits an undersized collector tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.baselines.cost_model import (
    CostModel,
    DPDK_CONFLUO_MODEL,
    SOCKET_KAFKA_MODEL,
)

#: ConnectX-6-class RNIC message rate (paper section 2, citing [48]).
RNIC_MESSAGES_PER_SEC = 200_000_000


def collector_capacity_rows(
    cores_per_collector: int = 16, cpu_ghz: float = 3.0
) -> List[dict]:
    """Reports/second one collector host sustains, per stack."""
    if cores_per_collector < 1:
        raise ValueError("cores_per_collector must be >= 1")
    if cpu_ghz <= 0:
        raise ValueError("cpu_ghz must be positive")
    rows = []
    for model in (SOCKET_KAFKA_MODEL, DPDK_CONFLUO_MODEL):
        per_core = cpu_ghz * 1e9 / model.total_cycles_per_report
        rows.append(
            {
                "stack": model.name,
                "reports_per_sec_per_core": per_core,
                "reports_per_sec_per_host": per_core * cores_per_collector,
                "hosts_for_10k_switches_1mps": _hosts_needed(
                    per_core * cores_per_collector, 10_000 * 1_000_000
                ),
            }
        )
    rows.append(
        {
            "stack": "DART (RNIC DMA)",
            "reports_per_sec_per_core": 0.0,  # no cores consumed
            "reports_per_sec_per_host": float(RNIC_MESSAGES_PER_SEC),
            "hosts_for_10k_switches_1mps": _hosts_needed(
                RNIC_MESSAGES_PER_SEC, 10_000 * 1_000_000
            ),
        }
    )
    return rows


def _hosts_needed(per_host: float, offered: float) -> int:
    if per_host <= 0:
        raise ValueError("per-host capacity must be positive")
    return int(-(-offered // per_host))


@dataclass
class QueueSimResult:
    """Outcome of one slotted-time ingestion simulation."""

    offered: int
    delivered: int
    dropped: int
    peak_queue: int

    @property
    def delivered_fraction(self) -> float:
        """Delivered / offered reports."""
        return self.delivered / self.offered if self.offered else float("nan")


def simulate_ingestion(
    offered_per_slot: Sequence[int],
    capacity_per_slot: int,
    queue_limit: int,
) -> QueueSimResult:
    """Slotted-time queue: arrivals, bounded queue, fixed service rate.

    Each slot, ``offered_per_slot[t]`` reports arrive; up to
    ``capacity_per_slot`` are served; the excess queues up to
    ``queue_limit`` (NIC/DMA ring or socket buffer) and overflow is
    dropped -- the collection-loss mechanism under storms.
    """
    if capacity_per_slot < 0:
        raise ValueError("capacity_per_slot must be non-negative")
    if queue_limit < 0:
        raise ValueError("queue_limit must be non-negative")
    queue = 0
    delivered = dropped = 0
    peak_queue = 0
    offered_total = 0
    for arrivals in offered_per_slot:
        if arrivals < 0:
            raise ValueError("arrivals must be non-negative")
        offered_total += arrivals
        queue += arrivals
        if queue > queue_limit:
            dropped += queue - queue_limit
            queue = queue_limit
        served = min(queue, capacity_per_slot)
        delivered += served
        queue -= served
        peak_queue = max(peak_queue, queue)
    # Drain whatever remains at the end.
    delivered += queue
    return QueueSimResult(
        offered=offered_total,
        delivered=delivered,
        dropped=dropped,
        peak_queue=peak_queue,
    )


def storm_comparison_rows(
    switches: int = 800,
    reports_per_switch_per_slot: int = 100,
    storm_multiplier: int = 2,
    slots: int = 100,
    storm_slots: range = range(40, 60),
    cores_per_collector: int = 16,
    queue_limit: int = 2_000_000,
) -> List[dict]:
    """A telemetry storm against one collector of each stack.

    Baseline load with a ``storm_multiplier`` burst in the middle; the
    slot length is calibrated to 1 ms (so per-slot capacity is the
    per-second rate / 1000).  Defaults put the baseline (80 M reports/s)
    inside one RNIC's 200 M msg/s but far beyond any CPU stack -- the
    regime the paper's section 2 describes.
    """
    base = switches * reports_per_switch_per_slot
    offered = [
        base * (storm_multiplier if t in storm_slots else 1)
        for t in range(slots)
    ]
    capacities = {
        "sockets + Kafka": _per_slot(SOCKET_KAFKA_MODEL, cores_per_collector),
        "DPDK + Confluo": _per_slot(DPDK_CONFLUO_MODEL, cores_per_collector),
        "DART (RNIC DMA)": RNIC_MESSAGES_PER_SEC // 1000,
    }
    rows = []
    for stack, capacity in capacities.items():
        result = simulate_ingestion(offered, capacity, queue_limit)
        rows.append(
            {
                "stack": stack,
                "capacity_per_ms": capacity,
                "offered": result.offered,
                "delivered_fraction": result.delivered_fraction,
                "dropped": result.dropped,
                "peak_queue": result.peak_queue,
            }
        )
    return rows


def _per_slot(model: CostModel, cores: int, cpu_ghz: float = 3.0) -> int:
    per_second = cores * cpu_ghz * 1e9 / model.total_cycles_per_report
    return int(per_second // 1000)
