"""Flow workload generation: 5-tuples over fat-tree hosts.

Telemetry keys in the paper's running example are flow 5-tuples
(src IP, dst IP, src port, dst port, protocol).  The generator produces
deterministic, seeded workloads: uniform host pairs or Zipf-popular
destinations (datacenter traffic is heavily skewed -- Roy et al. [44] in
the paper's motivation), with the per-flow packet counts that drive
event-triggered reporting rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

TCP = 6
UDP = 17


@dataclass(frozen=True)
class Flow:
    """A unidirectional transport flow between two hosts."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: int
    src_host: int
    dst_host: int

    @property
    def five_tuple(self) -> Tuple[str, str, int, int, int]:
        """The DART telemetry key for in-band INT (paper Table 1)."""
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol)


class FlowGenerator:
    """Seeded flow workload generator over a host population.

    Parameters
    ----------
    num_hosts:
        Size of the host population (use ``topology.num_hosts``).
    host_ip:
        Maps a host index to its IP address; defaults to 10.x.y.z packing.
    seed:
        RNG seed; equal seeds give identical workloads.
    """

    WELL_KNOWN_PORTS = (80, 443, 8080, 5201, 3306, 6379, 9092, 50051)

    def __init__(self, num_hosts: int, host_ip=None, seed: int = 0) -> None:
        if num_hosts < 2:
            raise ValueError(f"need at least 2 hosts, got {num_hosts}")
        self.num_hosts = num_hosts
        self._host_ip = host_ip if host_ip is not None else self._default_ip
        self._rng = np.random.default_rng(seed)

    @staticmethod
    def _default_ip(host: int) -> str:
        return f"10.{(host >> 16) & 0xFF}.{(host >> 8) & 0xFF}.{host & 0xFF}"

    def _make_flow(self, src_host: int, dst_host: int) -> Flow:
        return Flow(
            src_ip=self._host_ip(src_host),
            dst_ip=self._host_ip(dst_host),
            src_port=int(self._rng.integers(32768, 61000)),
            dst_port=int(self._rng.choice(self.WELL_KNOWN_PORTS)),
            protocol=TCP if self._rng.random() < 0.85 else UDP,
            src_host=src_host,
            dst_host=dst_host,
        )

    def uniform(self, count: int) -> List[Flow]:
        """``count`` flows between uniformly random distinct host pairs."""
        if count < 0:
            raise ValueError("count must be non-negative")
        flows = []
        for _ in range(count):
            src = int(self._rng.integers(self.num_hosts))
            dst = int(self._rng.integers(self.num_hosts - 1))
            if dst >= src:
                dst += 1
            flows.append(self._make_flow(src, dst))
        return flows

    def zipf(self, count: int, skew: float = 1.2) -> List[Flow]:
        """``count`` flows whose destinations follow a Zipf law.

        Models skewed datacenter traffic: a few hot services receive most
        flows.  ``skew`` > 1 is the Zipf exponent.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if skew <= 1.0:
            raise ValueError(f"zipf skew must be > 1, got {skew}")
        flows = []
        for _ in range(count):
            dst = int(self._rng.zipf(skew)) - 1
            dst %= self.num_hosts
            src = int(self._rng.integers(self.num_hosts - 1))
            if src >= dst:
                src += 1
            flows.append(self._make_flow(src, dst))
        return flows

    def stream(self, batch: int = 1000) -> Iterator[Flow]:
        """An endless stream of uniform flows, yielded lazily."""
        if batch < 1:
            raise ValueError("batch must be >= 1")

        def _generate() -> Iterator[Flow]:
            while True:
                for flow in self.uniform(batch):
                    yield flow

        return _generate()

    def packet_counts(
        self, num_flows: int, mean: float = 50.0, heavy_fraction: float = 0.05
    ) -> np.ndarray:
        """Per-flow packet counts: mostly mice, a few elephants.

        Used by the event-triggered backends to decide which flows emit
        multiple telemetry events.
        """
        if num_flows < 0:
            raise ValueError("num_flows must be non-negative")
        if not 0 <= heavy_fraction <= 1:
            raise ValueError("heavy_fraction must be in [0, 1]")
        mice = self._rng.geometric(1.0 / mean, size=num_flows)
        heavy = self._rng.random(num_flows) < heavy_fraction
        elephants = self._rng.geometric(1.0 / (mean * 100), size=num_flows)
        return np.where(heavy, elephants, mice).astype(np.int64)
