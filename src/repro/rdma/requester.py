"""Requester-side reliable connection: send queue, ACKs, retransmission.

DART's *switches* deliberately run open-loop -- they keep no retransmit
state and let slot redundancy absorb loss (paper sections 1 and 3).  Host
software talking to collectors (operator query stations, the control
plane, epoch archivers) has no such constraint: it runs a normal reliable
RC requester.  This module models that side of the protocol:

- work requests are queued, stamped with consecutive PSNs and transmitted
  through a caller-supplied (lossy) delivery function;
- responder ACKs / READ responses retire requests cumulatively by PSN;
- requests older than a timeout are retransmitted, up to a retry budget,
  after which the connection errors out (like a QP entering the error
  state after retry exhaustion).

Time is explicit (``tick()``) so tests drive loss/timeout scenarios
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional

from repro.rdma.packets import RoceV2Packet
from repro.rdma.qp import PSN_MODULUS

#: Delivers one wire frame toward the responder; returns response frames
#: that came back on this round trip (possibly none -- loss or one-way).
DeliveryFn = Callable[[bytes], List[bytes]]


class ConnectionState(Enum):
    """Requester connection lifecycle."""

    READY = "ready"
    ERROR = "error"


@dataclass
class PendingRequest:
    """One in-flight work request awaiting acknowledgement."""

    psn: int
    frame: bytes
    sent_at: int
    retries: int = 0
    #: Response payload, once retired by a READ response.
    response: Optional[bytes] = None


@dataclass
class RequesterStats:
    """Diagnostics for tests and operators."""

    sent: int = 0
    retransmitted: int = 0
    acked: int = 0
    timeouts: int = 0


class ReliableRequester:
    """A minimal RC requester over an explicit delivery function.

    Parameters
    ----------
    deliver:
        Transmits a frame and returns any response frames (the test
        harness injects loss here).
    timeout_ticks:
        Ticks a request may remain unacked before retransmission.
    max_retries:
        Retransmissions per request before the connection errors out.
    initial_psn:
        First PSN stamped onto outgoing requests.
    """

    def __init__(
        self,
        deliver: DeliveryFn,
        timeout_ticks: int = 4,
        max_retries: int = 3,
        initial_psn: int = 0,
    ) -> None:
        if timeout_ticks < 1:
            raise ValueError("timeout_ticks must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self._deliver = deliver
        self.timeout_ticks = timeout_ticks
        self.max_retries = max_retries
        self.next_psn = initial_psn % PSN_MODULUS
        self.state = ConnectionState.READY
        self.stats = RequesterStats()
        self.clock = 0
        self._pending: Dict[int, PendingRequest] = {}
        self._completed: Dict[int, PendingRequest] = {}

    def __repr__(self) -> str:
        return (
            f"ReliableRequester(state={self.state.value}, "
            f"pending={len(self._pending)})"
        )

    # ------------------------------------------------------------------
    # Posting work
    # ------------------------------------------------------------------

    def post(self, packet: RoceV2Packet) -> int:
        """Stamp the next PSN onto ``packet``, transmit, track; returns PSN."""
        if self.state is not ConnectionState.READY:
            raise RuntimeError("connection is in the error state")
        psn = self.next_psn
        self.next_psn = (self.next_psn + 1) % PSN_MODULUS
        packet.bth.psn = psn
        frame = packet.pack()
        request = PendingRequest(psn=psn, frame=frame, sent_at=self.clock)
        self._pending[psn] = request
        self._transmit(request)
        return psn

    def _transmit(self, request: PendingRequest) -> None:
        self.stats.sent += 1
        for response in self._deliver(request.frame):
            self._process_response(response)

    # ------------------------------------------------------------------
    # Responses and time
    # ------------------------------------------------------------------

    def _process_response(self, frame: bytes) -> None:
        try:
            packet = RoceV2Packet.unpack(frame)
        except Exception:
            return  # corrupt responses are ignored; timeout recovers
        psn = packet.bth.psn
        request = self._pending.pop(psn, None)
        if request is None:
            return  # duplicate/stale ACK
        request.response = packet.payload
        self._completed[psn] = request
        self.stats.acked += 1

    def tick(self, ticks: int = 1) -> None:
        """Advance time; retransmit or fail requests past the timeout."""
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        for _ in range(ticks):
            self.clock += 1
            if self.state is not ConnectionState.READY:
                return
            for request in list(self._pending.values()):
                if self.clock - request.sent_at < self.timeout_ticks:
                    continue
                if request.retries >= self.max_retries:
                    self.state = ConnectionState.ERROR
                    self.stats.timeouts += 1
                    return
                request.retries += 1
                request.sent_at = self.clock
                self.stats.retransmitted += 1
                self._transmit(request)

    # ------------------------------------------------------------------
    # Completion interface
    # ------------------------------------------------------------------

    def is_complete(self, psn: int) -> bool:
        """Whether the request with ``psn`` has been acknowledged."""
        return psn in self._completed

    def response_of(self, psn: int) -> Optional[bytes]:
        """The READ-response payload of a completed request, if any."""
        request = self._completed.get(psn)
        return request.response if request is not None else None

    @property
    def outstanding(self) -> int:
        """Requests posted but not yet acknowledged."""
        return len(self._pending)
