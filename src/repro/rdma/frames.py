"""Pooled columnar frame batches: many RoCEv2 frames as one byte matrix.

The DART report frame has a constant geometry per deployment config --
Ethernet(14) | IPv4(20) | UDP(8) | BTH(12) | RETH(16) | payload | iCRC(4)
-- so a whole batch of frames packs naturally into one ``uint8`` matrix of
shape ``(frames, frame_width)``.  :class:`FrameBatch` wraps that matrix
together with the per-frame destination endpoint, and :class:`FramePool`
recycles the backing buffers so steady-state batch traffic allocates
nothing.

Buffer ownership is refcounted: a batch and every sub-batch selected from
it share (or copy through) a pooled lease, and the buffer only returns to
the free list when the last holder releases it.  Fabrics take ownership of
batches passed to ``send_batch``; ports (NICs) only borrow them for the
duration of ``ingest_batch``.  The frame-pool tests assert the non-aliasing
consequence: a buffer is never handed out again while any in-flight batch
can still read it.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.hashing.crc import CRC32

# ---------------------------------------------------------------------------
# Wire geometry of a DART report frame (RC RDMA WRITE ONLY with RETH).
# ---------------------------------------------------------------------------

ETH_OFF = 0
IP_OFF = 14
UDP_OFF = 34
BTH_OFF = 42
RETH_OFF = 54
PAYLOAD_OFF = 70
#: Bytes of a report frame that are not payload (headers + trailing iCRC).
OVERHEAD_BYTES = PAYLOAD_OFF + 4

#: Atomic (FETCH_ADD / CMP_SWAP) frames swap the RETH for a 28-byte
#: AtomicETH at the same offset and carry no payload, so their width is a
#: constant: headers(54) + AtomicETH(28) + iCRC(4).
ATOMIC_ETH_OFF = 54
ATOMIC_FRAME_BYTES = ATOMIC_ETH_OFF + 28 + 4

#: Columns of the masked iCRC image that the RoCEv2 annex forces to 0xFF
#: (DSCP/ECN, TTL, IPv4 checksum, UDP checksum, BTH resv8a), relative to
#: the image layout: 8 prefix bytes then frame[14:-4].
_MASKED_COLUMNS = np.array([9, 16, 18, 19, 34, 35, 40])


def frame_width(payload_bytes: int) -> int:
    """Total wire bytes of a report frame carrying ``payload_bytes``."""
    return OVERHEAD_BYTES + payload_bytes


def icrc_rows(frames: np.ndarray) -> np.ndarray:
    """The RoCEv2 iCRC of every frame row, vectorised.

    Builds the masked CRC image for all rows at once (8 bytes of 0xFF,
    then the frame from the IPv4 header to just before the iCRC with the
    volatile bytes forced to 0xFF) and row-CRCs it in one call.  Each
    result is bit-identical to :func:`repro.rdma.packets.compute_icrc` on
    the scalar-decoded frame.
    """
    count, width = frames.shape
    masked = np.empty((count, 8 + width - 4 - IP_OFF), dtype=np.uint8)
    masked[:, :8] = 0xFF
    masked[:, 8:] = frames[:, IP_OFF : width - 4]
    masked[:, _MASKED_COLUMNS] = 0xFF
    return CRC32.compute_rows(masked)


# Big-endian column readers/writers.  Column slices of a C-contiguous
# frame matrix are strided, so readers copy the few bytes they need before
# reinterpreting; all return/accept native-order integer arrays.

def read_be16(frames: np.ndarray, offset: int) -> np.ndarray:
    """Big-endian u16 column at ``offset`` as ``uint32``."""
    return (
        np.ascontiguousarray(frames[:, offset : offset + 2])
        .view(">u2")
        .ravel()
        .astype(np.uint32)
    )


def read_be32(frames: np.ndarray, offset: int) -> np.ndarray:
    """Big-endian u32 column at ``offset`` as ``uint32``."""
    return (
        np.ascontiguousarray(frames[:, offset : offset + 4])
        .view(">u4")
        .ravel()
        .astype(np.uint32)
    )


def read_be64(frames: np.ndarray, offset: int) -> np.ndarray:
    """Big-endian u64 column at ``offset`` as ``uint64``."""
    return (
        np.ascontiguousarray(frames[:, offset : offset + 8])
        .view(">u8")
        .ravel()
        .astype(np.uint64)
    )


def read_be24(frames: np.ndarray, offset: int) -> np.ndarray:
    """Big-endian u24 column at ``offset`` as ``uint32``."""
    columns = frames[:, offset : offset + 3].astype(np.uint32)
    return (columns[:, 0] << 16) | (columns[:, 1] << 8) | columns[:, 2]


def write_be16(frames: np.ndarray, offset: int, values: np.ndarray) -> None:
    """Store ``values`` as a big-endian u16 column at ``offset``."""
    frames[:, offset : offset + 2] = (
        values.astype(">u2").view(np.uint8).reshape(-1, 2)
    )


def write_be32(frames: np.ndarray, offset: int, values: np.ndarray) -> None:
    """Store ``values`` as a big-endian u32 column at ``offset``."""
    frames[:, offset : offset + 4] = (
        values.astype(">u4").view(np.uint8).reshape(-1, 4)
    )


def write_be64(frames: np.ndarray, offset: int, values: np.ndarray) -> None:
    """Store ``values`` as a big-endian u64 column at ``offset``."""
    frames[:, offset : offset + 8] = (
        values.astype(">u8").view(np.uint8).reshape(-1, 8)
    )


def write_le32(frames: np.ndarray, offset: int, values: np.ndarray) -> None:
    """Store ``values`` as a little-endian u32 column (the iCRC trailer)."""
    frames[:, offset : offset + 4] = (
        values.astype("<u4").view(np.uint8).reshape(-1, 4)
    )


# ---------------------------------------------------------------------------
# Pooled buffers
# ---------------------------------------------------------------------------


def _capacity_class(rows: int) -> int:
    """Round a row count up to its pool size class (powers of two)."""
    capacity = 64
    while capacity < rows:
        capacity <<= 1
    return capacity


class _Lease:
    """Refcounted ownership of one pooled buffer."""

    __slots__ = ("pool", "buffer", "refs")

    def __init__(self, pool: "FramePool", buffer: np.ndarray) -> None:
        self.pool = pool
        self.buffer = buffer
        self.refs = 1

    def retain(self) -> "_Lease":
        self.refs += 1
        return self

    def release(self) -> None:
        self.refs -= 1
        if self.refs == 0:
            self.pool._reclaim(self.buffer)


class FramePool:
    """Recycles frame-matrix buffers between batches.

    Buffers are keyed by ``(frame_width, capacity_class)``; a released
    buffer is handed back verbatim to the next acquirer of the same class,
    so steady-state batch traffic reuses the same few allocations.  The
    ``in_flight`` gauge exists for the aliasing tests: it counts leases
    whose buffers are still owned by live batches.
    """

    def __init__(self) -> None:
        self._free: dict = {}
        self.allocations = 0
        self.reuses = 0
        self.in_flight = 0

    def __repr__(self) -> str:
        return (
            f"FramePool(in_flight={self.in_flight}, "
            f"allocations={self.allocations}, reuses={self.reuses})"
        )

    def acquire(self, rows: int, width: int) -> Tuple[_Lease, np.ndarray]:
        """A lease on a buffer with at least ``rows`` rows, plus the view.

        The returned view is exactly ``(rows, width)``; the backing buffer
        may be larger (its size class).
        """
        key = (width, _capacity_class(rows))
        stack: List[np.ndarray] = self._free.get(key, [])
        if stack:
            buffer = stack.pop()
            self.reuses += 1
        else:
            buffer = np.empty(key[::-1], dtype=np.uint8)
            self.allocations += 1
        self.in_flight += 1
        return _Lease(self, buffer), buffer[:rows]

    def _reclaim(self, buffer: np.ndarray) -> None:
        self.in_flight -= 1
        key = (buffer.shape[1], buffer.shape[0])
        self._free.setdefault(key, []).append(buffer)


class FrameBatch:
    """A batch of wire frames as one matrix, plus per-frame endpoints.

    Attributes
    ----------
    frames:
        ``uint8[count, frame_width]`` -- row ``i`` is frame ``i``'s exact
        wire bytes, in the order a scalar sender would have emitted them.
    endpoint_ids:
        ``int64[count]`` -- the fabric endpoint each frame is addressed to.

    Ownership: whoever holds a ``FrameBatch`` may read it until they call
    :meth:`release`.  Fabrics take ownership of batches passed to
    ``send_batch`` and release them once delivered (or queued copies of
    them); ports only borrow.
    """

    __slots__ = ("frames", "endpoint_ids", "_lease", "trace_ctx")

    def __init__(
        self,
        frames: np.ndarray,
        endpoint_ids: np.ndarray,
        lease: Optional[_Lease] = None,
    ) -> None:
        self.frames = frames
        self.endpoint_ids = endpoint_ids
        self._lease = lease
        #: Causal trace context (:class:`repro.obs.tracing.SpanContext`)
        #: when batch-granularity tracing bound this batch; None otherwise.
        self.trace_ctx = None

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def count(self) -> int:
        """Number of frames in the batch."""
        return len(self.frames)

    @property
    def width(self) -> int:
        """Wire bytes per frame."""
        return self.frames.shape[1]

    def __repr__(self) -> str:
        return f"FrameBatch(count={self.count}, width={self.width})"

    # -- ownership ------------------------------------------------------

    def release(self) -> None:
        """Give up this batch's claim on its pooled buffer (idempotent)."""
        lease, self._lease = self._lease, None
        if lease is not None:
            lease.release()

    def retain(self) -> "FrameBatch":
        """A second independently releasable handle on the same frames.

        Used by queueing fabrics: the queue keeps a retained handle while
        the caller's handle is released on return from ``send_batch``.
        """
        lease = self._lease.retain() if self._lease is not None else None
        handle = FrameBatch(self.frames, self.endpoint_ids, lease)
        handle.trace_ctx = self.trace_ctx
        return handle

    def data_ptr(self) -> int:
        """Address of the first frame byte (aliasing tests only)."""
        return self.frames.__array_interface__["data"][0]

    # -- selection / iteration -----------------------------------------

    def select(self, rows: np.ndarray) -> "FrameBatch":
        """An independently owned sub-batch of ``rows`` (in that order).

        The sub-batch copies through the pool (fancy-indexed rows are not
        contiguous), so releasing it is independent of releasing ``self``.
        """
        rows = np.asarray(rows)
        lease = None
        if self._lease is not None:
            lease, view = self._lease.pool.acquire(len(rows), self.width)
            np.take(self.frames, rows, axis=0, out=view)
            frames = view
        else:
            frames = self.frames[rows]
        sub = FrameBatch(frames, self.endpoint_ids[rows], lease)
        sub.trace_ctx = self.trace_ctx
        return sub

    def frame_bytes(self, index: int) -> bytes:
        """Frame ``index`` as standalone wire bytes (scalar-path bridge)."""
        return self.frames[index].tobytes()

    def iter_pairs(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(endpoint_id, frame_bytes)`` in emission order."""
        endpoint_ids = self.endpoint_ids
        frames = self.frames
        for index in range(len(frames)):
            yield int(endpoint_ids[index]), frames[index].tobytes()

    def single_endpoint(self) -> Optional[int]:
        """The one endpoint every frame targets, or None if mixed."""
        ids = self.endpoint_ids
        if len(ids) == 0:
            return None
        first = int(ids[0])
        if bool((ids == first).all()):
            return first
        return None

    def groups(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(endpoint_id, row_indexes)`` per endpoint.

        Endpoints appear in first-frame order and row indexes stay in
        emission order, so per-endpoint delivery order (the PSN contract)
        is preserved.
        """
        ids = self.endpoint_ids
        if len(ids) == 0:
            return
        unique, first_seen = np.unique(ids, return_index=True)
        for position in np.argsort(first_seen):
            endpoint = int(unique[position])
            yield endpoint, np.flatnonzero(ids == endpoint)
