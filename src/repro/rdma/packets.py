"""RoCEv2 wire-format codecs.

A RoCEv2 frame is::

    Ethernet | IPv4 | UDP (dst port 4791) | BTH | [RETH | AtomicETH] | payload | iCRC

The DART switch prototype (paper section 6) crafts these frames in the
Tofino egress pipeline, including the invariant CRC (iCRC) produced by the
native CRC extern.  This module provides pack/unpack for every header the
prototype emits, plus :func:`compute_icrc` implementing the RoCEv2 masking
rules so that the switch model and the NIC model agree bit-for-bit.

Only the headers DART needs are modelled (one-sided WRITE, FETCH_ADD and
CMP_SWAP); two-sided verbs, GRH/IPv6 and congestion-management extension
headers are out of scope, as they are for the paper's prototype.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Optional

from repro.hashing.crc import crc32

#: IANA-assigned UDP destination port identifying RoCEv2.
ROCEV2_UDP_PORT = 4791

ETHERTYPE_IPV4 = 0x0800
IP_PROTO_UDP = 17


class PacketDecodeError(Exception):
    """A frame failed structural validation while being parsed."""


class Opcode(IntEnum):
    """BTH opcodes for the Reliable Connection (RC) transport.

    Values follow the InfiniBand specification; only the subset DART's
    one-sided write path uses is listed, plus the atomics discussed in the
    paper's section 7.
    """

    RC_RDMA_WRITE_FIRST = 0x06
    RC_RDMA_WRITE_MIDDLE = 0x07
    RC_RDMA_WRITE_LAST = 0x08
    RC_RDMA_WRITE_ONLY = 0x0A
    RC_RDMA_READ_REQUEST = 0x0C
    RC_RDMA_READ_RESPONSE_ONLY = 0x10
    RC_ACKNOWLEDGE = 0x11
    RC_ATOMIC_ACKNOWLEDGE = 0x12
    RC_CMP_SWAP = 0x13
    RC_FETCH_ADD = 0x14
    UC_RDMA_WRITE_ONLY = 0x2A


#: Opcodes that are followed by a RETH header.
_RETH_OPCODES = frozenset(
    {
        Opcode.RC_RDMA_WRITE_FIRST,
        Opcode.RC_RDMA_WRITE_ONLY,
        Opcode.RC_RDMA_READ_REQUEST,
        Opcode.UC_RDMA_WRITE_ONLY,
    }
)

#: Opcodes that are followed by an AtomicETH header.
_ATOMIC_OPCODES = frozenset({Opcode.RC_CMP_SWAP, Opcode.RC_FETCH_ADD})

#: Opcodes that are followed by an AETH header.
_AETH_OPCODES = frozenset(
    {
        Opcode.RC_RDMA_READ_RESPONSE_ONLY,
        Opcode.RC_ACKNOWLEDGE,
        Opcode.RC_ATOMIC_ACKNOWLEDGE,
    }
)


def opcode_has_reth(opcode: int) -> bool:
    """Whether ``opcode`` carries an RDMA Extended Transport Header."""
    return opcode in _RETH_OPCODES


def opcode_has_atomic_eth(opcode: int) -> bool:
    """Whether ``opcode`` carries an Atomic Extended Transport Header."""
    return opcode in _ATOMIC_OPCODES


def opcode_has_aeth(opcode: int) -> bool:
    """Whether ``opcode`` carries an ACK Extended Transport Header."""
    return opcode in _AETH_OPCODES


def _mac_bytes(mac: str) -> bytes:
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address {mac!r}")
    return bytes(int(part, 16) for part in parts)


def _mac_str(data: bytes) -> str:
    return ":".join(f"{byte:02x}" for byte in data)


def _ipv4_bytes(address: str) -> bytes:
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {address!r}")
    encoded = bytes(int(part) for part in parts)
    return encoded


def _ipv4_str(data: bytes) -> str:
    return ".".join(str(byte) for byte in data)


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones'-complement checksum over ``data``."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack(">H", data):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass
class EthernetHeader:
    """14-byte Ethernet II header."""

    dst_mac: str = "ff:ff:ff:ff:ff:ff"
    src_mac: str = "00:00:00:00:00:00"
    ethertype: int = ETHERTYPE_IPV4

    LENGTH = 14

    def pack(self) -> bytes:
        """Serialise to wire bytes."""
        return (
            _mac_bytes(self.dst_mac)
            + _mac_bytes(self.src_mac)
            + struct.pack(">H", self.ethertype)
        )

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        """Parse wire bytes into a header instance."""
        if len(data) < cls.LENGTH:
            raise PacketDecodeError("truncated Ethernet header")
        return cls(
            dst_mac=_mac_str(data[0:6]),
            src_mac=_mac_str(data[6:12]),
            ethertype=struct.unpack(">H", data[12:14])[0],
        )


@dataclass
class Ipv4Header:
    """20-byte IPv4 header (no options)."""

    src_ip: str = "0.0.0.0"
    dst_ip: str = "0.0.0.0"
    total_length: int = 0
    ttl: int = 64
    protocol: int = IP_PROTO_UDP
    dscp_ecn: int = 0
    identification: int = 0
    flags_fragment: int = 0x4000  # don't-fragment

    LENGTH = 20

    def pack(self, checksum: Optional[int] = None) -> bytes:
        """Serialise to wire bytes."""
        header = struct.pack(
            ">BBHHHBBH4s4s",
            0x45,
            self.dscp_ecn,
            self.total_length,
            self.identification,
            self.flags_fragment,
            self.ttl,
            self.protocol,
            0,
            _ipv4_bytes(self.src_ip),
            _ipv4_bytes(self.dst_ip),
        )
        if checksum is None:
            checksum = internet_checksum(header)
        return header[:10] + struct.pack(">H", checksum) + header[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "Ipv4Header":
        """Parse wire bytes into a header instance."""
        if len(data) < cls.LENGTH:
            raise PacketDecodeError("truncated IPv4 header")
        version_ihl = data[0]
        if version_ihl != 0x45:
            raise PacketDecodeError(
                f"unsupported IPv4 version/IHL byte {version_ihl:#x}"
            )
        (
            _,
            dscp_ecn,
            total_length,
            identification,
            flags_fragment,
            ttl,
            protocol,
            _checksum,
            src,
            dst,
        ) = struct.unpack(">BBHHHBBH4s4s", data[: cls.LENGTH])
        return cls(
            src_ip=_ipv4_str(src),
            dst_ip=_ipv4_str(dst),
            total_length=total_length,
            ttl=ttl,
            protocol=protocol,
            dscp_ecn=dscp_ecn,
            identification=identification,
            flags_fragment=flags_fragment,
        )


@dataclass
class UdpHeader:
    """8-byte UDP header; RoCEv2 uses destination port 4791."""

    src_port: int = 0
    dst_port: int = ROCEV2_UDP_PORT
    length: int = 0
    checksum: int = 0  # RoCEv2 senders commonly emit 0 (checksum disabled)

    LENGTH = 8

    def pack(self) -> bytes:
        """Serialise to wire bytes."""
        return struct.pack(
            ">HHHH", self.src_port, self.dst_port, self.length, self.checksum
        )

    @classmethod
    def unpack(cls, data: bytes) -> "UdpHeader":
        """Parse wire bytes into a header instance."""
        if len(data) < cls.LENGTH:
            raise PacketDecodeError("truncated UDP header")
        src_port, dst_port, length, checksum = struct.unpack(">HHHH", data[:8])
        return cls(src_port=src_port, dst_port=dst_port, length=length, checksum=checksum)


@dataclass
class Bth:
    """12-byte Base Transport Header."""

    opcode: int = int(Opcode.RC_RDMA_WRITE_ONLY)
    solicited: bool = False
    mig_req: bool = False
    pad_count: int = 0
    partition_key: int = 0xFFFF
    dest_qp: int = 0
    ack_request: bool = False
    psn: int = 0

    LENGTH = 12

    def pack(self) -> bytes:
        """Serialise to wire bytes."""
        flags = (
            (int(self.solicited) << 7)
            | (int(self.mig_req) << 6)
            | ((self.pad_count & 0x3) << 4)
            # transport header version (TVer) = 0 in low nibble
        )
        if not 0 <= self.dest_qp < (1 << 24):
            raise ValueError(f"dest_qp {self.dest_qp} does not fit in 24 bits")
        if not 0 <= self.psn < (1 << 24):
            raise ValueError(f"psn {self.psn} does not fit in 24 bits")
        return struct.pack(
            ">BBHBBBBI",
            self.opcode & 0xFF,
            flags,
            self.partition_key,
            0,  # resv8a -- masked in the iCRC
            (self.dest_qp >> 16) & 0xFF,
            (self.dest_qp >> 8) & 0xFF,
            self.dest_qp & 0xFF,
            (int(self.ack_request) << 31) | self.psn,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Bth":
        """Parse wire bytes into a header instance."""
        if len(data) < cls.LENGTH:
            raise PacketDecodeError("truncated BTH")
        opcode, flags, pkey, _resv, qp2, qp1, qp0, last = struct.unpack(
            ">BBHBBBBI", data[: cls.LENGTH]
        )
        return cls(
            opcode=opcode,
            solicited=bool(flags & 0x80),
            mig_req=bool(flags & 0x40),
            pad_count=(flags >> 4) & 0x3,
            partition_key=pkey,
            dest_qp=(qp2 << 16) | (qp1 << 8) | qp0,
            ack_request=bool(last >> 31),
            psn=last & 0xFFFFFF,
        )


@dataclass
class Reth:
    """16-byte RDMA Extended Transport Header (WRITE / READ requests)."""

    virtual_address: int = 0
    rkey: int = 0
    dma_length: int = 0

    LENGTH = 16

    def pack(self) -> bytes:
        """Serialise to wire bytes."""
        return struct.pack(">QII", self.virtual_address, self.rkey, self.dma_length)

    @classmethod
    def unpack(cls, data: bytes) -> "Reth":
        """Parse wire bytes into a header instance."""
        if len(data) < cls.LENGTH:
            raise PacketDecodeError("truncated RETH")
        virtual_address, rkey, dma_length = struct.unpack(">QII", data[: cls.LENGTH])
        return cls(virtual_address=virtual_address, rkey=rkey, dma_length=dma_length)


@dataclass
class AtomicEth:
    """28-byte Atomic Extended Transport Header (FETCH_ADD / CMP_SWAP)."""

    virtual_address: int = 0
    rkey: int = 0
    swap_add: int = 0
    compare: int = 0

    LENGTH = 28

    def pack(self) -> bytes:
        """Serialise to wire bytes."""
        return struct.pack(
            ">QIQQ", self.virtual_address, self.rkey, self.swap_add, self.compare
        )

    @classmethod
    def unpack(cls, data: bytes) -> "AtomicEth":
        """Parse wire bytes into a header instance."""
        if len(data) < cls.LENGTH:
            raise PacketDecodeError("truncated AtomicETH")
        virtual_address, rkey, swap_add, compare = struct.unpack(
            ">QIQQ", data[: cls.LENGTH]
        )
        return cls(
            virtual_address=virtual_address,
            rkey=rkey,
            swap_add=swap_add,
            compare=compare,
        )


@dataclass
class Aeth:
    """4-byte ACK Extended Transport Header (read responses / ACKs).

    ``syndrome`` encodes ACK/NAK and credits; 0 is a plain ACK.  ``msn``
    is the responder's 24-bit message sequence number.
    """

    syndrome: int = 0
    msn: int = 0

    LENGTH = 4

    def pack(self) -> bytes:
        """Serialise to wire bytes."""
        if not 0 <= self.msn < (1 << 24):
            raise ValueError(f"msn {self.msn} does not fit in 24 bits")
        return struct.pack(">I", ((self.syndrome & 0xFF) << 24) | self.msn)

    @classmethod
    def unpack(cls, data: bytes) -> "Aeth":
        """Parse wire bytes into a header instance."""
        if len(data) < cls.LENGTH:
            raise PacketDecodeError("truncated AETH")
        (word,) = struct.unpack(">I", data[: cls.LENGTH])
        return cls(syndrome=(word >> 24) & 0xFF, msn=word & 0xFFFFFF)


def compute_icrc(
    ipv4: Ipv4Header, udp: UdpHeader, bth: Bth, after_bth: bytes
) -> int:
    """RoCEv2 invariant CRC over the masked packet.

    Per the RoCEv2 annex, the iCRC is a CRC-32 (Ethernet polynomial) over:

    - 8 bytes of ``0xFF`` standing in for the masked LRH/GRH fields,
    - the IPv4 header with DSCP/ECN, TTL and header-checksum bytes set to
      ``0xFF`` (these mutate in flight),
    - the UDP header with its checksum set to ``0xFF``,
    - the BTH with the ``resv8a`` byte set to ``0xFF``,
    - every byte after the BTH up to (not including) the iCRC itself,

    with the final CRC transmitted little-endian.  This function returns the
    integer value; :meth:`RoceV2Packet.pack` handles byte order.
    """
    masked_ip = bytearray(ipv4.pack())
    masked_ip[1] = 0xFF  # DSCP/ECN
    masked_ip[8] = 0xFF  # TTL
    masked_ip[10] = 0xFF  # header checksum (2 bytes)
    masked_ip[11] = 0xFF

    masked_udp = bytearray(udp.pack())
    masked_udp[6] = 0xFF  # UDP checksum (2 bytes)
    masked_udp[7] = 0xFF

    masked_bth = bytearray(bth.pack())
    masked_bth[4] = 0xFF  # resv8a

    covered = b"\xff" * 8 + bytes(masked_ip) + bytes(masked_udp) + bytes(masked_bth)
    covered += after_bth
    return crc32(covered)


@dataclass
class RoceV2Packet:
    """A full RoCEv2 frame as emitted by a DART switch.

    ``reth`` xor ``atomic_eth`` is present depending on the opcode;
    ``payload`` is the DMA payload for WRITE opcodes and empty for atomics.
    """

    eth: EthernetHeader = field(default_factory=EthernetHeader)
    ipv4: Ipv4Header = field(default_factory=Ipv4Header)
    udp: UdpHeader = field(default_factory=UdpHeader)
    bth: Bth = field(default_factory=Bth)
    reth: Optional[Reth] = None
    atomic_eth: Optional[AtomicEth] = None
    aeth: Optional["Aeth"] = None
    payload: bytes = b""

    def _after_bth(self) -> bytes:
        parts = []
        if opcode_has_reth(self.bth.opcode):
            if self.reth is None:
                raise ValueError(
                    f"opcode {self.bth.opcode:#x} requires a RETH header"
                )
            parts.append(self.reth.pack())
        if opcode_has_atomic_eth(self.bth.opcode):
            if self.atomic_eth is None:
                raise ValueError(
                    f"opcode {self.bth.opcode:#x} requires an AtomicETH header"
                )
            parts.append(self.atomic_eth.pack())
        if opcode_has_aeth(self.bth.opcode):
            if self.aeth is None:
                raise ValueError(
                    f"opcode {self.bth.opcode:#x} requires an AETH header"
                )
            parts.append(self.aeth.pack())
        parts.append(self.payload)
        return b"".join(parts)

    def pack(self) -> bytes:
        """Serialise to wire bytes, computing lengths, checksums and iCRC."""
        after_bth = self._after_bth()
        udp_payload_len = Bth.LENGTH + len(after_bth) + 4  # + iCRC
        self.udp.length = UdpHeader.LENGTH + udp_payload_len
        self.ipv4.total_length = Ipv4Header.LENGTH + self.udp.length
        icrc = compute_icrc(self.ipv4, self.udp, self.bth, after_bth)
        return (
            self.eth.pack()
            + self.ipv4.pack()
            + self.udp.pack()
            + self.bth.pack()
            + after_bth
            + struct.pack("<I", icrc)
        )

    @classmethod
    def unpack(cls, data: bytes, validate_icrc: bool = True) -> "RoceV2Packet":
        """Parse wire bytes; raises :class:`PacketDecodeError` on corruption."""
        offset = 0
        eth = EthernetHeader.unpack(data)
        offset += EthernetHeader.LENGTH
        if eth.ethertype != ETHERTYPE_IPV4:
            raise PacketDecodeError(f"not IPv4 (ethertype {eth.ethertype:#x})")
        ipv4 = Ipv4Header.unpack(data[offset:])
        offset += Ipv4Header.LENGTH
        if ipv4.protocol != IP_PROTO_UDP:
            raise PacketDecodeError(f"not UDP (protocol {ipv4.protocol})")
        udp = UdpHeader.unpack(data[offset:])
        offset += UdpHeader.LENGTH
        if udp.dst_port != ROCEV2_UDP_PORT:
            raise PacketDecodeError(f"not RoCEv2 (UDP port {udp.dst_port})")
        bth = Bth.unpack(data[offset:])
        offset += Bth.LENGTH

        end = EthernetHeader.LENGTH + ipv4.total_length
        if end > len(data) or end - 4 < offset:
            raise PacketDecodeError("IPv4 total length inconsistent with frame")
        after_bth = data[offset : end - 4]
        (wire_icrc,) = struct.unpack("<I", data[end - 4 : end])

        if validate_icrc:
            expected = compute_icrc(ipv4, udp, bth, after_bth)
            if wire_icrc != expected:
                raise PacketDecodeError(
                    f"iCRC mismatch: wire {wire_icrc:#010x}, computed {expected:#010x}"
                )

        reth = None
        atomic_eth = None
        aeth = None
        cursor = 0
        if opcode_has_reth(bth.opcode):
            reth = Reth.unpack(after_bth)
            cursor = Reth.LENGTH
        elif opcode_has_atomic_eth(bth.opcode):
            atomic_eth = AtomicEth.unpack(after_bth)
            cursor = AtomicEth.LENGTH
        elif opcode_has_aeth(bth.opcode):
            aeth = Aeth.unpack(after_bth)
            cursor = Aeth.LENGTH
        payload = after_bth[cursor:]
        return cls(
            eth=eth,
            ipv4=ipv4,
            udp=udp,
            bth=bth,
            reth=reth,
            atomic_eth=atomic_eth,
            aeth=aeth,
            payload=payload,
        )

    @property
    def wire_length(self) -> int:
        """Frame length on the wire in bytes."""
        return len(self.pack())
