"""Queue pairs and packet-sequence-number (PSN) handling.

RoCEv2 requesters stamp every packet with a 24-bit PSN; responders track the
expected PSN per queue pair.  The DART prototype keeps a per-collector PSN
counter in a Tofino register array (paper section 6) so that the stream of
switch-crafted packets looks like a well-formed requester to the NIC.

We model the responder side of an unreliable-connection-style flow, which is
how switch-generated RDMA deployments run in practice (TEA, SIGCOMM'20):
acknowledgements and retransmission are disabled, duplicates are dropped,
and a configurable policy decides whether a PSN gap invalidates the QP or is
tolerated.  DART is loss-tolerant by design (redundant slots), so the
default policy resynchronises to the received PSN after a gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

#: PSNs are 24-bit counters, compared modulo this.
PSN_MODULUS = 1 << 24


def psn_distance(expected: int, received: int) -> int:
    """Forward distance from ``expected`` to ``received`` modulo 2**24.

    0 means in-order; values in the "behind" half of the ring indicate a
    duplicate / stale packet.
    """
    return (received - expected) % PSN_MODULUS


class PsnPolicy(Enum):
    """Responder behaviour when a packet's PSN is not the expected one."""

    #: Accept any forward jump, resynchronising to it (tolerates loss).
    RESYNC_ON_GAP = "resync_on_gap"
    #: Drop anything that is not exactly the expected PSN.
    STRICT = "strict"
    #: Ignore PSNs entirely (pure datagram-style ingestion).
    IGNORE = "ignore"


class QueuePairState(Enum):
    """Lifecycle state of a queue pair."""

    RESET = "reset"
    READY = "ready"
    ERROR = "error"


@dataclass
class QueuePair:
    """Responder-side queue pair state.

    Parameters
    ----------
    qp_number:
        The 24-bit destination QP number switches put in the BTH.
    expected_psn:
        Next PSN the responder expects; advertised to the control plane at
        connection bring-up so switches can initialise their PSN registers.
    policy:
        How PSN gaps and duplicates are treated (see :class:`PsnPolicy`).
    """

    qp_number: int
    expected_psn: int = 0
    policy: PsnPolicy = PsnPolicy.RESYNC_ON_GAP
    state: QueuePairState = QueuePairState.READY
    #: The connected peer's QP number (responses are addressed to it).
    #: Defaults to our own number, the convention the switch models use.
    peer_qp: Optional[int] = None
    #: Responder message sequence number, stamped into AETH headers.
    msn: int = 0
    #: Whether executed atomics produce an ATOMIC ACKNOWLEDGE response
    #: carrying the original value.  Off by default: DART's fire-and-forget
    #: counter updates never read the response, but the Append primitive's
    #: tail reservation depends on it.
    respond_atomics: bool = False
    accepted: int = 0
    duplicates_dropped: int = 0
    gaps_observed: int = 0
    stale_window: int = field(default=PSN_MODULUS // 2, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.qp_number < PSN_MODULUS:
            raise ValueError(f"qp_number {self.qp_number} does not fit in 24 bits")
        if not 0 <= self.expected_psn < PSN_MODULUS:
            raise ValueError(f"expected_psn {self.expected_psn} out of range")

    def accept(self, psn: int) -> bool:
        """Process an arriving PSN; returns whether the packet is accepted.

        On acceptance the expected PSN advances past the received one.
        """
        if self.state is not QueuePairState.READY:
            return False
        if self.policy is PsnPolicy.IGNORE:
            self.accepted += 1
            return True
        distance = psn_distance(self.expected_psn, psn)
        if distance == 0:
            self.expected_psn = (psn + 1) % PSN_MODULUS
            self.accepted += 1
            return True
        if distance >= self.stale_window:
            # Behind the expected PSN: a duplicate or very stale packet.
            self.duplicates_dropped += 1
            return False
        # Forward gap: some packets were lost on the way.
        self.gaps_observed += 1
        if self.policy is PsnPolicy.STRICT:
            self.state = QueuePairState.ERROR
            return False
        self.expected_psn = (psn + 1) % PSN_MODULUS
        self.accepted += 1
        return True

    def accept_array(self, psns) -> "np.ndarray":
        """Vectorised :meth:`accept` over an in-order PSN sequence.

        Returns a boolean array, one entry per PSN, identical to calling
        :meth:`accept` on each in order.  Strictly consecutive sequences
        starting at the expected PSN -- the shape every healthy batch has
        -- advance the QP in O(1); anything else (duplicates, gaps from an
        impaired fabric) falls back to the exact scalar state machine.
        """
        import numpy as np

        psns = np.asarray(psns, dtype=np.int64)
        count = len(psns)
        if count and self.state is QueuePairState.READY:
            if self.policy is PsnPolicy.IGNORE:
                self.accepted += count
                return np.ones(count, dtype=bool)
            expected = (
                self.expected_psn + np.arange(count, dtype=np.int64)
            ) % PSN_MODULUS
            if np.array_equal(psns, expected):
                self.expected_psn = int((psns[-1] + 1) % PSN_MODULUS)
                self.accepted += count
                return np.ones(count, dtype=bool)
        return np.fromiter(
            (self.accept(int(psn)) for psn in psns), dtype=bool, count=count
        )

    @property
    def effective_peer_qp(self) -> int:
        """The QP number responses are addressed to."""
        return self.qp_number if self.peer_qp is None else self.peer_qp

    def next_msn(self) -> int:
        """Advance and return the responder MSN (for AETH headers)."""
        self.msn = (self.msn + 1) % PSN_MODULUS
        return self.msn

    def reset(self, initial_psn: int = 0) -> None:
        """Return the QP to READY with a fresh expected PSN."""
        if not 0 <= initial_psn < PSN_MODULUS:
            raise ValueError(f"initial_psn {initial_psn} out of range")
        self.expected_psn = initial_psn
        self.state = QueuePairState.READY
