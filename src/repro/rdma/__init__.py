"""RDMA-over-Converged-Ethernet (RoCEv2) substrate.

The paper's collectors are ordinary servers whose RDMA NICs execute
one-sided operations crafted *by switches*.  No RDMA hardware is available
in this environment, so this package is a byte-accurate software model:

- :mod:`repro.rdma.packets` -- wire-format codecs for Ethernet, IPv4, UDP,
  BTH, RETH and AtomicETH headers plus the RoCEv2 invariant CRC (iCRC).
- :mod:`repro.rdma.qp` -- queue-pair state with 24-bit packet sequence
  numbers (PSNs), mirroring the per-collector PSN registers the Tofino
  prototype keeps in SRAM.
- :mod:`repro.rdma.nic` -- an RNIC model that parses incoming frames,
  validates iCRC / rkey / QP / PSN, and executes RDMA WRITE, FETCH_ADD and
  CMP_SWAP against a registered :class:`~repro.mem.region.MemoryRegion`,
  silently dropping anything invalid (one-sided semantics: the host CPU is
  never involved).
"""

from repro.rdma.packets import (
    ROCEV2_UDP_PORT,
    AtomicEth,
    Bth,
    EthernetHeader,
    Ipv4Header,
    Opcode,
    PacketDecodeError,
    Reth,
    RoceV2Packet,
    UdpHeader,
    compute_icrc,
)
from repro.rdma.frames import FrameBatch, FramePool, frame_width, icrc_rows
from repro.rdma.qp import PSN_MODULUS, QueuePair, QueuePairState
from repro.rdma.nic import NicCounters, RdmaNic
from repro.rdma.requester import ConnectionState, ReliableRequester

__all__ = [
    "ROCEV2_UDP_PORT",
    "FrameBatch",
    "FramePool",
    "frame_width",
    "icrc_rows",
    "AtomicEth",
    "Bth",
    "EthernetHeader",
    "Ipv4Header",
    "NicCounters",
    "Opcode",
    "PacketDecodeError",
    "PSN_MODULUS",
    "QueuePair",
    "QueuePairState",
    "RdmaNic",
    "ReliableRequester",
    "ConnectionState",
    "Reth",
    "RoceV2Packet",
    "UdpHeader",
    "compute_icrc",
]
