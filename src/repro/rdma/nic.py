"""A software RDMA NIC executing one-sided verbs against registered memory.

This is the component that makes collection "zero-CPU": switch-crafted
RoCEv2 frames arrive, and the NIC alone validates and applies them to the
registered memory region.  Anything malformed -- bad iCRC, unknown QP, bad
rkey, out-of-bounds address, stale PSN -- is dropped silently and counted,
never surfacing to a host CPU.  Queries later read the region directly.

The model is intentionally strict about the wire format: it parses the exact
bytes the switch model emits, so an encoding bug on either side fails loudly
in the integration tests rather than being papered over by passing Python
objects around.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro import obs
from repro.mem.region import MemoryRegion, RegionAccessError
from repro.obs.metrics import DEPTH_BUCKETS, LATENCY_BUCKETS
from repro.rdma.frames import (
    ATOMIC_ETH_OFF,
    ATOMIC_FRAME_BYTES,
    FrameBatch,
    OVERHEAD_BYTES,
    icrc_rows,
    read_be16,
    read_be24,
    read_be32,
    read_be64,
)
from repro.rdma.packets import (
    Aeth,
    Bth,
    EthernetHeader,
    Ipv4Header,
    Opcode,
    PacketDecodeError,
    RoceV2Packet,
    UdpHeader,
    opcode_has_atomic_eth,
    opcode_has_reth,
)
from repro.rdma.qp import QueuePair


class NicCounters:
    """Hardware-style drop/accept counters exposed for diagnostics.

    A thin view over per-NIC counters in the process metrics registry:
    the attribute names of the pre-registry dataclass stay readable (the
    impairment reconciliation tests depend on them), while exposition and
    fleet-wide totals come from the registry series
    (``nic_frames_received``, ``nic_dropped_<reason>``, ...).
    """

    #: (attribute, registry metric name) for every accounting series.
    FIELDS = (
        ("frames_received", "nic_frames_received"),
        ("writes_executed", "nic_writes_executed"),
        ("atomics_executed", "nic_atomics_executed"),
        ("reads_executed", "nic_reads_executed"),
        ("responses_emitted", "nic_responses_emitted"),
        ("dropped_decode", "nic_dropped_decode"),
        ("dropped_unknown_qp", "nic_dropped_unknown_qp"),
        ("dropped_psn", "nic_dropped_psn"),
        ("dropped_access", "nic_dropped_access"),
        ("dropped_opcode", "nic_dropped_opcode"),
    )

    def __init__(self, registry=None) -> None:
        if registry is None:
            registry = obs.get_registry()
        labels = registry.instance_labels("RdmaNic")
        #: Frames handed to the NIC by the network/fabric.
        self.c_received = registry.counter("nic_frames_received", labels=labels)
        #: RDMA WRITEs applied to the region.
        self.c_writes = registry.counter("nic_writes_executed", labels=labels)
        #: FETCH_ADD / CMP_SWAP atomics applied to the region.
        self.c_atomics = registry.counter("nic_atomics_executed", labels=labels)
        #: READ requests served from the region.
        self.c_reads = registry.counter("nic_reads_executed", labels=labels)
        #: READ responses crafted onto the TX queue.
        self.c_responses = registry.counter(
            "nic_responses_emitted", labels=labels
        )
        #: Frames dropped: undecodable / failed iCRC.
        self.c_dropped_decode = registry.counter(
            "nic_dropped_decode", labels=labels
        )
        #: Frames dropped: no such queue pair.
        self.c_dropped_unknown_qp = registry.counter(
            "nic_dropped_unknown_qp", labels=labels
        )
        #: Frames dropped: PSN outside the acceptance window.
        self.c_dropped_psn = registry.counter("nic_dropped_psn", labels=labels)
        #: Frames dropped: rkey/bounds violation (RegionAccessError).
        self.c_dropped_access = registry.counter(
            "nic_dropped_access", labels=labels
        )
        #: Frames dropped: opcode the responder does not implement.
        self.c_dropped_opcode = registry.counter(
            "nic_dropped_opcode", labels=labels
        )

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)}" for name, _metric in self.FIELDS
        )
        return f"NicCounters({fields})"

    def __eq__(self, other: object) -> bool:
        """Value equality over all counters (the dataclass-era contract)."""
        if not isinstance(other, NicCounters):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name, _metric in self.FIELDS
        )

    @property
    def frames_received(self) -> int:
        """Frames handed to the NIC by the network/fabric."""
        return self.c_received.value

    @property
    def writes_executed(self) -> int:
        """RDMA WRITEs applied to the region."""
        return self.c_writes.value

    @property
    def atomics_executed(self) -> int:
        """FETCH_ADD / CMP_SWAP atomics applied to the region."""
        return self.c_atomics.value

    @property
    def reads_executed(self) -> int:
        """READ requests served from the region."""
        return self.c_reads.value

    @property
    def responses_emitted(self) -> int:
        """READ responses crafted onto the TX queue."""
        return self.c_responses.value

    @property
    def dropped_decode(self) -> int:
        """Frames dropped: undecodable / failed iCRC."""
        return self.c_dropped_decode.value

    @property
    def dropped_unknown_qp(self) -> int:
        """Frames dropped: no such queue pair."""
        return self.c_dropped_unknown_qp.value

    @property
    def dropped_psn(self) -> int:
        """Frames dropped: PSN outside the acceptance window."""
        return self.c_dropped_psn.value

    @property
    def dropped_access(self) -> int:
        """Frames dropped: rkey/bounds violation."""
        return self.c_dropped_access.value

    @property
    def dropped_opcode(self) -> int:
        """Frames dropped: opcode the responder does not implement."""
        return self.c_dropped_opcode.value

    @property
    def frames_dropped(self) -> int:
        """Sum of all drop counters."""
        return (
            self.dropped_decode
            + self.dropped_unknown_qp
            + self.dropped_psn
            + self.dropped_access
            + self.dropped_opcode
        )


class RdmaNic:
    """An RNIC bound to one registered memory region.

    Parameters
    ----------
    region:
        The registered memory region remote writes land in.
    mac / ip:
        The NIC's L2/L3 addresses, advertised to switches via the control
        plane's collector lookup table.
    validate_icrc:
        Whether to verify the invariant CRC of each frame.  On by default;
        benchmarks may disable it to isolate DMA costs.
    """

    def __init__(
        self,
        region: MemoryRegion,
        mac: str = "02:00:00:00:00:01",
        ip: str = "10.0.0.1",
        validate_icrc: bool = True,
    ) -> None:
        self.region = region
        self.mac = mac
        self.ip = ip
        self.validate_icrc = validate_icrc
        registry = obs.get_registry()
        self._tracer = obs.get_tracer()
        self._profiler = obs.get_profiler()
        self.counters = NicCounters(registry)
        self._h_ingest_batch = registry.histogram(
            "nic_ingest_batch_frames",
            DEPTH_BUCKETS,
            help="frames per batched ingest call",
        )
        self._h_ingest_seconds = registry.histogram(
            "stage_seconds",
            LATENCY_BUCKETS,
            labels={"stage": "nic_ingest"},
            help="wall-clock seconds per batched NIC ingest",
        )
        self._queue_pairs: Dict[int, QueuePair] = {}
        #: Outbound frames (READ responses, ACKs) awaiting transmission;
        #: the network model drains this with :meth:`transmit`.
        self.tx_queue: List[bytes] = []

    def __repr__(self) -> str:
        return f"RdmaNic(ip={self.ip!r}, region={self.region!r})"

    # ------------------------------------------------------------------
    # Control-plane operations
    # ------------------------------------------------------------------

    def create_queue_pair(self, qp: QueuePair) -> QueuePair:
        """Register a responder QP (control-plane bring-up)."""
        if qp.qp_number in self._queue_pairs:
            raise ValueError(f"QP {qp.qp_number} already exists")
        self._queue_pairs[qp.qp_number] = qp
        return qp

    def queue_pair(self, qp_number: int) -> Optional[QueuePair]:
        """Look up a responder QP by number (None if absent)."""
        return self._queue_pairs.get(qp_number)

    # ------------------------------------------------------------------
    # Data-plane: frame ingestion
    # ------------------------------------------------------------------

    def receive_frame(self, frame: bytes) -> bool:
        """Ingest one wire frame; returns whether it was executed.

        This is the *entire* collection fast path: parse, validate, DMA.
        """
        self.counters.c_received.inc()
        try:
            packet = RoceV2Packet.unpack(frame, validate_icrc=self.validate_icrc)
        except PacketDecodeError:
            self.counters.c_dropped_decode.inc()
            if self._tracer.enabled:
                self._tracer.frame_span(
                    frame, "nic.ingest", "dropped:decode", status="drop"
                )
            return False
        executed = self.receive_packet(packet)
        if self._tracer.enabled:
            self._tracer.frame_span(
                frame, "nic.ingest", "executed" if executed else "dropped"
            )
        return executed

    def ingest_many(self, frames: Iterable[bytes]) -> int:
        """Ingest a batch of wire frames; returns how many were executed.

        The batched hot path used by fabric flushes: one call per flush
        instead of one per packet, with the per-frame method lookups
        hoisted out of the loop.  Frame semantics are identical to calling
        :meth:`receive_frame` in order.
        """
        receive_frame = self.receive_frame
        profiler = self._profiler
        timed = self._h_ingest_seconds.enabled or profiler.enabled
        if timed:
            started = perf_counter()
        executed = 0
        count = 0
        for frame in frames:
            count += 1
            if receive_frame(frame):
                executed += 1
        if timed:
            ended = perf_counter()
            if self._h_ingest_seconds.enabled:
                self._h_ingest_seconds.observe(ended - started)
                self._h_ingest_batch.observe(count)
            if profiler.enabled:
                profiler.record("nic.ingest", started, ended)
        return executed

    def _batch_is_uniform_writes(self, frames: np.ndarray) -> bool:
        """Whether every row is a well-formed DART WRITE frame.

        The vectorised ingest handles exactly the frame shape the DART
        switch emits: IPv4/UDP/RoCEv2, RC RDMA WRITE ONLY, RETH dma_length
        matching the payload, consistent length fields.  Anything else
        (truncated frames, other opcodes, foreign traffic) routes through
        the scalar reference path, which implements the full per-frame
        drop taxonomy.
        """
        width = frames.shape[1]
        if width < OVERHEAD_BYTES:
            return False
        ok = (
            (frames[:, 12] == 0x08)
            & (frames[:, 13] == 0x00)  # ethertype IPv4
            & (frames[:, 14] == 0x45)  # version/IHL
            & (frames[:, 23] == 17)  # protocol UDP
            & (frames[:, 36] == 0x12)
            & (frames[:, 37] == 0xB7)  # dst port 4791
            & (frames[:, 42] == int(Opcode.RC_RDMA_WRITE_ONLY))
        )
        if not bool(ok.all()):
            return False
        if not bool((read_be16(frames, 16) == width - 14).all()):
            return False  # IPv4 total length inconsistent
        return bool((read_be32(frames, 66) == width - OVERHEAD_BYTES).all())

    def _batch_is_uniform_fetch_adds(self, frames: np.ndarray) -> bool:
        """Whether every row is a well-formed RC FETCH_ADD frame.

        The vectorised atomic ingest handles the one frame shape the
        primitive translators emit: IPv4/UDP/RoCEv2, RC FETCH_ADD,
        constant 86-byte geometry.  Anything else routes through the
        scalar reference path.
        """
        width = frames.shape[1]
        if width != ATOMIC_FRAME_BYTES:
            return False
        ok = (
            (frames[:, 12] == 0x08)
            & (frames[:, 13] == 0x00)  # ethertype IPv4
            & (frames[:, 14] == 0x45)  # version/IHL
            & (frames[:, 23] == 17)  # protocol UDP
            & (frames[:, 36] == 0x12)
            & (frames[:, 37] == 0xB7)  # dst port 4791
            & (frames[:, 42] == int(Opcode.RC_FETCH_ADD))
        )
        if not bool(ok.all()):
            return False
        return bool((read_be16(frames, 16) == width - 14).all())

    def _any_qp_responds_atomics(self, dest_qps: np.ndarray) -> bool:
        """Whether any targeted QP wants per-atomic ACK responses.

        Response crafting is inherently per-frame, so such batches take
        the scalar reference path.
        """
        queue_pairs = self._queue_pairs
        for qp_number in np.unique(dest_qps).tolist():
            qp = queue_pairs.get(int(qp_number))
            if qp is not None and qp.respond_atomics:
                return True
        return False

    def ingest_batch(self, batch: FrameBatch) -> int:
        """Columnar ingest: validate and execute a whole frame batch.

        The zero-copy fast path behind ``Fabric.send_batch``: iCRC, QP,
        PSN and access validation run as vector operations over the frame
        matrix, and all surviving operations land in the region via one
        columnar write (WRITE batches) or one columnar accumulate
        (FETCH_ADD batches).  Counters, drops and the final memory image
        are identical to feeding each row through :meth:`receive_frame`
        in order; batches the vector paths cannot express exactly (mixed
        opcodes, malformed rows, tracer enabled, ACK-responding QPs) fall
        back to it.
        """
        frames = batch.frames
        count = len(frames)
        if count == 0:
            return 0
        tracer = self._tracer
        # Batch-granularity tracing keeps the vector paths -- sampled
        # batches (trace_ctx set) record one aggregate span, unsampled
        # batches pay nothing; per-report tracing needs the scalar
        # reference path for per-frame spans.
        if (
            not tracer.enabled
            or tracer.granularity == "batch"
            or batch.trace_ctx is not None
        ):
            executed: Optional[int] = None
            if self._batch_is_uniform_writes(frames):
                executed = self._ingest_write_batch(batch)
            elif self._batch_is_uniform_fetch_adds(
                frames
            ) and not self._any_qp_responds_atomics(read_be24(frames, 47)):
                executed = self._ingest_fetch_add_batch(batch)
            if executed is not None:
                if tracer.enabled and batch.trace_ctx is not None:
                    tracer.batch_span(
                        batch,
                        "nic.ingest",
                        f"rows={count} executed={executed}",
                        status="ok" if executed == count else "drop",
                    )
                return executed
        # Reference path: per-frame spans and the full drop taxonomy.
        return self.ingest_many(
            frames[index].tobytes() for index in range(count)
        )

    def _ingest_write_batch(self, batch: FrameBatch) -> int:
        """The uniform-WRITE half of :meth:`ingest_batch` (vectorised)."""
        frames = batch.frames
        count = len(frames)
        profiler = self._profiler
        timed = self._h_ingest_seconds.enabled or profiler.enabled
        if timed:
            started = perf_counter()
        counters = self.counters
        counters.c_received.inc(count)

        if self.validate_icrc:
            wire_icrc = (
                np.ascontiguousarray(frames[:, -4:]).view("<u4").ravel()
            )
            decode_ok = wire_icrc == icrc_rows(frames)
            failures = count - int(decode_ok.sum())
            if failures:
                counters.c_dropped_decode.inc(failures)
        else:
            decode_ok = np.ones(count, dtype=bool)

        executed = np.zeros(count, dtype=bool)
        dest_qps = read_be24(frames, 47)
        psns = read_be32(frames, 50) & 0xFFFFFF
        candidates = np.flatnonzero(decode_ok)
        # Per-QP acceptance, preserving arrival order within each QP --
        # the PSN state machine is sequential per queue pair.
        for qp_number in dict.fromkeys(dest_qps[candidates].tolist()):
            rows = candidates[dest_qps[candidates] == qp_number]
            qp = self._queue_pairs.get(int(qp_number))
            if qp is None:
                counters.c_dropped_unknown_qp.inc(len(rows))
                continue
            accepted = qp.accept_array(psns[rows])
            rejected = len(rows) - int(accepted.sum())
            if rejected:
                counters.c_dropped_psn.inc(rejected)
            executed[rows[accepted]] = True

        landed = np.flatnonzero(executed)
        if len(landed):
            region = self.region
            width = frames.shape[1]
            payload_bytes = width - OVERHEAD_BYTES
            addresses = read_be64(frames, 54)[landed]
            rkeys = read_be32(frames, 62)[landed]
            base = np.uint64(region.base_address)
            access_ok = (
                (rkeys == region.rkey)
                & (addresses >= base)
                & (addresses + np.uint64(payload_bytes) <= base + np.uint64(region.size))
            )
            denied = len(landed) - int(access_ok.sum())
            if denied:
                counters.c_dropped_access.inc(denied)
                executed[landed[~access_ok]] = False
                landed = landed[access_ok]
                addresses = addresses[access_ok]
            if len(landed):
                region.write_offset_columnar(
                    (addresses - base).astype(np.int64),
                    frames[landed, 70 : 70 + payload_bytes],
                )
                counters.c_writes.inc(len(landed))

        if timed:
            ended = perf_counter()
            if self._h_ingest_seconds.enabled:
                self._h_ingest_seconds.observe(ended - started)
                self._h_ingest_batch.observe(count)
            if profiler.enabled:
                profiler.record("nic.ingest", started, ended)
        return int(executed.sum())

    def _ingest_fetch_add_batch(self, batch: FrameBatch) -> int:
        """The uniform-FETCH_ADD half of :meth:`ingest_batch` (vectorised).

        Validation mirrors :meth:`_ingest_write_batch`; surviving operands
        accumulate into the region through one
        :meth:`~repro.mem.region.MemoryRegion.dma_fetch_add_many` call.
        Adds commute, so the columnar accumulate is byte-identical to the
        scalar path even with duplicate target cells in one batch.
        """
        frames = batch.frames
        count = len(frames)
        profiler = self._profiler
        timed = self._h_ingest_seconds.enabled or profiler.enabled
        if timed:
            started = perf_counter()
        counters = self.counters
        counters.c_received.inc(count)

        if self.validate_icrc:
            wire_icrc = (
                np.ascontiguousarray(frames[:, -4:]).view("<u4").ravel()
            )
            decode_ok = wire_icrc == icrc_rows(frames)
            failures = count - int(decode_ok.sum())
            if failures:
                counters.c_dropped_decode.inc(failures)
        else:
            decode_ok = np.ones(count, dtype=bool)

        executed = np.zeros(count, dtype=bool)
        dest_qps = read_be24(frames, 47)
        psns = read_be32(frames, 50) & 0xFFFFFF
        candidates = np.flatnonzero(decode_ok)
        for qp_number in dict.fromkeys(dest_qps[candidates].tolist()):
            rows = candidates[dest_qps[candidates] == qp_number]
            qp = self._queue_pairs.get(int(qp_number))
            if qp is None:
                counters.c_dropped_unknown_qp.inc(len(rows))
                continue
            accepted = qp.accept_array(psns[rows])
            rejected = len(rows) - int(accepted.sum())
            if rejected:
                counters.c_dropped_psn.inc(rejected)
            executed[rows[accepted]] = True

        landed = np.flatnonzero(executed)
        if len(landed):
            region = self.region
            addresses = read_be64(frames, ATOMIC_ETH_OFF)[landed]
            rkeys = read_be32(frames, ATOMIC_ETH_OFF + 8)[landed]
            base = np.uint64(region.base_address)
            access_ok = (
                (rkeys == region.rkey)
                & (addresses >= base)
                & (addresses + np.uint64(8) <= base + np.uint64(region.size))
                & (addresses % np.uint64(8) == 0)
            )
            denied = len(landed) - int(access_ok.sum())
            if denied:
                counters.c_dropped_access.inc(denied)
                executed[landed[~access_ok]] = False
                landed = landed[access_ok]
                addresses = addresses[access_ok]
            if len(landed):
                addends = read_be64(frames, ATOMIC_ETH_OFF + 12)[landed]
                region.dma_fetch_add_many(addresses, addends)
                counters.c_atomics.inc(len(landed))

        if timed:
            ended = perf_counter()
            if self._h_ingest_seconds.enabled:
                self._h_ingest_seconds.observe(ended - started)
                self._h_ingest_batch.observe(count)
            if profiler.enabled:
                profiler.record("nic.ingest", started, ended)
        return int(executed.sum())

    def receive_packet(self, packet: RoceV2Packet) -> bool:
        """Ingest an already-parsed packet (fast path for simulations)."""
        qp = self._queue_pairs.get(packet.bth.dest_qp)
        if qp is None:
            self.counters.c_dropped_unknown_qp.inc()
            return False
        if not qp.accept(packet.bth.psn):
            self.counters.c_dropped_psn.inc()
            return False

        opcode = packet.bth.opcode
        try:
            if opcode_has_reth(opcode) and opcode in (
                Opcode.RC_RDMA_WRITE_ONLY,
                Opcode.UC_RDMA_WRITE_ONLY,
            ):
                reth = packet.reth
                if reth is None or reth.dma_length != len(packet.payload):
                    self.counters.c_dropped_decode.inc()
                    return False
                self.region.dma_write(
                    reth.virtual_address, packet.payload, rkey=reth.rkey
                )
                self.counters.c_writes.inc()
                return True
            if opcode == Opcode.RC_RDMA_READ_REQUEST:
                reth = packet.reth
                if reth is None:
                    self.counters.c_dropped_decode.inc()
                    return False
                data = self.region.dma_read(
                    reth.virtual_address, reth.dma_length, rkey=reth.rkey
                )
                self.counters.c_reads.inc()
                self._enqueue_read_response(packet, qp, data)
                return True
            if opcode_has_atomic_eth(opcode):
                atomic = packet.atomic_eth
                if atomic is None:
                    self.counters.c_dropped_decode.inc()
                    return False
                if opcode == Opcode.RC_FETCH_ADD:
                    original = self.region.dma_fetch_add(
                        atomic.virtual_address, atomic.swap_add, rkey=atomic.rkey
                    )
                else:
                    original = self.region.dma_compare_swap(
                        atomic.virtual_address,
                        atomic.compare,
                        atomic.swap_add,
                        rkey=atomic.rkey,
                    )
                self.counters.c_atomics.inc()
                if qp.respond_atomics:
                    self._enqueue_atomic_response(packet, qp, original)
                return True
        except RegionAccessError:
            self.counters.c_dropped_access.inc()
            return False

        self.counters.c_dropped_opcode.inc()
        return False

    # ------------------------------------------------------------------
    # Response path (READ responses; still zero host CPU)
    # ------------------------------------------------------------------

    def _enqueue_read_response(
        self, request: RoceV2Packet, qp: QueuePair, data: bytes
    ) -> None:
        """Craft the READ RESPONSE frame for an executed READ request.

        Addressing is reflected from the request (the NIC knows nothing
        else); the response is queued on :attr:`tx_queue` for the network
        model to deliver back to the requester.
        """
        response = RoceV2Packet(
            eth=EthernetHeader(
                dst_mac=request.eth.src_mac, src_mac=self.mac
            ),
            ipv4=Ipv4Header(src_ip=self.ip, dst_ip=request.ipv4.src_ip),
            udp=UdpHeader(src_port=request.udp.src_port),
            bth=Bth(
                opcode=int(Opcode.RC_RDMA_READ_RESPONSE_ONLY),
                dest_qp=qp.effective_peer_qp,
                psn=request.bth.psn,
            ),
            aeth=Aeth(syndrome=0, msn=qp.next_msn()),
            payload=data,
        )
        self.tx_queue.append(response.pack())
        self.counters.c_responses.inc()

    def _enqueue_atomic_response(
        self, request: RoceV2Packet, qp: QueuePair, original: int
    ) -> None:
        """Craft the ATOMIC ACKNOWLEDGE frame for an executed atomic.

        Carries the pre-operation value as an 8-byte big-endian payload
        after the AETH -- the half of the FETCH_ADD contract the Append
        primitive's tail reservation depends on.  Addressing is reflected
        from the request, like READ responses.
        """
        response = RoceV2Packet(
            eth=EthernetHeader(
                dst_mac=request.eth.src_mac, src_mac=self.mac
            ),
            ipv4=Ipv4Header(src_ip=self.ip, dst_ip=request.ipv4.src_ip),
            udp=UdpHeader(src_port=request.udp.src_port),
            bth=Bth(
                opcode=int(Opcode.RC_ATOMIC_ACKNOWLEDGE),
                dest_qp=qp.effective_peer_qp,
                psn=request.bth.psn,
            ),
            aeth=Aeth(syndrome=0, msn=qp.next_msn()),
            payload=original.to_bytes(8, "big"),
        )
        self.tx_queue.append(response.pack())
        self.counters.c_responses.inc()

    def transmit(self) -> List[bytes]:
        """Drain and return all queued outbound frames."""
        frames, self.tx_queue = self.tx_queue, []
        return frames
