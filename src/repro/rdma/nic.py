"""A software RDMA NIC executing one-sided verbs against registered memory.

This is the component that makes collection "zero-CPU": switch-crafted
RoCEv2 frames arrive, and the NIC alone validates and applies them to the
registered memory region.  Anything malformed -- bad iCRC, unknown QP, bad
rkey, out-of-bounds address, stale PSN -- is dropped silently and counted,
never surfacing to a host CPU.  Queries later read the region directly.

The model is intentionally strict about the wire format: it parses the exact
bytes the switch model emits, so an encoding bug on either side fails loudly
in the integration tests rather than being papered over by passing Python
objects around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.mem.region import MemoryRegion, RegionAccessError
from repro.rdma.packets import (
    Aeth,
    Bth,
    EthernetHeader,
    Ipv4Header,
    Opcode,
    PacketDecodeError,
    RoceV2Packet,
    UdpHeader,
    opcode_has_atomic_eth,
    opcode_has_reth,
)
from repro.rdma.qp import QueuePair


@dataclass
class NicCounters:
    """Hardware-style drop/accept counters exposed for diagnostics."""

    frames_received: int = 0
    writes_executed: int = 0
    atomics_executed: int = 0
    reads_executed: int = 0
    responses_emitted: int = 0
    dropped_decode: int = 0
    dropped_unknown_qp: int = 0
    dropped_psn: int = 0
    dropped_access: int = 0
    dropped_opcode: int = 0

    @property
    def frames_dropped(self) -> int:
        """Sum of all drop counters."""
        return (
            self.dropped_decode
            + self.dropped_unknown_qp
            + self.dropped_psn
            + self.dropped_access
            + self.dropped_opcode
        )


class RdmaNic:
    """An RNIC bound to one registered memory region.

    Parameters
    ----------
    region:
        The registered memory region remote writes land in.
    mac / ip:
        The NIC's L2/L3 addresses, advertised to switches via the control
        plane's collector lookup table.
    validate_icrc:
        Whether to verify the invariant CRC of each frame.  On by default;
        benchmarks may disable it to isolate DMA costs.
    """

    def __init__(
        self,
        region: MemoryRegion,
        mac: str = "02:00:00:00:00:01",
        ip: str = "10.0.0.1",
        validate_icrc: bool = True,
    ) -> None:
        self.region = region
        self.mac = mac
        self.ip = ip
        self.validate_icrc = validate_icrc
        self.counters = NicCounters()
        self._queue_pairs: Dict[int, QueuePair] = {}
        #: Outbound frames (READ responses, ACKs) awaiting transmission;
        #: the network model drains this with :meth:`transmit`.
        self.tx_queue: List[bytes] = []

    def __repr__(self) -> str:
        return f"RdmaNic(ip={self.ip!r}, region={self.region!r})"

    # ------------------------------------------------------------------
    # Control-plane operations
    # ------------------------------------------------------------------

    def create_queue_pair(self, qp: QueuePair) -> QueuePair:
        """Register a responder QP (control-plane bring-up)."""
        if qp.qp_number in self._queue_pairs:
            raise ValueError(f"QP {qp.qp_number} already exists")
        self._queue_pairs[qp.qp_number] = qp
        return qp

    def queue_pair(self, qp_number: int) -> Optional[QueuePair]:
        """Look up a responder QP by number (None if absent)."""
        return self._queue_pairs.get(qp_number)

    # ------------------------------------------------------------------
    # Data-plane: frame ingestion
    # ------------------------------------------------------------------

    def receive_frame(self, frame: bytes) -> bool:
        """Ingest one wire frame; returns whether it was executed.

        This is the *entire* collection fast path: parse, validate, DMA.
        """
        self.counters.frames_received += 1
        try:
            packet = RoceV2Packet.unpack(frame, validate_icrc=self.validate_icrc)
        except PacketDecodeError:
            self.counters.dropped_decode += 1
            return False
        return self.receive_packet(packet)

    def ingest_many(self, frames: Iterable[bytes]) -> int:
        """Ingest a batch of wire frames; returns how many were executed.

        The batched hot path used by fabric flushes: one call per flush
        instead of one per packet, with the per-frame method lookups
        hoisted out of the loop.  Frame semantics are identical to calling
        :meth:`receive_frame` in order.
        """
        receive_frame = self.receive_frame
        executed = 0
        for frame in frames:
            if receive_frame(frame):
                executed += 1
        return executed

    def receive_packet(self, packet: RoceV2Packet) -> bool:
        """Ingest an already-parsed packet (fast path for simulations)."""
        qp = self._queue_pairs.get(packet.bth.dest_qp)
        if qp is None:
            self.counters.dropped_unknown_qp += 1
            return False
        if not qp.accept(packet.bth.psn):
            self.counters.dropped_psn += 1
            return False

        opcode = packet.bth.opcode
        try:
            if opcode_has_reth(opcode) and opcode in (
                Opcode.RC_RDMA_WRITE_ONLY,
                Opcode.UC_RDMA_WRITE_ONLY,
            ):
                reth = packet.reth
                if reth is None or reth.dma_length != len(packet.payload):
                    self.counters.dropped_decode += 1
                    return False
                self.region.dma_write(
                    reth.virtual_address, packet.payload, rkey=reth.rkey
                )
                self.counters.writes_executed += 1
                return True
            if opcode == Opcode.RC_RDMA_READ_REQUEST:
                reth = packet.reth
                if reth is None:
                    self.counters.dropped_decode += 1
                    return False
                data = self.region.dma_read(
                    reth.virtual_address, reth.dma_length, rkey=reth.rkey
                )
                self.counters.reads_executed += 1
                self._enqueue_read_response(packet, qp, data)
                return True
            if opcode_has_atomic_eth(opcode):
                atomic = packet.atomic_eth
                if atomic is None:
                    self.counters.dropped_decode += 1
                    return False
                if opcode == Opcode.RC_FETCH_ADD:
                    self.region.dma_fetch_add(
                        atomic.virtual_address, atomic.swap_add, rkey=atomic.rkey
                    )
                else:
                    self.region.dma_compare_swap(
                        atomic.virtual_address,
                        atomic.compare,
                        atomic.swap_add,
                        rkey=atomic.rkey,
                    )
                self.counters.atomics_executed += 1
                return True
        except RegionAccessError:
            self.counters.dropped_access += 1
            return False

        self.counters.dropped_opcode += 1
        return False

    # ------------------------------------------------------------------
    # Response path (READ responses; still zero host CPU)
    # ------------------------------------------------------------------

    def _enqueue_read_response(
        self, request: RoceV2Packet, qp: QueuePair, data: bytes
    ) -> None:
        """Craft the READ RESPONSE frame for an executed READ request.

        Addressing is reflected from the request (the NIC knows nothing
        else); the response is queued on :attr:`tx_queue` for the network
        model to deliver back to the requester.
        """
        response = RoceV2Packet(
            eth=EthernetHeader(
                dst_mac=request.eth.src_mac, src_mac=self.mac
            ),
            ipv4=Ipv4Header(src_ip=self.ip, dst_ip=request.ipv4.src_ip),
            udp=UdpHeader(src_port=request.udp.src_port),
            bth=Bth(
                opcode=int(Opcode.RC_RDMA_READ_RESPONSE_ONLY),
                dest_qp=qp.effective_peer_qp,
                psn=request.bth.psn,
            ),
            aeth=Aeth(syndrome=0, msn=qp.next_msn()),
            payload=data,
        )
        self.tx_queue.append(response.pack())
        self.counters.responses_emitted += 1

    def transmit(self) -> List[bytes]:
        """Drain and return all queued outbound frames."""
        frames, self.tx_queue = self.tx_queue, []
        return frames
