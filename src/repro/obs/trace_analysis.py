"""Critical-path and waterfall analysis over recorded span trees.

A sealed :class:`~repro.obs.tracing.TraceRecord` says *what happened*;
this module answers *where the time went*.  The model suits how this
system records spans: each span marks an **event** (frame crafted,
impairment applied, frame delivered, read resolved) rather than an
interval, so a span's *self time* is the gap between it and the next
event on the trace (in logical-clock order).  Gap attribution has one
attractive property: self times sum exactly to the trace's end-to-end
wall-clock duration -- nothing double-counted, nothing unattributed.

On top of self time, the analyzer reconstructs the causal tree
(``parent_id`` links) and computes:

- **inclusive time** per span -- self time plus all descendants';
- the **critical path** -- the root-to-leaf walk that always descends
  into the child with the largest inclusive time, i.e. the chain of
  stages that actually bounded end-to-end latency;
- the **dominant stage/node** -- the single largest self-time
  contributor on that path, which is the "which stage was slow?" answer
  the ``repro obs trace --critical-path`` CLI prints;
- per-stage and per-node aggregates for fleet dashboards.

It also validates **completeness**: every tail-retained trace is
supposed to hold a full root-to-leaf story (unique span ids, every
parent resolvable, every span reachable from the root) -- the invariant
the impairment/eviction tests assert before trusting an analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.tracing import Span, TraceRecord


@dataclass(frozen=True)
class SpanTiming:
    """One span plus its attributed timings."""

    span: Span
    #: Gap to the next event on the trace (seconds); 0 for the last.
    self_time: float
    #: Self time plus all causal descendants' self times.
    inclusive_time: float
    #: Depth in the causal tree (root = 0).
    depth: int
    #: Offset of this span from the trace's first event (seconds).
    offset: float


@dataclass
class TraceAnalysis:
    """The full analysis of one trace (see :class:`TraceAnalyzer`)."""

    trace_id: int
    kind: str
    duration: float
    timings: List[SpanTiming] = field(default_factory=list)
    #: Root-to-leaf chain of the latency-bounding spans.
    critical_path: List[SpanTiming] = field(default_factory=list)
    #: Self-time seconds attributed to each stage name.
    by_stage: Dict[str, float] = field(default_factory=dict)
    #: Self-time seconds attributed to each node label ("" = unlabelled).
    by_node: Dict[str, float] = field(default_factory=dict)
    #: Structural problems found (empty = complete causal tree).
    problems: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when the causal tree is structurally sound."""
        return not self.problems

    @property
    def dominant(self) -> Optional[SpanTiming]:
        """The largest self-time span on the critical path (None if empty)."""
        if not self.critical_path:
            return None
        return max(self.critical_path, key=lambda t: t.self_time)

    @property
    def dominant_stage(self) -> str:
        """Stage name of :attr:`dominant` ("" when there is none)."""
        timing = self.dominant
        return "" if timing is None else timing.span.stage

    @property
    def dominant_node(self) -> str:
        """Node label of :attr:`dominant` ("" when there is none)."""
        timing = self.dominant
        return "" if timing is None else timing.span.node


class TraceAnalyzer:
    """Computes :class:`TraceAnalysis` from :class:`TraceRecord` trees."""

    def analyze(self, record: TraceRecord) -> TraceAnalysis:
        """Analyze one record (works on live, sealed or kept records)."""
        analysis = TraceAnalysis(
            trace_id=record.trace_id,
            kind=record.kind,
            duration=record.duration,
        )
        spans = sorted(record.spans, key=lambda s: s.seq)
        if not spans:
            analysis.problems.append("no spans recorded")
            return analysis
        analysis.problems.extend(self._validate(record, spans))

        # Gap attribution in logical order: a span owns the wall-clock
        # gap until the next event; the last event owns nothing.
        start = min(span.t for span in spans)
        self_time: Dict[int, float] = {}
        for current, nxt in zip(spans, spans[1:]):
            self_time[current.span_id] = max(0.0, nxt.t - current.t)
        self_time[spans[-1].span_id] = 0.0

        known = {span.span_id for span in spans}
        children: Dict[int, List[Span]] = {}
        roots: List[Span] = []
        for span in spans:
            if span.parent_id and span.parent_id in known:
                children.setdefault(span.parent_id, []).append(span)
            else:
                roots.append(span)

        inclusive: Dict[int, float] = {}

        def fill_inclusive(span: Span) -> float:
            total = self_time.get(span.span_id, 0.0)
            for child in children.get(span.span_id, ()):
                total += fill_inclusive(child)
            inclusive[span.span_id] = total
            return total

        depth: Dict[int, int] = {}

        def fill_depth(span: Span, level: int) -> None:
            depth[span.span_id] = level
            for child in children.get(span.span_id, ()):
                fill_depth(child, level + 1)

        for root in roots:
            fill_inclusive(root)
            fill_depth(root, 0)

        timing_by_id: Dict[int, SpanTiming] = {}
        for span in spans:
            timing = SpanTiming(
                span=span,
                self_time=self_time.get(span.span_id, 0.0),
                inclusive_time=inclusive.get(span.span_id, 0.0),
                depth=depth.get(span.span_id, 0),
                offset=max(0.0, span.t - start),
            )
            timing_by_id[span.span_id] = timing
            analysis.timings.append(timing)
            stage_total = analysis.by_stage.get(span.stage, 0.0)
            analysis.by_stage[span.stage] = stage_total + timing.self_time
            node_total = analysis.by_node.get(span.node, 0.0)
            analysis.by_node[span.node] = node_total + timing.self_time

        # Critical path: from the heaviest root, always descend into the
        # child with the largest inclusive time.
        if roots:
            cursor = max(roots, key=lambda s: inclusive.get(s.span_id, 0.0))
            while cursor is not None:
                analysis.critical_path.append(timing_by_id[cursor.span_id])
                kids = children.get(cursor.span_id)
                cursor = (
                    max(kids, key=lambda s: inclusive.get(s.span_id, 0.0))
                    if kids
                    else None
                )
        return analysis

    def _validate(self, record: TraceRecord, spans: List[Span]) -> List[str]:
        problems: List[str] = []
        ids = [span.span_id for span in spans]
        known = set(ids)
        if len(known) != len(ids):
            problems.append("duplicate span ids")
        for span in spans:
            if span.parent_id and span.parent_id not in known:
                problems.append(
                    f"span {span.span_id} ({span.stage}) has unresolved "
                    f"parent {span.parent_id}"
                )
        # Reachability: every span must trace back to the root.
        root_id = record.root_span_id or (ids[0] if ids else 0)
        reachable = {root_id}
        frontier = [root_id]
        children: Dict[int, List[int]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span.span_id)
        while frontier:
            node = frontier.pop()
            for child in children.get(node, ()):
                if child not in reachable:
                    reachable.add(child)
                    frontier.append(child)
        orphans = known - reachable
        if orphans:
            problems.append(
                f"{len(orphans)} span(s) unreachable from root {root_id}"
            )
        return problems

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render_waterfall(
        self,
        record: TraceRecord,
        width: int = 40,
        node: Optional[str] = None,
    ) -> str:
        """An indented waterfall: offset, self time, and a duration bar.

        ``node`` filters the rows to one node label (the tree structure
        is still computed over every span, so timings stay correct).
        """
        analysis = self.analyze(record)
        head = f"trace {record.trace_id} kind={record.kind}"
        if record.key:
            head += f" key={record.key}"
        head += f" duration={analysis.duration * 1e6:.1f}us"
        if record.status != "ok":
            head += f" status={record.status}"
        if record.keep_reasons:
            head += f" kept[{','.join(record.keep_reasons)}]"
        lines = [head]
        scale = analysis.duration or 1.0
        for timing in analysis.timings:
            if node is not None and timing.span.node != node:
                continue
            offset_cols = int(round((timing.offset / scale) * width))
            bar_cols = int(round((timing.self_time / scale) * width))
            bar = " " * min(offset_cols, width) + "#" * max(
                bar_cols, 1 if timing.self_time > 0 else 0
            )
            label = "  " * timing.depth + timing.span.stage
            if timing.span.detail:
                label += f" ({timing.span.detail})"
            if timing.span.status != "ok":
                label += f" !{timing.span.status}"
            if timing.span.node:
                label += f" @{timing.span.node}"
            lines.append(
                f"  {timing.offset * 1e6:9.1f}us "
                f"{timing.self_time * 1e6:9.1f}us |{bar:<{width}}| {label}"
            )
        if not analysis.complete:
            for problem in analysis.problems:
                lines.append(f"  ! {problem}")
        return "\n".join(lines)

    def render_critical_path(self, record: TraceRecord) -> str:
        """The critical path with per-hop self time and % of end-to-end."""
        analysis = self.analyze(record)
        total = analysis.duration or 1.0
        lines = [
            f"trace {record.trace_id} kind={record.kind} "
            f"critical path ({analysis.duration * 1e6:.1f}us end-to-end):"
        ]
        for timing in analysis.critical_path:
            share = 100.0 * timing.self_time / total
            label = timing.span.stage
            if timing.span.detail:
                label += f" ({timing.span.detail})"
            if timing.span.node:
                label += f" @{timing.span.node}"
            marker = " <-- dominant" if timing is analysis.dominant else ""
            lines.append(
                f"  {timing.self_time * 1e6:9.1f}us {share:5.1f}%  {label}{marker}"
            )
        if analysis.dominant is not None:
            lines.append(
                f"  dominant stage: {analysis.dominant_stage}"
                + (
                    f" @{analysis.dominant_node}"
                    if analysis.dominant_node
                    else ""
                )
            )
        if not analysis.complete:
            for problem in analysis.problems:
                lines.append(f"  ! {problem}")
        return "\n".join(lines)

    def summarize(self, record: TraceRecord) -> Dict[str, object]:
        """JSON-friendly critical-path summary (postmortem bundles)."""
        analysis = self.analyze(record)
        return {
            "trace_id": analysis.trace_id,
            "kind": analysis.kind,
            "duration_seconds": analysis.duration,
            "complete": analysis.complete,
            "problems": list(analysis.problems),
            "dominant_stage": analysis.dominant_stage,
            "dominant_node": analysis.dominant_node,
            "critical_path": [
                {
                    "stage": t.span.stage,
                    "detail": t.span.detail,
                    "node": t.span.node,
                    "status": t.span.status,
                    "self_seconds": t.self_time,
                }
                for t in analysis.critical_path
            ],
            "by_stage": dict(analysis.by_stage),
            "by_node": dict(analysis.by_node),
        }
